//! # ppdt-bayes
//!
//! A quantile-binned naive Bayes classifier — the workspace's evidence
//! that the paper's no-outcome-change guarantee is not specific to
//! decision trees but holds for **any learner that consumes only rank
//! statistics** of each attribute.
//!
//! A classical Gaussian naive Bayes uses means and variances, which
//! piecewise monotone transformations destroy. This variant instead
//! discretizes each attribute at *empirical quantile* boundaries and
//! models per-bin class frequencies. Quantile boundaries are defined
//! by tuple ranks; a globally monotone transformation preserves ranks
//! exactly, so the binning — and therefore every learned probability —
//! is identical on `D` and `D'`. Decoding the model is the same
//! threshold decode as for trees (bin edges are data values). The
//! `nb_outcome` experiment and this crate's tests verify bit-exact
//! outcome preservation end-to-end; permutation pieces require one
//! care: bin edges must fall on label-run boundaries… they need not!
//! Quantile edges can fall inside monochromatic pieces, where the
//! permutation reorders *which* value sits at the edge. The model's
//! per-bin counts then differ. The fix mirrors Lemma 2: snap each
//! quantile edge outward to the nearest *label-run boundary* (where
//! counts are invariant) — implemented in
//! [`QuantileBinnedNb::fit`] and tested.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use ppdt_data::{AttrId, ClassId, Dataset};

/// Hyperparameters for the quantile-binned naive Bayes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NbParams {
    /// Number of quantile bins per attribute.
    pub bins: usize,
    /// Laplace smoothing added to every (class, bin) count.
    pub alpha: f64,
}

impl Default for NbParams {
    fn default() -> Self {
        NbParams { bins: 8, alpha: 1.0 }
    }
}

/// A trained quantile-binned naive Bayes model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantileBinnedNb {
    /// Per attribute: ascending bin edges (a value `x` falls into the
    /// first bin whose edge satisfies `x <= edge`; the last bin is
    /// unbounded above). Edges are data values.
    pub edges: Vec<Vec<f64>>,
    /// `log P(class)`.
    pub log_prior: Vec<f64>,
    /// `log P(bin | class)` per attribute: `log_likelihood[a][c][b]`.
    pub log_likelihood: Vec<Vec<Vec<f64>>>,
    /// Number of classes.
    pub num_classes: usize,
}

impl QuantileBinnedNb {
    /// Fits the model on `d`.
    ///
    /// Bin edges start at the `i/bins` quantiles of each attribute and
    /// are then snapped **outward to the nearest label-run boundary**
    /// (the positions Lemma 2 singles out): at run boundaries the
    /// cumulative class counts are invariant under the piecewise
    /// transformations, so the fitted model — priors, per-bin
    /// likelihoods, and decoded edges — is identical whether trained
    /// on `D` or `D'`.
    ///
    /// # Panics
    /// Panics on an empty dataset or `bins < 2`.
    pub fn fit(d: &Dataset, params: &NbParams) -> Self {
        assert!(d.num_rows() > 0, "cannot fit on an empty dataset");
        assert!(params.bins >= 2, "need at least two bins");
        let n = d.num_rows();
        let k = d.num_classes();

        let counts = d.class_counts();
        let log_prior: Vec<f64> = counts
            .iter()
            .map(|&c| ((f64::from(c) + params.alpha) / (n as f64 + params.alpha * k as f64)).ln())
            .collect();

        let mut edges = Vec::with_capacity(d.num_attrs());
        let mut log_likelihood = Vec::with_capacity(d.num_attrs());
        for a in d.schema().attrs() {
            let sc = d.sorted_column(a);
            let attr_edges = run_boundary_edges(&sc, params.bins);
            // Count (class, bin) occupancy.
            let col = d.column(a);
            let nbins = attr_edges.len() + 1;
            let mut hist = vec![vec![0u32; nbins]; k];
            for (row, &x) in col.iter().enumerate() {
                let b = bin_of(&attr_edges, x);
                hist[d.label(row).index()][b] += 1;
            }
            let ll: Vec<Vec<f64>> = hist
                .iter()
                .enumerate()
                .map(|(c, row_hist)| {
                    let total = f64::from(counts[c]) + params.alpha * nbins as f64;
                    row_hist.iter().map(|&h| ((f64::from(h) + params.alpha) / total).ln()).collect()
                })
                .collect();
            edges.push(attr_edges);
            log_likelihood.push(ll);
        }

        QuantileBinnedNb { edges, log_prior, log_likelihood, num_classes: k }
    }

    /// Predicts the class of a tuple.
    pub fn predict(&self, values: &[f64]) -> ClassId {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.num_classes {
            let mut score = self.log_prior[c];
            for (a, edges) in self.edges.iter().enumerate() {
                let b = bin_of(edges, values[a]);
                score += self.log_likelihood[a][c][b];
            }
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        ClassId(best as u16)
    }

    /// Training accuracy on `d`.
    pub fn accuracy(&self, d: &Dataset) -> f64 {
        if d.num_rows() == 0 {
            return 1.0;
        }
        let mut values = vec![0.0; d.num_attrs()];
        let mut hits = 0usize;
        for row in 0..d.num_rows() {
            for a in d.schema().attrs() {
                values[a.index()] = d.value(row, a);
            }
            if self.predict(&values) == d.label(row) {
                hits += 1;
            }
        }
        hits as f64 / d.num_rows() as f64
    }

    /// Rewrites every bin edge with `f(attr, edge)` — the custodian's
    /// decode step. Edges are data values at label-run boundaries, so
    /// `ppdt-transform`'s partition-based split decoding recovers them
    /// exactly (pointwise inversion is not sufficient inside
    /// permutation pieces; see `TransformKey::decode_tree`'s docs).
    pub fn map_edges(&self, mut f: impl FnMut(AttrId, f64) -> f64) -> QuantileBinnedNb {
        let mut out = self.clone();
        for (a, edges) in out.edges.iter_mut().enumerate() {
            for e in edges.iter_mut() {
                *e = f(AttrId(a), *e);
            }
        }
        out
    }
}

/// First bin whose edge is `>= x`; the last bin catches everything
/// above the final edge.
fn bin_of(edges: &[f64], x: f64) -> usize {
    edges.partition_point(|&e| e < x)
}

/// Quantile-ish bin edges snapped outward to label-run boundaries:
/// walk the distinct-value groups, accumulate tuple counts, and place
/// an edge at the *end of the current label run* whenever the
/// cumulative count passes the next `i/bins` target. Run ends are
/// invariant under the piecewise transforms (Lemma 2's positions), so
/// the edges — and all per-bin class counts — are preserved.
fn run_boundary_edges(sc: &ppdt_data::SortedColumn, bins: usize) -> Vec<f64> {
    let n: usize = sc.order.len();
    if n == 0 {
        return Vec::new();
    }
    // Group-level pass: detect run boundaries between distinct values
    // (a boundary is NOT inside a run iff the adjacent groups are not
    // both monochromatic with the same label).
    let labels: Vec<Option<ClassId>> = sc.groups.iter().map(|g| g.monochromatic_label()).collect();
    let mut edges = Vec::new();
    let mut cum = 0usize;
    let mut next_target = 1usize;
    for (gi, g) in sc.groups.iter().enumerate() {
        cum += g.count() as usize;
        if gi + 1 == sc.groups.len() {
            break; // no boundary after the last group
        }
        let boundary_is_run_end = match (labels[gi], labels[gi + 1]) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        };
        if !boundary_is_run_end {
            continue;
        }
        let target = next_target * n / bins;
        if cum >= target && next_target < bins {
            edges.push(g.value);
            while next_target < bins && cum >= next_target * n / bins {
                next_target += 1;
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::{census_like, figure1, random_dataset, RandomDatasetConfig};
    use ppdt_transform::{EncodeConfig, Encoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_figure1() {
        let d = figure1();
        let nb = QuantileBinnedNb::fit(&d, &NbParams::default());
        assert!(nb.accuracy(&d) >= 5.0 / 6.0, "accuracy {}", nb.accuracy(&d));
    }

    #[test]
    fn beats_majority_on_census() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = census_like(&mut rng, 3_000);
        let majority = *d.class_counts().iter().max().unwrap() as f64 / d.num_rows() as f64;
        let nb = QuantileBinnedNb::fit(&d, &NbParams::default());
        assert!(nb.accuracy(&d) > majority + 0.05);
    }

    #[test]
    fn outcome_preserved_under_piecewise_transforms() {
        // The headline: the model fitted on D' has identical priors and
        // likelihoods, and predicts identically through the encoding.
        let mut rng = StdRng::seed_from_u64(2);
        let cfg =
            RandomDatasetConfig { num_rows: 300, num_attrs: 3, num_classes: 3, value_range: 40 };
        for trial in 0..10 {
            let d = random_dataset(&mut rng, &cfg);
            let (_, d2) = Encoder::new(EncodeConfig::default())
                .encode(&mut rng, &d)
                .expect("encode")
                .into_parts();
            let params = NbParams { bins: 4 + trial % 5, alpha: 1.0 };
            let m1 = QuantileBinnedNb::fit(&d, &params);
            let m2 = QuantileBinnedNb::fit(&d2, &params);
            assert_eq!(m1.log_prior, m2.log_prior, "trial {trial}");
            assert_eq!(m1.log_likelihood, m2.log_likelihood, "trial {trial}");
            // Predictions agree tuple-for-tuple through the encoding.
            let mut x = vec![0.0; d.num_attrs()];
            let mut x2 = vec![0.0; d.num_attrs()];
            for row in 0..d.num_rows() {
                for a in d.schema().attrs() {
                    x[a.index()] = d.value(row, a);
                    x2[a.index()] = d2.value(row, a);
                }
                assert_eq!(m1.predict(&x), m2.predict(&x2), "trial {trial} row {row}");
            }
        }
    }

    #[test]
    fn naive_quantile_edges_would_break() {
        // Control experiment: place edges at raw quantiles (inside
        // monochromatic pieces) and observe the per-bin counts change
        // under a permutation — the reason fit() snaps to run ends.
        // Breakage needs *ties inside monochromatic pieces* (the
        // permutation moves a heavy value across the edge), so build
        // a dataset where every value is monochromatic with varying
        // multiplicity.
        let mut rng = StdRng::seed_from_u64(3);
        let mut observed_break = false;
        for trial in 0..20u64 {
            use rand::Rng as _;
            let mut b = ppdt_data::DatasetBuilder::new(ppdt_data::Schema::generated(1, 2));
            for _ in 0..200 {
                let v = rng.gen_range(0..30);
                // Label determined by the value: every value mono.
                b.push_row(&[v as f64], ClassId(u16::from(v > 15)));
            }
            let d = b.build();
            let _ = trial;
            let (_, d2) = Encoder::new(EncodeConfig::default())
                .encode(&mut rng, &d)
                .expect("encode")
                .into_parts();
            // Raw quantile edges: the value at rank n/2.
            let raw_edge = |dd: &ppdt_data::Dataset| {
                let mut col = dd.column(AttrId(0)).to_vec();
                col.sort_by(f64::total_cmp);
                col[col.len() / 2]
            };
            let (e1, e2) = (raw_edge(&d), raw_edge(&d2));
            // Class histogram below the raw median edge.
            let below = |dd: &ppdt_data::Dataset, e: f64| {
                let mut h = vec![0u32; 2];
                for (row, &x) in dd.column(AttrId(0)).iter().enumerate() {
                    if x <= e {
                        h[dd.label(row).index()] += 1;
                    }
                }
                h
            };
            if below(&d, e1) != below(&d2, e2) {
                observed_break = true;
                break;
            }
        }
        assert!(
            observed_break,
            "raw quantile edges should disagree under permutation pieces at least once"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let d = figure1();
        let nb = QuantileBinnedNb::fit(&d, &NbParams::default());
        let s = serde_json::to_string(&nb).unwrap();
        let nb2: QuantileBinnedNb = serde_json::from_str(&s).unwrap();
        assert_eq!(nb, nb2);
    }

    #[test]
    #[should_panic(expected = "two bins")]
    fn bins_validated() {
        let d = figure1();
        let _ = QuantileBinnedNb::fit(&d, &NbParams { bins: 1, alpha: 1.0 });
    }
}
