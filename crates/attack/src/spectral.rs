//! Spectral reconstruction attack against *additive-noise
//! perturbation* (Kargupta et al., ICDM 2003 — reference \[7\] of the
//! reproduced paper).
//!
//! Additive i.i.d. noise inflates every eigenvalue of the data
//! covariance by the noise variance but leaves the signal's principal
//! subspace intact. When attributes are correlated, the signal lives
//! in few directions: projecting the perturbed tuples onto the
//! top eigenvectors filters most of the noise and recovers values far
//! more accurately than the noise magnitude suggests. The reproduced
//! paper cites exactly this to argue that perturbation's input privacy
//! is weaker than it looks; the piecewise framework is immune because
//! there is no additive noise to filter — the transformation is the
//! signal.

use crate::linalg::{covariance, eigen_symmetric};

/// Result of a spectral reconstruction.
#[derive(Clone, Debug)]
pub struct SpectralReconstruction {
    /// Reconstructed columns (same shape as the input).
    pub columns: Vec<Vec<f64>>,
    /// Number of principal components kept as signal.
    pub components_kept: usize,
    /// The covariance eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
}

/// Reconstructs original values from additively perturbed columns.
///
/// * `perturbed` — one vector per attribute (equal lengths),
/// * `noise_variances` — the attacker's estimate of the per-attribute
///   noise variance (for published perturbation schemes this is public
///   knowledge; pass the true values for a worst-case analysis).
///
/// Components whose eigenvalue does not clearly exceed the noise floor
/// (projected into eigenspace) are discarded; the perturbed data is
/// projected onto the remaining signal subspace around the mean.
///
/// # Panics
/// Panics on ragged/empty input or mismatched variance count.
pub fn spectral_reconstruct(
    perturbed: &[Vec<f64>],
    noise_variances: &[f64],
) -> SpectralReconstruction {
    let m = perturbed.len();
    assert_eq!(noise_variances.len(), m, "one noise variance per attribute");
    let (means, cov) = covariance(perturbed);
    let n = perturbed[0].len();
    let (eigenvalues, eigenvectors) = eigen_symmetric(&cov);

    // Noise floor along an arbitrary unit direction u: sum_i u_i^2 s_i^2.
    // Keep components whose eigenvalue exceeds twice their noise floor.
    let mut keep: Vec<usize> = Vec::new();
    for (k, v) in eigenvectors.iter().enumerate() {
        let floor: f64 = v.iter().zip(noise_variances).map(|(ui, s2)| ui * ui * s2).sum();
        if eigenvalues[k] > 2.0 * floor {
            keep.push(k);
        }
    }
    // Always keep at least the leading component: a rank-0 projection
    // would reconstruct the mean only.
    if keep.is_empty() {
        keep.push(0);
    }

    // Project every centered tuple onto the kept subspace, in two
    // passes fanned out over scoped worker threads. Pass 1 computes
    // each row's projection coefficients onto the kept eigenvectors
    // (parallel over row ranges); pass 2 reconstructs each attribute
    // column from those coefficients (parallel over attributes). Both
    // passes run the exact float operations of the serial one-pass
    // loop in the same per-element order — the old code recomputed the
    // same row coefficient once per column — so the reconstruction is
    // bit-identical regardless of thread count, and `O(n·m·kept)`
    // redundant dot products cheaper.
    let kk = keep.len();
    let mut coeffs = vec![0.0f64; n * kk];
    let fill_coeffs = |rows: std::ops::Range<usize>, chunk: &mut [f64]| {
        let mut centered = vec![0.0f64; m];
        for (r, row_coeffs) in rows.zip(chunk.chunks_mut(kk)) {
            for (i, col) in perturbed.iter().enumerate() {
                centered[i] = col[r] - means[i];
            }
            for (c, &k) in row_coeffs.iter_mut().zip(&keep) {
                *c = eigenvectors[k].iter().zip(&centered).map(|(vi, xi)| vi * xi).sum();
            }
        }
    };
    let row_threads = ppdt_obs::threads(None).min(n).max(1);
    if row_threads == 1 || n < crate::par::PAR_MIN_ITEMS {
        fill_coeffs(0..n, &mut coeffs);
    } else {
        let row_chunk = n.div_ceil(row_threads);
        let result = crossbeam::thread::scope(|scope| {
            for (t, chunk) in coeffs.chunks_mut(row_chunk * kk).enumerate() {
                let fill_coeffs = &fill_coeffs;
                scope.spawn(move |_| {
                    let start = t * row_chunk;
                    fill_coeffs(start..(start + row_chunk).min(n), chunk);
                });
            }
        });
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    let mut columns = vec![vec![0.0f64; n]; m];
    let coeffs = &coeffs;
    let rec_columns = |start: usize, cols: &mut [Vec<f64>]| {
        for (i, out) in cols.iter_mut().enumerate().map(|(off, c)| (start + off, c)) {
            for (r, slot) in out.iter_mut().enumerate() {
                let mut rec = means[i];
                for (c, &k) in coeffs[r * kk..(r + 1) * kk].iter().zip(&keep) {
                    rec += c * eigenvectors[k][i];
                }
                *slot = rec;
            }
        }
    };
    let col_threads = ppdt_obs::threads(None).min(m).max(1);
    if col_threads == 1 || n * m < crate::par::PAR_MIN_ITEMS {
        rec_columns(0, &mut columns);
    } else {
        let col_chunk = m.div_ceil(col_threads);
        let result = crossbeam::thread::scope(|scope| {
            for (t, cols) in columns.chunks_mut(col_chunk).enumerate() {
                let rec_columns = &rec_columns;
                scope.spawn(move |_| rec_columns(t * col_chunk, cols));
            }
        });
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }

    SpectralReconstruction { columns, components_kept: keep.len(), eigenvalues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Correlated 4-attribute data: one latent factor + small
    /// idiosyncratic wiggle.
    fn correlated(rng: &mut StdRng, n: usize) -> Vec<Vec<f64>> {
        let loads = [1.0, 0.8, -1.2, 0.5];
        let mut cols: Vec<Vec<f64>> = (0..4).map(|_| Vec::with_capacity(n)).collect();
        for _ in 0..n {
            let f: f64 = rng.gen_range(-10.0..10.0);
            for (c, &l) in cols.iter_mut().zip(&loads) {
                c.push(l * f + rng.gen_range(-0.5..0.5));
            }
        }
        cols
    }

    fn add_noise(rng: &mut StdRng, cols: &[Vec<f64>], sd: f64) -> Vec<Vec<f64>> {
        cols.iter()
            .map(|c| {
                c.iter()
                    .map(|&v| {
                        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let u2: f64 = rng.gen();
                        v + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    })
                    .collect()
            })
            .collect()
    }

    fn rms_error(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
        let mut s = 0.0;
        let mut n = 0usize;
        for (ca, cb) in a.iter().zip(b) {
            for (&x, &y) in ca.iter().zip(cb) {
                s += (x - y) * (x - y);
                n += 1;
            }
        }
        (s / n as f64).sqrt()
    }

    #[test]
    fn filters_noise_on_correlated_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let original = correlated(&mut rng, 4_000);
        let sd = 2.0;
        let noisy = add_noise(&mut rng, &original, sd);
        let rec = spectral_reconstruct(&noisy, &[sd * sd; 4]);

        let err_noisy = rms_error(&noisy, &original);
        let err_rec = rms_error(&rec.columns, &original);
        // The signal is rank-1; filtering should cut the error roughly
        // in half (1 of 4 components kept keeps 1/4 of the noise).
        assert!(err_rec < 0.7 * err_noisy, "reconstruction {err_rec:.3} vs noisy {err_noisy:.3}");
        assert_eq!(rec.components_kept, 1, "rank-1 signal detected");
    }

    #[test]
    fn keeps_everything_when_signal_dominates() {
        // Nearly noiseless: all informative components kept, output ≈ input.
        let mut rng = StdRng::seed_from_u64(2);
        let original = correlated(&mut rng, 1_000);
        let rec = spectral_reconstruct(&original, &[1e-6; 4]);
        assert!(rms_error(&rec.columns, &original) < 1e-6);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let mut rng = StdRng::seed_from_u64(3);
        let original = correlated(&mut rng, 500);
        let rec = spectral_reconstruct(&original, &[0.01; 4]);
        assert!(rec.eigenvalues.windows(2).all(|w| w[0] >= w[1] - 1e-9));
    }

    #[test]
    fn never_returns_rank_zero() {
        // Pure noise: still keeps one component rather than collapsing
        // to the mean.
        let mut rng = StdRng::seed_from_u64(4);
        let noise = add_noise(&mut rng, &vec![vec![0.0; 500]; 3], 1.0);
        let rec = spectral_reconstruct(&noise, &[1.0; 3]);
        assert!(rec.components_kept >= 1);
    }

    #[test]
    #[should_panic(expected = "one noise variance per attribute")]
    fn variance_count_checked() {
        let _ = spectral_reconstruct(&[vec![1.0, 2.0]], &[1.0, 2.0]);
    }

    #[test]
    fn two_pass_reconstruction_is_bit_identical_to_naive_loop() {
        // Reference implementation: the original single-pass loop that
        // recomputed each row coefficient once per column. The shipped
        // two-pass version must agree bit for bit (same float ops in
        // the same per-element order), with any thread count.
        let mut rng = StdRng::seed_from_u64(5);
        let original = correlated(&mut rng, 3_000);
        let noisy = add_noise(&mut rng, &original, 1.5);
        let variances = [1.5 * 1.5; 4];
        let rec = spectral_reconstruct(&noisy, &variances);

        let (means, cov) = crate::linalg::covariance(&noisy);
        let (eigenvalues, eigenvectors) = crate::linalg::eigen_symmetric(&cov);
        let mut keep: Vec<usize> = Vec::new();
        for (k, v) in eigenvectors.iter().enumerate() {
            let floor: f64 = v.iter().zip(&variances).map(|(ui, s2)| ui * ui * s2).sum();
            if eigenvalues[k] > 2.0 * floor {
                keep.push(k);
            }
        }
        if keep.is_empty() {
            keep.push(0);
        }
        let (m, n) = (noisy.len(), noisy[0].len());
        let mut centered = vec![0.0f64; m];
        for r in 0..n {
            for (i, col) in noisy.iter().enumerate() {
                centered[i] = col[r] - means[i];
            }
            for (i, out) in rec.columns.iter().enumerate() {
                let mut want = means[i];
                for &k in &keep {
                    let v = &eigenvectors[k];
                    let coeff: f64 = v.iter().zip(&centered).map(|(vi, xi)| vi * xi).sum();
                    want += coeff * v[i];
                }
                assert_eq!(out[r], want, "row {r}, attr {i}");
            }
        }
    }
}
