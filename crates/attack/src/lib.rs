//! # ppdt-attack
//!
//! The hacker's toolkit (Sections 3.3, 5.4 and 6 of the paper): given
//! the transformed data `D'` (and possibly some prior knowledge), try
//! to reconstruct original values.
//!
//! * [`kp`] — knowledge points (Definition 4): good points land within
//!   the crack radius `ρ` of the truth, bad points are off by more
//!   than `5ρ`; hacker profiles (ignorant / knowledgeable / expert /
//!   insider) fix how many points the hacker holds,
//! * [`fit`] — curve-fitting attacks (Definition 5): least-squares
//!   regression line, polyline interpolation, natural cubic spline,
//! * [`sorting`] — the sorting attack and its worst-case analytic
//!   crack probability (Section 5.4),
//! * [`combo`] — the combination attack of Section 6.2.2: run several
//!   crack models, build the Venn diagram of their crack sets, and
//!   aggregate (union / expected-value / consensus).
//!
//! Everything here sees only what the hacker sees: transformed values
//! and knowledge points. Ground truth (`f⁻¹`) enters only when the
//! *evaluation* (in `ppdt-risk`) decides whether a guess is a crack.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod combo;
pub mod fit;
pub mod kp;
pub mod linalg;
mod par;
pub mod quantile;
pub mod sorting;
pub mod spectral;

pub use combo::{combine_cracks, resolve_guesses, ComboReport, ResolveStrategy};
pub use fit::{fit_crack, CrackModel, FitMethod};
pub use kp::{generate_kps, HackerProfile, KnowledgePoint};
pub use quantile::{quantile_attack, QuantileAttack};
pub use sorting::{
    sorting_attack, sorting_attack_with, sorting_crack_probability, SortingAttack, SortingMapping,
};
pub use spectral::{spectral_reconstruct, SpectralReconstruction};
