//! The sorting attack (Sections 3.3 and 5.4).
//!
//! The hacker sorts the distinct transformed values and maps them, in
//! order, onto a guessed original range — devastating when the
//! original domain is dense (no discontinuities) and the attribute has
//! few monochromatic values. The *worst case* (Figure 11) assumes the
//! hacker knows the true minimum and maximum of the dynamic range.

use serde::{Deserialize, Serialize};

/// How ranks are mapped onto the guessed range.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortingMapping {
    /// The paper's attack: rank `i` maps to
    /// `guessed_min + i·granularity` ("consecutive values starting
    /// with the guessed minimum"), clamped at the guessed maximum.
    /// Errors accumulate with every discontinuity, which is exactly
    /// the defence Figure 11 quantifies.
    Consecutive,
    /// A stronger attacker the paper does not consider: rank `i` maps
    /// proportionally onto `[guessed_min, guessed_max]`. When
    /// discontinuities are spread evenly, the proportional map
    /// self-corrects for them and only the permutation displacement
    /// inside monochromatic pieces protects values (see
    /// `EXPERIMENTS.md`).
    Proportional,
}

/// A fitted sorting attack: rank-maps transformed values onto a
/// guessed original range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SortingAttack {
    /// The distinct transformed values, ascending.
    sorted: Vec<f64>,
    /// Guessed minimum of the original dynamic range.
    pub guessed_min: f64,
    /// Guessed maximum of the original dynamic range.
    pub guessed_max: f64,
    /// Guessed granularity of the original domain (1.0 for integer
    /// attributes); guesses are snapped to this grid.
    pub granularity: f64,
    /// Rank-mapping variant.
    pub mapping: SortingMapping,
}

/// Builds the paper's sorting attack ([`SortingMapping::Consecutive`])
/// from the transformed values visible in `D'`.
///
/// ```
/// use ppdt_attack::sorting_attack;
///
/// // A dense integer domain transformed monotonically is fully
/// // recovered once the hacker guesses the true minimum.
/// let transformed: Vec<f64> = (0..10).map(|x| (x as f64) * 3.0 + 7.0).collect();
/// let atk = sorting_attack(&transformed, 0.0, 9.0, 1.0);
/// assert_eq!(atk.guess(7.0), 0.0);
/// assert_eq!(atk.guess(34.0), 9.0);
/// ```
///
/// # Panics
/// Panics if `transformed_domain` is empty, the guessed range is
/// inverted, or the granularity is non-positive.
pub fn sorting_attack(
    transformed_domain: &[f64],
    guessed_min: f64,
    guessed_max: f64,
    granularity: f64,
) -> SortingAttack {
    sorting_attack_with(
        transformed_domain,
        guessed_min,
        guessed_max,
        granularity,
        SortingMapping::Consecutive,
    )
}

/// [`sorting_attack`] with an explicit rank-mapping variant.
pub fn sorting_attack_with(
    transformed_domain: &[f64],
    guessed_min: f64,
    guessed_max: f64,
    granularity: f64,
    mapping: SortingMapping,
) -> SortingAttack {
    assert!(!transformed_domain.is_empty(), "sorting attack needs values");
    assert!(guessed_min <= guessed_max, "guessed range inverted");
    assert!(granularity > 0.0, "granularity must be positive");
    let mut sorted = transformed_domain.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    SortingAttack { sorted, guessed_min, guessed_max, granularity, mapping }
}

impl SortingAttack {
    /// The hacker's guess for transformed value `v_prime`.
    pub fn guess(&self, v_prime: f64) -> f64 {
        let k = self.sorted.len();
        if k == 1 {
            return self.guessed_min;
        }
        let rank = match self.sorted.binary_search_by(|v| v.total_cmp(&v_prime)) {
            Ok(i) => i,
            Err(i) => i.min(k - 1),
        };
        let raw = match self.mapping {
            SortingMapping::Consecutive => {
                (self.guessed_min + rank as f64 * self.granularity).min(self.guessed_max)
            }
            SortingMapping::Proportional => {
                let t = rank as f64 / (k - 1) as f64;
                self.guessed_min + t * (self.guessed_max - self.guessed_min)
            }
        };
        (raw / self.granularity).round() * self.granularity
    }

    /// [`guess`](SortingAttack::guess) over a whole column, fanned out
    /// over scoped worker threads for large inputs — bit-identical to
    /// the serial map (each guess only reads the fitted state).
    pub fn guess_all(&self, v_primes: &[f64]) -> Vec<f64> {
        crate::par::par_map_f64(v_primes, |v| self.guess(v))
    }

    /// Number of distinct values the attack ranks over.
    pub fn num_values(&self) -> usize {
        self.sorted.len()
    }
}

/// The analytic crack probability of Section 5.4 for a value under a
/// sorting attack: the hacker can localize the original value of
/// `ν'` only to a range `R_g`; the guess cracks with probability
/// `|R_g ∩ R_ρ| / |R_g|` where `R_ρ = [ν − ρ, ν + ρ]`.
///
/// * `rank` — number of distinct transformed values strictly below
///   `ν'`,
/// * `num_values` — total distinct values,
/// * `domain_min`/`domain_max` — the (known, worst-case) dynamic
///   range,
/// * `true_value` — `f⁻¹(ν')`,
/// * `rho` — the crack radius.
///
/// `R_g` is `[domain_min + rank·g, domain_max − (below·g)]` shrunk by
/// the values that must fit on each side at granularity `g = 1`:
/// with `rank` values below and `num_values − rank − 1` above, the
/// original value must lie in
/// `[domain_min + rank, domain_max − (num_values − rank − 1)]`.
pub fn sorting_crack_probability(
    rank: usize,
    num_values: usize,
    domain_min: f64,
    domain_max: f64,
    true_value: f64,
    rho: f64,
    granularity: f64,
) -> f64 {
    assert!(rank < num_values, "rank out of range");
    let g = granularity;
    let lo = domain_min + rank as f64 * g;
    let hi = domain_max - (num_values - rank - 1) as f64 * g;
    if hi < lo {
        return 1.0; // no slack at all: the value is pinned exactly
    }
    // Count grid positions, matching the paper's |R_g| = 36 for
    // R_g = [6, 41] at granularity 1.
    let count = |a: f64, b: f64| -> f64 {
        if b < a {
            0.0
        } else {
            ((b - a) / g).floor() + 1.0
        }
    };
    let total = count(lo, hi);
    if total <= 1.0 {
        return 1.0;
    }
    let inter = count(lo.max(true_value - rho), hi.min(true_value + rho));
    (inter / total).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_domain_fully_cracked() {
        // Original domain 0..=9 with every value present; the worst-case
        // sorting attack recovers everything exactly.
        let original: Vec<f64> = (0..10).map(f64::from).collect();
        // Any monotone transform, e.g. f(x) = 3x + 7.
        let transformed: Vec<f64> = original.iter().map(|x| 3.0 * x + 7.0).collect();
        let atk = sorting_attack(&transformed, 0.0, 9.0, 1.0);
        for (&x, &y) in original.iter().zip(&transformed) {
            assert_eq!(atk.guess(y), x);
        }
    }

    #[test]
    fn discontinuities_defeat_exact_recovery() {
        // Values 0, 1, 2, 50 (big discontinuity): the consecutive map
        // recovers the dense prefix but misses the value after the
        // discontinuity by 47.
        let original = [0.0, 1.0, 2.0, 50.0];
        let transformed: Vec<f64> = original.iter().map(|x| x + 100.0).collect();
        let atk = sorting_attack(&transformed, 0.0, 50.0, 1.0);
        assert_eq!(atk.guess(100.0), 0.0);
        assert_eq!(atk.guess(101.0), 1.0);
        assert_eq!(atk.guess(102.0), 2.0);
        assert_eq!(atk.guess(150.0), 3.0);
    }

    #[test]
    fn proportional_mapping_self_corrects_uniform_discontinuities() {
        // Every other grid value occurs: 0, 2, 4, ..., 18. The
        // consecutive map drifts (error grows to 9); the proportional
        // map recovers everything exactly.
        let original: Vec<f64> = (0..10).map(|i| (2 * i) as f64).collect();
        let transformed: Vec<f64> = original.iter().map(|x| 5.0 * x + 3.0).collect();
        let cons = sorting_attack(&transformed, 0.0, 18.0, 1.0);
        let prop = sorting_attack_with(&transformed, 0.0, 18.0, 1.0, SortingMapping::Proportional);
        assert_eq!(cons.guess(transformed[9]), 9.0); // off by 9
        assert_eq!(prop.guess(transformed[9]), 18.0); // exact
        for (&x, &y) in original.iter().zip(&transformed) {
            assert_eq!(prop.guess(y), x);
        }
    }

    #[test]
    fn permutation_scrambles_sorting_attack() {
        // A monochromatic piece permuted: the rank order in D' no longer
        // matches the original order, so the attack mislabels values.
        let transformed = [5.0, 1.0, 3.0]; // originals 10, 11, 12 permuted
        let atk = sorting_attack(&transformed, 10.0, 12.0, 1.0);
        // The attack maps smallest transformed (1.0, original 11) to 10.
        assert_eq!(atk.guess(1.0), 10.0);
        assert_eq!(atk.guess(3.0), 11.0);
        assert_eq!(atk.guess(5.0), 12.0);
    }

    #[test]
    fn single_value_domain() {
        let atk = sorting_attack(&[42.0], 5.0, 5.0, 1.0);
        assert_eq!(atk.guess(42.0), 5.0);
        assert_eq!(atk.num_values(), 1);
    }

    #[test]
    fn paper_example_crack_probability() {
        // Section 5.4's worked example: ν' = 27 in row 5 of Figure 7;
        // 5 values ranked ahead, 3 after, domain [1, 44], true value
        // 29, crack width 2 -> probability 5/36.
        let p = sorting_crack_probability(5, 9, 1.0, 44.0, 29.0, 2.0, 1.0);
        assert!((p - 5.0 / 36.0).abs() < 1e-3, "{p}");
    }

    #[test]
    fn crack_probability_one_when_pinned() {
        // Dense domain: rank determines the value exactly.
        let p = sorting_crack_probability(3, 10, 0.0, 9.0, 3.0, 0.0, 1.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn crack_probability_zero_when_radius_misses() {
        let p = sorting_crack_probability(0, 2, 0.0, 100.0, 90.0, 1.0, 1.0);
        assert!(p < 0.05, "{p}");
    }
}
