//! The combination attack (Section 6.2.2, Figure 10): run several
//! crack models and ask what the hacker learns from their union.
//!
//! Given the per-item crack outcomes of `k` methods, the paper
//! considers three aggregations:
//!
//! * **union** — count an item if *any* method cracks it (the naive
//!   sum over the Venn regions; an over-estimate, because the hacker
//!   cannot tell which of the disagreeing guesses is right),
//! * **expected** — each item cracked by `j` of `k` equally trusted
//!   methods contributes `j/k` (the expected-value argument in the
//!   paper),
//! * **consensus** — count an item only when at least two methods
//!   crack it (and therefore agree, up to the radius).

use serde::{Deserialize, Serialize};

/// Aggregated view of a combination attack over `num_items` items and
/// up to 8 methods.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComboReport {
    /// Number of methods combined.
    pub num_methods: usize,
    /// Number of attacked items (e.g. distinct transformed values).
    pub num_items: usize,
    /// Venn region sizes: `venn[mask]` = number of items cracked by
    /// exactly the method subset `mask` (bit `i` = method `i`).
    /// `venn[0]` counts items no method cracked.
    pub venn: Vec<usize>,
    /// Union (any-method) crack fraction.
    pub union_risk: f64,
    /// Expected-value crack fraction (`Σ j/k`).
    pub expected_risk: f64,
    /// Consensus (≥ 2 methods) crack fraction.
    pub consensus_risk: f64,
}

/// Builds the combination report from per-method crack indicators:
/// `cracked[m][i]` says whether method `m` cracked item `i`.
///
/// # Panics
/// Panics if no methods are given, more than 8 methods are given
/// (Venn masks are dense), or the indicator vectors disagree in
/// length.
pub fn combine_cracks(cracked: &[Vec<bool>]) -> ComboReport {
    assert!(!cracked.is_empty(), "need at least one method");
    assert!(cracked.len() <= 8, "at most 8 methods supported");
    let k = cracked.len();
    let n = cracked[0].len();
    assert!(cracked.iter().all(|c| c.len() == n), "all methods must cover the same items");

    let mut venn = vec![0usize; 1 << k];
    for i in 0..n {
        let mut mask = 0usize;
        for (m, c) in cracked.iter().enumerate() {
            if c[i] {
                mask |= 1 << m;
            }
        }
        venn[mask] += 1;
    }

    let frac = |x: f64| if n == 0 { 0.0 } else { x / n as f64 };
    let mut union_cnt = 0usize;
    let mut consensus_cnt = 0usize;
    let mut expected = 0.0f64;
    for (mask, &cnt) in venn.iter().enumerate() {
        let j = mask.count_ones() as usize;
        if j >= 1 {
            union_cnt += cnt;
            expected += cnt as f64 * j as f64 / k as f64;
        }
        if j >= 2 {
            consensus_cnt += cnt;
        }
    }

    ComboReport {
        num_methods: k,
        num_items: n,
        venn,
        union_risk: frac(union_cnt as f64),
        expected_risk: frac(expected),
        consensus_risk: frac(consensus_cnt as f64),
    }
}

/// How the hacker resolves disagreeing guesses from multiple crack
/// models into a single guess per item (the paper's discussion of the
/// combination attack: "one of the three attacks correctly reveals the
/// identity of item a, \[but\] the hacker does not know which").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolveStrategy {
    /// Trust a fixed method (index into the methods array).
    Single(usize),
    /// Average the methods' guesses.
    Average,
    /// The median guess — robust to one wild method.
    Median,
}

/// Resolves per-method guesses (`guesses[m][i]`) into one guess per
/// item under `strategy`.
///
/// # Panics
/// Panics on empty/ragged input or an out-of-range `Single` index.
pub fn resolve_guesses(guesses: &[Vec<f64>], strategy: ResolveStrategy) -> Vec<f64> {
    assert!(!guesses.is_empty(), "need at least one method");
    let n = guesses[0].len();
    assert!(guesses.iter().all(|g| g.len() == n), "ragged guesses");
    match strategy {
        ResolveStrategy::Single(m) => {
            assert!(m < guesses.len(), "method index out of range");
            guesses[m].clone()
        }
        ResolveStrategy::Average => (0..n)
            .map(|i| guesses.iter().map(|g| g[i]).sum::<f64>() / guesses.len() as f64)
            .collect(),
        ResolveStrategy::Median => (0..n)
            .map(|i| {
                let mut vs: Vec<f64> = guesses.iter().map(|g| g[i]).collect();
                vs.sort_by(f64::total_cmp);
                let k = vs.len();
                if k % 2 == 1 {
                    vs[k / 2]
                } else {
                    0.5 * (vs[k / 2 - 1] + vs[k / 2])
                }
            })
            .collect(),
    }
}

impl ComboReport {
    /// Fraction of items cracked by exactly the method subset `mask`.
    pub fn venn_fraction(&self, mask: usize) -> f64 {
        if self.num_items == 0 {
            0.0
        } else {
            self.venn[mask] as f64 / self.num_items as f64
        }
    }

    /// Crack fraction of a single method (marginal over its regions).
    pub fn method_risk(&self, method: usize) -> f64 {
        assert!(method < self.num_methods, "method index out of range");
        let bit = 1 << method;
        let cnt: usize = self
            .venn
            .iter()
            .enumerate()
            .filter(|&(mask, _)| mask & bit != 0)
            .map(|(_, &c)| c)
            .sum();
        if self.num_items == 0 {
            0.0
        } else {
            cnt as f64 / self.num_items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn venn_regions_counted() {
        // 6 items, 3 methods:
        // item 0: A only; item 1: A+B; item 2: all three;
        // item 3: none; item 4: B+C; item 5: C only.
        let a = vec![true, true, true, false, false, false];
        let b = vec![false, true, true, false, true, false];
        let c = vec![false, false, true, false, true, true];
        let r = combine_cracks(&[a, b, c]);
        assert_eq!(r.venn[0b001], 1);
        assert_eq!(r.venn[0b011], 1);
        assert_eq!(r.venn[0b111], 1);
        assert_eq!(r.venn[0b000], 1);
        assert_eq!(r.venn[0b110], 1);
        assert_eq!(r.venn[0b100], 1);
        assert!((r.union_risk - 5.0 / 6.0).abs() < 1e-12);
        assert!((r.consensus_risk - 3.0 / 6.0).abs() < 1e-12);
        // expected: (1 + 2 + 3 + 0 + 2 + 1)/3 / 6 = 3/6 * ... = 0.5
        assert!((r.expected_risk - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_match() {
        let a = vec![true, true, false];
        let b = vec![false, true, true];
        let r = combine_cracks(&[a, b]);
        assert!((r.method_risk(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.method_risk(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_method_degenerates() {
        let a = vec![true, false, true, true];
        let r = combine_cracks(&[a]);
        assert!((r.union_risk - 0.75).abs() < 1e-12);
        assert!((r.expected_risk - 0.75).abs() < 1e-12);
        assert_eq!(r.consensus_risk, 0.0);
    }

    #[test]
    fn empty_items() {
        let r = combine_cracks(&[vec![], vec![]]);
        assert_eq!(r.num_items, 0);
        assert_eq!(r.union_risk, 0.0);
        assert_eq!(r.expected_risk, 0.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_rejected() {
        let _ = combine_cracks(&[vec![true], vec![true, false]]);
    }

    #[test]
    fn resolve_strategies() {
        let guesses = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![100.0, 30.0]];
        assert_eq!(resolve_guesses(&guesses, ResolveStrategy::Single(1)), vec![3.0, 20.0]);
        let avg = resolve_guesses(&guesses, ResolveStrategy::Average);
        assert!((avg[0] - 104.0 / 3.0).abs() < 1e-12);
        assert!((avg[1] - 20.0).abs() < 1e-12);
        // Median shrugs off the wild 100.0.
        assert_eq!(resolve_guesses(&guesses, ResolveStrategy::Median), vec![3.0, 20.0]);
    }

    #[test]
    fn median_of_even_count() {
        let guesses = vec![vec![1.0], vec![3.0]];
        assert_eq!(resolve_guesses(&guesses, ResolveStrategy::Median), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_index_checked() {
        let _ = resolve_guesses(&[vec![1.0]], ResolveStrategy::Single(3));
    }
}
