//! Quantile-matching attack — the "samples of similar data" prior of
//! Section 3.3, modeled end to end.
//!
//! The hacker owns a sample drawn from a distribution similar to the
//! original data (the paper's example: a rival company's records). A
//! globally monotone transformation preserves quantiles, so the hacker
//! matches each transformed value's empirical quantile (computed over
//! the full transformed column, multiplicities included) to the same
//! quantile of his reference sample. This subsumes the sorting attack
//! (a uniform reference sample) and is the strongest distribution-only
//! attacker in this crate.

use serde::{Deserialize, Serialize};

/// A fitted quantile-matching attack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantileAttack {
    /// All transformed values the hacker observed, sorted (with
    /// multiplicities — quantiles are tuple-weighted).
    transformed_sorted: Vec<f64>,
    /// The hacker's reference sample, sorted.
    sample_sorted: Vec<f64>,
}

/// Builds a quantile-matching attack.
///
/// ```
/// use ppdt_attack::quantile_attack;
///
/// // The hacker's sample IS the original marginal: a monotone
/// // transform is then undone exactly.
/// let original: Vec<f64> = (0..50).map(f64::from).collect();
/// let transformed: Vec<f64> = original.iter().map(|x| x.exp2()).collect();
/// let atk = quantile_attack(&transformed, &original);
/// assert!((atk.guess(2f64.powi(30)) - 30.0).abs() < 1e-9);
/// ```
///
/// * `transformed_column` — the full attribute column of `D'`
///   (multiplicities matter: frequent values pull quantiles),
/// * `reference_sample` — the hacker's similar-data sample in the
///   *original* domain.
///
/// # Panics
/// Panics if either input is empty.
pub fn quantile_attack(transformed_column: &[f64], reference_sample: &[f64]) -> QuantileAttack {
    assert!(!transformed_column.is_empty(), "need transformed values");
    assert!(!reference_sample.is_empty(), "need a reference sample");
    let mut transformed_sorted = transformed_column.to_vec();
    transformed_sorted.sort_by(f64::total_cmp);
    let mut sample_sorted = reference_sample.to_vec();
    sample_sorted.sort_by(f64::total_cmp);
    QuantileAttack { transformed_sorted, sample_sorted }
}

impl QuantileAttack {
    /// The hacker's guess for transformed value `v_prime`: the
    /// reference sample's value at the same empirical quantile
    /// (linearly interpolated).
    pub fn guess(&self, v_prime: f64) -> f64 {
        let n = self.transformed_sorted.len();
        // Mid-rank of v' among the transformed values.
        let lo = self.transformed_sorted.partition_point(|&v| v < v_prime);
        let hi = self.transformed_sorted.partition_point(|&v| v <= v_prime);
        let rank = 0.5 * (lo + hi.max(lo + 1) - 1) as f64;
        let q = if n > 1 { rank / (n - 1) as f64 } else { 0.5 };

        let m = self.sample_sorted.len();
        if m == 1 {
            return self.sample_sorted[0];
        }
        let pos = q.clamp(0.0, 1.0) * (m - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= m {
            self.sample_sorted[m - 1]
        } else {
            self.sample_sorted[i] * (1.0 - frac) + self.sample_sorted[i + 1] * frac
        }
    }

    /// [`guess`](QuantileAttack::guess) over a whole column, fanned
    /// out over scoped worker threads for large inputs — bit-identical
    /// to the serial map (each guess only reads the fitted state).
    pub fn guess_all(&self, v_primes: &[f64]) -> Vec<f64> {
        crate::par::par_map_f64(v_primes, |v| self.guess(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_sample_recovers_monotone_transform() {
        // Hacker's sample IS the original data: a globally monotone
        // transform is then fully invertible by quantile matching.
        let original: Vec<f64> = (0..100).map(f64::from).collect();
        let transformed: Vec<f64> = original.iter().map(|x| (x + 3.0).ln() * 7.0).collect();
        let atk = quantile_attack(&transformed, &original);
        for (&x, &y) in original.iter().zip(&transformed) {
            assert!((atk.guess(y) - x).abs() < 1e-9, "{x} -> {}", atk.guess(y));
        }
    }

    #[test]
    fn multiplicities_shift_quantiles() {
        // 1 appears 9 times, 100 once: the quantile of 100's image
        // must be at the top.
        let mut orig = vec![1.0; 9];
        orig.push(100.0);
        let transformed: Vec<f64> = orig.iter().map(|x| x * 2.0).collect();
        let atk = quantile_attack(&transformed, &orig);
        assert!((atk.guess(200.0) - 100.0).abs() < 1e-9);
        assert!(atk.guess(2.0) < 50.0);
    }

    #[test]
    fn permutation_pieces_defeat_quantile_matching_locally() {
        // Within a permuted (monochromatic) region, quantile order no
        // longer matches original order, so guesses are wrong there.
        let original = [10.0, 11.0, 12.0, 13.0];
        // A permutation: original order scrambled in transformed space.
        let transformed = [5.0, 2.0, 9.0, 1.0];
        let atk = quantile_attack(&transformed, &original);
        // transformed 1.0 (original 13) maps to the sample minimum 10.
        assert!((atk.guess(1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_sample_biases_guesses() {
        let original: Vec<f64> = (0..50).map(f64::from).collect();
        let transformed: Vec<f64> = original.iter().map(|x| x * 3.0).collect();
        // Sample only covers the lower half of the domain.
        let sample: Vec<f64> = (0..25).map(f64::from).collect();
        let atk = quantile_attack(&transformed, &sample);
        assert!(atk.guess(147.0) <= 24.0); // true value 49
    }

    #[test]
    fn single_element_inputs() {
        let atk = quantile_attack(&[5.0], &[42.0]);
        assert_eq!(atk.guess(5.0), 42.0);
        assert_eq!(atk.guess(1_000.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "reference sample")]
    fn empty_sample_rejected() {
        let _ = quantile_attack(&[1.0], &[]);
    }
}
