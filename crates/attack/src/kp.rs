//! Knowledge points (Definition 4) and hacker profiles.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A knowledge point `(ν, ν')`: the hacker believes the transformed
/// value `ν'` corresponds to the original value `ν`.
///
/// The point is *good* if `|ν − f⁻¹(ν')| ≤ ρ` and *bad* if the error
/// exceeds `5ρ` (Section 6.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KnowledgePoint {
    /// The transformed value `ν'` the hacker observed in `D'`.
    pub transformed: f64,
    /// The original value `ν` the hacker believes it corresponds to.
    pub guessed: f64,
}

/// How much prior knowledge the hacker has (Section 6.1's taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HackerProfile {
    /// No prior knowledge.
    Ignorant,
    /// 2 good knowledge points.
    Knowledgeable,
    /// 4 good knowledge points.
    Expert,
    /// 8 good knowledge points (used by the Section 6.4 output-privacy
    /// experiment).
    Insider,
    /// Custom counts of good and bad knowledge points.
    Custom {
        /// Number of good points.
        good: usize,
        /// Number of bad points.
        bad: usize,
    },
}

impl HackerProfile {
    /// `(good, bad)` knowledge-point counts.
    pub fn kp_counts(self) -> (usize, usize) {
        match self {
            HackerProfile::Ignorant => (0, 0),
            HackerProfile::Knowledgeable => (2, 0),
            HackerProfile::Expert => (4, 0),
            HackerProfile::Insider => (8, 0),
            HackerProfile::Custom { good, bad } => (good, bad),
        }
    }

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            HackerProfile::Ignorant => "ignorant",
            HackerProfile::Knowledgeable => "knowledgeable",
            HackerProfile::Expert => "expert",
            HackerProfile::Insider => "insider",
            HackerProfile::Custom { .. } => "custom",
        }
    }
}

/// Generates knowledge points for one attribute.
///
/// * `transformed_domain` — the distinct transformed values of the
///   attribute in `D'` (what the hacker can see),
/// * `truth` — the custodian-side ground truth `f⁻¹` (used only to
///   *place* the points; a good point's guess is the truth plus
///   uniform noise within `ρ`, a bad point's guess is off by a
///   uniform amount in `(5ρ, 15ρ]`, matching Definition 4 and the
///   bad-KP notion of Section 6.1),
/// * `rho` — the crack radius.
///
/// Locations (`ν'`) are drawn uniformly without replacement; if more
/// points are requested than distinct values exist, the count is
/// capped.
pub fn generate_kps<R: Rng + ?Sized>(
    rng: &mut R,
    transformed_domain: &[f64],
    truth: impl Fn(f64) -> f64,
    rho: f64,
    good: usize,
    bad: usize,
) -> Vec<KnowledgePoint> {
    assert!(rho >= 0.0, "crack radius must be non-negative");
    let mut locations: Vec<f64> = transformed_domain.to_vec();
    locations.shuffle(rng);
    let total = (good + bad).min(locations.len());
    let mut kps = Vec::with_capacity(total);
    for (i, &v_prime) in locations.iter().take(total).enumerate() {
        let v = truth(v_prime);
        let guessed = if i < good.min(total) {
            v + rng.gen_range(-1.0..1.0) * rho
        } else {
            let off = rng.gen_range(5.0 * rho..15.0 * rho).max(f64::MIN_POSITIVE);
            if rng.gen_bool(0.5) {
                v + off + rho * 1e-9
            } else {
                v - off - rho * 1e-9
            }
        };
        kps.push(KnowledgePoint { transformed: v_prime, guessed });
    }
    kps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profiles_have_paper_counts() {
        assert_eq!(HackerProfile::Ignorant.kp_counts(), (0, 0));
        assert_eq!(HackerProfile::Knowledgeable.kp_counts(), (2, 0));
        assert_eq!(HackerProfile::Expert.kp_counts(), (4, 0));
        assert_eq!(HackerProfile::Insider.kp_counts(), (8, 0));
        assert_eq!(HackerProfile::Custom { good: 3, bad: 1 }.kp_counts(), (3, 1));
    }

    #[test]
    fn good_points_are_good_and_bad_points_bad() {
        let mut rng = StdRng::seed_from_u64(1);
        let domain: Vec<f64> = (0..100).map(|i| i as f64 * 2.0).collect();
        let truth = |v: f64| v / 2.0; // f(x) = 2x
        let rho = 1.5;
        let kps = generate_kps(&mut rng, &domain, truth, rho, 5, 5);
        assert_eq!(kps.len(), 10);
        for (i, kp) in kps.iter().enumerate() {
            let err = (kp.guessed - truth(kp.transformed)).abs();
            if i < 5 {
                assert!(err <= rho, "good KP {i} err {err}");
            } else {
                assert!(err > 5.0 * rho, "bad KP {i} err {err}");
            }
        }
    }

    #[test]
    fn locations_are_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let domain: Vec<f64> = (0..50).map(f64::from).collect();
        let kps = generate_kps(&mut rng, &domain, |v| v, 1.0, 8, 0);
        let mut seen: Vec<f64> = kps.iter().map(|k| k.transformed).collect();
        seen.sort_by(f64::total_cmp);
        assert!(seen.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn request_capped_at_domain_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let domain = [1.0, 2.0, 3.0];
        let kps = generate_kps(&mut rng, &domain, |v| v, 1.0, 10, 10);
        assert_eq!(kps.len(), 3);
    }

    #[test]
    fn zero_rho_good_points_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let domain: Vec<f64> = (0..10).map(f64::from).collect();
        let kps = generate_kps(&mut rng, &domain, |v| v * 3.0, 0.0, 4, 0);
        for kp in kps {
            assert_eq!(kp.guessed, kp.transformed * 3.0);
        }
    }
}
