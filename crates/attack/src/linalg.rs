//! Minimal dense linear algebra for the spectral attack: symmetric
//! matrices, covariance, and a cyclic Jacobi eigensolver. Matrices
//! here are tiny (one row/column per *attribute*, ≤ dozens), so the
//! O(n³)-per-sweep Jacobi method is more than fast enough and needs no
//! external dependency.

/// A dense symmetric matrix stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of size `n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix { n, data: vec![0.0; n * n] }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer is not `n*n` long or not symmetric (up to
    /// 1e-9 absolute).
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer size");
        for i in 0..n {
            for j in 0..i {
                assert!(
                    (data[i * n + j] - data[j * n + i]).abs() < 1e-9,
                    "matrix not symmetric at ({i},{j})"
                );
            }
        }
        SymMatrix { n, data }
    }

    /// Dimension.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element assignment (mirrored to keep symmetry).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }
}

/// Covariance matrix of the given columns (population covariance; all
/// columns must have equal, non-zero length).
pub fn covariance(columns: &[Vec<f64>]) -> (Vec<f64>, SymMatrix) {
    let m = columns.len();
    assert!(m > 0, "need at least one column");
    let n = columns[0].len();
    assert!(n > 0, "need at least one row");
    assert!(columns.iter().all(|c| c.len() == n), "ragged columns");

    let means: Vec<f64> = columns.iter().map(|c| c.iter().sum::<f64>() / n as f64).collect();
    let mut cov = SymMatrix::zeros(m);
    for i in 0..m {
        for j in i..m {
            let s: f64 = columns[i]
                .iter()
                .zip(&columns[j])
                .map(|(&x, &y)| (x - means[i]) * (y - means[j]))
                .sum();
            cov.set(i, j, s / n as f64);
        }
    }
    (means, cov)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method. Returns `(eigenvalues, eigenvectors)` sorted by descending
/// eigenvalue; `eigenvectors[k]` is the unit eigenvector of
/// `eigenvalues[k]`.
pub fn eigen_symmetric(a: &SymMatrix) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.size();
    let mut m = a.clone();
    // Eigenvector accumulator: starts as identity.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                // tan of the rotation angle, the numerically stable way.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update the matrix: G^T M G with Givens rotation G(p,q).
                for k in 0..n {
                    if k != p && k != q {
                        let akp = m.get(k, p);
                        let akq = m.get(k, q);
                        m.set(k, p, c * akp - s * akq);
                        m.set(k, q, s * akp + c * akq);
                    }
                }
                m.set(p, p, app - t * apq);
                m.set(q, q, aqq + t * apq);
                m.set(p, q, 0.0);

                // Accumulate eigenvectors (columns of the product of
                // rotations; we store them as rows of `v` transposed —
                // v[k] collects coordinate k of every eigenvector, so
                // rotate the rows the same way).
                for vk in v.iter_mut() {
                    let vp = vk[p];
                    let vq = vk[q];
                    vk[p] = c * vp - s * vq;
                    vk[q] = s * vp + c * vq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let evs: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&a, &b| evs[b].total_cmp(&evs[a]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| evs[i]).collect();
    let eigenvectors: Vec<Vec<f64>> =
        order.iter().map(|&col| (0..n).map(|row| v[row][col]).collect()).collect();
    (eigenvalues, eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let mut a = SymMatrix::zeros(3);
        a.set(0, 0, 3.0);
        a.set(1, 1, 1.0);
        a.set(2, 2, 2.0);
        let (vals, vecs) = eigen_symmetric(&a);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 (vector (1,1)/sqrt2) and 1.
        let a = SymMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = eigen_symmetric(&a);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        let v0 = &vecs[0];
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v0[0] - v0[1]).abs() < 1e-9, "same sign components");
    }

    #[test]
    fn eigenvectors_reconstruct_matrix() {
        // A = sum_k lambda_k v_k v_k^T for a random-ish symmetric A.
        let a = SymMatrix::from_rows(3, vec![4.0, 1.0, -2.0, 1.0, 3.0, 0.5, -2.0, 0.5, 5.0]);
        let (vals, vecs) = eigen_symmetric(&a);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += vals[k] * vecs[k][i] * vecs[k][j];
                }
                assert!((s - a.get(i, j)).abs() < 1e-8, "({i},{j})");
            }
        }
        // Orthonormality.
        for k in 0..3 {
            for l in 0..3 {
                let dot: f64 = (0..3).map(|i| vecs[k][i] * vecs[l][i]).sum();
                let expect = if k == l { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn covariance_basics() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]];
        let (means, cov) = covariance(&cols);
        assert_eq!(means, vec![2.0, 4.0]);
        assert!((cov.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 4.0 / 3.0).abs() < 1e-12, "perfectly correlated");
        assert!((cov.get(1, 1) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_rejected() {
        let _ = SymMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
