//! Scoped-thread fan-out for the attack hot loops.
//!
//! Per-value guessing (`CrackModel::guess_all`,
//! `QuantileAttack::guess_all`, `SortingAttack::guess_all`) and the
//! spectral reconstruction passes are embarrassingly parallel: every
//! output element is a pure function of read-only fitted state. The
//! fan-out pattern mirrors `encode_dataset_parallel` — contiguous
//! input chunks map onto disjoint `chunks_mut` output slices — so the
//! result is trivially bit-identical to the serial loop: the same
//! float operations run in the same order per element; only which OS
//! thread runs them changes.

/// Below this many elements the per-thread spawn cost exceeds the map
/// itself and the helpers run serial regardless of available cores.
pub(crate) const PAR_MIN_ITEMS: usize = 2_048;

/// Maps `f` over `xs` with scoped worker threads, bit-identical to
/// `xs.iter().map(|&x| f(x)).collect()`. The thread count comes from
/// [`ppdt_obs::threads`] (the `PPDT_THREADS` override, then hardware
/// parallelism); small inputs stay serial.
pub(crate) fn par_map_f64<F>(xs: &[f64], f: F) -> Vec<f64>
where
    F: Fn(f64) -> f64 + Sync,
{
    let n = xs.len();
    let threads = ppdt_obs::threads(None).min(n).max(1);
    if threads == 1 || n < PAR_MIN_ITEMS {
        return xs.iter().map(|&x| f(x)).collect();
    }
    let mut out = vec![0.0f64; n];
    let chunk_len = n.div_ceil(threads);
    let result = crossbeam::thread::scope(|scope| {
        for (src, dst) in xs.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            let f = &f;
            scope.spawn(move |_| {
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = f(*s);
                }
            });
        }
    });
    if let Err(payload) = result {
        // The guess functions are panicking APIs; surface a worker's
        // panic payload unchanged on the caller thread.
        std::panic::resume_unwind(payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_above_and_below_the_gate() {
        for n in [0usize, 1, 7, PAR_MIN_ITEMS + 31] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
            let serial: Vec<f64> = xs.iter().map(|&x| x.mul_add(2.0, 1.0)).collect();
            let parallel = par_map_f64(&xs, |x| x.mul_add(2.0, 1.0));
            assert_eq!(serial, parallel, "n = {n}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let xs = vec![1.0; PAR_MIN_ITEMS + 1];
        let r = std::panic::catch_unwind(|| {
            par_map_f64(&xs, |_| panic!("guess exploded"));
        });
        assert!(r.is_err());
    }
}
