//! Curve-fitting attacks (Definition 5): fit a crack function `g`
//! through the hacker's knowledge points.
//!
//! The paper evaluates three fitting methods: (i) a least-squares
//! regression line, (ii) a polyline connecting the points, and (iii)
//! a cubic spline. All three are implemented from scratch (the paper
//! used MATLAB's fitting toolbox; the mathematics is identical).

use serde::{Deserialize, Serialize};

use crate::kp::KnowledgePoint;

/// The curve-fitting method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitMethod {
    /// Least-squares regression line.
    LinearRegression,
    /// Piecewise-linear interpolation through the points, extrapolated
    /// with the end segments' slopes.
    Polyline,
    /// Natural cubic spline through the points, extrapolated linearly
    /// with the end derivatives. Falls back to [`FitMethod::Polyline`]
    /// behaviour with fewer than 3 points.
    Spline,
}

impl FitMethod {
    /// All three methods, in the paper's order.
    pub const ALL: [FitMethod; 3] =
        [FitMethod::LinearRegression, FitMethod::Spline, FitMethod::Polyline];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            FitMethod::LinearRegression => "linear-regression",
            FitMethod::Polyline => "polyline",
            FitMethod::Spline => "spline",
        }
    }
}

/// A fitted crack function `g : δ'(A) → δ(A)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CrackModel {
    /// `g(x) = a·x + b`.
    Line {
        /// Slope.
        a: f64,
        /// Intercept.
        b: f64,
    },
    /// Piecewise-linear through `points` (sorted by x).
    Polyline {
        /// Interpolation nodes sorted by transformed value.
        points: Vec<(f64, f64)>,
    },
    /// Natural cubic spline through the nodes.
    Spline {
        /// Node x coordinates (strictly increasing).
        xs: Vec<f64>,
        /// Node y coordinates.
        ys: Vec<f64>,
        /// Second derivatives at the nodes (natural: 0 at both ends).
        m: Vec<f64>,
    },
}

impl CrackModel {
    /// Evaluates the hacker's guess for transformed value `x`.
    pub fn guess(&self, x: f64) -> f64 {
        match self {
            CrackModel::Line { a, b } => a * x + b,
            CrackModel::Polyline { points } => eval_polyline(points, x),
            CrackModel::Spline { xs, ys, m } => eval_spline(xs, ys, m, x),
        }
    }

    /// [`guess`](CrackModel::guess) over a whole column, fanned out
    /// over scoped worker threads for large inputs. Bit-identical to
    /// mapping `guess` serially — each guess is a pure function of the
    /// fitted model (see `PPDT_THREADS` in `ppdt_obs::threads`).
    pub fn guess_all(&self, xs: &[f64]) -> Vec<f64> {
        crate::par::par_map_f64(xs, |x| self.guess(x))
    }
}

/// Fits a crack function through the knowledge points.
///
/// ```
/// use ppdt_attack::{fit_crack, FitMethod, KnowledgePoint};
///
/// // Two knowledge points suffice for a regression-line attack.
/// let kps = [
///     KnowledgePoint { transformed: 0.0, guessed: 10.0 },
///     KnowledgePoint { transformed: 5.0, guessed: 35.0 },
/// ];
/// let g = fit_crack(FitMethod::LinearRegression, &kps);
/// assert_eq!(g.guess(2.0), 20.0);
/// ```
///
/// Points with duplicate transformed values are collapsed (mean of the
/// guesses) before fitting — interpolation needs strictly increasing
/// abscissae.
///
/// # Panics
/// Panics if `kps` is empty — a curve-fitting attack needs at least
/// one point (the ignorant hacker synthesizes anchor points first; see
/// `ppdt-risk`).
pub fn fit_crack(method: FitMethod, kps: &[KnowledgePoint]) -> CrackModel {
    assert!(!kps.is_empty(), "curve fitting needs at least one knowledge point");
    let _t = ppdt_obs::phase("attack");
    let pts: Vec<(f64, f64)> = kps.iter().map(|k| (k.transformed, k.guessed)).collect();
    // Stable ascending order over x (the shared `ppdt_data` helper's
    // index tie-break preserves input order on duplicates, which
    // matters below: duplicate-x guesses are summed in input order and
    // float addition is order-sensitive).
    let mut order = Vec::new();
    ppdt_data::sorted_order_by_value(&pts, |p| p.0, &mut order)
        .expect("knowledge point count fits u32");
    // Collapse duplicate x.
    let mut merged: Vec<(f64, f64, usize)> = Vec::with_capacity(pts.len());
    for (x, y) in order.iter().map(|&i| pts[i as usize]) {
        match merged.last_mut() {
            Some((mx, my, n)) if *mx == x => {
                *my += y;
                *n += 1;
            }
            _ => merged.push((x, y, 1)),
        }
    }
    let pts: Vec<(f64, f64)> = merged.into_iter().map(|(x, y, n)| (x, y / n as f64)).collect();

    match method {
        FitMethod::LinearRegression => fit_line(&pts),
        FitMethod::Polyline => CrackModel::Polyline { points: pts },
        FitMethod::Spline => fit_spline(&pts),
    }
}

fn fit_line(pts: &[(f64, f64)]) -> CrackModel {
    let n = pts.len() as f64;
    if pts.len() == 1 {
        return CrackModel::Line { a: 0.0, b: pts[0].1 };
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::MIN_POSITIVE * 16.0 {
        return CrackModel::Line { a: 0.0, b: sy / n };
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    CrackModel::Line { a, b }
}

fn fit_spline(pts: &[(f64, f64)]) -> CrackModel {
    if pts.len() < 3 {
        return CrackModel::Polyline { points: pts.to_vec() };
    }
    let n = pts.len();
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();

    // Natural cubic spline: solve the tridiagonal system for the
    // second derivatives m[1..n-1]; m[0] = m[n-1] = 0.
    let mut a = vec![0.0; n]; // sub-diagonal
    let mut b = vec![0.0; n]; // diagonal
    let mut c = vec![0.0; n]; // super-diagonal
    let mut d = vec![0.0; n]; // rhs
    for i in 1..n - 1 {
        let h0 = xs[i] - xs[i - 1];
        let h1 = xs[i + 1] - xs[i];
        a[i] = h0;
        b[i] = 2.0 * (h0 + h1);
        c[i] = h1;
        d[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
    }
    // Thomas algorithm on rows 1..n-1 (natural boundary rows excluded).
    let mut m = vec![0.0; n];
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    for i in 1..n - 1 {
        let denom = b[i] - a[i] * if i > 1 { cp[i - 1] } else { 0.0 };
        cp[i] = c[i] / denom;
        dp[i] = (d[i] - a[i] * if i > 1 { dp[i - 1] } else { 0.0 }) / denom;
    }
    for i in (1..n - 1).rev() {
        m[i] = dp[i] - cp[i] * m[i + 1];
    }
    CrackModel::Spline { xs, ys, m }
}

fn eval_polyline(points: &[(f64, f64)], x: f64) -> f64 {
    match points.len() {
        0 => 0.0,
        1 => points[0].1,
        _ => {
            let n = points.len();
            // Segment index: clamp to the end segments for extrapolation.
            let i = points.partition_point(|&(px, _)| px <= x).clamp(1, n - 1);
            let (x0, y0) = points[i - 1];
            let (x1, y1) = points[i];
            let t = (x - x0) / (x1 - x0);
            y0 + t * (y1 - y0)
        }
    }
}

fn eval_spline(xs: &[f64], ys: &[f64], m: &[f64], x: f64) -> f64 {
    let n = xs.len();
    if x <= xs[0] {
        // Linear extrapolation with the end derivative.
        let h = xs[1] - xs[0];
        let d0 = (ys[1] - ys[0]) / h - h * (2.0 * m[0] + m[1]) / 6.0;
        return ys[0] + d0 * (x - xs[0]);
    }
    if x >= xs[n - 1] {
        let h = xs[n - 1] - xs[n - 2];
        let d1 = (ys[n - 1] - ys[n - 2]) / h + h * (2.0 * m[n - 1] + m[n - 2]) / 6.0;
        return ys[n - 1] + d1 * (x - xs[n - 1]);
    }
    let i = xs.partition_point(|&px| px <= x).clamp(1, n - 1);
    let h = xs[i] - xs[i - 1];
    let t0 = (xs[i] - x) / h;
    let t1 = (x - xs[i - 1]) / h;
    m[i - 1] * (t0 * t0 * t0) * h * h / 6.0
        + m[i] * (t1 * t1 * t1) * h * h / 6.0
        + (ys[i - 1] - m[i - 1] * h * h / 6.0) * t0
        + (ys[i] - m[i] * h * h / 6.0) * t1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kp(x: f64, y: f64) -> KnowledgePoint {
        KnowledgePoint { transformed: x, guessed: y }
    }

    #[test]
    fn regression_recovers_exact_line() {
        let kps = [kp(0.0, 1.0), kp(1.0, 3.0), kp(2.0, 5.0)];
        let g = fit_crack(FitMethod::LinearRegression, &kps);
        assert!((g.guess(10.0) - 21.0).abs() < 1e-9);
        match g {
            CrackModel::Line { a, b } => {
                assert!((a - 2.0).abs() < 1e-12);
                assert!((b - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected a line"),
        }
    }

    #[test]
    fn regression_least_squares_on_noisy_points() {
        // Points symmetric about y = x: regression must balance them.
        let kps = [kp(0.0, 1.0), kp(1.0, 0.0), kp(2.0, 3.0), kp(3.0, 2.0)];
        let g = fit_crack(FitMethod::LinearRegression, &kps);
        // Least squares for this configuration: slope 0.6, intercept 0.6.
        assert!((g.guess(0.0) - 0.6).abs() < 1e-9, "{}", g.guess(0.0));
        assert!((g.guess(1.0) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn polyline_interpolates_and_extrapolates() {
        let kps = [kp(0.0, 0.0), kp(2.0, 4.0), kp(4.0, 0.0)];
        let g = fit_crack(FitMethod::Polyline, &kps);
        assert_eq!(g.guess(1.0), 2.0);
        assert_eq!(g.guess(3.0), 2.0);
        assert_eq!(g.guess(2.0), 4.0);
        // Extrapolation continues the end segments.
        assert_eq!(g.guess(-1.0), -2.0);
        assert_eq!(g.guess(5.0), -2.0);
    }

    #[test]
    fn spline_interpolates_nodes_exactly() {
        let kps = [kp(0.0, 0.0), kp(1.0, 2.0), kp(2.0, 1.0), kp(3.0, 3.0)];
        let g = fit_crack(FitMethod::Spline, &kps);
        for (x, y) in [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)] {
            assert!((g.guess(x) - y).abs() < 1e-9, "node ({x}, {y}): {}", g.guess(x));
        }
    }

    #[test]
    fn spline_is_smooth_between_nodes() {
        // On points sampled from a line, the natural spline IS the line.
        let kps: Vec<KnowledgePoint> = (0..5).map(|i| kp(i as f64, 2.0 * i as f64 + 1.0)).collect();
        let g = fit_crack(FitMethod::Spline, &kps);
        for x in [0.5, 1.7, 3.3, -1.0, 6.0] {
            assert!((g.guess(x) - (2.0 * x + 1.0)).abs() < 1e-9, "{x}: {}", g.guess(x));
        }
    }

    #[test]
    fn spline_with_two_points_degrades_to_polyline() {
        let kps = [kp(0.0, 0.0), kp(2.0, 4.0)];
        let g = fit_crack(FitMethod::Spline, &kps);
        assert_eq!(g.guess(1.0), 2.0);
    }

    #[test]
    fn single_point_gives_constant() {
        let kps = [kp(5.0, 7.0)];
        for m in FitMethod::ALL {
            let g = fit_crack(m, &kps);
            assert_eq!(g.guess(0.0), 7.0, "{m:?}");
            assert_eq!(g.guess(100.0), 7.0, "{m:?}");
        }
    }

    #[test]
    fn duplicate_abscissae_collapsed() {
        let kps = [kp(1.0, 2.0), kp(1.0, 4.0), kp(3.0, 6.0)];
        let g = fit_crack(FitMethod::Polyline, &kps);
        assert_eq!(g.guess(1.0), 3.0); // mean of 2 and 4
        assert_eq!(g.guess(2.0), 4.5);
    }

    #[test]
    #[should_panic(expected = "at least one knowledge point")]
    fn empty_kps_rejected() {
        let _ = fit_crack(FitMethod::Polyline, &[]);
    }

    #[test]
    fn guess_all_matches_serial_guesses() {
        let kps = [kp(0.0, 1.0), kp(1.0, 3.0), kp(2.0, 2.0), kp(4.0, 8.0)];
        // Large enough to cross the parallel gate when cores allow.
        let xs: Vec<f64> = (0..5_000).map(|i| i as f64 * 0.01 - 5.0).collect();
        for m in FitMethod::ALL {
            let g = fit_crack(m, &kps);
            let serial: Vec<f64> = xs.iter().map(|&x| g.guess(x)).collect();
            assert_eq!(g.guess_all(&xs), serial, "{m:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_polyline_hits_all_nodes(raw in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..12)) {
            let mut pts = raw;
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            pts.dedup_by(|a, b| a.0 == b.0);
            prop_assume!(pts.len() >= 2);
            let kps: Vec<KnowledgePoint> = pts.iter().map(|&(x, y)| kp(x, y)).collect();
            let g = fit_crack(FitMethod::Polyline, &kps);
            for &(x, y) in &pts {
                prop_assert!((g.guess(x) - y).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_spline_hits_all_nodes(raw in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..12)) {
            let mut pts = raw;
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-3);
            prop_assume!(pts.len() >= 3);
            let kps: Vec<KnowledgePoint> = pts.iter().map(|&(x, y)| kp(x, y)).collect();
            let g = fit_crack(FitMethod::Spline, &kps);
            for &(x, y) in &pts {
                prop_assert!((g.guess(x) - y).abs() < 1e-5, "node ({}, {}) -> {}", x, y, g.guess(x));
            }
        }

        #[test]
        fn prop_regression_minimizes_residuals_vs_shifts(
            raw in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..10),
            da in -0.5f64..0.5, db in -5.0f64..5.0,
        ) {
            let kps: Vec<KnowledgePoint> = raw.iter().map(|&(x, y)| kp(x, y)).collect();
            let g = fit_crack(FitMethod::LinearRegression, &kps);
            if let CrackModel::Line { a, b } = g {
                let sse = |a: f64, b: f64| -> f64 {
                    kps.iter().map(|k| {
                        let e = a * k.transformed + b - k.guessed;
                        e * e
                    }).sum()
                };
                prop_assert!(sse(a, b) <= sse(a + da, b + db) + 1e-6);
            }
        }
    }
}
