//! Domain disclosure risk (Definition 1): one randomized trial.

use rand::Rng;

use ppdt_attack::{fit_crack, generate_kps, FitMethod, HackerProfile, KnowledgePoint};
use ppdt_data::{AttrId, Dataset};
use ppdt_error::PpdtError;
use ppdt_transform::{EncodeConfig, Encoder, PiecewiseTransform};

use crate::crack::{is_crack, rho_for_attr};

/// One domain-disclosure attack scenario.
#[derive(Clone, Copy, Debug)]
pub struct DomainScenario {
    /// The hacker's prior knowledge.
    pub profile: HackerProfile,
    /// The curve-fitting method.
    pub method: FitMethod,
    /// Crack radius as a fraction of the dynamic-range width (the
    /// paper uses 0.01, 0.02 and 0.05).
    pub rho_frac: f64,
    /// How far off the ignorant hacker's guessed dynamic range may be,
    /// as a fraction of the true width. An ignorant hacker (0 KPs)
    /// still runs curve fitting by anchoring the observed transformed
    /// extremes to a *guessed* original range; the guess errs by
    /// `±U(0, uncertainty)·width` on each end. (The paper does not
    /// spell out its ignorant-hacker construction; this models "knows
    /// the rough scale of the domain, nothing else". See DESIGN.md.)
    pub ignorant_range_uncertainty: f64,
}

impl DomainScenario {
    /// The paper's default reporting configuration: polyline fitting
    /// at ρ = 2% of the range width.
    pub fn polyline(profile: HackerProfile) -> Self {
        DomainScenario {
            profile,
            method: FitMethod::Polyline,
            rho_frac: 0.02,
            ignorant_range_uncertainty: 0.5,
        }
    }
}

/// Builds the hacker's knowledge points for a scenario, synthesizing
/// range anchors for the ignorant hacker.
pub fn scenario_kps<R: Rng + ?Sized>(
    rng: &mut R,
    scenario: &DomainScenario,
    transformed_domain: &[f64],
    tr: &PiecewiseTransform,
    rho: f64,
    true_min: f64,
    true_max: f64,
) -> Vec<KnowledgePoint> {
    let (good, bad) = scenario.profile.kp_counts();
    if good + bad > 0 {
        // A decode failure poisons that knowledge point with NaN (the
        // hacker gains nothing from it) instead of aborting the trial.
        generate_kps(
            rng,
            transformed_domain,
            |y| tr.decode_snapped(y).unwrap_or(f64::NAN),
            rho,
            good,
            bad,
        )
    } else {
        // Ignorant hacker: anchor the observed transformed extremes to
        // a guessed original range (assuming a monotone mapping).
        let width = (true_max - true_min).max(1.0);
        let u = scenario.ignorant_range_uncertainty;
        let lo_guess = true_min + rng.gen_range(-u..=u) * width;
        let hi_guess = true_max + rng.gen_range(-u..=u) * width;
        let (t_lo, t_hi) = (
            transformed_domain.iter().copied().fold(f64::INFINITY, f64::min),
            transformed_domain.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        vec![
            KnowledgePoint { transformed: t_lo, guessed: lo_guess.min(hi_guess) },
            KnowledgePoint { transformed: t_hi, guessed: lo_guess.max(hi_guess) },
        ]
    }
}

/// One randomized domain-disclosure trial for attribute `a`:
/// draw a fresh piecewise transform, give the hacker the transformed
/// active domain and the scenario's knowledge points, fit the crack
/// function, and return the crack fraction over distinct transformed
/// values.
///
/// # Example
/// ```
/// use ppdt_attack::HackerProfile;
/// use ppdt_risk::{domain_risk_trial, try_run_trials, DomainScenario};
/// use ppdt_data::AttrId;
/// use ppdt_transform::EncodeConfig;
///
/// let d = ppdt_data::gen::figure1();
/// let scenario = DomainScenario::polyline(HackerProfile::Expert);
/// // Median over independent trials, as the paper reports (§6.2).
/// let stats = try_run_trials(11, 7, |rng| {
///     domain_risk_trial(rng, &d, AttrId(0), &EncodeConfig::default(), &scenario)
/// })
/// .unwrap();
/// assert!((0.0..=1.0).contains(&stats.median));
/// ```
pub fn domain_risk_trial<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    encode_config: &EncodeConfig,
    scenario: &DomainScenario,
) -> Result<f64, PpdtError> {
    let tr = Encoder::new(*encode_config).encode_attribute(rng, d, a)?;
    let orig_domain = &tr.orig_domain;
    if orig_domain.is_empty() {
        return Err(PpdtError::EmptyInput { what: format!("attribute {a} has no values") });
    }
    let transformed_domain: Vec<f64> =
        orig_domain.iter().map(|&x| tr.encode(x)).collect::<Result<_, _>>()?;
    let rho = rho_for_attr(d, a, scenario.rho_frac);
    let (true_min, true_max) = (orig_domain[0], orig_domain[orig_domain.len() - 1]);

    let kps = scenario_kps(rng, scenario, &transformed_domain, &tr, rho, true_min, true_max);
    let g = fit_crack(scenario.method, &kps);

    let mut cracks = 0usize;
    for (&x, &y) in orig_domain.iter().zip(&transformed_domain) {
        if is_crack(g.guess(y), x, rho) {
            cracks += 1;
        }
    }
    Ok(cracks as f64 / orig_domain.len() as f64)
}

/// One randomized worst-case sorting-attack trial for attribute `a`:
/// the hacker knows the true minimum and maximum (Figure 11's
/// assumption) and rank-maps the sorted transformed values onto
/// consecutive values from the minimum (the paper's attack).
pub fn sorting_risk_trial<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    encode_config: &EncodeConfig,
    rho_frac: f64,
    granularity: f64,
) -> Result<f64, PpdtError> {
    sorting_risk_trial_with(
        rng,
        d,
        a,
        encode_config,
        rho_frac,
        granularity,
        ppdt_attack::SortingMapping::Consecutive,
    )
}

/// [`sorting_risk_trial`] with an explicit rank-mapping variant —
/// [`ppdt_attack::SortingMapping::Proportional`] models a stronger
/// attacker than the paper's (see `EXPERIMENTS.md`).
pub fn sorting_risk_trial_with<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    encode_config: &EncodeConfig,
    rho_frac: f64,
    granularity: f64,
    mapping: ppdt_attack::SortingMapping,
) -> Result<f64, PpdtError> {
    let tr = Encoder::new(*encode_config).encode_attribute(rng, d, a)?;
    let orig_domain = &tr.orig_domain;
    if orig_domain.is_empty() {
        return Err(PpdtError::EmptyInput { what: format!("attribute {a} has no values") });
    }
    let transformed_domain: Vec<f64> =
        orig_domain.iter().map(|&x| tr.encode(x)).collect::<Result<_, _>>()?;
    let rho = rho_for_attr(d, a, rho_frac);
    let (true_min, true_max) = (orig_domain[0], orig_domain[orig_domain.len() - 1]);

    let atk = ppdt_attack::sorting_attack_with(
        &transformed_domain,
        true_min,
        true_max,
        granularity,
        mapping,
    );
    let mut cracks = 0usize;
    for (&x, &y) in orig_domain.iter().zip(&transformed_domain) {
        if is_crack(atk.guess(y), x, rho) {
            cracks += 1;
        }
    }
    Ok(cracks as f64 / orig_domain.len() as f64)
}

/// One randomized quantile-matching-attack trial for attribute `a`
/// (the "rival company sample" prior of Section 3.3): the hacker's
/// reference sample is `sample_frac` of the original column, each
/// value perturbed by uniform noise of `sample_noise_frac` of the
/// range (0 = a perfect marginal). Returns the crack fraction over
/// distinct transformed values.
pub fn quantile_risk_trial<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    encode_config: &EncodeConfig,
    rho_frac: f64,
    sample_frac: f64,
    sample_noise_frac: f64,
) -> Result<f64, PpdtError> {
    if !((0.0..=1.0).contains(&sample_frac) && sample_frac > 0.0) {
        return Err(PpdtError::InvalidConfig {
            param: "sample_frac".into(),
            detail: format!("must be in (0, 1], got {sample_frac}"),
        });
    }
    let tr = Encoder::new(*encode_config).encode_attribute(rng, d, a)?;
    let orig_domain = &tr.orig_domain;
    if orig_domain.is_empty() {
        return Err(PpdtError::EmptyInput { what: format!("attribute {a} has no values") });
    }
    let column = d.column(a);
    let transformed_column: Vec<f64> =
        column.iter().map(|&x| tr.encode(x)).collect::<Result<_, _>>()?;
    let rho = rho_for_attr(d, a, rho_frac);
    let width = orig_domain[orig_domain.len() - 1] - orig_domain[0];

    // The hacker's sample: a random subset of the original column with
    // optional per-value noise (a rival's data is similar, not equal).
    let n_sample = ((column.len() as f64 * sample_frac) as usize).max(2);
    let sample: Vec<f64> = (0..n_sample)
        .map(|_| {
            let v = column[rng.gen_range(0..column.len())];
            v + rng.gen_range(-1.0..1.0) * sample_noise_frac * width
        })
        .collect();

    let atk = ppdt_attack::quantile_attack(&transformed_column, &sample);
    let mut cracks = 0usize;
    for &x in orig_domain {
        let y = tr.encode(x)?;
        if is_crack(atk.guess(y), x, rho) {
            cracks += 1;
        }
    }
    Ok(cracks as f64 / orig_domain.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::{covertype_like, CovertypeConfig};
    use ppdt_transform::BreakpointStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_covertype() -> Dataset {
        let mut rng = StdRng::seed_from_u64(77);
        covertype_like(&mut rng, &CovertypeConfig { num_rows: 12_000, ..Default::default() })
    }

    #[test]
    fn breakpoints_reduce_domain_risk() {
        // The Figure 9 headline: ChooseBP and ChooseMaxMP beat the
        // no-breakpoint baseline against an expert hacker.
        let d = small_covertype();
        let a = AttrId(0); // attr 1: 74% monochromatic values
        let scenario = DomainScenario::polyline(HackerProfile::Expert);
        // The paper's Figure 9 setting: sqrt(log) transformation.
        let avg = |strategy: BreakpointStrategy, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = EncodeConfig {
                strategy,
                family: ppdt_transform::FnFamily::SqrtLog,
                ..Default::default()
            };
            let n = 15;
            (0..n)
                .map(|_| domain_risk_trial(&mut rng, &d, a, &cfg, &scenario).unwrap())
                .sum::<f64>()
                / n as f64
        };
        let baseline = avg(BreakpointStrategy::None, 1);
        let bp = avg(BreakpointStrategy::ChooseBP { w: 20 }, 2);
        let maxmp = avg(BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 }, 3);
        assert!(
            baseline > bp && bp > maxmp,
            "baseline {baseline:.3} > ChooseBP {bp:.3} > ChooseMaxMP {maxmp:.3} expected"
        );
    }

    #[test]
    fn more_knowledge_more_risk() {
        let d = small_covertype();
        let a = AttrId(5);
        let cfg = EncodeConfig::default();
        let avg = |profile: HackerProfile, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sc = DomainScenario::polyline(profile);
            let n = 9;
            (0..n).map(|_| domain_risk_trial(&mut rng, &d, a, &cfg, &sc).unwrap()).sum::<f64>()
                / n as f64
        };
        let ignorant = avg(HackerProfile::Ignorant, 4);
        let expert = avg(HackerProfile::Expert, 5);
        assert!(expert >= ignorant, "expert {expert:.3} should be at least ignorant {ignorant:.3}");
        // The paper reports < 5% for the ignorant hacker.
        assert!(ignorant < 0.10, "ignorant risk {ignorant:.3}");
    }

    #[test]
    fn sorting_attack_dense_attr_fully_cracked_without_breakpoints() {
        // Attribute 2 of the covertype spec: no discontinuities, no
        // monochromatic values — 100% worst-case sorting crack when no
        // permutation pieces protect it.
        let d = small_covertype();
        let a = AttrId(1);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = EncodeConfig { strategy: BreakpointStrategy::None, ..Default::default() };
        let risk = sorting_risk_trial(&mut rng, &d, a, &cfg, 0.0, 1.0).unwrap();
        assert!(risk > 0.99, "dense attribute should crack fully, got {risk}");
    }

    #[test]
    fn sorting_attack_blunted_by_mono_pieces() {
        let d = small_covertype();
        let a = AttrId(0); // 74% mono values + 22 discontinuities
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = EncodeConfig::default();
        let risk = sorting_risk_trial(&mut rng, &d, a, &cfg, 0.02, 1.0).unwrap();
        assert!(risk < 0.6, "mono-rich attribute should resist sorting, got {risk}");
    }

    #[test]
    fn quantile_attack_strong_on_dense_attrs_weak_on_mono_rich() {
        let d = small_covertype();
        let cfg = EncodeConfig::default();
        let avg = |a: usize, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 7;
            (0..n)
                .map(|_| {
                    quantile_risk_trial(&mut rng, &d, AttrId(a), &cfg, 0.02, 0.1, 0.0).unwrap()
                })
                .sum::<f64>()
                / n as f64
        };
        // Attr 2 (dense, 0% mono): quantile matching ~ sorting, high.
        let dense = avg(1, 10);
        // Attr 1 (74% mono, wide pieces): permutations scramble ranks.
        let mono_rich = avg(0, 11);
        assert!(dense > 0.8, "dense attr quantile risk {dense:.3}");
        assert!(mono_rich < dense, "{mono_rich:.3} vs {dense:.3}");
    }

    #[test]
    fn noisier_samples_crack_less() {
        let d = small_covertype();
        let cfg = EncodeConfig::default();
        let avg = |noise: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 7;
            (0..n)
                .map(|_| {
                    quantile_risk_trial(&mut rng, &d, AttrId(1), &cfg, 0.02, 0.1, noise).unwrap()
                })
                .sum::<f64>()
                / n as f64
        };
        let clean = avg(0.0, 12);
        let noisy = avg(0.25, 13);
        assert!(noisy < clean, "{noisy:.3} vs {clean:.3}");
    }

    #[test]
    fn bad_kps_hurt_the_hacker() {
        let d = small_covertype();
        let a = AttrId(9);
        let cfg = EncodeConfig::default();
        let avg = |profile: HackerProfile, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sc = DomainScenario { profile, ..DomainScenario::polyline(profile) };
            // Enough trials that the per-trial spread (~±0.05) averages
            // out and the comparison below is about the means.
            let n = 25;
            (0..n).map(|_| domain_risk_trial(&mut rng, &d, a, &cfg, &sc).unwrap()).sum::<f64>()
                / n as f64
        };
        let four_good = avg(HackerProfile::Expert, 8);
        let with_bad = avg(HackerProfile::Custom { good: 4, bad: 1 }, 9);
        assert!(
            with_bad <= four_good + 0.02,
            "bad KP should not help: {with_bad:.3} vs {four_good:.3}"
        );
    }
}
