//! Pattern (output-privacy) disclosure risk (Definition 3, Section
//! 6.4): can the hacker recover the paths of the mined tree `T'`?

use rand::Rng;

use ppdt_attack::{fit_crack, CrackModel};
use ppdt_data::Dataset;
use ppdt_error::PpdtError;
use ppdt_transform::{EncodeConfig, Encoder};
use ppdt_tree::{TreeBuilder, TreeParams};

use crate::crack::{is_crack, rho_for_attr};
use crate::domain::{scenario_kps, DomainScenario};

/// Outcome of a pattern-disclosure trial, including the path-length
/// histogram the paper's Section 6.4 table reports.
#[derive(Clone, Debug, Default)]
pub struct PatternReport {
    /// `(path length, number of paths, number of cracked paths)` rows,
    /// ascending by length.
    pub by_length: Vec<(usize, usize, usize)>,
    /// Total number of root-to-leaf paths in `T'`.
    pub total_paths: usize,
    /// Total cracked paths.
    pub total_cracks: usize,
}

impl PatternReport {
    /// The pattern disclosure risk: cracked / total paths.
    pub fn risk(&self) -> f64 {
        if self.total_paths == 0 {
            0.0
        } else {
            self.total_cracks as f64 / self.total_paths as f64
        }
    }

    /// Paths and cracks for one exact length.
    pub fn at_length(&self, len: usize) -> (usize, usize) {
        self.by_length
            .iter()
            .find(|&&(l, _, _)| l == len)
            .map(|&(_, p, c)| (p, c))
            .unwrap_or((0, 0))
    }
}

/// One randomized pattern-disclosure trial: encode `d`, mine `T'` on
/// the transformed data, give the hacker per-attribute crack functions
/// (fitted from the scenario's knowledge points), and count the paths
/// whose thresholds *all* crack (Definition 3's conjunction).
///
/// # Example
/// ```
/// use ppdt_attack::HackerProfile;
/// use ppdt_risk::{pattern_risk_trial, DomainScenario};
/// use ppdt_transform::EncodeConfig;
/// use ppdt_tree::TreeParams;
/// use rand::SeedableRng;
///
/// let d = ppdt_data::gen::figure1();
/// let scenario = DomainScenario::polyline(HackerProfile::Expert);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let report =
///     pattern_risk_trial(&mut rng, &d, &EncodeConfig::default(), TreeParams::default(), &scenario)
///         .unwrap();
/// assert!(report.total_paths > 0);
/// assert!((0.0..=1.0).contains(&report.risk()));
/// ```
pub fn pattern_risk_trial<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    encode_config: &EncodeConfig,
    tree_params: TreeParams,
    scenario: &DomainScenario,
) -> Result<PatternReport, PpdtError> {
    let (key, d2) = Encoder::new(*encode_config).encode(rng, d)?.into_parts();
    let t_prime = TreeBuilder::new(tree_params).fit(&d2);

    // One crack function and radius per attribute.
    let mut models: Vec<(CrackModel, f64)> = Vec::with_capacity(d.num_attrs());
    for a in d.schema().attrs() {
        let tr = key.try_transform(a)?;
        let orig_domain = &tr.orig_domain;
        let transformed_domain: Vec<f64> =
            orig_domain.iter().map(|&x| tr.encode(x)).collect::<Result<_, _>>()?;
        let rho = rho_for_attr(d, a, scenario.rho_frac);
        let (lo, hi) = (orig_domain[0], orig_domain[orig_domain.len() - 1]);
        let kps = scenario_kps(rng, scenario, &transformed_domain, tr, rho, lo, hi);
        models.push((fit_crack(scenario.method, &kps), rho));
    }

    let mut report = PatternReport::default();
    let mut hist: std::collections::BTreeMap<usize, (usize, usize)> = Default::default();
    for path in t_prime.paths() {
        let mut cracked = true;
        for c in &path.conditions {
            let (model, rho) = &models[c.attr.index()];
            let truth = key.try_transform(c.attr)?.decode_snapped(c.threshold)?;
            if !is_crack(model.guess(c.threshold), truth, *rho) {
                cracked = false;
                break;
            }
        }
        let e = hist.entry(path.len()).or_insert((0, 0));
        e.0 += 1;
        if cracked {
            e.1 += 1;
            report.total_cracks += 1;
        }
        report.total_paths += 1;
    }
    report.by_length = hist.into_iter().map(|(l, (p, c))| (l, p, c)).collect();
    Ok(report)
}

/// Convenience: pattern risk trial restricted to specific attributes
/// is not needed — the tree picks its own attributes. This helper
/// instead lets callers cap tree size through `TreeParams`.
pub fn default_tree_params_for_pattern() -> TreeParams {
    TreeParams { min_samples_leaf: 5, ..Default::default() }
}

/// A whole-model view of output privacy: the hacker decodes *all* of
/// `T'`'s thresholds with his fitted crack functions and uses the
/// resulting tree as a classifier. Returns the fraction of original
/// tuples on which the hacker's reconstruction agrees with the true
/// tree — 1.0 would mean the mined model leaked outright; values near
/// the majority-class rate mean the hacker learned little beyond the
/// label prior.
pub fn tree_reconstruction_trial<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    encode_config: &EncodeConfig,
    tree_params: TreeParams,
    scenario: &DomainScenario,
) -> Result<f64, PpdtError> {
    let (key, d2) = Encoder::new(*encode_config).encode(rng, d)?.into_parts();
    let t_prime = TreeBuilder::new(tree_params).fit(&d2);
    let truth = key.decode_tree(&t_prime, tree_params.threshold_policy, d)?;

    // The hacker's per-attribute crack functions.
    let mut models: Vec<CrackModel> = Vec::with_capacity(d.num_attrs());
    for a in d.schema().attrs() {
        let tr = key.try_transform(a)?;
        let orig_domain = &tr.orig_domain;
        let transformed_domain: Vec<f64> =
            orig_domain.iter().map(|&x| tr.encode(x)).collect::<Result<_, _>>()?;
        let rho = rho_for_attr(d, a, scenario.rho_frac);
        let (lo, hi) = (orig_domain[0], orig_domain[orig_domain.len() - 1]);
        let kps = scenario_kps(rng, scenario, &transformed_domain, tr, rho, lo, hi);
        models.push(fit_crack(scenario.method, &kps));
    }
    // The hacker's reconstruction: every threshold passed through his
    // guess function (he does not know global directions, so no child
    // swapping — exactly what he can do).
    let guessed = t_prime.map_thresholds(|a, y| models[a.index()].guess(y));

    let mut agree = 0usize;
    let mut values = vec![0.0; d.num_attrs()];
    for row in 0..d.num_rows() {
        for a in d.schema().attrs() {
            values[a.index()] = d.value(row, a);
        }
        if guessed.predict(&values) == truth.predict(&values) {
            agree += 1;
        }
    }
    Ok(agree as f64 / d.num_rows().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_attack::{FitMethod, HackerProfile};
    use ppdt_data::gen::{covertype_like, CovertypeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenario(profile: HackerProfile, rho_frac: f64) -> DomainScenario {
        DomainScenario {
            profile,
            method: FitMethod::Polyline,
            rho_frac,
            ignorant_range_uncertainty: 0.5,
        }
    }

    #[test]
    fn pattern_risk_is_small_for_insider_hackers() {
        // Section 6.4: even an insider hacker (8 KPs, 5% radius)
        // recovers almost no paths — the paper reports 1 cracked path
        // out of 1707. Trials are bimodal (deep paths reuse the same
        // attributes, so an occasional lucky transform cracks a batch),
        // hence we assert over several trials: most crack nothing, and
        // even the worst stays far below the per-domain risk.
        let mut rng = StdRng::seed_from_u64(99);
        let d =
            covertype_like(&mut rng, &CovertypeConfig { num_rows: 9_000, ..Default::default() });
        let mut risks = Vec::new();
        let mut long_paths = 0usize;
        for _ in 0..5 {
            let report = pattern_risk_trial(
                &mut rng,
                &d,
                &EncodeConfig::default(),
                default_tree_params_for_pattern(),
                &scenario(HackerProfile::Insider, 0.05),
            )
            .unwrap();
            assert!(report.total_paths > 20, "tree too small: {}", report.total_paths);
            long_paths += report
                .by_length
                .iter()
                .filter(|&&(len, _, _)| len >= 8)
                .map(|&(_, p, _)| p)
                .sum::<usize>();
            risks.push(report.risk());
        }
        risks.sort_by(f64::total_cmp);
        assert!(risks[2] < 0.02, "median trial risk {:.4} too high ({risks:?})", risks[2]);
        assert!(*risks.last().unwrap() < 0.12, "worst trial risk too high ({risks:?})");
        assert!(long_paths > 0, "expected some long paths in the trees");
    }

    #[test]
    fn reconstruction_agreement_between_prior_and_leak() {
        // The hacker's decoded model must be better than chance (his
        // crack functions track the trend) but far from the true model
        // (else output privacy failed).
        let mut rng = StdRng::seed_from_u64(101);
        let d =
            covertype_like(&mut rng, &CovertypeConfig { num_rows: 6_000, ..Default::default() });
        let majority =
            *d.class_counts().iter().max().expect("classes") as f64 / d.num_rows() as f64;
        // Per-trial agreement has a wide spread (roughly 0.2–0.7
        // depending on how well the crack functions land), so take the
        // median of enough trials for it to stabilise.
        let mut agreements = Vec::new();
        for _ in 0..7 {
            agreements.push(
                tree_reconstruction_trial(
                    &mut rng,
                    &d,
                    &EncodeConfig::default(),
                    default_tree_params_for_pattern(),
                    &scenario(HackerProfile::Expert, 0.05),
                )
                .unwrap(),
            );
        }
        agreements.sort_by(f64::total_cmp);
        let median = agreements[3];
        assert!(median < 0.98, "reconstruction too good: {median:.3}");
        assert!(
            median > majority - 0.05,
            "reconstruction should at least track the prior: {median:.3} vs {majority:.3}"
        );
    }

    #[test]
    fn histogram_sums_to_totals() {
        let mut rng = StdRng::seed_from_u64(100);
        let d =
            covertype_like(&mut rng, &CovertypeConfig { num_rows: 4_000, ..Default::default() });
        let report = pattern_risk_trial(
            &mut rng,
            &d,
            &EncodeConfig::default(),
            default_tree_params_for_pattern(),
            &scenario(HackerProfile::Expert, 0.05),
        )
        .unwrap();
        let paths: usize = report.by_length.iter().map(|&(_, p, _)| p).sum();
        let cracks: usize = report.by_length.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(paths, report.total_paths);
        assert_eq!(cracks, report.total_cracks);
        assert_eq!(report.at_length(usize::MAX), (0, 0));
    }
}
