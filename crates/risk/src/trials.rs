//! The randomized-trial harness: the paper reports "the median of 500
//! random trials" for every disclosure figure.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summary statistics over a set of randomized trials.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialStats {
    /// Number of trials run.
    pub trials: usize,
    /// Median of the trial values (the paper's reporting statistic).
    pub median: f64,
    /// Mean.
    pub mean: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Runs `trials` independent randomized trials of `f` in parallel and
/// summarizes them. Per-trial seeds derive deterministically from
/// `base_seed`, so results are reproducible regardless of thread
/// scheduling.
///
/// ```
/// use ppdt_risk::run_trials;
/// use rand::Rng;
///
/// let stats = run_trials(101, 7, |rng| rng.gen_range(0.0..1.0));
/// assert!(stats.min <= stats.median && stats.median <= stats.max);
/// assert_eq!(stats.trials, 101);
/// // Same seed, same numbers.
/// assert_eq!(stats, run_trials(101, 7, |rng| rng.gen_range(0.0..1.0)));
/// ```
///
/// # Panics
/// Panics if `trials` is zero.
pub fn run_trials<F>(trials: usize, base_seed: u64, f: F) -> TrialStats
where
    F: Fn(&mut StdRng) -> f64 + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let _t = ppdt_obs::phase("risk");
    ppdt_obs::add(ppdt_obs::Counter::TrialsRun, trials as u64);
    let threads = ppdt_obs::threads(None).min(trials);
    let mut values = vec![0.0f64; trials];
    // Per-trial seeds drawn from a master generator so different base
    // seeds give fully disjoint randomness (consecutive integers would
    // share most trial seeds between runs).
    let seeds: Vec<u64> = {
        use rand::Rng;
        let mut master = StdRng::seed_from_u64(base_seed);
        (0..trials).map(|_| master.gen()).collect()
    };

    let result = crossbeam::thread::scope(|scope| {
        let chunk_len = trials.div_ceil(threads);
        for (t, chunk) in values.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            let seeds = &seeds;
            let chunk_start = t * chunk_len;
            scope.spawn(move |_| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    let mut rng = StdRng::seed_from_u64(seeds[chunk_start + i]);
                    *v = f(&mut rng);
                }
            });
        }
    });
    if let Err(payload) = result {
        // A panicking trial closure panics `run_trials` too, with the
        // original payload rather than a generic join message.
        std::panic::resume_unwind(payload);
    }

    summarize(&mut values)
}

/// Fallible variant of [`run_trials`] for trial closures that return
/// `Result` (every risk trial in this crate does). Trials still run in
/// parallel with deterministic per-trial seeds; the first error (by
/// trial index, not completion order) aborts the summary.
///
/// ```
/// use ppdt_risk::try_run_trials;
/// use rand::Rng;
///
/// let stats = try_run_trials(11, 7, |rng| Ok(rng.gen_range(0.0..1.0))).unwrap();
/// assert_eq!(stats.trials, 11);
/// ```
///
/// # Panics
/// Panics if `trials` is zero.
pub fn try_run_trials<F>(
    trials: usize,
    base_seed: u64,
    f: F,
) -> Result<TrialStats, ppdt_error::PpdtError>
where
    F: Fn(&mut StdRng) -> Result<f64, ppdt_error::PpdtError> + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let _t = ppdt_obs::phase("risk");
    ppdt_obs::add(ppdt_obs::Counter::TrialsRun, trials as u64);
    let threads = ppdt_obs::threads(None).min(trials);
    let mut results: Vec<Result<f64, ppdt_error::PpdtError>> = vec![Ok(0.0); trials];
    let seeds: Vec<u64> = {
        use rand::Rng;
        let mut master = StdRng::seed_from_u64(base_seed);
        (0..trials).map(|_| master.gen()).collect()
    };

    let result = crossbeam::thread::scope(|scope| {
        let chunk_len = trials.div_ceil(threads);
        for (t, chunk) in results.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            let seeds = &seeds;
            let chunk_start = t * chunk_len;
            scope.spawn(move |_| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    let mut rng = StdRng::seed_from_u64(seeds[chunk_start + i]);
                    *v = f(&mut rng);
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }

    let mut values = Vec::with_capacity(trials);
    for r in results {
        values.push(r?);
    }
    Ok(summarize(&mut values))
}

fn summarize(values: &mut [f64]) -> TrialStats {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    let q = |p: f64| -> f64 {
        let idx = ((n - 1) as f64 * p).round() as usize;
        values[idx]
    };
    TrialStats {
        trials: n,
        median: q(0.5),
        mean: values.iter().sum::<f64>() / n as f64,
        p10: q(0.1),
        p90: q(0.9),
        min: values[0],
        max: values[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_runs() {
        let f = |rng: &mut StdRng| rng.gen::<f64>();
        let a = run_trials(64, 42, f);
        let b = run_trials(64, 42, f);
        assert_eq!(a, b);
        let c = run_trials(64, 43, f);
        assert_ne!(a.median, c.median);
    }

    #[test]
    fn constant_function_statistics() {
        let s = run_trials(10, 0, |_| 0.25);
        assert_eq!(s.median, 0.25);
        assert_eq!(s.mean, 0.25);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 0.25);
        assert_eq!(s.trials, 10);
    }

    #[test]
    fn median_of_known_sequence() {
        // f returns the trial index via the seeded rng trick is
        // fragile; instead rely on seeds being distinct and check the
        // ordering properties.
        let s = run_trials(101, 7, |rng| rng.gen_range(0.0..1.0));
        assert!(s.min <= s.p10 && s.p10 <= s.median);
        assert!(s.median <= s.p90 && s.p90 <= s.max);
    }

    #[test]
    fn single_trial() {
        let s = run_trials(1, 9, |_| 0.5);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.trials, 1);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = run_trials(0, 0, |_| 0.0);
    }

    #[test]
    fn try_run_trials_matches_run_trials_and_propagates_errors() {
        let f = |rng: &mut StdRng| rng.gen::<f64>();
        let a = run_trials(32, 5, f);
        let b = try_run_trials(32, 5, |rng| Ok(f(rng))).unwrap();
        assert_eq!(a, b, "same seeds, same statistics");

        let err = try_run_trials(8, 5, |rng| {
            let v: f64 = rng.gen();
            if v > 0.0 {
                Err(ppdt_error::PpdtError::internal("boom"))
            } else {
                Ok(v)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }
}
