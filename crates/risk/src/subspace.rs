//! Subspace association disclosure risk (Definition 2).

use std::collections::HashMap;

use rand::Rng;

use ppdt_attack::fit_crack;
use ppdt_data::{AttrId, Dataset};
use ppdt_error::PpdtError;
use ppdt_transform::{EncodeConfig, Encoder};

use crate::crack::{is_crack, rho_for_attr};
use crate::domain::{scenario_kps, DomainScenario};

/// One randomized subspace-association trial over the attribute set
/// `subspace`: encode the dataset, fit one crack function per
/// attribute (same scenario for each), and return the fraction of
/// S-tuples in `D'` where **every** projected value cracks
/// simultaneously.
///
/// The insight this measures (Section 6.3): even when individual
/// domains are at risk, the *conjunction* needed to re-identify a
/// tuple (`Bob, age 45, earning 50K`) is much harder —
/// `risk(A, B) < risk(A) · risk(B)` thanks to per-attribute
/// independence of the transforms plus value-association skew.
///
/// # Example
/// ```
/// use ppdt_attack::HackerProfile;
/// use ppdt_risk::{subspace_risk_trial, try_run_trials, DomainScenario};
/// use ppdt_data::AttrId;
/// use ppdt_transform::EncodeConfig;
///
/// let d = ppdt_data::gen::figure1();
/// let scenario = DomainScenario::polyline(HackerProfile::Expert);
/// // Cracking the (age, salary) pair of a tuple is harder than
/// // cracking either attribute alone.
/// let stats = try_run_trials(11, 7, |rng| {
///     subspace_risk_trial(rng, &d, &[AttrId(0), AttrId(1)], &EncodeConfig::default(), &scenario)
/// })
/// .unwrap();
/// assert!((0.0..=1.0).contains(&stats.median));
/// ```
///
/// # Errors
/// Returns [`PpdtError::InvalidConfig`] if `subspace` is empty or
/// repeats attributes, and propagates any encoding failure.
pub fn subspace_risk_trial<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    subspace: &[AttrId],
    encode_config: &EncodeConfig,
    scenario: &DomainScenario,
) -> Result<f64, PpdtError> {
    subspace_risk_trial_with(rng, d, subspace, encode_config, scenario, false, 1.0)
}

/// Like [`subspace_risk_trial`], but when `include_sorting` is set the
/// hacker additionally runs the worst-case sorting attack (true
/// min/max known) per attribute and a value counts as cracked if
/// *either* attack cracks it — the strongest per-attribute hacker the
/// paper's Figure 12 discussion considers for attributes like #2 where
/// sorting dominates curve fitting.
pub fn subspace_risk_trial_with<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    subspace: &[AttrId],
    encode_config: &EncodeConfig,
    scenario: &DomainScenario,
    include_sorting: bool,
    granularity: f64,
) -> Result<f64, PpdtError> {
    if subspace.is_empty() {
        return Err(PpdtError::InvalidConfig {
            param: "subspace".into(),
            detail: "must name at least one attribute".into(),
        });
    }
    {
        let mut seen = subspace.to_vec();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != subspace.len() {
            return Err(PpdtError::InvalidConfig {
                param: "subspace".into(),
                detail: "repeats attributes".into(),
            });
        }
    }
    if d.num_rows() == 0 {
        return Ok(0.0);
    }

    let (key, d2) = Encoder::new(*encode_config).encode(rng, d)?.into_parts();

    // Per attribute: crack flag for every distinct transformed value.
    let mut crack_flags: Vec<HashMap<u64, bool>> = Vec::with_capacity(subspace.len());
    for &a in subspace {
        let tr = key.try_transform(a)?;
        let orig_domain = &tr.orig_domain;
        let transformed_domain: Vec<f64> =
            orig_domain.iter().map(|&x| tr.encode(x)).collect::<Result<_, _>>()?;
        let rho = rho_for_attr(d, a, scenario.rho_frac);
        let (lo, hi) = (orig_domain[0], orig_domain[orig_domain.len() - 1]);
        let kps = scenario_kps(rng, scenario, &transformed_domain, tr, rho, lo, hi);
        let g = fit_crack(scenario.method, &kps);
        let sorter = include_sorting
            .then(|| ppdt_attack::sorting_attack(&transformed_domain, lo, hi, granularity));
        let mut flags = HashMap::with_capacity(orig_domain.len());
        for (&x, &y) in orig_domain.iter().zip(&transformed_domain) {
            let mut cracked = is_crack(g.guess(y), x, rho);
            if let Some(s) = &sorter {
                cracked = cracked || is_crack(s.guess(y), x, rho);
            }
            flags.insert(y.to_bits(), cracked);
        }
        crack_flags.push(flags);
    }

    // An S-tuple cracks iff all its projections crack.
    let mut cracked = 0usize;
    for row in 0..d2.num_rows() {
        let mut all = true;
        for (&a, flags) in subspace.iter().zip(&crack_flags) {
            // We just encoded d2 ourselves, so every value must be in
            // the active domain — a miss is a bug, not hostile input.
            let flag = flags.get(&d2.value(row, a).to_bits()).ok_or_else(|| {
                PpdtError::internal(format!(
                    "encoded value of attribute {a} in row {row} missing from active domain"
                ))
            })?;
            if !*flag {
                all = false;
                break;
            }
        }
        if all {
            cracked += 1;
        }
    }
    Ok(cracked as f64 / d2.num_rows() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_attack::HackerProfile;
    use ppdt_data::gen::{covertype_like, CovertypeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_covertype() -> Dataset {
        let mut rng = StdRng::seed_from_u64(88);
        covertype_like(&mut rng, &CovertypeConfig { num_rows: 9_000, ..Default::default() })
    }

    #[test]
    fn larger_subspaces_are_safer() {
        // Figure 12's headline: association risk falls sharply as the
        // subspace grows.
        let d = small_covertype();
        let cfg = EncodeConfig::default();
        let scenario = DomainScenario::polyline(HackerProfile::Expert);
        let avg = |attrs: &[usize], seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ids: Vec<AttrId> = attrs.iter().map(|&i| AttrId(i)).collect();
            let n = 7;
            (0..n)
                .map(|_| subspace_risk_trial(&mut rng, &d, &ids, &cfg, &scenario).unwrap())
                .sum::<f64>()
                / n as f64
        };
        let single = avg(&[3], 1);
        let pair = avg(&[3, 6], 2);
        let triple = avg(&[3, 6, 9], 3);
        assert!(
            single >= pair && pair >= triple,
            "risk must fall with subspace size: {single:.3} >= {pair:.3} >= {triple:.3}"
        );
    }

    #[test]
    fn singleton_subspace_close_to_tuple_weighted_domain_risk() {
        // A singleton subspace is domain risk weighted by tuple counts
        // (distinct values occurring more often weigh more) — sanity
        // bound only.
        let d = small_covertype();
        let cfg = EncodeConfig::default();
        let scenario = DomainScenario::polyline(HackerProfile::Expert);
        let mut rng = StdRng::seed_from_u64(4);
        let r = subspace_risk_trial(&mut rng, &d, &[AttrId(0)], &cfg, &scenario).unwrap();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn bad_subspaces_are_typed_usage_errors() {
        let d = small_covertype();
        let cfg = EncodeConfig::default();
        let scenario = DomainScenario::polyline(HackerProfile::Expert);
        let mut rng = StdRng::seed_from_u64(5);
        let dup = subspace_risk_trial(&mut rng, &d, &[AttrId(1), AttrId(1)], &cfg, &scenario)
            .unwrap_err();
        assert_eq!(dup.category().exit_code(), 2, "{dup}");
        let empty = subspace_risk_trial(&mut rng, &d, &[], &cfg, &scenario).unwrap_err();
        assert!(matches!(empty, PpdtError::InvalidConfig { .. }));
    }
}
