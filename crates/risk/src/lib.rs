//! # ppdt-risk
//!
//! Disclosure-risk metrics — the evaluation half of the paper
//! (Definitions 1–3 and every experiment in Section 6):
//!
//! * [`crack`] — the crack predicate and radius handling (`ρ` as a
//!   fraction of the dynamic-range width),
//! * [`domain`] — domain disclosure risk (Definition 1): fraction of
//!   distinct transformed values a crack function recovers within `ρ`,
//! * [`subspace`] — subspace association disclosure risk
//!   (Definition 2): fraction of S-tuples where *every* projected
//!   attribute cracks simultaneously,
//! * [`pattern`] — pattern (output-privacy) disclosure risk
//!   (Definition 3): fraction of root-to-leaf paths of the mined tree
//!   whose thresholds all crack,
//! * [`trials`] — the randomized-trial harness (the paper reports the
//!   median of 500 random trials), parallelized with crossbeam.
//!
//! Single *trials* live here; the experiment drivers that sweep
//! configurations and print the paper's tables live in `ppdt-bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod crack;
pub mod domain;
pub mod pattern;
pub mod subspace;
pub mod trials;

pub use advisor::{advise, AttrAdvice, Verdict};
pub use crack::{is_crack, rho_for_attr};
pub use domain::{
    domain_risk_trial, quantile_risk_trial, sorting_risk_trial, sorting_risk_trial_with,
    DomainScenario,
};
pub use pattern::{pattern_risk_trial, tree_reconstruction_trial, PatternReport};
pub use subspace::{subspace_risk_trial, subspace_risk_trial_with};
pub use trials::{run_trials, try_run_trials, TrialStats};
