//! The crack predicate (Definition 1) and radius conventions.

use ppdt_data::{AttrId, Dataset};

/// True iff a guess cracks the value: `|guess − truth| ≤ ρ`.
#[inline]
pub fn is_crack(guess: f64, truth: f64, rho: f64) -> bool {
    (guess - truth).abs() <= rho
}

/// The crack radius for attribute `a`: `rho_frac` (the paper uses 1%,
/// 2% or 5%) of the attribute's dynamic-range width `max − min`.
///
/// Returns 0 for an empty or constant attribute (a guess must then be
/// exact to crack).
pub fn rho_for_attr(d: &Dataset, a: AttrId, rho_frac: f64) -> f64 {
    assert!(rho_frac >= 0.0, "rho fraction must be non-negative");
    match d.min_max(a) {
        Some((lo, hi)) => rho_frac * (hi - lo),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::figure1;

    #[test]
    fn crack_predicate_is_inclusive() {
        assert!(is_crack(10.0, 12.0, 2.0));
        assert!(!is_crack(10.0, 12.1, 2.0));
        assert!(is_crack(5.0, 5.0, 0.0));
    }

    #[test]
    fn rho_scales_with_range() {
        let d = figure1();
        // age range 17..68 -> width 51.
        assert!((rho_for_attr(&d, AttrId(0), 0.02) - 1.02).abs() < 1e-12);
        assert_eq!(rho_for_attr(&d, AttrId(0), 0.0), 0.0);
    }
}
