//! The safe-release advisor — Section 5.4's "recipe" as a library,
//! sharpened by this repo's extension findings (`EXPERIMENTS.md`
//! X2/X3) into an *analytic crack-estimate model* that tracks the
//! measured worst-case sorting risks closely (see `advisor::tests`):
//!
//! * under the paper's **consecutive** sorting attack a value cracks
//!   only if the accumulated discontinuity drift stays within the
//!   radius `ρ` *and* (for monochromatic values) the permutation
//!   displacement does too:
//!   `est_cons ≈ min(1, ρ/#disc) · ((1−pct_mono) + pct_mono · min(1, 2ρ/span))`;
//! * a **rank-proportional** attacker self-corrects for evenly spread
//!   discontinuities, removing the first factor:
//!   `est_rank ≈ (1−pct_mono) + pct_mono · min(1, 2ρ/span)`.
//!
//! Only monochromatic pieces wider than the radius reduce `est_rank`;
//! discontinuities alone never do — which is exactly finding X2.

use ppdt_data::{AttrId, AttrStats, Dataset};
use serde::{Deserialize, Serialize};

/// The advisor's verdict for one attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Low estimated crack rate under *both* sorting attacks: wide
    /// monochromatic pieces genuinely scramble the order.
    Safe,
    /// Protected against the paper's consecutive sorting attack, or
    /// only moderately exposed — but rank/quantile attackers recover a
    /// substantial share. Release alone only if the domain values are
    /// not themselves the secret.
    Caution,
    /// The domain is largely recoverable by sorting; rely on subspace
    /// association (release only jointly with other attributes) or
    /// withhold.
    Unsafe,
}

/// Advisory report for one attribute.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttrAdvice {
    /// The attribute.
    pub attr: AttrId,
    /// The verdict.
    pub verdict: Verdict,
    /// Fraction of distinct values inside monochromatic pieces.
    pub pct_mono_values: f64,
    /// Mean monochromatic piece span relative to the crack radius.
    pub piece_width_vs_radius: f64,
    /// Estimated worst-case crack fraction under the paper's
    /// consecutive sorting attack.
    pub est_consecutive_crack: f64,
    /// Estimated crack fraction under the stronger rank-proportional
    /// attack (an upper bound; X2).
    pub est_rank_crack: f64,
    /// Human-readable reasoning.
    pub reasoning: String,
}

/// Produces release advice for every attribute of `d` at crack radius
/// `rho_frac` (fraction of the dynamic range) and grid `granularity`.
///
/// ```
/// use ppdt_data::gen::figure1;
/// use ppdt_risk::advise;
///
/// let d = figure1();
/// let advice = advise(&d, 0.02, 1.0);
/// assert_eq!(advice.len(), 2);
/// assert!(advice.iter().all(|a| !a.reasoning.is_empty()));
/// ```
pub fn advise(d: &Dataset, rho_frac: f64, granularity: f64) -> Vec<AttrAdvice> {
    AttrStats::compute_all(d, granularity, 5)
        .into_iter()
        .map(|s| advise_attr(&s, rho_frac, granularity))
        .collect()
}

fn advise_attr(s: &AttrStats, rho_frac: f64, granularity: f64) -> AttrAdvice {
    let width_units = s.range_width.max(1) as f64;
    let rho_units = rho_frac * width_units;
    // Mean piece span in grid units.
    let spacing = width_units / s.num_distinct.max(1) as f64;
    let mean_piece_span = s.avg_mono_piece_len * spacing * granularity;
    let piece_ratio = if rho_units > 0.0 { mean_piece_span / rho_units } else { f64::INFINITY };

    // Within-piece crack probability for a uniform random permutation:
    // roughly the chance the permuted position lands within rho.
    let perm_crack = if piece_ratio > 0.0 { (2.0 / piece_ratio).min(1.0) } else { 1.0 };
    let base = (1.0 - s.pct_mono_values) + s.pct_mono_values * perm_crack;
    // Consecutive attack: everything additionally needs the cumulative
    // discontinuity drift to stay within rho.
    let disc_gate = if s.num_discontinuities == 0 {
        1.0
    } else {
        (rho_units / s.num_discontinuities as f64).min(1.0)
    };
    let est_consecutive_crack = (disc_gate * base).min(1.0);
    let est_rank_crack = base.min(1.0);

    let (verdict, reasoning) = if est_consecutive_crack < 0.25 && est_rank_crack < 0.5 {
        (
            Verdict::Safe,
            format!(
                "monochromatic pieces (~{piece_ratio:.1}x the radius, {:.0}% of values) scramble \
                 the order beyond the crack radius even for rank/quantile attackers \
                 (est. {:.0}% / {:.0}% cracked)",
                100.0 * s.pct_mono_values,
                100.0 * est_consecutive_crack,
                100.0 * est_rank_crack
            ),
        )
    } else if est_consecutive_crack < 0.6 {
        (
            Verdict::Caution,
            format!(
                "discontinuity drift limits the paper's sorting attack to est. {:.0}%, but a \
                 rank-proportional or quantile-matching attacker recovers est. {:.0}% — release \
                 alone only if the domain itself is not the secret",
                100.0 * est_consecutive_crack,
                100.0 * est_rank_crack
            ),
        )
    } else {
        (
            Verdict::Unsafe,
            format!(
                "est. {:.0}% of the domain cracks under worst-case sorting; rely on subspace \
                 association or withhold the attribute",
                100.0 * est_consecutive_crack
            ),
        )
    };

    AttrAdvice {
        attr: s.attr,
        verdict,
        pct_mono_values: s.pct_mono_values,
        piece_width_vs_radius: piece_ratio,
        est_consecutive_crack,
        est_rank_crack,
        reasoning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::{covertype_like, CovertypeConfig};
    use ppdt_data::{ClassId, DatasetBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_track_measured_sorting_risks() {
        // The analytic model vs the measured Figure 11 column (this
        // repo's run at default scale): the estimate should land within
        // ~12 points of the measurement for every attribute.
        let mut rng = StdRng::seed_from_u64(1);
        let d =
            covertype_like(&mut rng, &CovertypeConfig { num_rows: 10_000, ..Default::default() });
        let advice = advise(&d, 0.02, 1.0);
        let measured = [0.57, 1.0, 0.82, 0.06, 0.19, 0.11, 0.17, 0.21, 0.99, 0.11];
        for (a, &m) in advice.iter().zip(&measured) {
            assert!(
                (a.est_consecutive_crack - m).abs() < 0.15,
                "attr {:?}: est {:.2} vs measured {:.2}",
                a.attr,
                a.est_consecutive_crack,
                m
            );
        }
    }

    #[test]
    fn covertype_verdict_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let d =
            covertype_like(&mut rng, &CovertypeConfig { num_rows: 10_000, ..Default::default() });
        let advice = advise(&d, 0.02, 1.0);
        // Dense, mono-free attributes are Unsafe (attrs 2, 3, 9 in the
        // paper's Figure 11 analysis).
        assert_eq!(advice[1].verdict, Verdict::Unsafe);
        assert_eq!(advice[2].verdict, Verdict::Unsafe);
        assert_eq!(advice[8].verdict, Verdict::Unsafe);
        // Discontinuity-protected attributes earn Caution, not Safe —
        // the X2 finding.
        assert_eq!(advice[3].verdict, Verdict::Caution);
        assert_eq!(advice[5].verdict, Verdict::Caution);
        assert_eq!(advice[9].verdict, Verdict::Caution);
        assert!(advice.iter().all(|a| !a.reasoning.is_empty()));
    }

    #[test]
    fn wide_mono_pieces_with_discontinuities_earn_safe() {
        // Construct an attribute that is genuinely safe: 90% of values
        // in mono pieces spanning ~10x the radius, plus heavy
        // discontinuities. Values: 500 distinct, spacing 10 (90%
        // discontinuities), label bands of 100 distinct values.
        let mut b = DatasetBuilder::new(Schema::generated(1, 2));
        for i in 0..500 {
            let label = u16::from((i / 100) % 2 == 1);
            for _ in 0..4 {
                b.push_row(&[(i * 10) as f64], ClassId(label));
            }
        }
        let d = b.build();
        let advice = advise(&d, 0.02, 1.0);
        assert_eq!(advice[0].verdict, Verdict::Safe, "{:?}", advice[0]);
        assert!(advice[0].est_rank_crack < 0.5);
    }

    #[test]
    fn radius_changes_the_verdict() {
        // The same safe attribute stops being safe when the radius
        // grows past its piece span.
        let mut b = DatasetBuilder::new(Schema::generated(1, 2));
        for i in 0..500 {
            let label = u16::from((i / 100) % 2 == 1);
            for _ in 0..4 {
                b.push_row(&[(i * 10) as f64], ClassId(label));
            }
        }
        let d = b.build();
        assert_eq!(advise(&d, 0.02, 1.0)[0].verdict, Verdict::Safe);
        assert_ne!(advise(&d, 0.40, 1.0)[0].verdict, Verdict::Safe);
    }
}
