//! The full custodian loop, over the wire (the ISSUE 4 acceptance
//! test): store a key, encode a dataset through `POST /v1/encode`,
//! mine a tree on the transformed output, decode it through
//! `POST /v1/decode-tree`, and verify `POST /v1/classify` answers
//! match plaintext `ppdt_tree` predictions on every test row.

mod common;

use ppdt_data::csv::{parse_csv, to_csv};
use ppdt_data::gen::census_like;
use ppdt_data::Dataset;
use ppdt_serve::handlers::{
    AuditRequestBody, AuditResponseBody, ClassifyRequest, ClassifyResponse, DecodeTreeRequest,
    DecodeTreeResponse, EncodeRequest, EncodeResponse, ListKeysResponse, StoreKeyRequest,
    StoreKeyResponse,
};
use ppdt_serve::request;
use ppdt_transform::{EncodeConfig, Encoder};
use ppdt_tree::{trees_equal, TreeBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rows_of(d: &Dataset) -> Vec<Vec<f64>> {
    (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect()
}

fn post<T: serde::Serialize, R: serde::Deserialize>(
    srv: &common::TestServer,
    path: &str,
    body: &T,
    want_status: u16,
) -> R {
    let payload = serde_json::to_string(body).expect("serialize request");
    let (status, text) = request(srv.addr, "POST", path, &payload).expect("request succeeds");
    assert_eq!(status, want_status, "POST {path} answered {status}: {text}");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("POST {path} body: {e}\n{text}"))
}

#[test]
fn full_custodian_loop_over_the_wire() {
    let srv = common::start(ppdt_serve::ServerConfig::default(), "loop");

    // The custodian's plaintext relation and key, produced locally.
    let mut rng = StdRng::seed_from_u64(41);
    let d = census_like(&mut rng, 240);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();

    // 1. Store the key; storing it again dedupes to the same id.
    let stored: StoreKeyResponse =
        post(&srv, "/v1/keys", &StoreKeyRequest { key: key.clone() }, 201);
    assert!(stored.created);
    assert_eq!(stored.num_attrs, d.num_attrs());
    let again: StoreKeyResponse = post(&srv, "/v1/keys", &StoreKeyRequest { key }, 200);
    assert!(!again.created);
    assert_eq!(again.key_id, stored.key_id);
    let (status, text) = request(srv.addr, "GET", "/v1/keys", "").expect("list keys");
    assert_eq!(status, 200);
    let listing: ListKeysResponse = serde_json::from_str(&text).expect("listing parses");
    assert!(listing.keys.iter().any(|k| k.key_id == stored.key_id && k.valid));

    // 2. Encode the relation over the wire.
    let enc: EncodeResponse = post(
        &srv,
        "/v1/encode",
        &EncodeRequest { key_id: stored.key_id.clone(), csv: Some(to_csv(&d)), rows: None },
        200,
    );
    assert_eq!(enc.rows_encoded, d.num_rows() as u64);
    let d_prime = parse_csv(&enc.csv.expect("csv came back")).expect("transformed CSV parses");
    assert_eq!(d_prime.num_rows(), d.num_rows());

    // 3. The (untrusted) miner fits a tree on the transformed data.
    let t_prime = TreeBuilder::default().fit(&d_prime);

    // 4. Decode the mined tree through the daemon (data-backed replay).
    let dec: DecodeTreeResponse = post(
        &srv,
        "/v1/decode-tree",
        &DecodeTreeRequest {
            key_id: stored.key_id.clone(),
            tree: t_prime.clone(),
            csv: Some(to_csv(&d)),
        },
        200,
    );
    assert!(dec.replayed);

    // Theorem 2: the decoded tree is the tree mined directly on the
    // plaintext.
    let t_direct = TreeBuilder::default().fit(&d);
    assert!(trees_equal(&dec.tree, &t_direct), "decoded tree must equal the directly-mined tree");

    // 5. Custodian-side inference: /v1/classify answers must match
    //    plaintext predictions for every row.
    let rows = rows_of(&d);
    let cls: ClassifyResponse = post(
        &srv,
        "/v1/classify",
        &ClassifyRequest { key_id: stored.key_id.clone(), tree: t_prime, rows: rows.clone() },
        200,
    );
    assert_eq!(cls.labels.len(), rows.len());
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            cls.labels[i],
            t_direct.predict(row).0,
            "row {i}: classify answer diverged from the plaintext prediction"
        );
    }

    // 6. The stored key audits clean, with and without data.
    let audit: AuditResponseBody = post(
        &srv,
        "/v1/audit",
        &AuditRequestBody { key_id: stored.key_id.clone(), csv: Some(to_csv(&d)) },
        200,
    );
    assert!(audit.passed, "stored key must audit clean: {:?}", audit.report.first_error());

    // 7. Liveness + metrics reflect the traffic.
    let (status, text) = request(srv.addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    assert!(text.contains("\"ok\""));
    let (status, text) = request(srv.addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let v: serde::Value = serde_json::from_str(&text).expect("metrics parses");
    let endpoints = v
        .get("serve")
        .and_then(|s| s.get("endpoints"))
        .and_then(|e| e.as_array())
        .expect("serve.endpoints array");
    let requests_for = |name: &str| -> f64 {
        endpoints
            .iter()
            .find(|e| e.get("endpoint").and_then(|n| n.as_str()) == Some(name))
            .and_then(|e| e.get("requests"))
            .and_then(|r| r.as_f64())
            .unwrap_or(0.0)
    };
    assert!(requests_for("encode") >= 1.0);
    assert!(requests_for("classify") >= 1.0);
    assert!(requests_for("decode_tree") >= 1.0);

    srv.stop();
}

#[test]
fn blind_decode_is_training_equivalent() {
    let srv = common::start(ppdt_serve::ServerConfig::default(), "blind");
    let mut rng = StdRng::seed_from_u64(43);
    let d = census_like(&mut rng, 160);
    // Data-free decoding is exact only without permutation pieces
    // (see `decode_tree_blind`), so use the single-piece baseline.
    let cfg = EncodeConfig::baseline(ppdt_transform::FnFamily::Mixed);
    let (key, d_prime) = Encoder::new(cfg).encode(&mut rng, &d).expect("encode").into_parts();

    let stored: StoreKeyResponse = post(&srv, "/v1/keys", &StoreKeyRequest { key }, 201);
    let t_prime = TreeBuilder::default().fit(&d_prime);
    let dec: DecodeTreeResponse = post(
        &srv,
        "/v1/decode-tree",
        &DecodeTreeRequest { key_id: stored.key_id, tree: t_prime, csv: None },
        200,
    );
    assert!(!dec.replayed, "no data sent, so the blind decode must run");

    // Blind-decoded tree classifies the training data exactly like
    // the directly-mined tree.
    let t_direct = TreeBuilder::default().fit(&d);
    for row in rows_of(&d) {
        assert_eq!(dec.tree.predict(&row), t_direct.predict(&row));
    }
    srv.stop();
}

#[test]
fn keys_persist_across_daemon_restarts() {
    let mut rng = StdRng::seed_from_u64(47);
    let d = census_like(&mut rng, 120);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();

    let dir = std::env::temp_dir().join(format!("ppdt-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First daemon stores the key …
    let store = ppdt_serve::KeyStore::open(dir.clone()).expect("open");
    let server =
        ppdt_serve::Server::bind(ppdt_serve::ServerConfig::default(), store).expect("bind");
    let addr = server.addr();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    let payload = serde_json::to_string(&StoreKeyRequest { key: key.clone() }).expect("serialize");
    let (status, text) = request(addr, "POST", "/v1/keys", &payload).expect("store");
    assert_eq!(status, 201, "{text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("parses");
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("join").expect("run ok");

    // … and a second daemon over the same directory serves it.
    let store = ppdt_serve::KeyStore::open(dir.clone()).expect("reopen");
    let server =
        ppdt_serve::Server::bind(ppdt_serve::ServerConfig::default(), store).expect("bind");
    let addr = server.addr();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    let body = serde_json::to_string(&EncodeRequest {
        key_id: stored.key_id,
        csv: Some(to_csv(&d)),
        rows: None,
    })
    .expect("serialize");
    let (status, text) = request(addr, "POST", "/v1/encode", &body).expect("encode");
    assert_eq!(status, 200, "restarted daemon must serve the persisted key: {text}");
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("join").expect("run ok");
    let _ = std::fs::remove_dir_all(&dir);
}
