//! Keep-alive and pipelining behavior, friendly and hostile: one
//! socket serving many requests, in-order pipelined responses, a
//! slow-loris on the *second* request that must not poison the first
//! answer, idle reaping, and `Connection: close` mid-pipeline.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ppdt_serve::client::raw_probe;
use ppdt_serve::http::Client;
use ppdt_serve::ServerConfig;

/// Statuses of every response on a raw byte stream, in wire order.
fn statuses(text: &str) -> Vec<u16> {
    text.split("HTTP/1.1 ")
        .skip(1)
        .filter_map(|part| part.split_whitespace().next())
        .filter_map(|s| s.parse().ok())
        .collect()
}

#[test]
fn one_socket_serves_many_requests() {
    ppdt_obs::set_enabled(true);
    let srv = common::start(ServerConfig::default(), "reuse");

    let mut client = Client::connect(srv.addr).expect("connect");
    for _ in 0..5 {
        let (status, body) = client.request("GET", "/healthz", "").expect("healthz");
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = client.request("GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let v: serde::Value = serde_json::from_str(&body).expect("metrics parses");
    let reuses = v
        .get("serve")
        .and_then(|s| s.get("keepalive_reuses"))
        .and_then(|x| x.as_f64())
        .expect("keepalive_reuses in /metrics");
    assert!(reuses >= 5.0, "six requests on one socket: got {reuses} reuses");

    srv.stop();
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    ppdt_obs::set_enabled(true);
    let srv =
        common::start(ServerConfig { debug_endpoints: true, ..Default::default() }, "pipeline");

    // Two slow jobs then a fast one, all written before reading a
    // single response byte: answers must still arrive in send order.
    let mut client = Client::connect(srv.addr).expect("connect");
    client.send("POST", "/v1/debug/sleep", "{\"ms\": 150}").expect("send 0");
    client.send("POST", "/v1/debug/sleep", "{\"ms\": 10}").expect("send 1");
    client.send("GET", "/v1/version", "").expect("send 2");
    let (s0, b0) = client.read_response().expect("response 0");
    let (s1, b1) = client.read_response().expect("response 1");
    let (s2, b2) = client.read_response().expect("response 2");
    assert_eq!((s0, s1, s2), (200, 200, 200), "{b0} / {b1} / {b2}");
    assert!(b0.contains("150"), "first answer is the first request's: {b0}");
    assert!(b1.contains("10"), "second answer is the second request's: {b1}");
    assert!(b2.contains("api_schema_version"), "third answer is the version body: {b2}");

    let (_, body) = client.request("GET", "/metrics", "").expect("metrics");
    let v: serde::Value = serde_json::from_str(&body).expect("metrics parses");
    let pipelined = v
        .get("serve")
        .and_then(|s| s.get("pipelined_requests"))
        .and_then(|x| x.as_f64())
        .expect("pipelined_requests in /metrics");
    assert!(pipelined >= 1.0, "the burst overlapped a sleeping worker: got {pipelined}");

    srv.stop();
}

#[test]
fn slow_loris_on_the_second_request_gets_408_without_poisoning_the_first() {
    let cfg = ServerConfig { parse_deadline: Duration::from_millis(700), ..Default::default() };
    let srv = common::start(cfg, "loris2");

    let mut stream = TcpStream::connect(srv.addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    // A complete first request and a *partial* second head, then
    // silence: the daemon must answer the first request normally and
    // cut the stalled second one off with 408.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/encode HTTP/1.1\r\ncontent-le")
        .expect("write");
    stream.flush().expect("flush");

    let started = Instant::now();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read both responses");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the parse deadline bounds the stall, not the io timeout"
    );
    assert_eq!(statuses(&text), vec![200, 408], "{text}");
    let healthz = text.find("\"ok\"").expect("first response intact");
    let timeout = text.find("request_timeout").expect("second answered 408");
    assert!(healthz < timeout, "first response precedes the 408: {text}");

    srv.stop();
}

#[test]
fn idle_keepalive_sockets_are_reaped_at_the_idle_deadline() {
    let cfg = ServerConfig { idle_timeout: Duration::from_millis(300), ..Default::default() };
    let srv = common::start(cfg, "idlereap");

    let mut client = Client::connect(srv.addr).expect("connect");
    let (status, _) = client.request("GET", "/healthz", "").expect("first request");
    assert_eq!(status, 200);

    // Go quiet. The poller owns the idle socket now; past the idle
    // deadline it must close it — without consuming a thread while
    // waiting.
    let mut raw = TcpStream::connect(srv.addr).expect("second socket");
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let started = Instant::now();
    let mut sink = Vec::new();
    raw.read_to_end(&mut sink).expect("EOF when the daemon reaps");
    assert!(sink.is_empty(), "an idle socket gets no bytes, just a close");
    assert!(started.elapsed() >= Duration::from_millis(250), "not reaped before the idle deadline");
    assert!(started.elapsed() < Duration::from_secs(5), "reaped promptly after the idle deadline");

    srv.stop();
}

#[test]
fn connection_close_mid_pipeline_drains_in_order() {
    let srv = common::start(ServerConfig::default(), "closedrain");

    // Three pipelined requests; the second carries `Connection:
    // close`. The daemon answers the first two in order, closes, and
    // never touches the third.
    let text = raw_probe(
        srv.addr,
        b"GET /healthz HTTP/1.1\r\n\r\n\
          GET /v1/version HTTP/1.1\r\nconnection: close\r\n\r\n\
          GET /healthz HTTP/1.1\r\n\r\n",
        Duration::from_secs(10),
    )
    .expect("pipelined burst");
    assert_eq!(statuses(&text), vec![200, 200], "two answers, then close: {text}");
    let first = text.find("\"ok\"").expect("healthz body");
    let second = text.find("api_schema_version").expect("version body");
    assert!(first < second, "in request order: {text}");
    assert!(text.contains("connection: close"), "{text}");

    srv.stop();
}

#[test]
fn keep_alive_zero_disables_reuse() {
    let cfg = ServerConfig { keep_alive_requests: 0, ..Default::default() };
    let srv = common::start(cfg, "nokeepalive");

    let text = raw_probe(
        srv.addr,
        b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n",
        Duration::from_secs(10),
    )
    .expect("pipelined burst");
    assert_eq!(statuses(&text), vec![200], "keep-alive off: one answer then close: {text}");
    assert!(text.contains("connection: close"), "{text}");

    srv.stop();
}
