//! Memory ceiling for streaming encode: a million-row chunked upload
//! must be processed batch-at-a-time, never buffered whole. This test
//! lives in its own file so it gets its own process — `VmHWM` is a
//! process-wide high-water mark, and the daemon threads run in-process.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;

use ppdt_data::csv::to_csv;
use ppdt_data::gen::census_like;
use ppdt_serve::api::{StoreKeyRequest, StoreKeyResponse};
use ppdt_serve::{request, ServerConfig};
use ppdt_transform::{EncodeConfig, Encoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn write_chunk(s: &mut TcpStream, data: &[u8]) {
    write!(s, "{:x}\r\n", data.len()).expect("chunk size");
    s.write_all(data).expect("chunk data");
    s.write_all(b"\r\n").expect("chunk end");
}

#[test]
fn million_row_streaming_encode_stays_under_a_bounded_memory_ceiling() {
    let srv = common::start(ServerConfig::default(), "rss");

    // A small template dataset; the million-row body cycles its rows.
    let mut rng = StdRng::seed_from_u64(0x1233);
    let d = census_like(&mut rng, 512);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let payload = serde_json::to_string(&StoreKeyRequest { key }).expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/keys", &payload).expect("store");
    assert_eq!(status, 201, "{text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("parses");

    let csv = to_csv(&d);
    let (header_line, row_block) = csv.split_once('\n').expect("header then rows");
    let repeats = 1_000_000usize.div_ceil(512);
    let total_rows = repeats * 512;
    let body_bytes = row_block.len() * repeats;

    let baseline = ppdt_obs::peak_rss_bytes();

    let mut stream = TcpStream::connect(srv.addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(600))).expect("timeout");

    // The response streams back while we are still uploading, so a
    // reader thread must drain it or the daemon's writes would fill
    // the TCP buffers and deadlock the upload.
    let mut read_half = stream.try_clone().expect("clone");
    let reader = std::thread::spawn(move || {
        let mut first = [0u8; 64];
        let mut got = 0usize;
        while got < first.len() {
            match read_half.read(&mut first[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) => panic!("reading response head: {e}"),
            }
        }
        let head = String::from_utf8_lossy(&first[..got]).into_owned();
        let mut sink = [0u8; 64 * 1024];
        let mut response_bytes = got;
        loop {
            match read_half.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => response_bytes += n,
                Err(e) => panic!("draining response: {e}"),
            }
        }
        (head, response_bytes)
    });

    stream
        .write_all(
            b"POST /v1/encode HTTP/1.1\r\n\
              transfer-encoding: chunked\r\n\
              connection: close\r\n\r\n",
        )
        .expect("head");
    write_chunk(
        &mut stream,
        format!("{{\"key_id\": \"{}\"}}\n{header_line}\n", stored.key_id).as_bytes(),
    );
    for _ in 0..repeats {
        write_chunk(&mut stream, row_block.as_bytes());
    }
    stream.write_all(b"0\r\n\r\n").expect("final chunk");
    stream.flush().expect("flush");
    stream.shutdown(std::net::Shutdown::Write).ok();

    let (head, response_bytes) = reader.join().expect("reader thread");
    assert!(head.starts_with("HTTP/1.1 200"), "streamed encode succeeded: {head}");
    assert!(
        response_bytes > body_bytes / 4,
        "a full encoded relation came back: {response_bytes} bytes for {total_rows} rows"
    );

    // The daemon ran in this process: its peak memory is our VmHWM.
    // Batch-at-a-time processing must keep the growth far below the
    // ~full-dataset footprint a buffering server would pay.
    if let (Some(before), Some(after)) = (baseline, ppdt_obs::peak_rss_bytes()) {
        let growth = after.saturating_sub(before);
        assert!(
            growth < (body_bytes as u64) / 4,
            "peak RSS grew {growth} bytes while streaming a {body_bytes}-byte body \
             ({total_rows} rows); streaming must not buffer the dataset"
        );
    }

    srv.stop();
}
