//! Hostile-request tests: malformed wire input and corrupted payloads
//! must come back as *typed 4xx responses* — never a panic, never a
//! hung daemon. Reuses the `ppdt_data::corrupt` mutators so the same
//! corruption population that exercises the CLI fault-injection
//! harness also exercises the HTTP surface.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;

use ppdt_data::corrupt::{corrupt_csv, ALL_CSV_CORRUPTIONS};
use ppdt_data::csv::to_csv;
use ppdt_data::gen::census_like;
use ppdt_serve::handlers::{EncodeRequest, StoreKeyRequest, StoreKeyResponse};
use ppdt_serve::{request, ServerConfig};
use ppdt_transform::{EncodeConfig, Encoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Writes raw bytes to the daemon and returns the full response text
/// (status line + headers + body).
fn raw(srv: &common::TestServer, bytes: &[u8]) -> String {
    ppdt_serve::client::raw_probe(srv.addr, bytes, std::time::Duration::from_secs(10))
        .expect("raw probe")
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

fn assert_healthy(srv: &common::TestServer) {
    let (status, _) = request(srv.addr, "GET", "/healthz", "").expect("healthz reachable");
    assert_eq!(status, 200, "daemon must stay healthy after hostile input");
}

#[test]
fn wire_level_garbage_gets_typed_4xx() {
    let srv = common::start(ServerConfig::default(), "wire");

    // Truncated body: Content-Length promises more than arrives.
    let r = raw(&srv, b"POST /v1/encode HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"a\":");
    assert_eq!(status_of(&r), 400);
    assert!(r.contains("truncated_body"), "{r}");

    // Content-Length beyond the body cap is refused before buffering.
    let r = raw(&srv, b"POST /v1/encode HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n");
    assert!(matches!(status_of(&r), 400 | 413), "{r}");

    // Garbage request line.
    let r = raw(&srv, b"\x01\x02\x03 nonsense\r\n\r\n");
    assert_eq!(status_of(&r), 400);

    // Oversized head.
    let mut big = b"GET /healthz HTTP/1.1\r\n".to_vec();
    big.extend(std::iter::repeat_n(b'x', 20 * 1024));
    big.extend_from_slice(b": y\r\n\r\n");
    let r = raw(&srv, &big);
    assert_eq!(status_of(&r), 431);

    // Chunked transfer is supported now — but broken chunk framing
    // (a garbage chunk-size line) is a 400, answered without reading
    // further into the poisoned stream.
    let r = raw(
        &srv,
        b"POST /v1/encode HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\nhello\r\n0\r\n\r\n",
    );
    assert_eq!(status_of(&r), 400);
    assert!(r.contains("bad_chunk"), "{r}");

    // A chunked body that just stops mid-frame is also a clean 400.
    let r = raw(&srv, b"POST /v1/encode HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
    assert_eq!(status_of(&r), 400, "{r}");

    // Unknown route and wrong method.
    let (status, body) = request(srv.addr, "GET", "/nope", "").expect("request");
    assert_eq!(status, 404);
    assert!(body.contains("unknown_route"), "{body}");
    let (status, _) = request(srv.addr, "GET", "/v1/encode", "").expect("request");
    assert_eq!(status, 405);
    // Debug endpoints are not routable unless enabled.
    let (status, _) = request(srv.addr, "POST", "/v1/debug/sleep", "{\"ms\":1}").expect("request");
    assert_eq!(status, 404);

    assert_healthy(&srv);
    srv.stop();
}

#[test]
fn malformed_payloads_get_typed_4xx() {
    let srv = common::start(ServerConfig::default(), "payload");

    // Non-UTF-8 body.
    let r = raw(&srv, b"POST /v1/encode HTTP/1.1\r\ncontent-length: 4\r\n\r\n\xff\xfe\x00\x01");
    assert_eq!(status_of(&r), 400);
    assert!(r.contains("invalid_utf8"), "{r}");

    // Valid UTF-8, invalid JSON.
    let (status, body) = request(srv.addr, "POST", "/v1/encode", "{not json").expect("request");
    assert_eq!(status, 400);
    assert!(body.contains("invalid_json"), "{body}");

    // Valid JSON, wrong shape.
    let (status, _) = request(srv.addr, "POST", "/v1/encode", "{\"x\": 3}").expect("request");
    assert_eq!(status, 400);

    // Both csv and rows (ambiguous) is a usage error.
    let (status, body) = request(
        srv.addr,
        "POST",
        "/v1/encode",
        "{\"key_id\": \"00000000000000000000000000000000\", \"csv\": \"a\", \"rows\": [[1.0]]}",
    )
    .expect("request");
    assert_eq!(status, 400, "{body}");

    // Unknown (well-formed) key id is a 404, malformed id a 400:
    // the client sent garbage, no stored key is corrupt.
    let (status, body) = request(
        srv.addr,
        "POST",
        "/v1/encode",
        "{\"key_id\": \"00000000000000000000000000000000\", \"csv\": \"a,label\\n1,x\\n\"}",
    )
    .expect("request");
    assert_eq!(status, 404);
    assert!(body.contains("unknown_key"), "{body}");
    let (status, body) = request(
        srv.addr,
        "POST",
        "/v1/encode",
        "{\"key_id\": \"../../etc/passwd\", \"csv\": \"a,label\\n1,x\\n\"}",
    )
    .expect("request");
    assert_eq!(status, 400, "path-traversal ids are client usage errors: {body}");
    assert!(body.contains("invalid_key_id"), "{body}");

    assert_healthy(&srv);
    srv.stop();
}

/// The REVIEW-1 regression: a connection that accepts and then stalls
/// mid-request (slow-loris) must not stall the daemon. The acceptor
/// never reads, parsing happens on dedicated threads under an overall
/// parse deadline, so `/healthz` keeps answering promptly and the
/// loris is cut off with `408`.
#[test]
fn slow_connections_cannot_stall_liveness() {
    use std::time::{Duration, Instant};
    let cfg =
        ServerConfig { parse_deadline: Duration::from_millis(700), ..ServerConfig::default() };
    let srv = common::start(cfg, "loris");

    // Partial head, then silence. The connection stays open.
    let mut loris = TcpStream::connect(srv.addr).expect("connect");
    loris.write_all(b"POST /v1/encode HTTP/1.1\r\ncontent-le").expect("write");
    std::thread::sleep(Duration::from_millis(50));

    // While the loris dangles, liveness answers promptly.
    let started = Instant::now();
    let (status, _) = request(srv.addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "healthz must not wait on a slow connection ({:?})",
        started.elapsed()
    );

    // A slow *body* (full head, Content-Length never delivered) is
    // bounded by the same deadline.
    let mut slow_body = TcpStream::connect(srv.addr).expect("connect");
    slow_body
        .write_all(b"POST /v1/encode HTTP/1.1\r\ncontent-length: 100000\r\n\r\n{\"key_id")
        .expect("write");

    // Both are cut off at the parse deadline with 408.
    for mut conn in [loris, slow_body] {
        conn.set_read_timeout(Some(std::time::Duration::from_secs(10))).expect("timeout");
        let mut out = Vec::new();
        conn.read_to_end(&mut out).expect("read");
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("request_timeout"), "{text}");
    }

    assert_healthy(&srv);
    srv.stop();
}

/// A panicking handler costs one `500`, not a worker thread: with a
/// single worker, a dead worker would hang every later request, and a
/// leaked in-flight increment would pin the gauge above zero forever.
#[test]
fn handler_panic_answers_500_and_the_worker_survives() {
    let cfg = ServerConfig { workers: 1, debug_endpoints: true, ..ServerConfig::default() };
    let srv = common::start(cfg, "panic");

    let (status, body) = request(srv.addr, "POST", "/v1/debug/panic", "").expect("answered");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The single worker is still alive and serving.
    let (status, _) = request(srv.addr, "GET", "/v1/keys", "").expect("daemon alive");
    assert_eq!(status, 200);

    // The in-flight gauge was not leaked by the panic path.
    let (status, text) = request(srv.addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let v: serde::Value = serde_json::from_str(&text).expect("metrics parses");
    let in_flight = v
        .get("serve")
        .and_then(|s| s.get("in_flight"))
        .and_then(|x| x.as_f64())
        .expect("serve.in_flight");
    assert_eq!(in_flight, 0.0, "panic must not leak the in-flight count");

    srv.stop();
}

#[test]
fn corrupted_csv_bodies_never_break_the_daemon() {
    let srv = common::start(ServerConfig::default(), "corrupt");

    let mut rng = StdRng::seed_from_u64(0xF417);
    let d = census_like(&mut rng, 80);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    let payload = serde_json::to_string(&StoreKeyRequest { key }).expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/keys", &payload).expect("store key");
    assert_eq!(status, 201, "{text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("parses");

    let good = to_csv(&d);
    let mut rejected = 0usize;
    for (k, kind) in ALL_CSV_CORRUPTIONS.iter().enumerate() {
        for i in 0..6u64 {
            let seed = 0xBAD_5EED ^ ((k as u64) << 8) ^ i;
            let bad = corrupt_csv(&good, *kind, seed);
            let body = serde_json::to_string(&EncodeRequest {
                key_id: stored.key_id.clone(),
                csv: Some(bad),
                rows: None,
            })
            .expect("serialize");
            let (status, text) =
                request(srv.addr, "POST", "/v1/encode", &body).expect("daemon answers");
            // A mutation can leave the CSV parseable-and-in-domain
            // (a flipped digit), so success is legal; a server error
            // or a hang is not.
            assert!(
                status == 200 || (400..500).contains(&status),
                "corruption {kind:?} seed {seed}: unexpected {status}: {text}"
            );
            if status != 200 {
                rejected += 1;
                assert!(text.contains("\"error\""), "typed error body expected: {text}");
            }
        }
    }
    assert!(rejected > 0, "at least some corruptions must be rejected");

    assert_healthy(&srv);
    srv.stop();
}
