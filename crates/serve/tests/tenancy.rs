//! Multi-tenant custodian tests (PR 10 acceptance): the `/v2/t/{tenant}/`
//! surface namespaces keys, caches, and quotas per tenant; `/v1` stays
//! a byte-compatible shim over the `default` tenant; and
//! `POST /v2/t/{tenant}/rekey` rotates a dataset between two stored
//! keys without the plaintext ever leaving the daemon.
//!
//! Assertions go through the wire and the on-disk keystore layout:
//! the same key id under two tenants must never cross-serve — not via
//! the key store, not via the compiled-plan cache, not via `/v1`.

mod common;

use std::time::{Duration, Instant};

use ppdt_data::csv::{parse_csv, to_csv};
use ppdt_data::gen::census_like;
use ppdt_data::Dataset;
use ppdt_serve::handlers::{
    ClassifyRequest, ClassifyResponse, EncodeRequest, EncodeResponse, ListKeysResponse,
    RekeyRequest, RekeyResponse, StoreKeyRequest, StoreKeyResponse,
};
use ppdt_serve::{request, RetryingClient, ServerConfig};
use ppdt_transform::{EncodeConfig, Encoder, TransformKey};
use ppdt_tree::{trees_equal, TreeBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rows_of(d: &Dataset) -> Vec<Vec<f64>> {
    (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect()
}

fn make_key(seed: u64, rows: usize) -> (TransformKey, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = census_like(&mut rng, rows);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    (key, d)
}

fn post<T: serde::Serialize, R: serde::Deserialize>(
    addr: std::net::SocketAddr,
    path: &str,
    body: &T,
    want_status: u16,
) -> R {
    let payload = serde_json::to_string(body).expect("serialize request");
    let (status, text) = request(addr, "POST", path, &payload).expect("request succeeds");
    assert_eq!(status, want_status, "POST {path} answered {status}: {text}");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("POST {path} body: {e}\n{text}"))
}

fn list(addr: std::net::SocketAddr, path: &str) -> ListKeysResponse {
    let (status, text) = request(addr, "GET", path, "").expect("list keys");
    assert_eq!(status, 200, "GET {path} answered {status}: {text}");
    serde_json::from_str(&text).expect("listing parses")
}

/// The tentpole isolation property, over the wire and on disk: the
/// same content-addressed key id under two tenants is two independent
/// entries, and a tenant that never stored the key gets a 404 even
/// when another tenant's compiled plan is hot in the cache.
#[test]
fn same_key_id_under_two_tenants_never_cross_serves() {
    let srv = common::start(ServerConfig::default(), "tenancy-iso");
    let (key, d) = make_key(71, 120);

    // Same key stored under two named tenants: same content address,
    // separate namespaces (both stores create).
    let a: StoreKeyResponse =
        post(srv.addr, "/v2/t/acme/keys", &StoreKeyRequest { key: key.clone() }, 201);
    let b: StoreKeyResponse =
        post(srv.addr, "/v2/t/globex/keys", &StoreKeyRequest { key: key.clone() }, 201);
    assert_eq!(a.key_id, b.key_id, "content addressing is tenant-independent");
    assert!(a.created && b.created, "each tenant's store is a fresh create");
    assert_eq!(a.tenant.as_deref(), Some("acme"));
    assert_eq!(b.tenant.as_deref(), Some("globex"));

    // On disk: one envelope per tenant under t/<name>/, nothing at the
    // flat (default-tenant) root.
    for t in ["acme", "globex"] {
        let path = srv.dir.join("t").join(t).join(format!("{}.json", a.key_id));
        assert!(path.exists(), "expected envelope at {}", path.display());
    }
    assert!(
        !srv.dir.join(format!("{}.json", a.key_id)).exists(),
        "a named tenant's key must not land in the default namespace"
    );

    // Listings are per-tenant; /v1 is the default tenant and sees
    // nothing. /v2/t/default/ is the same namespace as /v1.
    assert!(list(srv.addr, "/v2/t/acme/keys").keys.iter().any(|k| k.key_id == a.key_id));
    assert!(list(srv.addr, "/v1/keys").keys.is_empty(), "default tenant must stay empty");
    assert!(list(srv.addr, "/v2/t/default/keys").keys.is_empty());

    // Warm acme's compiled plan, then ask for the same id as other
    // tenants: the hot cache must not leak across the namespace.
    let enc: EncodeResponse = post(
        srv.addr,
        "/v2/t/acme/encode",
        &EncodeRequest { key_id: a.key_id.clone(), csv: Some(to_csv(&d)), rows: None },
        200,
    );
    assert_eq!(enc.rows_encoded, d.num_rows() as u64);
    assert_eq!(enc.tenant.as_deref(), Some("acme"));
    for path in ["/v1/encode", "/v2/t/initech/encode"] {
        let body = EncodeRequest { key_id: a.key_id.clone(), csv: Some(to_csv(&d)), rows: None };
        let payload = serde_json::to_string(&body).expect("serialize");
        let (status, text) = request(srv.addr, "POST", path, &payload).expect("request");
        assert_eq!(status, 404, "POST {path} must not see acme's key: {text}");
    }

    // A malformed tenant segment is a 400, not a route into anything.
    let (status, text) = request(srv.addr, "GET", "/v2/t/Not-Valid!/keys", "").expect("bad tenant");
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("invalid_tenant"), "{text}");

    srv.stop();
}

/// Per-tenant key quota: the N+1th distinct key answers `429` with
/// `Retry-After`, re-storing a held key stays a cheap 200, and the
/// quota counts per tenant — another tenant still stores freely.
#[test]
fn tenant_key_quota_answers_429_with_retry_after() {
    let cfg = ServerConfig { tenant_max_keys: 1, ..ServerConfig::default() };
    let srv = common::start(cfg, "tenancy-quota-keys");
    let (key1, _) = make_key(72, 100);
    let (key2, _) = make_key(73, 100);

    let s1: StoreKeyResponse =
        post(srv.addr, "/v2/t/acme/keys", &StoreKeyRequest { key: key1.clone() }, 201);
    // Re-storing the held key is idempotent, not a quota violation.
    let again: StoreKeyResponse =
        post(srv.addr, "/v2/t/acme/keys", &StoreKeyRequest { key: key1.clone() }, 200);
    assert_eq!(again.key_id, s1.key_id);

    // The second distinct key bounces with the full 429 contract.
    let body = serde_json::to_string(&StoreKeyRequest { key: key2.clone() }).expect("serialize");
    let ex = RetryingClient::new(srv.addr)
        .exchange_once("POST", "/v2/t/acme/keys", &body)
        .expect("exchange");
    assert_eq!(ex.status, 429, "{}", ex.body);
    assert_eq!(ex.retry_after, Some(1), "429 must advertise Retry-After: {}", ex.body);
    assert!(ex.body.contains("quota_exceeded"), "{}", ex.body);

    // The quota is per tenant: globex (and the default tenant) are
    // unaffected by acme being full.
    let _: StoreKeyResponse =
        post(srv.addr, "/v2/t/globex/keys", &StoreKeyRequest { key: key2.clone() }, 201);
    let _: StoreKeyResponse = post(srv.addr, "/v1/keys", &StoreKeyRequest { key: key2 }, 201);

    srv.stop();
}

/// Per-tenant in-flight quota: with `tenant_max_inflight: 1`, a
/// request arriving while the tenant already occupies a worker is
/// answered `429` promptly — the daemon is healthy (it is not a 503)
/// and the quota books itself in `/metrics`.
#[test]
fn tenant_inflight_quota_answers_429() {
    let cfg = ServerConfig {
        workers: 4,
        tenant_max_inflight: 1,
        debug_endpoints: true,
        ..ServerConfig::default()
    };
    let srv = common::start(cfg, "tenancy-quota-flight");

    // Occupy the default tenant's single slot with a slow request.
    let addr = srv.addr;
    let slow = std::thread::spawn(move || {
        request(addr, "POST", "/v1/debug/sleep", "{\"ms\": 1500}").expect("slow request")
    });
    std::thread::sleep(Duration::from_millis(300));

    let started = Instant::now();
    let ex = RetryingClient::new(srv.addr)
        .exchange_once("POST", "/v1/debug/sleep", "{\"ms\": 1}")
        .expect("exchange");
    assert!(started.elapsed() < Duration::from_millis(900), "429 must not wait for the slot");
    assert_eq!(ex.status, 429, "{}", ex.body);
    assert_eq!(ex.retry_after, Some(1), "{}", ex.body);
    assert!(ex.body.contains("quota_exceeded"), "{}", ex.body);

    let (status, _) = slow.join().expect("slow thread");
    assert_eq!(status, 200, "the in-quota request still completes");

    // The bounce is visible per tenant in /metrics.
    let (status, text) = request(srv.addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let v: serde::Value = serde_json::from_str(&text).expect("metrics parses");
    let tenants = v
        .get("serve")
        .and_then(|s| s.get("tenants"))
        .and_then(|t| t.as_array())
        .expect("serve.tenants");
    let row = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(|n| n.as_str()) == Some("default"))
        .expect("default tenant row");
    let bounced = row.get("quota_rejected").and_then(|q| q.as_f64()).expect("quota_rejected");
    assert!(bounced >= 1.0, "quota bounce must be booked: {text}");

    srv.stop();
}

/// Online key rotation, end to end over the wire: rekeying `Enc_A(D)`
/// from key A to key B through the fused plan yields a dataset that
/// mines the *same tree* as encoding the plaintext directly under
/// key B — and classification against the rotated tree matches
/// plaintext predictions. The daemon never saw `D` in the rekey call.
#[test]
fn rekey_over_the_wire_matches_direct_key_b_encode() {
    let srv = common::start(ServerConfig::default(), "tenancy-rekey");
    let mut rng = StdRng::seed_from_u64(74);
    let d = census_like(&mut rng, 200);
    let (key_a, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode A").into_parts();
    let (key_b, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode B").into_parts();

    let sa: StoreKeyResponse =
        post(srv.addr, "/v2/t/acme/keys", &StoreKeyRequest { key: key_a }, 201);
    let sb: StoreKeyResponse =
        post(srv.addr, "/v2/t/acme/keys", &StoreKeyRequest { key: key_b }, 201);
    assert_ne!(sa.key_id, sb.key_id, "two independent keys");

    // The dataset as the miner holds it today: encoded under key A.
    let enc_a: EncodeResponse = post(
        srv.addr,
        "/v2/t/acme/encode",
        &EncodeRequest { key_id: sa.key_id.clone(), csv: Some(to_csv(&d)), rows: None },
        200,
    );

    // Rotate A → B in one fused pass.
    let rekeyed: RekeyResponse = post(
        srv.addr,
        "/v2/t/acme/rekey",
        &RekeyRequest {
            from_key_id: sa.key_id.clone(),
            to_key_id: sb.key_id.clone(),
            csv: enc_a.csv.expect("encoded csv"),
        },
        200,
    );
    assert_eq!(rekeyed.rows_rekeyed, d.num_rows() as u64);
    assert_eq!(rekeyed.tenant.as_deref(), Some("acme"));
    assert_eq!(
        (rekeyed.from_key_id.as_str(), rekeyed.to_key_id.as_str()),
        (sa.key_id.as_str(), sb.key_id.as_str())
    );

    // Ground truth: encode the plaintext directly under key B.
    let enc_b: EncodeResponse = post(
        srv.addr,
        "/v2/t/acme/encode",
        &EncodeRequest { key_id: sb.key_id.clone(), csv: Some(to_csv(&d)), rows: None },
        200,
    );

    // The rotated dataset and the fresh key-B encode mine the same
    // tree — pattern preservation survived the rotation.
    let d_rekeyed = parse_csv(&rekeyed.csv).expect("rekeyed CSV parses");
    let d_direct = parse_csv(&enc_b.csv.expect("encoded csv")).expect("direct CSV parses");
    let t_rekeyed = TreeBuilder::default().fit(&d_rekeyed);
    let t_direct = TreeBuilder::default().fit(&d_direct);
    assert!(
        trees_equal(&t_rekeyed, &t_direct),
        "tree mined on the rotated dataset must equal the key-B direct-encode tree"
    );

    // And the rotated tree classifies plaintext rows exactly like the
    // plaintext-mined tree, through POST /v2/t/acme/classify with
    // key B.
    let rows = rows_of(&d);
    let cls: ClassifyResponse = post(
        srv.addr,
        "/v2/t/acme/classify",
        &ClassifyRequest { key_id: sb.key_id, tree: t_rekeyed, rows: rows.clone() },
        200,
    );
    let t_plain = TreeBuilder::default().fit(&d);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            cls.labels[i],
            t_plain.predict(row).0,
            "row {i}: classification under the rotated key diverged"
        );
    }

    srv.stop();
}
