//! Streaming (chunked) bodies on `/v1/encode` and `/v1/classify`:
//! round-trips against the buffered path, clean errors before the
//! response starts, chunked bodies on buffered endpoints, and the
//! connection surviving a successful stream.

mod common;

use ppdt_data::csv::to_csv;
use ppdt_data::gen::census_like;
use ppdt_data::AttrId;
use ppdt_serve::api::{
    ClassifyRequest, ClassifyResponse, EncodeRequest, EncodeResponse, StoreKeyRequest,
    StoreKeyResponse,
};
use ppdt_serve::http::Client;
use ppdt_serve::{request, ServerConfig};
use ppdt_transform::{EncodeConfig, Encoder, TransformKey};
use ppdt_tree::TreeBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample(seed: u64, rows: usize) -> (ppdt_data::Dataset, TransformKey) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = census_like(&mut rng, rows);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    (d, key)
}

fn store(srv: &common::TestServer, key: &TransformKey) -> String {
    let payload = serde_json::to_string(&StoreKeyRequest { key: key.clone() }).expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/keys", &payload).expect("store");
    assert!(status == 200 || status == 201, "store answered {status}: {text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("parses");
    stored.key_id
}

/// Streams `body` up a chunked request in deliberately awkward chunk
/// sizes and returns the (status, body) of the chunked response.
fn stream_request(client: &mut Client, path: &str, header_line: &str, body: &str) -> (u16, String) {
    client.send_chunked_head("POST", path).expect("chunked head");
    client.send_chunk(format!("{header_line}\n").as_bytes()).expect("header chunk");
    // Split the payload mid-line so the daemon has to reassemble rows
    // across chunk boundaries.
    for piece in body.as_bytes().chunks(97) {
        client.send_chunk(piece).expect("body chunk");
    }
    client.finish_chunks().expect("finish");
    client.read_response().expect("response")
}

#[test]
fn chunked_encode_matches_the_buffered_answer() {
    ppdt_obs::set_enabled(true);
    let srv = common::start(ServerConfig::default(), "streamenc");
    let (d, key) = sample(11, 300);
    let key_id = store(&srv, &key);
    let csv = to_csv(&d);

    // Buffered reference answer.
    let payload = serde_json::to_string(&EncodeRequest {
        key_id: key_id.clone(),
        csv: Some(csv.clone()),
        rows: None,
    })
    .expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/encode", &payload).expect("encode");
    assert_eq!(status, 200, "{text}");
    let buffered: EncodeResponse = serde_json::from_str(&text).expect("parses");
    let expected = buffered.csv.expect("buffered csv");

    // Streamed answer over one keep-alive connection.
    let mut client = Client::connect(srv.addr).expect("connect");
    let header = format!("{{\"key_id\": \"{key_id}\"}}");
    let (status, streamed) = stream_request(&mut client, "/v1/encode", &header, &csv);
    assert_eq!(status, 200, "{streamed}");
    assert_eq!(streamed, expected, "streamed and buffered encodes must match byte-for-byte");

    // The connection survives a successful stream.
    let (status, _) = client.request("GET", "/healthz", "").expect("healthz after stream");
    assert_eq!(status, 200);

    // And the chunk traffic is visible in /metrics.
    let (_, body) = client.request("GET", "/metrics", "").expect("metrics");
    let v: serde::Value = serde_json::from_str(&body).expect("metrics parses");
    let chunks = v
        .get("serve")
        .and_then(|s| s.get("streamed_chunks"))
        .and_then(|x| x.as_f64())
        .expect("streamed_chunks in /metrics");
    assert!(chunks >= 4.0, "a multi-chunk stream moved chunks: got {chunks}");

    srv.stop();
}

#[test]
fn chunked_classify_matches_the_buffered_labels() {
    let srv = common::start(ServerConfig::default(), "streamcls");
    let (d, key) = sample(13, 220);
    let key_id = store(&srv, &key);

    // Mine a tree on the transformed data, like the paper's miner.
    let payload = serde_json::to_string(&EncodeRequest {
        key_id: key_id.clone(),
        csv: Some(to_csv(&d)),
        rows: None,
    })
    .expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/encode", &payload).expect("encode");
    assert_eq!(status, 200, "{text}");
    let enc: EncodeResponse = serde_json::from_str(&text).expect("parses");
    let d_prime = ppdt_data::csv::parse_csv(&enc.csv.expect("csv")).expect("parses");
    let t_prime = TreeBuilder::default().fit(&d_prime);

    // Buffered reference labels.
    let rows: Vec<Vec<f64>> = (0..d.num_rows())
        .map(|i| (0..d.num_attrs()).map(|a| d.column(AttrId(a))[i]).collect())
        .collect();
    let payload = serde_json::to_string(&ClassifyRequest {
        key_id: key_id.clone(),
        tree: t_prime.clone(),
        rows: rows.clone(),
    })
    .expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/classify", &payload).expect("classify");
    assert_eq!(status, 200, "{text}");
    let buffered: ClassifyResponse = serde_json::from_str(&text).expect("parses");

    // Streamed: header line with the tree, then bare attribute rows.
    let tree_json = serde_json::to_string(&t_prime).expect("tree json");
    let header = format!("{{\"key_id\": \"{key_id}\", \"tree\": {tree_json}}}");
    let body: String = rows
        .iter()
        .map(|r| {
            let fields: Vec<String> = r.iter().map(|v| format!("{v}")).collect();
            format!("{}\n", fields.join(","))
        })
        .collect();
    let mut client = Client::connect(srv.addr).expect("connect");
    let (status, streamed) = stream_request(&mut client, "/v1/classify", &header, &body);
    assert_eq!(status, 200, "{streamed}");
    let labels: Vec<u16> = streamed.lines().map(|l| l.trim().parse().expect("label id")).collect();
    assert_eq!(labels, buffered.labels, "streamed labels must match the buffered path");

    srv.stop();
}

#[test]
fn streaming_failures_before_the_response_are_clean_errors() {
    let srv = common::start(ServerConfig::default(), "streamerr");
    let (d, key) = sample(17, 60);
    let key_id = store(&srv, &key);
    let csv = to_csv(&d);

    // Unknown key: a 404 JSON error, not a broken stream.
    let mut client = Client::connect(srv.addr).expect("connect");
    let header = format!("{{\"key_id\": \"{}\"}}", "0f".repeat(16));
    let (status, body) = stream_request(&mut client, "/v1/encode", &header, &csv);
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("unknown_key"), "{body}");

    // Garbage stream header: 400. (New connection: streaming errors
    // close, because the body was never drained.)
    let mut client = Client::connect(srv.addr).expect("connect");
    let (status, body) = stream_request(&mut client, "/v1/encode", "not json", &csv);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid_json"), "{body}");

    // A non-numeric cell in the first batch: typed 4xx, not a 200
    // that dies mid-stream.
    let mut client = Client::connect(srv.addr).expect("connect");
    let header = format!("{{\"key_id\": \"{key_id}\"}}");
    let bad = "a,b,class\n1.0,oops,yes\n";
    let (status, body) = stream_request(&mut client, "/v1/encode", &header, bad);
    assert!((400..500).contains(&status), "{status}: {body}");

    srv.stop();
}

#[test]
fn chunked_bodies_work_on_buffered_endpoints_too() {
    let srv = common::start(ServerConfig::default(), "streambuf");
    let (_, key) = sample(19, 40);

    // `POST /v1/keys` is not a streaming endpoint; a chunked body is
    // simply decoded into the usual buffered request.
    let payload = serde_json::to_string(&StoreKeyRequest { key }).expect("serialize");
    let mut client = Client::connect(srv.addr).expect("connect");
    client.send_chunked_head("POST", "/v1/keys").expect("head");
    for piece in payload.as_bytes().chunks(256) {
        client.send_chunk(piece).expect("chunk");
    }
    client.finish_chunks().expect("finish");
    let (status, body) = client.read_response().expect("response");
    assert_eq!(status, 201, "{body}");
    let stored: StoreKeyResponse = serde_json::from_str(&body).expect("parses");
    assert!(stored.created);

    srv.stop();
}
