//! Hot-path cache behavior over the wire: version negotiation, warm
//! requests hitting the compiled-plan and tree caches, bit-identical
//! cold-vs-warm answers, and — the part that matters for trust — a
//! cached plan being *invalidated* when the key's envelope on disk is
//! replaced with different content.

mod common;

use ppdt_data::csv::to_csv;
use ppdt_data::gen::census_like;
use ppdt_serve::handlers::{
    ClassifyRequest, ClassifyResponse, EncodeRequest, StoreKeyRequest, StoreKeyResponse,
};
use ppdt_serve::{request, ServerConfig, VersionResponse};
use ppdt_transform::{EncodeConfig, Encoder, TransformKey};
use ppdt_tree::TreeBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample(seed: u64, rows: usize) -> (ppdt_data::Dataset, TransformKey) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = census_like(&mut rng, rows);
    let (key, _) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    (d, key)
}

fn store(srv: &common::TestServer, key: &TransformKey) -> String {
    let payload = serde_json::to_string(&StoreKeyRequest { key: key.clone() }).expect("serialize");
    let (status, text) = request(srv.addr, "POST", "/v1/keys", &payload).expect("store");
    assert!(status == 200 || status == 201, "store answered {status}: {text}");
    let stored: StoreKeyResponse = serde_json::from_str(&text).expect("parses");
    stored.key_id
}

fn encode_csv(srv: &common::TestServer, key_id: &str, csv: &str) -> (u16, String) {
    let payload = serde_json::to_string(&EncodeRequest {
        key_id: key_id.to_string(),
        csv: Some(csv.to_string()),
        rows: None,
    })
    .expect("serialize");
    request(srv.addr, "POST", "/v1/encode", &payload).expect("encode request")
}

fn counter_value(srv: &common::TestServer, name: &str) -> u64 {
    let (status, text) = request(srv.addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let v: serde::Value = serde_json::from_str(&text).expect("metrics parses");
    v.get("process")
        .and_then(|p| p.get("counters"))
        .and_then(|c| c.as_array())
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("name").and_then(|n| n.as_str()) == Some(name))
                .and_then(|r| r.get("value"))
                .and_then(|x| x.as_f64())
        })
        .unwrap_or_else(|| panic!("counter {name} missing from /metrics")) as u64
}

#[test]
fn version_endpoint_reports_schema_versions() {
    let srv = common::start(ServerConfig::default(), "version");
    let (status, text) = request(srv.addr, "GET", "/v1/version", "").expect("version");
    assert_eq!(status, 200, "{text}");
    let v: VersionResponse = serde_json::from_str(&text).expect("version body parses");
    assert_eq!(v.api_schema_version, ppdt_serve::API_SCHEMA_VERSION);
    assert_eq!(v.keystore_schema_version, ppdt_serve::KEYSTORE_SCHEMA_VERSION);
    assert_eq!(v.bench_report_schema_version, ppdt_serve::BENCH_REPORT_SCHEMA_VERSION);
    assert_eq!(v.crate_version, env!("CARGO_PKG_VERSION"));
    srv.stop();
}

#[test]
fn warm_requests_hit_the_caches_and_match_cold_answers() {
    ppdt_obs::set_enabled(true);
    let warm_srv = common::start(ServerConfig::default(), "warmpath");
    let cold_srv = common::start(
        ServerConfig { plan_cache_capacity: 0, tree_cache_capacity: 0, ..Default::default() },
        "coldpath",
    );

    let (d, key) = sample(71, 150);
    let csv = to_csv(&d);
    let warm_id = store(&warm_srv, &key);
    let cold_id = store(&cold_srv, &key);
    assert_eq!(warm_id, cold_id, "content addressing is daemon-independent");

    // Same payload, cached plan vs. recompiled-every-time plan: the
    // answers must be byte-identical.
    let hits_before = counter_value(&warm_srv, "plan_cache_hits");
    let (s1, warm1) = encode_csv(&warm_srv, &warm_id, &csv);
    let (s2, warm2) = encode_csv(&warm_srv, &warm_id, &csv);
    let (s3, cold) = encode_csv(&cold_srv, &cold_id, &csv);
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert_eq!(warm1, warm2, "repeat encode must be deterministic");
    assert_eq!(warm1, cold, "cached plan must answer exactly like the cold path");
    let hits_after = counter_value(&warm_srv, "plan_cache_hits");
    assert!(
        hits_after > hits_before,
        "warm encodes must hit the plan cache ({hits_before} -> {hits_after})"
    );

    // Repeated classify of the same tree payload hits the tree cache.
    let mut rng = StdRng::seed_from_u64(72);
    let d_prime =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("local encode").dataset;
    let t_prime = TreeBuilder::default().fit(&d_prime);
    let rows: Vec<Vec<f64>> =
        (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect();
    let classify_payload = serde_json::to_string(&ClassifyRequest {
        key_id: warm_id.clone(),
        tree: t_prime,
        rows: rows.clone(),
    })
    .expect("serialize");
    let tree_hits_before = counter_value(&warm_srv, "tree_cache_hits");
    let (sa, a) =
        request(warm_srv.addr, "POST", "/v1/classify", &classify_payload).expect("classify");
    let (sb, b) =
        request(warm_srv.addr, "POST", "/v1/classify", &classify_payload).expect("classify");
    assert_eq!((sa, sb), (200, 200), "{a}\n{b}");
    let ra: ClassifyResponse = serde_json::from_str(&a).expect("parses");
    let rb: ClassifyResponse = serde_json::from_str(&b).expect("parses");
    assert_eq!(ra.labels, rb.labels, "cached tree must classify identically");
    let tree_hits_after = counter_value(&warm_srv, "tree_cache_hits");
    assert!(
        tree_hits_after > tree_hits_before,
        "repeat classify must hit the tree cache ({tree_hits_before} -> {tree_hits_after})"
    );

    warm_srv.stop();
    cold_srv.stop();
}

#[test]
fn stale_plan_is_not_served_when_key_envelope_changes_on_disk() {
    let srv = common::start(ServerConfig::default(), "stale");
    let (d, key_a) = sample(81, 120);
    let (_, key_b) = sample(82, 120);
    let csv = to_csv(&d);

    let id_a = store(&srv, &key_a);
    let id_b = store(&srv, &key_b);
    assert_ne!(id_a, id_b);

    // Warm the plan cache for key A.
    let (status, _) = encode_csv(&srv, &id_a, &csv);
    assert_eq!(status, 200);

    // An operator (or attacker) replaces A's envelope on disk with
    // different content — the one mutation content addressing cannot
    // rule out. The daemon holds a compiled plan for A, but serving it
    // would mean answering from a key that no longer matches storage:
    // the stamp check must force a reload, and the reload must fail
    // the digest check with 409.
    let path_a = srv.dir.join(format!("{id_a}.json"));
    let original = std::fs::read(&path_a).expect("read A's envelope");
    let foreign = std::fs::read(srv.dir.join(format!("{id_b}.json"))).expect("read B's envelope");
    assert_ne!(original.len(), foreign.len(), "distinct envelopes for a meaningful stamp change");
    std::fs::write(&path_a, &foreign).expect("replace A's envelope");
    let (status, text) = encode_csv(&srv, &id_a, &csv);
    assert_eq!(status, 409, "stale cached plan must not mask on-disk replacement: {text}");

    // Restoring the genuine envelope recovers: the next request
    // recompiles from the (again valid) file.
    std::fs::write(&path_a, &original).expect("restore A's envelope");
    let (status, _) = encode_csv(&srv, &id_a, &csv);
    assert_eq!(status, 200, "restored envelope must serve again");

    // And deleting the envelope drops the key entirely — 404, never a
    // resurrection from cache.
    std::fs::remove_file(&path_a).expect("delete A's envelope");
    let (status, text) = encode_csv(&srv, &id_a, &csv);
    assert_eq!(status, 404, "deleted key must vanish, not serve from cache: {text}");

    srv.stop();
}
