//! Shared scaffolding for the serve integration tests: start a real
//! daemon on a loopback port with a throwaway keystore directory,
//! stop it with the cooperative shutdown flag.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ppdt_error::PpdtError;
use ppdt_serve::{KeyStore, Server, ServerConfig};

/// A running daemon plus the handles needed to talk to it and tear it
/// down.
pub struct TestServer {
    /// Bound loopback address.
    pub addr: SocketAddr,
    /// Cooperative shutdown flag (`Server::shutdown_flag`).
    pub shutdown: Arc<AtomicBool>,
    /// The `Server::run` thread.
    pub handle: JoinHandle<Result<(), PpdtError>>,
    /// Throwaway keystore directory, removed on `stop`.
    pub dir: PathBuf,
}

/// Binds and runs a daemon on `127.0.0.1:0` with a fresh keystore
/// under the system temp dir. `tag` keeps concurrent tests apart.
pub fn start(mut cfg: ServerConfig, tag: &str) -> TestServer {
    let dir = std::env::temp_dir().join(format!("ppdt-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = KeyStore::open(dir.clone()).expect("open keystore");
    cfg.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(cfg, store).expect("bind server");
    let addr = server.addr();
    let shutdown = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());
    TestServer { addr, shutdown, handle, dir }
}

impl TestServer {
    /// Requests the graceful drain and joins the server thread.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle.join().expect("server thread completes").expect("run returns Ok");
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}
