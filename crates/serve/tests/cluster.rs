//! Custodian cluster integration tests (PR 7 acceptance): two real
//! daemons on loopback ports replicating key envelopes via the
//! pull-based anti-entropy loop, best-effort push on store,
//! read-through fetch for keys a node has not synced yet, and
//! quarantine-then-repair of a torn envelope.
//!
//! Assertions go through the wire (`/healthz` peer snapshots, the
//! `/v1/peer/keys` manifest) and the on-disk envelope files — never
//! through `ppdt_obs` counter deltas, which are process-global and
//! shared by every in-process daemon.

mod common;

use std::time::{Duration, Instant};

use ppdt_data::csv::to_csv;
use ppdt_data::gen::census_like;
use ppdt_data::Dataset;
use ppdt_serve::handlers::{
    ClassifyRequest, ClassifyResponse, EncodeRequest, ListKeysResponse, PeerManifestResponse,
    StoreKeyRequest, StoreKeyResponse,
};
use ppdt_serve::server::HealthzBody;
use ppdt_serve::{request, ServerConfig};
use ppdt_transform::{EncodeConfig, Encoder, TransformKey};
use ppdt_tree::TreeBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `PPDT_FAULT_SEED` steers the torn-write fault point, mirroring the
/// transform-layer fault-injection tests.
fn fault_seed() -> u64 {
    std::env::var("PPDT_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF417)
}

fn rows_of(d: &Dataset) -> Vec<Vec<f64>> {
    (0..d.num_rows()).map(|i| d.schema().attrs().map(|a| d.column(a)[i]).collect()).collect()
}

/// A plaintext relation, its transform key, and the transformed
/// relation the (untrusted) miner would see.
fn make_key(seed: u64, rows: usize) -> (TransformKey, Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = census_like(&mut rng, rows);
    let (key, d_prime) =
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encode").into_parts();
    (key, d, d_prime)
}

fn post<T: serde::Serialize, R: serde::Deserialize>(
    addr: std::net::SocketAddr,
    path: &str,
    body: &T,
    want_status: u16,
) -> R {
    let payload = serde_json::to_string(body).expect("serialize request");
    let (status, text) = request(addr, "POST", path, &payload).expect("request succeeds");
    assert_eq!(status, want_status, "POST {path} answered {status}: {text}");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("POST {path} body: {e}\n{text}"))
}

fn get<R: serde::Deserialize>(addr: std::net::SocketAddr, path: &str) -> R {
    let (status, text) = request(addr, "GET", path, "").expect("request succeeds");
    assert_eq!(status, 200, "GET {path} answered {status}: {text}");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("GET {path} body: {e}\n{text}"))
}

/// Polls `probe` every 25ms until it returns true, panicking with
/// `what` after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if probe() {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn manifest(addr: std::net::SocketAddr) -> PeerManifestResponse {
    get(addr, "/v1/peer/keys")
}

fn healthz(addr: std::net::SocketAddr) -> HealthzBody {
    get(addr, "/healthz")
}

/// Raw envelope bytes as stored on a node's disk.
fn envelope_bytes(srv: &common::TestServer, key_id: &str) -> Vec<u8> {
    std::fs::read(srv.dir.join(format!("{key_id}.json")))
        .unwrap_or_else(|e| panic!("read envelope {key_id} from {}: {e}", srv.dir.display()))
}

/// A follower of `leader` with the given anti-entropy interval.
fn follower_cfg(leader: &common::TestServer, sync_interval: Duration) -> ServerConfig {
    ServerConfig { peers: vec![leader.addr], sync_interval, ..ServerConfig::default() }
}

/// The ISSUE acceptance criterion: a node started with an empty
/// keystore and `--peer` pointing at a populated node must serve a
/// correct `POST /v1/classify` for a key it never received directly.
///
/// The follower's sync interval is an hour, so after its first
/// (empty) anti-entropy round only the read-through path can deliver
/// the key.
#[test]
fn read_through_serves_a_key_never_received_directly() {
    let a = common::start(ServerConfig::default(), "cluster-rt-a");
    let b = common::start(follower_cfg(&a, Duration::from_secs(3600)), "cluster-rt-b");

    // Let the follower's immediate first sync round finish while the
    // leader is still empty; the next round is an hour away.
    wait_until(Duration::from_secs(15), "follower's first sync round", || {
        let h = healthz(b.addr);
        h.peers.len() == 1 && h.peers[0].last_sync_age_ms.is_some()
    });

    // Only now does the leader learn the key.
    let (key, d, d_prime) = make_key(61, 120);
    let stored: StoreKeyResponse = post(a.addr, "/v1/keys", &StoreKeyRequest { key }, 201);
    assert!(stored.created);

    // The follower has never seen it, yet must answer — via
    // read-through fetch from the leader, inside the request.
    let t_prime = TreeBuilder::default().fit(&d_prime);
    let rows = rows_of(&d);
    let cls: ClassifyResponse = post(
        b.addr,
        "/v1/classify",
        &ClassifyRequest { key_id: stored.key_id.clone(), tree: t_prime, rows: rows.clone() },
        200,
    );
    let t_direct = TreeBuilder::default().fit(&d);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            cls.labels[i],
            t_direct.predict(row).0,
            "row {i}: read-through classify diverged from the plaintext prediction"
        );
    }

    // The fetched replica is byte-identical to the leader's envelope.
    assert_eq!(
        envelope_bytes(&a, &stored.key_id),
        envelope_bytes(&b, &stored.key_id),
        "read-through replica must be byte-identical"
    );

    b.stop();
    a.stop();
}

/// Pull-based anti-entropy: keys stored on the leader before the
/// follower ever connects converge to byte-identical envelopes, the
/// follower's `/healthz` reports the peer healthy — and reports it
/// unreachable within a sync interval of the leader dying.
#[test]
fn anti_entropy_converges_and_reports_peer_loss() {
    let a = common::start(ServerConfig::default(), "cluster-ae-a");
    let (key1, ..) = make_key(62, 100);
    let (key2, ..) = make_key(63, 100);
    let s1: StoreKeyResponse = post(a.addr, "/v1/keys", &StoreKeyRequest { key: key1 }, 201);
    let s2: StoreKeyResponse = post(a.addr, "/v1/keys", &StoreKeyRequest { key: key2 }, 201);

    let b = common::start(follower_cfg(&a, Duration::from_millis(200)), "cluster-ae-b");

    // Converged when the follower's manifest equals the leader's:
    // same ids, same envelope digests. Digest equality *is*
    // byte-identity because envelopes serialize deterministically.
    let want = manifest(a.addr).keys;
    assert_eq!(want.len(), 2);
    wait_until(Duration::from_secs(15), "manifests to converge", || manifest(b.addr).keys == want);
    for id in [&s1.key_id, &s2.key_id] {
        assert_eq!(envelope_bytes(&a, id), envelope_bytes(&b, id), "replica of {id} must match");
    }

    // The follower sees its peer healthy and caught up.
    let h = healthz(b.addr);
    assert_eq!(h.peers.len(), 1);
    assert_eq!(h.peers[0].addr, a.addr.to_string());
    assert!(h.peers[0].reachable, "synced peer must be reachable: {:?}", h.peers[0]);
    assert_eq!(h.peers[0].keys_behind, 0);

    // Kill the leader; the follower must notice within a round or two.
    a.stop();
    wait_until(Duration::from_secs(15), "dead peer to show in /healthz", || {
        let h = healthz(b.addr);
        !h.peers[0].reachable && h.peers[0].consecutive_failures >= 1
    });

    b.stop();
}

/// Best-effort push: a key stored on a node propagates to its peers
/// immediately, without waiting for the peers to poll (the leader
/// here has no `--peer` flags at all, so pull can never deliver it).
#[test]
fn push_on_store_propagates_without_polling() {
    let a = common::start(ServerConfig::default(), "cluster-push-a");
    // Hour-long interval: after the first round, pull is out of the
    // picture; only the push path can move the key within the test.
    let b = common::start(follower_cfg(&a, Duration::from_secs(3600)), "cluster-push-b");

    let (key, ..) = make_key(64, 100);
    let stored: StoreKeyResponse = post(b.addr, "/v1/keys", &StoreKeyRequest { key }, 201);

    wait_until(Duration::from_secs(15), "pushed key to reach the peer", || {
        let listing: ListKeysResponse = get(a.addr, "/v1/keys");
        listing.keys.iter().any(|k| k.key_id == stored.key_id && k.valid)
    });
    assert_eq!(
        envelope_bytes(&a, &stored.key_id),
        envelope_bytes(&b, &stored.key_id),
        "pushed replica must be byte-identical"
    );

    b.stop();
    a.stop();
}

/// Satellite: a torn write in a replica's keystore is quarantined —
/// 409 on that key while every other key keeps serving — and the next
/// anti-entropy round repairs it from a peer, byte-identically.
#[test]
fn torn_envelope_is_quarantined_then_repaired_from_a_peer() {
    let a = common::start(ServerConfig::default(), "cluster-torn-a");
    let (key1, d1, _) = make_key(65, 100);
    let (key2, d2, _) = make_key(66, 100);
    let s1: StoreKeyResponse = post(a.addr, "/v1/keys", &StoreKeyRequest { key: key1 }, 201);
    let s2: StoreKeyResponse = post(a.addr, "/v1/keys", &StoreKeyRequest { key: key2 }, 201);

    // Follower with an hour-long interval: its immediate first round
    // replicates both keys, after which no background round will race
    // the corruption we are about to inject.
    let b = common::start(follower_cfg(&a, Duration::from_secs(3600)), "cluster-torn-b");
    let want = manifest(a.addr).keys;
    wait_until(Duration::from_secs(15), "initial replication", || manifest(b.addr).keys == want);

    // Tear key1's envelope on the follower's disk: keep a prefix, as
    // a crash mid-write (without the atomic rename) would.
    let path = b.dir.join(format!("{}.json", s1.key_id));
    let text = std::fs::read_to_string(&path).expect("read envelope");
    let frac = 0.25 + (fault_seed() % 50) as f64 / 100.0;
    let torn = ppdt_data::corrupt::truncate_at(&text, frac);
    assert!(torn.len() < text.len(), "fault injection must actually shorten the envelope");
    std::fs::write(&path, &torn).expect("tear envelope");

    // Quarantined: the torn key answers 409 corrupt_key (the plan
    // cache's file stamp notices the rewrite), the healthy key keeps
    // serving 200.
    let enc1 = serde_json::to_string(&EncodeRequest {
        key_id: s1.key_id.clone(),
        csv: Some(to_csv(&d1)),
        rows: None,
    })
    .expect("serialize");
    let (status, text) = request(b.addr, "POST", "/v1/encode", &enc1).expect("encode torn");
    assert_eq!(status, 409, "torn key must be quarantined: {text}");
    assert!(text.contains("corrupt_key"), "409 body names the category: {text}");
    let _: serde::Value = post(
        b.addr,
        "/v1/encode",
        &EncodeRequest { key_id: s2.key_id.clone(), csv: Some(to_csv(&d2)), rows: None },
        200,
    );
    // A torn entry is not servable, so it drops out of the manifest.
    assert_eq!(manifest(b.addr).keys.len(), 1, "torn key must leave the peer manifest");

    // Restart the follower over the same keystore with a fast sync
    // interval: the load-time audit quarantines the torn entry again,
    // and the first anti-entropy round re-fetches it from the peer.
    let dir = b.dir.clone();
    b.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    b.handle.join().expect("join follower").expect("follower run ok");
    let store = ppdt_serve::KeyStore::open(dir.clone()).expect("reopen keystore");
    let server = ppdt_serve::Server::bind(follower_cfg(&a, Duration::from_millis(200)), store)
        .expect("bind");
    let b2_addr = server.addr();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run());

    wait_until(Duration::from_secs(15), "torn key to be repaired", || {
        manifest(b2_addr).keys == want
    });
    assert_eq!(
        envelope_bytes(&a, &s1.key_id),
        std::fs::read(dir.join(format!("{}.json", s1.key_id))).expect("read repaired"),
        "repaired envelope must be byte-identical to the peer's"
    );
    let _: serde::Value = post(
        b2_addr,
        "/v1/encode",
        &EncodeRequest { key_id: s1.key_id, csv: Some(to_csv(&d1)), rows: None },
        200,
    );

    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    handle.join().expect("join repaired follower").expect("run ok");
    let _ = std::fs::remove_dir_all(&dir);
    a.stop();
}

/// Tenancy × replication: the unit of anti-entropy is the
/// `(tenant, key)` pair. A named tenant's key must land in the *same*
/// tenant on the follower — in its `t/<name>/` directory on disk, in
/// its `/v2` listing, and nowhere in the default namespace.
#[test]
fn tenant_keys_replicate_into_the_same_tenant() {
    let a = common::start(ServerConfig::default(), "cluster-tenant-a");
    let (key_acme, ..) = make_key(66, 100);
    let (key_dflt, ..) = make_key(67, 100);
    let sa: StoreKeyResponse =
        post(a.addr, "/v2/t/acme/keys", &StoreKeyRequest { key: key_acme }, 201);
    let sd: StoreKeyResponse = post(a.addr, "/v1/keys", &StoreKeyRequest { key: key_dflt }, 201);

    let b = common::start(follower_cfg(&a, Duration::from_millis(200)), "cluster-tenant-b");

    // Convergence: the manifests carry the tenant per entry, so
    // equality covers namespace placement as well as digests.
    let want = manifest(a.addr).keys;
    assert_eq!(want.len(), 2);
    assert!(want.iter().any(|e| e.tenant.as_deref() == Some("acme") && e.key_id == sa.key_id));
    assert!(want.iter().any(|e| e.tenant.is_none() && e.key_id == sd.key_id));
    wait_until(Duration::from_secs(15), "tenant manifests to converge", || {
        manifest(b.addr).keys == want
    });

    // On the follower's disk: the acme key lives under t/acme/ and is
    // byte-identical; the default key stays flat at the root.
    let acme_path = b.dir.join("t").join("acme").join(format!("{}.json", sa.key_id));
    assert_eq!(
        std::fs::read(&acme_path).expect("replicated acme envelope"),
        std::fs::read(a.dir.join("t").join("acme").join(format!("{}.json", sa.key_id)))
            .expect("leader acme envelope"),
        "acme replica must be byte-identical"
    );
    assert_eq!(envelope_bytes(&a, &sd.key_id), envelope_bytes(&b, &sd.key_id));
    assert!(
        !b.dir.join(format!("{}.json", sa.key_id)).exists(),
        "acme's key must not leak into the follower's default namespace"
    );

    // And the follower's wire listings keep the namespaces apart.
    let acme: ListKeysResponse = get(b.addr, "/v2/t/acme/keys");
    assert!(acme.keys.iter().any(|k| k.key_id == sa.key_id));
    assert!(!acme.keys.iter().any(|k| k.key_id == sd.key_id));
    let dflt: ListKeysResponse = get(b.addr, "/v1/keys");
    assert!(dflt.keys.iter().any(|k| k.key_id == sd.key_id));
    assert!(!dflt.keys.iter().any(|k| k.key_id == sa.key_id));

    b.stop();
    a.stop();
}
