//! Backpressure and graceful-drain behaviour (the ISSUE 4 overload
//! acceptance test): with the pool saturated, excess requests get
//! `503 + Retry-After` promptly, the daemon stays healthy, and a
//! shutdown lets in-flight requests finish.

mod common;

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use ppdt_serve::{request, RetryingClient, ServerConfig};

fn tiny_config() -> ServerConfig {
    ServerConfig { workers: 1, queue_capacity: 1, debug_endpoints: true, ..ServerConfig::default() }
}

fn sleep_req(srv: &common::TestServer, ms: u64) -> (u16, String) {
    request(srv.addr, "POST", "/v1/debug/sleep", &format!("{{\"ms\": {ms}}}"))
        .expect("daemon answers")
}

/// Occupies the single worker (and then the single queue slot) with
/// debug sleeps, returning the client threads.
fn saturate(srv: &common::TestServer, ms: u64) -> Vec<std::thread::JoinHandle<(u16, String)>> {
    let mut clients = Vec::new();
    for _ in 0..2 {
        let addr = srv.addr;
        clients.push(std::thread::spawn(move || {
            ppdt_serve::request(addr, "POST", "/v1/debug/sleep", &format!("{{\"ms\": {ms}}}"))
                .expect("long request completes")
        }));
        // Give the request time to reach the worker / queue slot.
        std::thread::sleep(Duration::from_millis(150));
    }
    clients
}

#[test]
fn saturated_pool_answers_503_with_retry_after_and_stays_healthy() {
    let srv = common::start(tiny_config(), "overload");
    let clients = saturate(&srv, 1500);

    // Pool and queue are now full: the next request must be rejected
    // promptly (not after the sleeps finish) with a Retry-After.
    let started = Instant::now();
    let ex = RetryingClient::new(srv.addr)
        .exchange_once("POST", "/v1/debug/sleep", "{\"ms\": 1}")
        .expect("exchange");
    assert!(started.elapsed() < Duration::from_millis(900), "503 must not wait for the pool");
    assert_eq!(ex.status, 503, "{}", ex.body);
    assert_eq!(ex.retry_after, Some(1), "{}", ex.body);
    assert!(ex.body.contains("overloaded"), "{}", ex.body);

    // Liveness and metrics are answered inline, so they still work.
    let (status, _) = request(srv.addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    let (status, text) = request(srv.addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let v: serde::Value = serde_json::from_str(&text).expect("metrics parses");
    let rejected = v
        .get("serve")
        .and_then(|s| s.get("rejected"))
        .and_then(|r| r.as_f64())
        .expect("serve.rejected");
    assert!(rejected >= 1.0, "the 503 must be booked as a rejection");

    // The saturating requests themselves complete fine.
    for c in clients {
        let (status, _) = c.join().expect("client thread");
        assert_eq!(status, 200);
    }
    srv.stop();
}

#[test]
fn queued_request_past_its_deadline_is_rejected_not_processed() {
    let cfg = ServerConfig { request_deadline: Duration::from_millis(200), ..tiny_config() };
    let srv = common::start(cfg, "deadline");

    // One 800 ms sleep occupies the worker; a second goes into the
    // queue and will be 600 ms stale by the time the worker frees up —
    // past the 200 ms deadline, so it must come back 503.
    let addr = srv.addr;
    let busy = std::thread::spawn(move || {
        ppdt_serve::request(addr, "POST", "/v1/debug/sleep", "{\"ms\": 800}").expect("completes")
    });
    std::thread::sleep(Duration::from_millis(150));
    let (status, body) = sleep_req(&srv, 1);
    assert_eq!(status, 503, "stale queued request must be dropped: {body}");
    assert!(body.contains("deadline"), "{body}");

    let (status, _) = busy.join().expect("client thread");
    assert_eq!(status, 200);

    // A fresh request after the congestion clears succeeds.
    let (status, _) = sleep_req(&srv, 1);
    assert_eq!(status, 200);
    srv.stop();
}

#[test]
fn graceful_drain_completes_in_flight_requests() {
    let srv = common::start(tiny_config(), "drain");

    // Put a long request in flight and one in the queue, then ask for
    // shutdown while both are outstanding.
    let clients = saturate(&srv, 1000);
    srv.shutdown.store(true, Ordering::SeqCst);

    // Both outstanding requests complete with real answers (the
    // queued one was accepted before shutdown, so it is drained, not
    // dropped).
    for c in clients {
        let (status, body) = c.join().expect("client thread");
        assert_eq!(status, 200, "in-flight work must finish during drain: {body}");
    }

    // The daemon exits cleanly and stops accepting.
    srv.handle.join().expect("server thread").expect("run returns Ok");
    assert!(
        TcpStream::connect(srv.addr).is_err() || request(srv.addr, "GET", "/healthz", "").is_err(),
        "daemon must stop accepting after the drain"
    );
    let _ = std::fs::remove_dir_all(&srv.dir);
}
