//! Cluster membership, per-peer health, and the pull-based
//! anti-entropy sync loop.
//!
//! The replication model leans entirely on the key store being
//! content-addressed (see [`crate::keystore`]): an envelope's id *is*
//! a digest of its key, puts are idempotent, and two valid envelopes
//! under one id are byte-identical by construction. There is
//! therefore no conflict to resolve, no vector clock, and no
//! leader — replication is just "fetch what you are missing", safe to
//! repeat, safe to race, and safe to interleave with client stores.
//!
//! Each node runs one sync thread:
//!
//! * every [`sync interval`](crate::server::ServerConfig::sync_interval)
//!   it polls each peer's `GET /v1/peer/keys` manifest (key id +
//!   envelope digest), fetches whatever it lacks through
//!   `POST /v1/peer/fetch`, and commits via the idempotent
//!   [`KeyStore::put`] — re-deriving the content address and
//!   re-auditing, so a lying or corrupt peer cannot implant a bad
//!   envelope;
//! * a manifest entry whose digest disagrees with a *valid* local
//!   envelope is ignored (the local copy is canonical by content
//!   addressing); a disagreement with an **invalid** local envelope
//!   is a detected torn write, repaired in place with
//!   `put_repairing`;
//! * an unreachable peer is polled with bounded exponential backoff
//!   (the sync interval doubling per consecutive failure, capped) so
//!   a dead node costs a bounded number of connect timeouts, not one
//!   per round forever;
//! * `POST /v1/keys` on this node queues a best-effort push of the
//!   new key to every peer, so fresh keys propagate in milliseconds
//!   rather than a full sync interval — the push is just a store on
//!   the peer, indistinguishable from a client store and idempotent
//!   against the concurrent pull.
//!
//! Read-through (`Cluster::fetch_from_peers`) covers the remaining
//! window: a request for a key this node has not synced yet fetches
//! it from a peer under a deadline instead of answering 404, so any
//! node can answer for any key as soon as *some* node has it.
//!
//! Tenancy changes none of the invariants: the unit of replication is
//! the `(tenant, key)` pair — manifests advertise the tenant next to
//! each id, fetches and pushes carry it, and content addressing stays
//! per file — so the same key under two tenants replicates as two
//! independent entries with the same zero-conflict guarantees.

use std::net::SocketAddr;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ppdt_obs::Counter;
use serde::{Deserialize, Serialize};

use crate::keystore::{valid_id, KeyEnvelope, KeyStore, Tenant};
use crate::peer_client::PeerClient;

/// Backoff ceiling: an unreachable peer is polled at most
/// `sync_interval << BACKOFF_CAP_SHIFT` apart (32x), so recovery
/// detection stays bounded too.
const BACKOFF_CAP_SHIFT: u32 = 5;

/// Queued best-effort pushes; beyond this the push is dropped and the
/// next anti-entropy round delivers the key instead.
const PUSH_QUEUE_DEPTH: usize = 64;

/// One peer's health row, rendered in `/healthz` and `/metrics`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeerSnapshot {
    /// The peer's address as configured via `--peer`.
    pub addr: String,
    /// Whether the last manifest poll succeeded.
    pub reachable: bool,
    /// Milliseconds since the last successful sync with this peer
    /// (`None` before the first success).
    pub last_sync_age_ms: Option<u64>,
    /// Keys the peer advertised that this node still failed to fetch
    /// in the last completed round (0 when converged).
    pub keys_behind: u64,
    /// Consecutive failed manifest polls (drives the backoff).
    pub consecutive_failures: u64,
}

/// Mutable per-peer sync state.
struct PeerState {
    reachable: bool,
    last_sync: Option<Instant>,
    keys_behind: u64,
    consecutive_failures: u32,
    next_poll: Instant,
}

struct PeerSlot {
    client: PeerClient,
    state: Mutex<PeerState>,
}

/// What one manifest entry needed locally.
enum Need {
    /// Local bytes match the advertised digest (or the local envelope
    /// is valid, which by content addressing means canonical).
    Nothing,
    /// No local envelope: a plain idempotent put commits it.
    Fetch,
    /// A local envelope exists but is invalid (torn write, bit rot):
    /// only an overwriting put can repair it.
    Repair,
}

/// The cluster membership of one node plus the sync machinery.
pub struct Cluster {
    node_id: String,
    sync_interval: Duration,
    fetch_deadline: Duration,
    peers: Vec<PeerSlot>,
    push_tx: SyncSender<(Tenant, String)>,
    push_rx: Mutex<Receiver<(Tenant, String)>>,
}

impl Cluster {
    /// Builds the membership for a node advertised as `node_id`
    /// (its bound address) with the given peer set.
    pub(crate) fn new(
        node_id: String,
        peers: &[SocketAddr],
        sync_interval: Duration,
        fetch_deadline: Duration,
    ) -> Cluster {
        let now = Instant::now();
        let (push_tx, push_rx) = std::sync::mpsc::sync_channel(PUSH_QUEUE_DEPTH);
        Cluster {
            node_id,
            sync_interval,
            fetch_deadline,
            peers: peers
                .iter()
                .map(|&addr| PeerSlot {
                    client: PeerClient::new(addr, fetch_deadline, 2),
                    state: Mutex::new(PeerState {
                        reachable: false,
                        last_sync: None,
                        keys_behind: 0,
                        consecutive_failures: 0,
                        next_poll: now,
                    }),
                })
                .collect(),
            push_tx,
            push_rx: Mutex::new(push_rx),
        }
    }

    /// This node's advertised identity (its bound address).
    pub fn node_id(&self) -> &str {
        &self.node_id
    }

    /// Point-in-time health of every peer, for `/healthz`/`/metrics`.
    pub fn snapshots(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .map(|slot| {
                let st = slot.state.lock().expect("peer state poisoned");
                PeerSnapshot {
                    addr: slot.client.addr().to_string(),
                    reachable: st.reachable,
                    last_sync_age_ms: st
                        .last_sync
                        .map(|t| t.elapsed().as_millis().min(u64::MAX as u128) as u64),
                    keys_behind: st.keys_behind,
                    consecutive_failures: u64::from(st.consecutive_failures),
                }
            })
            .collect()
    }

    /// Queues a best-effort push of a freshly stored key. Never
    /// blocks a handler: when the queue is full the push is dropped —
    /// the next anti-entropy round delivers the key anyway.
    pub(crate) fn notify_stored(&self, tenant: &Tenant, key_id: &str) {
        let _ = self.push_tx.try_send((tenant.clone(), key_id.to_string()));
    }

    /// Read-through: fetch `key_id` from the first peer that has it,
    /// committing through the audited idempotent put. Bounded by the
    /// fetch deadline across all peers; returns whether the key is
    /// now locally servable. Counted like any other peer fetch.
    pub(crate) fn fetch_from_peers(&self, store: &KeyStore, tenant: &Tenant, key_id: &str) -> bool {
        let deadline = Instant::now() + self.fetch_deadline;
        // Reachable peers first: sync lag is the common case and a
        // dead peer costs a whole connect timeout from the budget.
        let mut order: Vec<&PeerSlot> = self.peers.iter().collect();
        order.sort_by_key(|s| !s.state.lock().map(|st| st.reachable).unwrap_or(false));
        for slot in order {
            if Instant::now() >= deadline {
                break;
            }
            match slot.client.fetch(tenant, key_id) {
                Ok(envelope) => {
                    if commit(store, tenant, key_id, envelope, false) {
                        return true;
                    }
                }
                Err(_) => ppdt_obs::add(Counter::PeerFetchFailures, 1),
            }
        }
        false
    }

    /// The sync thread's body: anti-entropy rounds every sync
    /// interval, push notifications drained between rounds, `stopping`
    /// polled often enough for prompt shutdown.
    pub(crate) fn run_sync(&self, store: &KeyStore, stopping: &dyn Fn() -> bool) {
        let rx = self.push_rx.lock().expect("push queue poisoned");
        let mut next_round = Instant::now();
        while !stopping() {
            let wait =
                next_round.saturating_duration_since(Instant::now()).min(Duration::from_millis(50));
            match rx.recv_timeout(wait) {
                Ok((tenant, key_id)) => self.push_key(store, &tenant, &key_id),
                Err(RecvTimeoutError::Timeout) => {}
                // Unreachable while the Cluster owns a sender.
                Err(RecvTimeoutError::Disconnected) => return,
            }
            if Instant::now() >= next_round {
                self.sync_round(store);
                ppdt_obs::add(Counter::PeerSyncRounds, 1);
                next_round = Instant::now() + self.sync_interval;
            }
        }
    }

    /// One anti-entropy pass: poll each due peer's manifest and fetch
    /// whatever this node lacks.
    fn sync_round(&self, store: &KeyStore) {
        for slot in &self.peers {
            let now = Instant::now();
            {
                let st = slot.state.lock().expect("peer state poisoned");
                if now < st.next_poll {
                    continue; // backing off after failures
                }
            }
            match slot.client.manifest() {
                Err(_) => {
                    ppdt_obs::add(Counter::PeerUnreachable, 1);
                    let mut st = slot.state.lock().expect("peer state poisoned");
                    st.reachable = false;
                    st.consecutive_failures = st.consecutive_failures.saturating_add(1);
                    let shift = st.consecutive_failures.min(BACKOFF_CAP_SHIFT);
                    st.next_poll = now + self.sync_interval.saturating_mul(1 << shift);
                }
                Ok(manifest) => {
                    let mut behind = 0u64;
                    for entry in &manifest.keys {
                        // An unparseable tenant name is a hostile or
                        // broken peer — never let it shape a path.
                        let Some(tenant) = Tenant::from_wire(entry.tenant.as_deref()) else {
                            ppdt_obs::add(Counter::PeerFetchFailures, 1);
                            behind += 1;
                            continue;
                        };
                        if !self.reconcile(
                            store,
                            slot,
                            &tenant,
                            &entry.key_id,
                            &entry.envelope_digest,
                        ) {
                            behind += 1;
                        }
                    }
                    let mut st = slot.state.lock().expect("peer state poisoned");
                    st.reachable = true;
                    st.consecutive_failures = 0;
                    st.last_sync = Some(Instant::now());
                    st.keys_behind = behind;
                    st.next_poll = now;
                }
            }
        }
    }

    /// Brings one advertised `(tenant, key)` pair locally in sync
    /// with `slot`'s copy. Returns whether this node now holds a
    /// servable copy.
    fn reconcile(
        &self,
        store: &KeyStore,
        slot: &PeerSlot,
        tenant: &Tenant,
        key_id: &str,
        digest: &str,
    ) -> bool {
        if !valid_id(key_id) {
            // A hostile or broken peer advertising a malformed id.
            ppdt_obs::add(Counter::PeerFetchFailures, 1);
            return false;
        }
        let need = match store.raw_in(tenant, key_id) {
            Ok(Some(bytes)) if crate::keystore::content_id(&bytes) == *digest => Need::Nothing,
            Ok(Some(_)) => {
                // Digest disagreement. A valid local envelope is
                // canonical by content addressing — the peer is the
                // one with the problem. An invalid one is a detected
                // torn write: re-fetch and repair in place.
                match store.get_in(tenant, key_id) {
                    Ok(Some(_)) => Need::Nothing,
                    _ => Need::Repair,
                }
            }
            Ok(None) => Need::Fetch,
            Err(_) => Need::Repair,
        };
        match need {
            Need::Nothing => true,
            Need::Fetch | Need::Repair => match slot.client.fetch(tenant, key_id) {
                Ok(envelope) => {
                    commit(store, tenant, key_id, envelope, matches!(need, Need::Repair))
                }
                Err(_) => {
                    ppdt_obs::add(Counter::PeerFetchFailures, 1);
                    false
                }
            },
        }
    }

    /// Best-effort push of one freshly stored key to every peer. Each
    /// push is a plain `POST /v1/keys` store on the peer — idempotent
    /// and indistinguishable from a client store — so failures are
    /// simply left for the peer's own pull loop to repair.
    fn push_key(&self, store: &KeyStore, tenant: &Tenant, key_id: &str) {
        let Ok(Some(key)) = store.get_in(tenant, key_id) else {
            return; // vanished or invalid since the store: pull will sort it out
        };
        for slot in &self.peers {
            let _ = slot.client.push(tenant, &key);
        }
    }
}

/// Commits a fetched envelope through the audited idempotent put.
/// The content address is re-derived locally and must equal the id
/// the envelope was requested under — a lying peer cannot implant a
/// key under a foreign id, and `put` re-audits the key itself.
fn commit(
    store: &KeyStore,
    tenant: &Tenant,
    key_id: &str,
    envelope: KeyEnvelope,
    repair: bool,
) -> bool {
    let derived = match KeyStore::key_id(&envelope.key) {
        Ok(d) => d,
        Err(_) => {
            ppdt_obs::add(Counter::PeerFetchFailures, 1);
            return false;
        }
    };
    if derived != key_id {
        ppdt_obs::add(Counter::PeerFetchFailures, 1);
        return false;
    }
    let result = if repair {
        store.put_repairing(tenant, &envelope.key)
    } else {
        store.put_in(tenant, &envelope.key)
    };
    match result {
        Ok(_) => {
            ppdt_obs::add(Counter::PeerKeysFetched, 1);
            true
        }
        Err(_) => {
            ppdt_obs::add(Counter::PeerFetchFailures, 1);
            false
        }
    }
}
