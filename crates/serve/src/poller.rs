//! The readiness poller: parks idle keep-alive connections so they
//! cost no thread until bytes arrive.
//!
//! The daemon's parser pool is small and each parser blocks while
//! reading one request, so a thousand idle keep-alive sockets must
//! not each pin a parser between requests. Instead they are *parked*
//! here: a single thread multiplexes all of them with `poll(2)` and
//! hands a connection back to the parser queue only when it turns
//! readable (or EOF/error, which the parser resolves as a clean
//! close). The `poll` wrapper is a hand-rolled `extern "C"` binding —
//! std already links libc on Unix, so this adds **zero** new
//! dependencies, matching the crate's no-libc stance. On non-Unix
//! targets a peek-based tick loop stands in.
//!
//! Waking the poller (a fresh connection was parked while `poll`
//! sleeps) goes through a loopback TCP socketpair rather than
//! `pipe(2)`, again to stay inside the stdlib surface.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::conn::Conn;

/// Upper bound on one `poll` sleep, so the loop re-checks the
/// shutdown flag and expiry deadlines promptly.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(100);

#[cfg(unix)]
mod sys {
    use std::os::fd::AsRawFd;

    /// `struct pollfd` from `<poll.h>`, laid out by hand.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// Readability (including EOF).
    pub const POLLIN: i16 = 0x001;
    /// Error condition (output only).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (output only).
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    /// Blocks until one of `fds` is ready or `timeout_ms` elapses.
    /// A negative return is an errno-style failure the caller treats
    /// as "nothing ready".
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        if fds.is_empty() {
            return 0;
        }
        unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) }
    }

    pub fn pollfd_for(stream: &std::net::TcpStream) -> PollFd {
        PollFd { fd: stream.as_raw_fd(), events: POLLIN, revents: 0 }
    }
}

/// A connection parked on the poller, with the bookkeeping its
/// expiry decisions need.
pub(crate) struct Parked {
    pub conn: Conn,
    /// When it was parked (idle-timeout anchor).
    pub since: Instant,
}

/// The sending half of the poller: parser threads, workers, and the
/// acceptor park connections here; the poller thread owns the
/// receiving half and the `poll(2)` loop.
pub(crate) struct Poller {
    tx: Sender<Conn>,
    /// Write end of the wake socketpair; one byte interrupts `poll`.
    wake: Mutex<TcpStream>,
}

impl Poller {
    /// Parks `conn` until it turns readable (or expires). If the
    /// poller is gone (drain), the connection is simply dropped —
    /// exactly what shutdown wants.
    pub fn park(&self, conn: Conn) {
        if self.tx.send(conn).is_ok() {
            self.wake();
        }
    }

    fn wake(&self) {
        if let Ok(mut w) = self.wake.lock() {
            // Nonblocking: a full pipe means the poller is waking up
            // anyway.
            let _ = w.write(&[1u8]);
        }
    }
}

/// A loopback TCP socketpair standing in for `pipe(2)`: bind an
/// ephemeral listener, connect to it, accept, verify the peer is us
/// (another local process could race the accept), and throw the
/// listener away.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    for _ in 0..8 {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let write_end = TcpStream::connect(addr)?;
        let (read_end, peer) = listener.accept()?;
        if peer != write_end.local_addr()? {
            continue; // a stranger raced us; retry with a new port
        }
        write_end.set_nonblocking(true)?;
        read_end.set_nonblocking(true)?;
        let _ = write_end.set_nodelay(true);
        return Ok((write_end, read_end));
    }
    Err(std::io::Error::other("could not establish the poller wake socketpair"))
}

/// Builds the poller handle plus the pieces its loop thread needs
/// (the park receiver and the wake read end).
pub(crate) fn poller_parts() -> std::io::Result<(Poller, Receiver<Conn>, TcpStream)> {
    let (wake_tx, wake_rx) = wake_pair()?;
    let (tx, rx) = std::sync::mpsc::channel();
    Ok((Poller { tx, wake: Mutex::new(wake_tx) }, rx, wake_rx))
}

/// Drains the wake socketpair after a `poll` wakeup.
pub(crate) fn drain_wake(wake_rx: &mut TcpStream) {
    let mut buf = [0u8; 64];
    while matches!(wake_rx.read(&mut buf), Ok(n) if n > 0) {}
}

/// Returns the indices of `parked` whose sockets are readable (or in
/// EOF/error state), blocking up to `timeout`. Entries with bytes
/// already buffered in userspace are ready by definition and are
/// reported without polling (the kernel cannot see them).
#[cfg(unix)]
pub(crate) fn ready_indices(
    parked: &[Parked],
    wake_rx: &TcpStream,
    timeout: Duration,
) -> Vec<usize> {
    let mut ready: Vec<usize> = Vec::new();
    let mut fds = vec![sys::pollfd_for(wake_rx)];
    let mut fd_index: Vec<usize> = Vec::with_capacity(parked.len());
    for (i, p) in parked.iter().enumerate() {
        if p.conn.has_buffered() {
            ready.push(i);
        } else {
            fds.push(sys::pollfd_for(p.conn.socket()));
            fd_index.push(i);
        }
    }
    // Something is already actionable: don't sleep at all.
    let timeout_ms =
        if ready.is_empty() { timeout.as_millis().min(i32::MAX as u128) as i32 } else { 0 };
    let n = sys::poll_fds(&mut fds, timeout_ms);
    if n > 0 {
        for (slot, fd) in fds.iter().enumerate().skip(1) {
            if fd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0 {
                ready.push(fd_index[slot - 1]);
            }
        }
    }
    ready
}

/// Peek-based fallback for targets without `poll(2)`: a short sleep
/// tick, then a nonblocking `peek` per parked socket.
#[cfg(not(unix))]
pub(crate) fn ready_indices(
    parked: &[Parked],
    _wake_rx: &TcpStream,
    timeout: Duration,
) -> Vec<usize> {
    let mut ready = Vec::new();
    for (i, p) in parked.iter().enumerate() {
        if p.conn.has_buffered() {
            ready.push(i);
            continue;
        }
        let sock = p.conn.socket();
        if sock.set_nonblocking(true).is_err() {
            ready.push(i); // broken socket: let the parser reap it
            continue;
        }
        let mut probe = [0u8; 1];
        match sock.peek(&mut probe) {
            Ok(_) => ready.push(i), // bytes or EOF
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(_) => ready.push(i),
        }
        let _ = sock.set_nonblocking(false);
    }
    if ready.is_empty() {
        std::thread::sleep(timeout.min(Duration::from_millis(20)));
    }
    ready
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pair_interrupts_nothing_but_works() {
        let (mut w, mut r) = wake_pair().expect("socketpair");
        w.write_all(&[1]).expect("wake byte");
        // Nonblocking read end sees the byte promptly.
        let mut buf = [0u8; 8];
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match r.read(&mut buf) {
                Ok(n) if n > 0 => break,
                Ok(_) => panic!("wake pair closed"),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    assert!(Instant::now() < deadline, "wake byte never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("wake read failed: {e}"),
            }
        }
        drain_wake(&mut r);
    }

    #[cfg(unix)]
    #[test]
    fn poll_reports_readable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        // Nothing written yet: not readable within a short poll.
        let mut fds = [sys::pollfd_for(&server)];
        assert_eq!(sys::poll_fds(&mut fds, 50), 0, "quiet socket must not be ready");

        client.write_all(b"x").unwrap();
        let mut fds = [sys::pollfd_for(&server)];
        assert_eq!(sys::poll_fds(&mut fds, 2000), 1, "written byte must wake poll");
        assert!(fds[0].revents & sys::POLLIN != 0);
    }
}
