//! Per-connection state for the event-driven serve core.
//!
//! A [`Conn`] owns the buffered read side of one accepted socket (a
//! [`DeadlineStream`] whose deadline the parser re-arms per request)
//! and a shared [`ConnWriter`], the *ordered* write side. Pipelined
//! requests fan out to the worker pool and finish in any order; the
//! writer holds each response until every earlier sequence number on
//! the same connection has been written, so the wire order always
//! matches the request order (HTTP/1.1 §6.3.2).

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::http::{write_response_conn, DeadlineStream, Response};

/// Recycles request-body buffers across the keep-alive requests of one
/// connection. The parser takes a buffer before reading a body; whoever
/// finishes the request — a worker thread for queued jobs, the parser
/// itself for inline answers and rejections — puts it back. Capacity is
/// retained, so after the first request a connection reads every body
/// it can hold without touching the allocator.
pub(crate) struct BodyPool {
    slots: Mutex<Vec<Vec<u8>>>,
}

impl BodyPool {
    /// Most buffers parked at once: the parser holds at most one, plus
    /// a few returned by still-draining pipelined jobs.
    const MAX_SLOTS: usize = 4;
    /// Buffers that grew beyond this are dropped instead of pooled so
    /// one oversized request cannot pin memory for a connection's
    /// whole lifetime.
    const MAX_RETAINED_BYTES: usize = 4 << 20;

    pub fn new() -> Arc<BodyPool> {
        Arc::new(BodyPool { slots: Mutex::new(Vec::new()) })
    }

    /// A recycled buffer (cleared, capacity intact) or a fresh one.
    pub fn take(&self) -> Vec<u8> {
        let recycled = self.slots.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match recycled {
            Some(buf) => {
                ppdt_obs::add(ppdt_obs::Counter::PoolReuseHits, 1);
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool (cleared; dropped when over-sized
    /// or the pool is full).
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > Self::MAX_RETAINED_BYTES {
            return;
        }
        buf.clear();
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if slots.len() < Self::MAX_SLOTS {
            slots.push(buf);
        }
    }
}

/// One accepted connection: buffered reader, ordered writer, and the
/// bookkeeping the keep-alive policy needs (age, requests issued).
pub(crate) struct Conn {
    /// Buffered read half; the deadline is re-armed once per request.
    pub reader: BufReader<DeadlineStream>,
    /// Shared ordered write half (cloned into queued jobs).
    pub writer: std::sync::Arc<ConnWriter>,
    /// Body-buffer recycler shared with this connection's in-flight
    /// jobs (cloned into each queued job alongside the writer).
    pub bodies: Arc<BodyPool>,
    /// Accept time, for the connection-lifetime ceiling.
    pub created: Instant,
    /// Request sequence numbers issued so far (== requests parsed).
    pub seqs_issued: u64,
}

impl Conn {
    /// Wraps an accepted socket. Fails only if the fd cannot be
    /// duplicated for the write half.
    pub fn new(stream: TcpStream, deadline: Instant) -> std::io::Result<Conn> {
        let write_half = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(DeadlineStream::new(stream, deadline)),
            writer: std::sync::Arc::new(ConnWriter::new(write_half)),
            bodies: BodyPool::new(),
            created: Instant::now(),
            seqs_issued: 0,
        })
    }

    /// Issues the sequence number for the next request on this
    /// connection (0, 1, 2, ...).
    pub fn next_seq(&mut self) -> u64 {
        let seq = self.seqs_issued;
        self.seqs_issued += 1;
        seq
    }

    /// Re-arms the read deadline (once per request / stream).
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.reader.get_mut().set_deadline(deadline);
    }

    /// Bytes already buffered from the socket (a pipelined request
    /// may be fully in userspace, invisible to `poll(2)`).
    pub fn has_buffered(&self) -> bool {
        !self.reader.buffer().is_empty()
    }

    /// Every issued request has been answered on the wire: the
    /// connection is truly idle and safe to reap.
    pub fn quiescent(&self) -> bool {
        self.writer.written() >= self.seqs_issued
    }

    /// The underlying socket (for readiness polling).
    pub fn socket(&self) -> &TcpStream {
        self.reader.get_ref().stream()
    }
}

/// One response waiting for its turn on the wire.
struct PendingResponse {
    seq: u64,
    resp: Response,
    close: bool,
}

/// What the writer knows between submissions.
struct WriteState {
    stream: TcpStream,
    /// Next sequence number to write; everything below it is on the
    /// wire already.
    next: u64,
    /// Out-of-order completions parked until their turn.
    pending: Vec<PendingResponse>,
}

/// The ordered write half of one connection, shared between the
/// parser (inline answers, rejections) and the workers (handler
/// responses) via `Arc`.
///
/// `submit` either writes immediately (its sequence number is next)
/// or parks the response until the gap fills; `stream_response` hands
/// a streaming handler exclusive wire access once its turn arrives.
/// After a response flagged `close` the writer goes dead: later
/// submissions are dropped and the socket's write side is shut down,
/// which is how `Connection: close` mid-pipeline drains in order.
pub(crate) struct ConnWriter {
    state: Mutex<WriteState>,
    turn: Condvar,
    dead: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            state: Mutex::new(WriteState { stream, next: 0, pending: Vec::new() }),
            turn: Condvar::new(),
            dead: AtomicBool::new(false),
        }
    }

    /// The connection can take no further responses (peer gone, write
    /// failed, a `close` response was written, or a streaming handler
    /// panicked mid-body).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Locks the state; a poisoned lock (a panic inside a streaming
    /// closure) kills just this connection, never the daemon.
    fn lock(&self) -> Option<MutexGuard<'_, WriteState>> {
        match self.state.lock() {
            Ok(guard) => Some(guard),
            Err(_) => {
                self.mark_dead();
                None
            }
        }
    }

    /// Sequence numbers written so far (`next` unwritten one).
    pub fn written(&self) -> u64 {
        self.lock().map(|st| st.next).unwrap_or(u64::MAX)
    }

    /// Queues `resp` as the answer to request `seq` and flushes every
    /// response that is now consecutive from the front. `close` shuts
    /// the connection down after this response hits the wire.
    pub fn submit(&self, seq: u64, resp: Response, close: bool) {
        let Some(mut st) = self.lock() else { return };
        if self.is_dead() {
            return;
        }
        st.pending.push(PendingResponse { seq, resp, close });
        self.flush_ready(&mut st);
        drop(st);
        self.turn.notify_all();
    }

    /// Writes every pending response whose turn has come, in order.
    fn flush_ready(&self, st: &mut WriteState) {
        while !self.is_dead() {
            let Some(pos) = st.pending.iter().position(|p| p.seq == st.next) else {
                break;
            };
            let p = st.pending.swap_remove(pos);
            let ok = write_response_conn(&mut st.stream, &p.resp, p.close).is_ok();
            st.next += 1;
            if p.close || !ok {
                self.mark_dead();
                let _ = st.stream.shutdown(std::net::Shutdown::Write);
                st.pending.clear();
            }
        }
    }

    /// Sends an interim `100 Continue` — but only when this request is
    /// at the front of the response order with nothing pending, so the
    /// interim line cannot interleave with an earlier response. Returns
    /// whether it was sent (a client that gets nothing proceeds after
    /// its own grace period, per RFC 9110 §10.1.1).
    pub fn try_continue(&self, seq: u64) -> bool {
        use std::io::Write as _;
        let Some(mut st) = self.lock() else { return false };
        if self.is_dead() || st.next != seq || !st.pending.is_empty() {
            return false;
        }
        st.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_ok() && st.stream.flush().is_ok()
    }

    /// Hands `body` exclusive access to the socket once every earlier
    /// response has been written (blocking on the writer's condvar
    /// until it is request `seq`'s turn). The closure writes the whole
    /// response (head + chunks) and returns `Ok(close)`; an `Err`
    /// means the wire is mid-response and unrecoverable, so the
    /// connection is killed. Returns `Err(())` if the connection died
    /// before the turn came.
    pub fn stream_response<F>(&self, seq: u64, body: F) -> Result<(), ()>
    where
        F: FnOnce(&mut TcpStream) -> std::io::Result<bool>,
    {
        let Some(mut st) = self.lock() else { return Err(()) };
        while st.next != seq && !self.is_dead() {
            let Ok(next) = self.turn.wait(st) else {
                self.mark_dead();
                return Err(());
            };
            st = next;
        }
        if self.is_dead() {
            return Err(());
        }
        let outcome = body(&mut st.stream);
        st.next += 1;
        match outcome {
            Ok(close) => {
                if close {
                    self.mark_dead();
                    let _ = st.stream.shutdown(std::net::Shutdown::Write);
                    st.pending.clear();
                } else {
                    self.flush_ready(&mut st);
                }
                drop(st);
                self.turn.notify_all();
                Ok(())
            }
            Err(_) => {
                // Mid-body failure: the framing on the wire is broken,
                // nothing further can be answered.
                self.mark_dead();
                let _ = st.stream.shutdown(std::net::Shutdown::Both);
                st.pending.clear();
                drop(st);
                self.turn.notify_all();
                Err(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn responses_are_written_in_sequence_order() {
        let (client, server) = pair();
        let w = ConnWriter::new(server);
        // Out-of-order submits: 2, 0, 1. The wire must see 0, 1, 2.
        w.submit(2, Response::ok("\"two\"".into()), false);
        assert_eq!(w.written(), 0, "seq 2 must wait for 0 and 1");
        w.submit(0, Response::ok("\"zero\"".into()), false);
        assert_eq!(w.written(), 1);
        w.submit(1, Response::ok("\"one\"".into()), true); // close mid-pipeline
        assert_eq!(w.written(), 2, "the close response still flushes in order");
        assert!(w.is_dead(), "close kills the writer; seq 2 is dropped");

        let mut client = client;
        client.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        let zero = text.find("zero").expect("zero answered");
        let one = text.find("one").expect("one answered");
        assert!(zero < one, "in order: {text}");
        assert!(!text.contains("two"), "after close nothing more is written: {text}");
        assert!(text.contains("connection: keep-alive"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
    }

    #[test]
    fn body_pool_reuses_capacity_without_reallocating() {
        let pool = BodyPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(&[7u8; 1024]);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        pool.put(buf);
        let again = pool.take();
        assert_eq!(again.as_ptr(), ptr, "the same allocation comes back");
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty(), "recycled buffers come back cleared");
        // Oversized buffers are dropped, not pooled.
        pool.put(Vec::with_capacity(BodyPool::MAX_RETAINED_BYTES + 1));
        assert_eq!(pool.take().capacity(), 0, "oversized buffer was not retained");
    }

    #[test]
    fn continue_is_sent_only_at_the_front() {
        let (client, server) = pair();
        let w = ConnWriter::new(server);
        assert!(w.try_continue(0), "front of the line: interim ok");
        assert!(!w.try_continue(1), "not this request's turn: skipped");
        w.submit(0, Response::ok("{}".into()), true);
        let mut client = client;
        client.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200"), "{text}");
    }
}
