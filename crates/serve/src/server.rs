//! The daemon: an event-driven pipeline — accept, poll, parse, work —
//! with bounded queues between the stages, keep-alive connections,
//! pipelining, and graceful drain.
//!
//! The acceptor thread does nothing but `accept()` and park the raw
//! socket on the readiness poller; it never reads from a peer, so a
//! slow or hostile connection cannot stall accepting. The poller
//! (the private `poller` module) multiplexes every idle connection with one
//! `poll(2)` loop and hands a connection to the parser pool only when
//! bytes arrive — ten thousand idle keep-alive sockets cost zero
//! threads. A small dedicated parser pool reads and routes each
//! request under a per-request parse deadline
//! ([`ServerConfig::parse_deadline`], enforced by
//! [`DeadlineStream`](crate::http::DeadlineStream)) — a slow-loris
//! trickling bytes cannot reset it and is cut off with `408`, even on
//! the second request of a pipelined burst.
//!
//! A connection stays open across requests (HTTP/1.1 keep-alive,
//! honoring `Connection: close`/`keep-alive`) up to
//! [`ServerConfig::keep_alive_requests`] requests,
//! [`ServerConfig::idle_timeout`] between requests, and
//! [`ServerConfig::conn_lifetime`] overall. Pipelined requests fan
//! out to the worker pool concurrently; the per-connection
//! `ConnWriter` puts the responses back on
//! the wire in request order. Chunked (`Transfer-Encoding: chunked`)
//! bodies on `/v1/encode` and `/v1/classify` (and their
//! `/v2/t/{tenant}/` forms) bypass body buffering entirely: the whole
//! connection is handed to a worker, which decodes, encodes, and
//! streams the answer back batch-by-batch (the private `stream`
//! module) under a bounded memory ceiling.
//!
//! Tenant quotas are enforced at the worker boundary: a tenant past
//! [`ServerConfig::tenant_max_inflight`] concurrent requests is
//! answered `429` with `Retry-After` — unlike a `503` the daemon is
//! healthy; the quota, not the queue, said no.
//!
//! Liveness (`/healthz`), `/metrics`, and `/v1/version` are answered
//! by the parser threads directly so they keep responding while the
//! worker pool is saturated; everything else is pushed onto the
//! bounded job queue. When a queue is full the request is answered
//! `503` with `Retry-After` immediately instead of buffering — the
//! backpressure is visible to the client, not hidden in latency — and
//! the connection closes (a 503 always closes: the daemon sheds load,
//! it does not babysit it). Workers drop jobs that waited past the
//! per-request deadline (the client has likely given up; doing the
//! work anyway is wasted CPU under overload), and a panicking handler
//! is caught, answered `500`, and the worker lives on.
//!
//! Shutdown is cooperative: a SIGINT/SIGTERM (or a programmatic
//! [`Server::shutdown_flag`] store) makes the acceptor stop accepting
//! and the poller drop its parked connections; parsers drain the
//! readable backlog, workers drain the queued jobs and finish their
//! in-flight requests, and [`Server::run`] returns.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppdt_error::PpdtError;
use ppdt_obs::Counter;
use serde::Serialize;

use crate::cache::Caches;
use crate::conn::{Conn, ConnWriter};
use crate::handlers::{self, Endpoint, HandlerCtx, Route, ENDPOINTS};
use crate::http::{read_body_into, read_head, HttpError, Request, Response};
use crate::keystore::Tenant;
use crate::peer::{Cluster, PeerSnapshot};
use crate::poller::{self, Parked, Poller, POLL_TICK};
use crate::stream::{self, StreamEnd};

/// Consecutive pipelined requests one parser drains from a single
/// connection before re-parking it, so one chatty client cannot
/// monopolize a parser thread.
const PIPELINE_BURST: u64 = 32;

/// Everything tunable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` resolves via [`ppdt_obs::threads`]
    /// (`PPDT_THREADS` / available parallelism).
    pub workers: usize,
    /// Bounded queue depth between the parser and the pool; a full
    /// queue answers `503` immediately.
    pub queue_capacity: usize,
    /// Queued requests older than this are answered `503` instead of
    /// being processed.
    pub request_deadline: Duration,
    /// Per-request body cap, bytes (declared `Content-Length` or
    /// accumulated chunked payload alike).
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Dedicated parse/inline threads; `0` resolves to `2`. They read
    /// requests off readable connections and answer `/healthz`,
    /// `/metrics`, and `/v1/version`, so slow peers and a saturated
    /// worker pool cannot stall liveness.
    pub parser_threads: usize,
    /// Hard ceiling on the total time a connection may take to deliver
    /// one complete request (head + body). Unlike `io_timeout` it is
    /// not reset by each byte, so it bounds slow-loris peers; on a
    /// kept-alive connection it re-arms once per request.
    pub parse_deadline: Duration,
    /// Routes the test-only `POST /v1/debug/*` endpoints.
    pub debug_endpoints: bool,
    /// Compiled-plan cache capacity (keys held at once); `0` disables
    /// the cache and every request re-loads, re-audits, and
    /// re-compiles its key (the benches use this for the cold path).
    pub plan_cache_capacity: usize,
    /// Validated/decoded tree cache capacity; `0` disables it.
    pub tree_cache_capacity: usize,
    /// Requests served per connection before the daemon closes it
    /// (`0` disables keep-alive entirely: every response carries
    /// `Connection: close`).
    pub keep_alive_requests: u64,
    /// How long an idle keep-alive connection (no request in flight,
    /// nothing buffered) may sit parked before it is reaped.
    pub idle_timeout: Duration,
    /// Hard ceiling on one connection's total lifetime, busy or not.
    pub conn_lifetime: Duration,
    /// Total-time budget for one streaming (chunked) request,
    /// replacing `parse_deadline` while the body streams.
    pub stream_deadline: Duration,
    /// Rows per batch on the streaming encode/classify path — the
    /// daemon's memory ceiling is a few batches of columns, never the
    /// whole dataset.
    pub stream_chunk_rows: usize,
    /// Connections parked on the poller at once; above it new
    /// connections are shed with `503`.
    pub max_connections: usize,
    /// Cluster peers (other daemons' addresses, from repeated
    /// `--peer` flags). Empty means standalone: no sync thread, no
    /// read-through, peer endpoints answer about this node only.
    pub peers: Vec<SocketAddr>,
    /// Anti-entropy cadence: how often the sync thread polls each
    /// peer's manifest (unreachable peers back off exponentially from
    /// this base).
    pub sync_interval: Duration,
    /// Budget for a read-through fetch: the longest a request for a
    /// not-yet-synced key may wait on peers before answering 404.
    pub peer_fetch_deadline: Duration,
    /// Keys one tenant may hold at once; storing past the quota
    /// answers `429` with `Retry-After`. `0` disables the quota.
    pub tenant_max_keys: usize,
    /// Requests one tenant may have in flight on the worker pool at
    /// once; past it the request is answered `429` (the connection
    /// survives — unlike a `503` the daemon is healthy, the tenant is
    /// over its share). `0` disables the quota.
    pub tenant_max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            request_deadline: Duration::from_secs(10),
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
            io_timeout: Duration::from_secs(30),
            parser_threads: 0,
            parse_deadline: Duration::from_secs(5),
            debug_endpoints: false,
            plan_cache_capacity: 64,
            tree_cache_capacity: 32,
            keep_alive_requests: 100,
            idle_timeout: Duration::from_secs(10),
            conn_lifetime: Duration::from_secs(300),
            stream_deadline: Duration::from_secs(120),
            stream_chunk_rows: 8192,
            max_connections: 1024,
            peers: Vec::new(),
            sync_interval: Duration::from_secs(2),
            peer_fetch_deadline: Duration::from_secs(2),
            tenant_max_keys: 0,
            tenant_max_inflight: 0,
        }
    }
}

/// Per-endpoint request/error/latency counters, readable while the
/// server runs. Latency goes through the shared log-bucketed
/// histogram so `/metrics` can report percentiles, not just
/// min/mean/max.
#[derive(Debug, Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: ppdt_obs::AtomicLogHistogram,
}

/// Per-tenant counters: one row per tenant that has been seen since
/// the daemon started. The in-flight gauge doubles as the enforcement
/// point for [`ServerConfig::tenant_max_inflight`].
#[derive(Debug, Default)]
struct TenantStats {
    requests: AtomicU64,
    errors: AtomicU64,
    quota_rejected: AtomicU64,
    in_flight: AtomicU64,
}

/// RAII handle on one tenant's in-flight slot (a panicking handler
/// cannot leak it).
struct TenantFlight(Arc<TenantStats>);

impl Drop for TenantFlight {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Live serve-side metrics (lock-free except the per-tenant map,
/// which takes one short mutex hop per request; rendered by
/// `/metrics`).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    per_endpoint: [EndpointStats; ENDPOINTS.len()],
    tenants: Mutex<HashMap<String, Arc<TenantStats>>>,
    rejected: AtomicU64,
    in_flight: AtomicU64,
    in_flight_peak: AtomicU64,
    keepalive_reuses: AtomicU64,
    pipelined_requests: AtomicU64,
    streamed_chunks: AtomicU64,
}

impl ServeMetrics {
    fn requested(&self, e: Endpoint) {
        self.per_endpoint[e.index()].requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The stats row for one tenant, created on first sight.
    fn tenant(&self, tenant: &Tenant) -> Arc<TenantStats> {
        let mut map = self.tenants.lock().expect("tenant metrics lock");
        Arc::clone(map.entry(tenant.as_str().to_string()).or_default())
    }

    fn tenant_errored(&self, tenant: &Tenant) {
        self.tenant(tenant).errors.fetch_add(1, Ordering::Relaxed);
    }

    fn errored(&self, e: Endpoint) {
        self.per_endpoint[e.index()].errors.fetch_add(1, Ordering::Relaxed);
    }

    fn timed(&self, e: Endpoint, elapsed: Duration) {
        let micros = elapsed.as_micros() as u64;
        self.per_endpoint[e.index()].latency.record(micros);
    }

    /// Requests answered `503` (queue full or deadline expired).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently processed requests.
    pub fn in_flight_peak(&self) -> u64 {
        self.in_flight_peak.load(Ordering::Relaxed)
    }

    /// Requests served on an already-open connection.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for `/metrics` and reports.
    pub fn snapshot(&self) -> ServeSnapshot {
        let mut tenants: Vec<TenantSnapshot> = self
            .tenants
            .lock()
            .expect("tenant metrics lock")
            .iter()
            .map(|(name, s)| TenantSnapshot {
                tenant: name.clone(),
                requests: s.requests.load(Ordering::Relaxed),
                errors: s.errors.load(Ordering::Relaxed),
                quota_rejected: s.quota_rejected.load(Ordering::Relaxed),
                in_flight: s.in_flight.load(Ordering::Relaxed),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServeSnapshot {
            rejected: self.rejected(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_peak: self.in_flight_peak(),
            keepalive_reuses: self.keepalive_reuses(),
            pipelined_requests: self.pipelined_requests.load(Ordering::Relaxed),
            streamed_chunks: self.streamed_chunks.load(Ordering::Relaxed),
            endpoints: ENDPOINTS
                .iter()
                .map(|&e| {
                    let s = &self.per_endpoint[e.index()];
                    let h = s.latency.snapshot();
                    EndpointSnapshot {
                        endpoint: e.name().to_string(),
                        requests: s.requests.load(Ordering::Relaxed),
                        errors: s.errors.load(Ordering::Relaxed),
                        latency_micros: h.sum(),
                        min_micros: h.min(),
                        mean_micros: h.mean(),
                        p50_micros: h.quantile(0.5),
                        p99_micros: h.quantile(0.99),
                        max_micros: h.max(),
                    }
                })
                .collect(),
            tenants,
        }
    }
}

/// One per-tenant `/metrics` row.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct TenantSnapshot {
    /// Tenant name (`default` for the implicit `/v1` tenant).
    pub tenant: String,
    /// Requests routed under the tenant (all endpoints).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx.
    pub errors: u64,
    /// Requests bounced `429` by a tenant quota (keys or in-flight).
    pub quota_rejected: u64,
    /// The tenant's requests being processed right now.
    pub in_flight: u64,
}

/// One `/metrics` row.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct EndpointSnapshot {
    /// Stable endpoint name ([`Endpoint::name`]).
    pub endpoint: String,
    /// Requests routed to the endpoint (including rejected ones).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx.
    pub errors: u64,
    /// Summed handler latency, microseconds (inline endpoints included).
    pub latency_micros: u64,
    /// Fastest timed request, microseconds (0 when nothing was timed).
    pub min_micros: u64,
    /// Mean handler latency, microseconds (0 when nothing was timed).
    pub mean_micros: f64,
    /// Median handler latency, microseconds — upper bound from the
    /// log-bucketed histogram (≤ 1.6% over the exact sample median).
    pub p50_micros: u64,
    /// 99th-percentile handler latency, microseconds (same bound).
    pub p99_micros: u64,
    /// Slowest timed request, microseconds.
    pub max_micros: u64,
}

/// The `serve` half of the `/metrics` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct ServeSnapshot {
    /// `503` answers (queue full + deadline expiries).
    pub rejected: u64,
    /// Requests being processed right now.
    pub in_flight: u64,
    /// High-water mark of `in_flight`.
    pub in_flight_peak: u64,
    /// Requests served on an already-open keep-alive connection.
    pub keepalive_reuses: u64,
    /// Requests parsed while an earlier response on the same
    /// connection was still outstanding.
    pub pipelined_requests: u64,
    /// Transfer-encoding chunks moved by streaming encode/classify
    /// (request chunks decoded plus response chunks written).
    pub streamed_chunks: u64,
    /// Per-endpoint counters, [`ENDPOINTS`] order.
    pub endpoints: Vec<EndpointSnapshot>,
    /// Per-tenant counters, sorted by tenant name. Only tenants seen
    /// since startup appear.
    pub tenants: Vec<TenantSnapshot>,
}

/// `GET /healthz` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct HealthzBody {
    /// Always `"ok"` while the daemon answers at all.
    pub status: String,
    /// Resolved worker-pool size.
    pub workers: usize,
    /// Configured queue depth.
    pub queue_capacity: usize,
    /// Per-peer sync health (empty on a standalone node).
    pub peers: Vec<PeerSnapshot>,
}

/// `GET /metrics` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct MetricsBody {
    /// Serve-layer counters.
    pub serve: ServeSnapshot,
    /// Process-wide [`ppdt_obs`] counters and phase timings.
    pub process: ppdt_obs::MetricsSnapshot,
    /// Per-peer sync health (empty on a standalone node).
    pub peers: Vec<PeerSnapshot>,
}

/// One queued buffered-body unit of work: the parsed request plus the
/// ordered writer (and sequence slot) to answer through.
struct Job {
    writer: Arc<ConnWriter>,
    /// The connection's body-buffer recycler: the worker returns the
    /// request body here when done, so the next keep-alive request on
    /// the same connection reads into it without reallocating.
    bodies: Arc<crate::conn::BodyPool>,
    seq: u64,
    close: bool,
    req: Request,
    route: Route,
    enqueued: Instant,
}

/// A streaming (chunked-body) request: the worker takes the whole
/// connection, consumes the body incrementally, and re-parks the
/// connection when done.
struct StreamJob {
    conn: Conn,
    seq: u64,
    close: bool,
    expect_continue: bool,
    route: Route,
    enqueued: Instant,
}

/// What flows over the worker queue.
enum Work {
    Buffered(Job),
    Stream(StreamJob),
}

/// What the parser decides after one request on a connection.
enum Step {
    /// Another pipelined request may already be buffered: parse again.
    Continue,
    /// Nothing buffered: park on the poller until readable.
    Park,
    /// The connection is finished (close requested, wire error, EOF).
    Done,
    /// Hand the whole connection to a worker for a streaming body.
    Stream { seq: u64, close: bool, expect_continue: bool, route: Route },
}

/// A bound, not-yet-running custodian daemon.
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    parsers: usize,
    store: crate::keystore::KeyStore,
    caches: Caches,
    cluster: Option<Cluster>,
    node_id: String,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
}

impl Server {
    /// Binds the listener (so the final address — including an
    /// OS-assigned port for `:0` — is known before [`Server::run`]).
    pub fn bind(cfg: ServerConfig, store: crate::keystore::KeyStore) -> Result<Server, PpdtError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("bind: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("local_addr: {e}"),
        })?;
        // Non-blocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true).map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("set_nonblocking: {e}"),
        })?;
        let workers = if cfg.workers == 0 { ppdt_obs::threads(None) } else { cfg.workers };
        let parsers = if cfg.parser_threads == 0 { 2 } else { cfg.parser_threads };
        let caches = Caches::new(cfg.plan_cache_capacity, cfg.tree_cache_capacity);
        // The bound address (with `:0` resolved) is the node's cluster
        // identity: unique per daemon and exactly what peers dial.
        let node_id = addr.to_string();
        let cluster = (!cfg.peers.is_empty()).then(|| {
            Cluster::new(node_id.clone(), &cfg.peers, cfg.sync_interval, cfg.peer_fetch_deadline)
        });
        Ok(Server {
            cfg,
            listener,
            addr,
            workers,
            parsers,
            store,
            caches,
            cluster,
            node_id,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(ServeMetrics::default()),
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cooperative shutdown handle: store `true` and [`Server::run`]
    /// drains and returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Live metrics handle (shared with `/metrics`).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::signalled()
    }

    /// The borrow bundle every pooled handler runs against.
    fn ctx(&self) -> HandlerCtx<'_> {
        HandlerCtx {
            store: &self.store,
            caches: &self.caches,
            cluster: self.cluster.as_ref(),
            node_id: &self.node_id,
            tenant_max_keys: self.cfg.tenant_max_keys,
        }
    }

    /// Accepts and serves until shutdown, then drains. Blocks the
    /// calling thread for the daemon's whole life.
    pub fn run(self) -> Result<(), PpdtError> {
        // Readiness plumbing: everyone parks connections on `poller`;
        // the poller thread owns the receiving side and feeds readable
        // connections to the parsers over a bounded hand-off.
        let (poller, park_rx, wake_rx) = poller::poller_parts().map_err(|e| PpdtError::Io {
            path: None,
            detail: format!("poller wake channel: {e}"),
        })?;
        let (conn_tx, conn_rx) =
            std::sync::mpsc::sync_channel::<Conn>(self.cfg.queue_capacity.max(self.parsers));
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Work>(self.cfg.queue_capacity);
        let conn_rx = Mutex::new(conn_rx);
        let job_rx = Mutex::new(job_rx);
        let this = &self;
        let poller_ref = &poller;
        let joined = crossbeam::thread::scope(|s| {
            for _ in 0..this.workers {
                let job_rx = &job_rx;
                s.spawn(move |_| this.worker_loop(job_rx, poller_ref));
            }
            for _ in 0..this.parsers {
                let conn_rx = &conn_rx;
                let tx = job_tx.clone();
                s.spawn(move |_| this.parser_loop(conn_rx, tx, poller_ref));
            }
            // Each parser owns a job-sender clone; dropping the
            // original here means the workers' `recv()` unblocks as
            // soon as the last parser exits and the queue is empty.
            drop(job_tx);
            // Cluster mode: one sync thread per daemon runs the
            // anti-entropy loop; it polls the shutdown flag at sub-tick
            // granularity so the drain never waits on a sleeping peer
            // poll.
            if let Some(cluster) = &this.cluster {
                s.spawn(move |_| cluster.run_sync(&this.store, &|| this.stopping()));
            }
            s.spawn(move |_| this.poller_loop(park_rx, wake_rx, conn_tx));
            this.accept_loop(poller_ref);
            // The acceptor returning means shutdown began; the poller
            // loop notices too, drops its parked connections and the
            // connection sender, which wakes every parser out of
            // `recv()`: the drain barrier cascades poller → parser →
            // worker.
        });
        joined.map_err(|_| PpdtError::internal("a server thread panicked"))
    }

    /// Accepts sockets and parks them on the poller; never reads from
    /// a peer, so no connection — however slow or hostile — can stall
    /// `accept()`.
    fn accept_loop(&self, poller: &Poller) {
        while !self.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
                    // Pipelined exchanges are many small writes; Nagle
                    // plus delayed ACK would serialize them.
                    let _ = stream.set_nodelay(true);
                    let deadline = Instant::now() + self.cfg.parse_deadline;
                    // fd dup failure drops the socket.
                    if let Ok(conn) = Conn::new(stream, deadline) {
                        poller.park(conn);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE); back off
                    // rather than spinning.
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// The readiness loop: owns every parked connection, polls them
    /// all at once, feeds readable ones to the parsers, and reaps
    /// idle/expired/dead ones.
    fn poller_loop(
        &self,
        park_rx: Receiver<Conn>,
        mut wake_rx: std::net::TcpStream,
        conn_tx: SyncSender<Conn>,
    ) {
        let mut parked: Vec<Parked> = Vec::new();
        while !self.stopping() {
            // Take in newly parked connections (from the acceptor,
            // parsers, and streaming workers).
            while let Ok(conn) = park_rx.try_recv() {
                if parked.len() >= self.cfg.max_connections {
                    self.shed_conn(conn);
                } else {
                    parked.push(Parked { conn, since: Instant::now() });
                }
            }
            // Reap: broken writers, idle sockets past the idle
            // deadline, and connections over the lifetime ceiling. A
            // connection with a response still in flight is never
            // reaped here — the worker owns its fate.
            parked.retain(|p| {
                if p.conn.writer.is_dead() {
                    return false;
                }
                if !p.conn.quiescent() {
                    return true;
                }
                p.since.elapsed() < self.cfg.idle_timeout
                    && p.conn.created.elapsed() < self.cfg.conn_lifetime
            });
            // Block in poll(2) until someone is readable, a park
            // arrives (wake byte), or the tick elapses.
            let mut ready = poller::ready_indices(&parked, &wake_rx, POLL_TICK);
            poller::drain_wake(&mut wake_rx);
            // Dispatch readable connections; descending order keeps
            // the swap_remove indices valid.
            ready.sort_unstable_by(|a, b| b.cmp(a));
            let mut backoff = false;
            for i in ready {
                let p = parked.swap_remove(i);
                match conn_tx.try_send(p.conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(conn)) => {
                        // Every parser is busy; keep it parked (it
                        // stays readable) and retry next tick.
                        parked.push(Parked { conn, since: p.since });
                        backoff = true;
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            if backoff {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        // Shutdown: dropping `parked` closes every idle connection and
        // dropping `conn_tx` starts the parser → worker drain cascade.
    }

    /// Sheds a connection over the [`ServerConfig::max_connections`]
    /// ceiling with a `503`.
    fn shed_conn(&self, conn: Conn) {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        ppdt_obs::add(Counter::HttpRejected, 1);
        let resp = HttpError::overloaded("connection ceiling reached").to_response();
        conn.writer.submit(conn.seqs_issued, resp, true);
    }

    fn parser_loop(&self, rx: &Mutex<Receiver<Conn>>, tx: SyncSender<Work>, poller: &Poller) {
        loop {
            let conn = {
                let Ok(guard) = rx.lock() else { return };
                match guard.recv() {
                    Ok(conn) => conn,
                    Err(_) => return, // sender dropped: drain complete
                }
            };
            self.drive_conn(conn, &tx, poller);
        }
    }

    /// Drains one readable connection: parses up to [`PIPELINE_BURST`]
    /// buffered requests, then either parks it back on the poller,
    /// hands it to a streaming worker, or drops it.
    fn drive_conn(&self, mut conn: Conn, tx: &SyncSender<Work>, poller: &Poller) {
        for _ in 0..PIPELINE_BURST {
            match self.parse_one(&mut conn, tx) {
                Step::Continue => continue,
                Step::Park => {
                    poller.park(conn);
                    return;
                }
                Step::Done => return,
                Step::Stream { seq, close, expect_continue, route } => {
                    let job = StreamJob {
                        conn,
                        seq,
                        close,
                        expect_continue,
                        route,
                        enqueued: Instant::now(),
                    };
                    match tx.try_send(Work::Stream(job)) {
                        Ok(()) => {}
                        Err(TrySendError::Full(Work::Stream(job))) => {
                            self.submit_error(
                                &job.conn.writer,
                                job.seq,
                                Some(job.route.endpoint),
                                &HttpError::overloaded("request queue is full"),
                                true,
                            );
                        }
                        Err(TrySendError::Disconnected(Work::Stream(job))) => {
                            self.submit_error(
                                &job.conn.writer,
                                job.seq,
                                Some(job.route.endpoint),
                                &HttpError::overloaded("server is shutting down"),
                                true,
                            );
                        }
                        Err(_) => unreachable!("a stream job bounces back as a stream job"),
                    }
                    return;
                }
            }
        }
        // Burst cap hit with more requests buffered: back of the line.
        poller.park(conn);
    }

    /// Parses, routes, and dispatches one request off a readable
    /// connection, under a freshly armed parse deadline.
    fn parse_one(&self, conn: &mut Conn, tx: &SyncSender<Work>) -> Step {
        if conn.writer.is_dead() {
            return Step::Done;
        }
        conn.set_deadline(Instant::now() + self.cfg.parse_deadline);
        let head = match read_head(&mut conn.reader) {
            Ok(Some(head)) => head,
            // Clean EOF between requests: the peer is done.
            Ok(None) => return Step::Done,
            Err(e) => {
                // Wire-level failure (408/400/431): the byte stream is
                // not trustworthy past this point, so answer and close.
                let seq = conn.next_seq();
                self.submit_error(&conn.writer, seq, None, &e, true);
                return Step::Done;
            }
        };
        let seq = conn.next_seq();
        ppdt_obs::add(Counter::HttpRequests, 1);
        if seq > 0 {
            ppdt_obs::add(Counter::HttpKeepaliveReuses, 1);
            self.metrics.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
        }
        if conn.writer.written() < seq {
            ppdt_obs::add(Counter::HttpPipelinedRequests, 1);
            self.metrics.pipelined_requests.fetch_add(1, Ordering::Relaxed);
        }
        let close = head.close
            || self.cfg.keep_alive_requests == 0
            || conn.seqs_issued >= self.cfg.keep_alive_requests
            || conn.created.elapsed() >= self.cfg.conn_lifetime
            || self.stopping();

        let route = match handlers::route_parts(&head.method, &head.path, self.cfg.debug_endpoints)
        {
            Ok(r) => r,
            Err(e) => {
                // Routing errors (404/405) are request-level: consume
                // the body so the connection can survive.
                let mut body = conn.bodies.take();
                match read_body_into(&mut conn.reader, &head, self.cfg.max_body_bytes, &mut body) {
                    Ok(()) => {
                        conn.bodies.put(body);
                        self.submit_error(&conn.writer, seq, None, &e, close);
                        return self.after_answer(conn, close);
                    }
                    Err(be) => {
                        self.submit_error(&conn.writer, seq, None, &be, true);
                        return Step::Done;
                    }
                }
            }
        };
        self.metrics.requested(route.endpoint);
        self.metrics.tenant(&route.tenant).requests.fetch_add(1, Ordering::Relaxed);

        // A chunked body on the hot endpoints streams: the worker
        // consumes it incrementally, so don't read a byte of it here.
        if head.chunked && matches!(route.endpoint, Endpoint::Encode | Endpoint::Classify) {
            return Step::Stream { seq, close, expect_continue: head.expect_continue, route };
        }

        if head.expect_continue && head.has_body() {
            conn.writer.try_continue(seq);
        }
        // The body lands in a per-connection recycled buffer: requests
        // after the first on a keep-alive connection read it without
        // touching the allocator.
        let mut body = conn.bodies.take();
        if let Err(e) = read_body_into(&mut conn.reader, &head, self.cfg.max_body_bytes, &mut body)
        {
            self.submit_error(&conn.writer, seq, Some(route.endpoint), &e, true);
            return Step::Done;
        }

        if route.endpoint.is_inline() {
            // Liveness, metrics, and version negotiation bypass the
            // queue so they stay responsive while the pool is
            // saturated. None of them reads the body, so the buffer
            // goes straight back.
            conn.bodies.put(body);
            let start = Instant::now();
            let resp = match route.endpoint {
                Endpoint::Healthz => self.render_healthz(),
                Endpoint::Version => self.render_version(),
                _ => self.render_metrics(),
            };
            self.metrics.timed(route.endpoint, start.elapsed());
            self.submit(&conn.writer, seq, route.endpoint, resp, close);
            return self.after_answer(conn, close);
        }

        let req = Request { method: head.method, path: head.path, body };
        let job = Job {
            writer: Arc::clone(&conn.writer),
            bodies: Arc::clone(&conn.bodies),
            seq,
            close,
            req,
            route,
            enqueued: Instant::now(),
        };
        match tx.try_send(Work::Buffered(job)) {
            Ok(()) => {}
            Err(TrySendError::Full(Work::Buffered(job))) => {
                self.submit_error(
                    &job.writer,
                    job.seq,
                    Some(job.route.endpoint),
                    &HttpError::overloaded("request queue is full"),
                    true,
                );
                return Step::Done;
            }
            Err(TrySendError::Disconnected(Work::Buffered(job))) => {
                self.submit_error(
                    &job.writer,
                    job.seq,
                    Some(job.route.endpoint),
                    &HttpError::overloaded("server is shutting down"),
                    true,
                );
                return Step::Done;
            }
            Err(_) => unreachable!("a buffered job bounces back as a buffered job"),
        }
        self.after_answer(conn, close)
    }

    /// After a request is dispatched: close ends the connection, more
    /// buffered bytes mean another pipelined request, anything else
    /// parks.
    fn after_answer(&self, conn: &Conn, close: bool) -> Step {
        if close || conn.writer.is_dead() {
            Step::Done
        } else if conn.has_buffered() {
            Step::Continue
        } else {
            Step::Park
        }
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<Work>>, poller: &Poller) {
        loop {
            // Lock only around `recv` so workers take turns pulling
            // jobs; processing runs unlocked.
            let work = {
                let Ok(guard) = rx.lock() else { return };
                match guard.recv() {
                    Ok(work) => work,
                    Err(_) => return, // sender dropped: drain complete
                }
            };
            match work {
                Work::Buffered(job) => self.process(job),
                Work::Stream(job) => self.process_stream(job, poller),
            }
        }
    }

    /// RAII in-flight gauge (a panicking handler cannot leak it).
    fn enter_flight(&self) -> impl Drop + '_ {
        let in_flight = self.metrics.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.in_flight_peak.fetch_max(in_flight, Ordering::SeqCst);
        ppdt_obs::record_max(Counter::HttpInFlightPeak, in_flight);
        struct InFlight<'a>(&'a ServeMetrics);
        impl Drop for InFlight<'_> {
            fn drop(&mut self) {
                self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        InFlight(&self.metrics)
    }

    /// Per-tenant RAII in-flight gauge, doubling as the enforcement
    /// point for [`ServerConfig::tenant_max_inflight`]: over the
    /// quota the slot is still released on drop but the request is
    /// answered `429` instead of being processed.
    fn enter_tenant_flight(&self, tenant: &Tenant) -> Result<TenantFlight, HttpError> {
        let stats = self.metrics.tenant(tenant);
        let n = stats.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let guard = TenantFlight(stats);
        let cap = self.cfg.tenant_max_inflight as u64;
        if cap > 0 && n > cap {
            guard.0.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(HttpError::too_many_requests(format!(
                "tenant {tenant} is over its in-flight quota ({cap})"
            )));
        }
        Ok(guard)
    }

    fn process(&self, mut job: Job) {
        if job.enqueued.elapsed() > self.cfg.request_deadline {
            self.submit_error(
                &job.writer,
                job.seq,
                Some(job.route.endpoint),
                &HttpError::overloaded("request waited past its deadline"),
                true,
            );
            return;
        }
        let _in_flight = self.enter_flight();
        let _tenant_flight = match self.enter_tenant_flight(&job.route.tenant) {
            Ok(guard) => guard,
            Err(e) => {
                // A quota bounce consumed the body cleanly (it was
                // buffered before queuing), so the connection survives.
                job.bodies.put(std::mem::take(&mut job.req.body));
                self.metrics.tenant_errored(&job.route.tenant);
                self.submit_error(&job.writer, job.seq, Some(job.route.endpoint), &e, job.close);
                return;
            }
        };
        let _t = ppdt_obs::phase(job.route.endpoint.phase_name());
        let start = Instant::now();
        // A handler panic is a bug, but it must cost one 500, not a
        // worker thread for the daemon's remaining lifetime.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handlers::handle(&job.route, &job.req, &self.ctx())
        }));
        // The handler is done with the body: recycle the buffer for
        // the connection's next keep-alive request.
        job.bodies.put(std::mem::take(&mut job.req.body));
        self.metrics.timed(job.route.endpoint, start.elapsed());
        match outcome {
            Ok(Ok(resp)) => {
                if resp.status >= 400 {
                    self.metrics.tenant_errored(&job.route.tenant);
                }
                self.submit(&job.writer, job.seq, job.route.endpoint, resp, job.close)
            }
            Ok(Err(e)) => {
                // Handler-level errors consumed the body cleanly: the
                // connection survives (overload 503s always close).
                let close = job.close || e.status == 503;
                self.metrics.tenant_errored(&job.route.tenant);
                self.submit_error(&job.writer, job.seq, Some(job.route.endpoint), &e, close);
            }
            Err(_) => {
                let e = HttpError::from(PpdtError::internal(format!(
                    "handler for {} panicked",
                    job.route.endpoint.name()
                )));
                self.metrics.tenant_errored(&job.route.tenant);
                self.submit_error(&job.writer, job.seq, Some(job.route.endpoint), &e, job.close);
            }
        }
    }

    /// Runs one streaming request end to end on a worker thread, then
    /// re-parks the connection (keep-alive) or drops it.
    fn process_stream(&self, mut job: StreamJob, poller: &Poller) {
        if job.enqueued.elapsed() > self.cfg.request_deadline {
            self.submit_error(
                &job.conn.writer,
                job.seq,
                Some(job.route.endpoint),
                &HttpError::overloaded("request waited past its deadline"),
                true,
            );
            return;
        }
        let _in_flight = self.enter_flight();
        let _tenant_flight = match self.enter_tenant_flight(&job.route.tenant) {
            Ok(guard) => guard,
            Err(e) => {
                // The chunked body was never consumed, so the wire is
                // mid-request: answer `429` and close.
                self.metrics.tenant_errored(&job.route.tenant);
                self.submit_error(&job.conn.writer, job.seq, Some(job.route.endpoint), &e, true);
                return;
            }
        };
        let _t = ppdt_obs::phase(job.route.endpoint.phase_name());
        let start = Instant::now();
        let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stream::run(
                &mut job.conn,
                job.seq,
                job.close,
                job.expect_continue,
                &job.route,
                &self.ctx(),
                &self.cfg,
            )
        }));
        self.metrics.timed(job.route.endpoint, start.elapsed());
        match end {
            Ok(StreamEnd::Done { keep, chunks, .. }) => {
                self.metrics.streamed_chunks.fetch_add(chunks, Ordering::Relaxed);
                if keep && !job.conn.writer.is_dead() {
                    // Re-arm the idle clock and wait for the next
                    // request (which may already be buffered).
                    poller.park(job.conn);
                }
            }
            Ok(StreamEnd::Error(e)) => {
                // Failed before the response started; the body was not
                // fully consumed, so the connection must close.
                self.metrics.tenant_errored(&job.route.tenant);
                self.submit_error(&job.conn.writer, job.seq, Some(job.route.endpoint), &e, true);
            }
            Ok(StreamEnd::Aborted) => {
                // Mid-response failure: the writer is already dead and
                // the socket shut down; dropping the conn finishes it.
                self.metrics.errored(job.route.endpoint);
                self.metrics.tenant_errored(&job.route.tenant);
                ppdt_obs::add(Counter::HttpErrors, 1);
            }
            Err(_) => {
                let e = HttpError::from(PpdtError::internal(format!(
                    "streaming handler for {} panicked",
                    job.route.endpoint.name()
                )));
                // If the panic happened mid-response the writer is
                // poisoned → dead, and this submit is a no-op.
                self.metrics.tenant_errored(&job.route.tenant);
                self.submit_error(&job.conn.writer, job.seq, Some(job.route.endpoint), &e, true);
            }
        }
    }

    /// Books a response (error statuses count as endpoint errors) and
    /// hands it to the connection's ordered writer.
    fn submit(
        &self,
        writer: &ConnWriter,
        seq: u64,
        endpoint: Endpoint,
        resp: Response,
        close: bool,
    ) {
        if resp.status >= 400 {
            self.metrics.errored(endpoint);
            ppdt_obs::add(Counter::HttpErrors, 1);
        }
        writer.submit(seq, resp, close);
    }

    /// Books an error (503s count as backpressure, everything else as
    /// an error) and hands it to the connection's ordered writer.
    fn submit_error(
        &self,
        writer: &ConnWriter,
        seq: u64,
        endpoint: Option<Endpoint>,
        e: &HttpError,
        close: bool,
    ) {
        if let Some(ep) = endpoint {
            self.metrics.errored(ep);
        }
        if e.status == 503 {
            ppdt_obs::add(Counter::HttpRejected, 1);
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        } else {
            ppdt_obs::add(Counter::HttpErrors, 1);
        }
        writer.submit(seq, e.to_response(), close);
    }

    fn render_healthz(&self) -> Response {
        let body = HealthzBody {
            status: "ok".to_string(),
            workers: self.workers,
            queue_capacity: self.cfg.queue_capacity,
            peers: self.cluster.as_ref().map(Cluster::snapshots).unwrap_or_default(),
        };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("healthz: {e}"))).to_response(),
        }
    }

    fn render_version(&self) -> Response {
        let body = crate::api::VersionResponse {
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            api_schema_version: crate::api::API_SCHEMA_VERSION,
            keystore_schema_version: crate::keystore::KEYSTORE_SCHEMA_VERSION,
            bench_report_schema_version: crate::api::BENCH_REPORT_SCHEMA_VERSION,
        };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("version: {e}"))).to_response(),
        }
    }

    fn render_metrics(&self) -> Response {
        let body = MetricsBody {
            serve: self.metrics.snapshot(),
            process: ppdt_obs::snapshot(),
            peers: self.cluster.as_ref().map(Cluster::snapshots).unwrap_or_default(),
        };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("metrics: {e}"))).to_response(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.workers, 0, "0 means auto-resolve");
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.request_deadline > Duration::ZERO);
        assert_eq!(cfg.max_body_bytes, crate::http::DEFAULT_MAX_BODY_BYTES);
        assert!(cfg.keep_alive_requests > 1, "keep-alive is on by default");
        assert!(cfg.idle_timeout > Duration::ZERO);
        assert!(cfg.conn_lifetime >= cfg.idle_timeout);
        assert!(cfg.stream_deadline >= cfg.parse_deadline);
        assert!(cfg.stream_chunk_rows > 0);
        assert!(cfg.max_connections > 0);
        assert!(cfg.peers.is_empty(), "standalone by default");
        assert!(cfg.sync_interval > Duration::ZERO);
        assert!(cfg.peer_fetch_deadline > Duration::ZERO);
        assert!(
            cfg.peer_fetch_deadline <= cfg.request_deadline,
            "a read-through fetch must fit inside the request budget"
        );
        assert_eq!(cfg.tenant_max_keys, 0, "tenant key quota off by default");
        assert_eq!(cfg.tenant_max_inflight, 0, "tenant in-flight quota off by default");
    }

    #[test]
    fn serve_snapshot_shape_is_stable() {
        let m = ServeMetrics::default();
        m.requested(Endpoint::Encode);
        m.errored(Endpoint::Encode);
        m.timed(Endpoint::Encode, Duration::from_micros(42));
        m.timed(Endpoint::Encode, Duration::from_micros(8));
        m.keepalive_reuses.fetch_add(3, Ordering::Relaxed);
        m.pipelined_requests.fetch_add(2, Ordering::Relaxed);
        m.streamed_chunks.fetch_add(7, Ordering::Relaxed);
        let acme = Tenant::parse("acme").expect("valid tenant");
        m.tenant(&acme).requests.fetch_add(4, Ordering::Relaxed);
        m.tenant(&acme).quota_rejected.fetch_add(1, Ordering::Relaxed);
        m.tenant(&Tenant::Default).requests.fetch_add(9, Ordering::Relaxed);
        m.tenant_errored(&Tenant::Default);
        let snap = m.snapshot();
        assert_eq!(snap.endpoints.len(), ENDPOINTS.len());
        // Tenant rows are sorted by name and carry their counters.
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["acme", "default"]);
        assert_eq!((snap.tenants[0].requests, snap.tenants[0].quota_rejected), (4, 1));
        assert_eq!((snap.tenants[1].requests, snap.tenants[1].errors), (9, 1));
        assert_eq!(
            (snap.keepalive_reuses, snap.pipelined_requests, snap.streamed_chunks),
            (3, 2, 7)
        );
        let enc =
            snap.endpoints.iter().find(|s| s.endpoint == "encode").expect("encode row present");
        assert_eq!((enc.requests, enc.errors, enc.latency_micros), (1, 1, 50));
        assert_eq!((enc.min_micros, enc.max_micros), (8, 42));
        assert!((enc.mean_micros - 25.0).abs() < 1e-9, "{}", enc.mean_micros);
        // Sub-64µs samples land in exact histogram buckets, so the
        // percentiles are exact: p50 = lower of the two samples
        // (rank ceil(0.5·2) = 1), p99 = the upper one.
        assert_eq!((enc.p50_micros, enc.p99_micros), (8, 42));
        // Untouched endpoints render zeros, not the MAX sentinel.
        let idle = snap.endpoints.iter().find(|s| s.endpoint == "classify").expect("classify row");
        assert_eq!((idle.min_micros, idle.max_micros), (0, 0));
        assert_eq!(idle.mean_micros, 0.0);
        assert_eq!((idle.p50_micros, idle.p99_micros), (0, 0));
        // Round-trips through the JSON body type, peers row included.
        let peers = vec![PeerSnapshot {
            addr: "127.0.0.1:7071".to_string(),
            reachable: true,
            last_sync_age_ms: Some(120),
            keys_behind: 0,
            consecutive_failures: 0,
        }];
        let body = MetricsBody { serve: snap, process: ppdt_obs::snapshot(), peers };
        let text = serde_json::to_string(&body).expect("serializes");
        let back: MetricsBody = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.serve.endpoints.len(), ENDPOINTS.len());
        assert_eq!(back.peers, body.peers);
    }
}
