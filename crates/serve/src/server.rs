//! The daemon: bounded worker pool, bounded request queue, graceful
//! drain.
//!
//! The acceptor thread parses and routes each connection. Liveness
//! (`/healthz`) and `/metrics` are answered inline so they keep
//! responding while the pool is saturated; everything else is pushed
//! onto a bounded queue. When the queue is full the acceptor answers
//! `503` with `Retry-After` immediately instead of buffering — the
//! backpressure is visible to the client, not hidden in latency.
//! Workers drop requests that waited past the per-request deadline
//! (the client has likely given up; doing the work anyway is wasted
//! CPU under overload).
//!
//! Shutdown is cooperative: a SIGINT/SIGTERM (or a programmatic
//! [`Server::shutdown_flag`] store) makes the acceptor stop accepting
//! and drop the queue sender; workers drain what was already queued,
//! finish their in-flight requests, and [`Server::run`] returns.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppdt_error::PpdtError;
use ppdt_obs::Counter;
use serde::Serialize;

use crate::handlers::{self, Endpoint, ENDPOINTS};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::keystore::KeyStore;

/// Everything tunable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` resolves via [`ppdt_obs::threads`]
    /// (`PPDT_THREADS` / available parallelism).
    pub workers: usize,
    /// Bounded queue depth between the acceptor and the pool; a full
    /// queue answers `503` immediately.
    pub queue_capacity: usize,
    /// Queued requests older than this are answered `503` instead of
    /// being processed.
    pub request_deadline: Duration,
    /// Per-request body cap, bytes.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Routes the test-only `POST /v1/debug/sleep` endpoint.
    pub debug_endpoints: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            request_deadline: Duration::from_secs(10),
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
            io_timeout: Duration::from_secs(30),
            debug_endpoints: false,
        }
    }
}

/// Per-endpoint request/error/latency counters, readable while the
/// server runs.
#[derive(Debug, Default)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_micros: AtomicU64,
}

/// Live serve-side metrics (lock-free; rendered by `/metrics`).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    per_endpoint: [EndpointStats; ENDPOINTS.len()],
    rejected: AtomicU64,
    in_flight: AtomicU64,
    in_flight_peak: AtomicU64,
}

impl ServeMetrics {
    fn requested(&self, e: Endpoint) {
        self.per_endpoint[e.index()].requests.fetch_add(1, Ordering::Relaxed);
    }

    fn errored(&self, e: Endpoint) {
        self.per_endpoint[e.index()].errors.fetch_add(1, Ordering::Relaxed);
    }

    fn timed(&self, e: Endpoint, elapsed: Duration) {
        self.per_endpoint[e.index()]
            .latency_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Requests answered `503` (queue full or deadline expired).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently processed requests.
    pub fn in_flight_peak(&self) -> u64 {
        self.in_flight_peak.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for `/metrics` and reports.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            rejected: self.rejected(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_peak: self.in_flight_peak(),
            endpoints: ENDPOINTS
                .iter()
                .map(|&e| {
                    let s = &self.per_endpoint[e.index()];
                    EndpointSnapshot {
                        endpoint: e.name().to_string(),
                        requests: s.requests.load(Ordering::Relaxed),
                        errors: s.errors.load(Ordering::Relaxed),
                        latency_micros: s.latency_micros.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }
}

/// One `/metrics` row.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct EndpointSnapshot {
    /// Stable endpoint name ([`Endpoint::name`]).
    pub endpoint: String,
    /// Requests routed to the endpoint (including rejected ones).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx.
    pub errors: u64,
    /// Summed handler latency, microseconds (inline endpoints included).
    pub latency_micros: u64,
}

/// The `serve` half of the `/metrics` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct ServeSnapshot {
    /// `503` answers (queue full + deadline expiries).
    pub rejected: u64,
    /// Requests being processed right now.
    pub in_flight: u64,
    /// High-water mark of `in_flight`.
    pub in_flight_peak: u64,
    /// Per-endpoint counters, [`ENDPOINTS`] order.
    pub endpoints: Vec<EndpointSnapshot>,
}

/// `GET /healthz` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct HealthzBody {
    /// Always `"ok"` while the daemon answers at all.
    pub status: String,
    /// Resolved worker-pool size.
    pub workers: usize,
    /// Configured queue depth.
    pub queue_capacity: usize,
}

/// `GET /metrics` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct MetricsBody {
    /// Serve-layer counters.
    pub serve: ServeSnapshot,
    /// Process-wide [`ppdt_obs`] counters and phase timings.
    pub process: ppdt_obs::MetricsSnapshot,
}

/// One queued unit of work: the parsed request plus the socket to
/// answer on.
struct Job {
    stream: TcpStream,
    req: Request,
    endpoint: Endpoint,
    enqueued: Instant,
}

/// A bound, not-yet-running custodian daemon.
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    store: KeyStore,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
}

impl Server {
    /// Binds the listener (so the final address — including an
    /// OS-assigned port for `:0` — is known before [`Server::run`]).
    pub fn bind(cfg: ServerConfig, store: KeyStore) -> Result<Server, PpdtError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("bind: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("local_addr: {e}"),
        })?;
        // Non-blocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true).map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("set_nonblocking: {e}"),
        })?;
        let workers = if cfg.workers == 0 { ppdt_obs::threads(None) } else { cfg.workers };
        Ok(Server {
            cfg,
            listener,
            addr,
            workers,
            store,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(ServeMetrics::default()),
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cooperative shutdown handle: store `true` and [`Server::run`]
    /// drains and returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Live metrics handle (shared with `/metrics`).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::signalled()
    }

    /// Accepts and serves until shutdown, then drains. Blocks the
    /// calling thread for the daemon's whole life.
    pub fn run(self) -> Result<(), PpdtError> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(self.cfg.queue_capacity);
        let rx = Mutex::new(rx);
        let joined = crossbeam::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|_| self.worker_loop(&rx));
            }
            self.accept_loop(&tx);
            // Dropping the only sender wakes every worker out of
            // `recv()` once the queue is empty: the drain barrier.
            drop(tx);
        });
        joined.map_err(|_| PpdtError::internal("a server thread panicked"))
    }

    fn accept_loop(&self, tx: &SyncSender<Job>) {
        while !self.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.handle_conn(stream, tx),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE); back off
                    // rather than spinning.
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Parses, routes, and either answers inline or enqueues.
    fn handle_conn(&self, stream: TcpStream, tx: &SyncSender<Job>) {
        let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
        let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut stream = stream;
        let mut reader = BufReader::new(read_half);
        let req = match read_request(&mut reader, self.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(e) => {
                self.answer_error(&mut stream, None, &e);
                return;
            }
        };
        ppdt_obs::add(Counter::HttpRequests, 1);
        let endpoint = match handlers::route(&req, self.cfg.debug_endpoints) {
            Ok(e) => e,
            Err(e) => {
                self.answer_error(&mut stream, None, &e);
                return;
            }
        };
        self.metrics.requested(endpoint);

        if endpoint.is_inline() {
            // Liveness and metrics bypass the queue so they stay
            // responsive while the pool is saturated.
            let start = Instant::now();
            let resp = match endpoint {
                Endpoint::Healthz => self.render_healthz(),
                _ => self.render_metrics(),
            };
            self.metrics.timed(endpoint, start.elapsed());
            self.answer(&mut stream, endpoint, resp);
            return;
        }

        let job = Job { stream, req, endpoint, enqueued: Instant::now() };
        match tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(mut job)) => {
                self.reject(&mut job.stream, job.endpoint, "request queue is full");
            }
            Err(TrySendError::Disconnected(mut job)) => {
                self.reject(&mut job.stream, job.endpoint, "server is shutting down");
            }
        }
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<Job>>) {
        loop {
            // Lock only around `recv` so workers take turns pulling
            // jobs; processing runs unlocked.
            let job = {
                let Ok(guard) = rx.lock() else { return };
                match guard.recv() {
                    Ok(job) => job,
                    Err(_) => return, // sender dropped: drain complete
                }
            };
            self.process(job);
        }
    }

    fn process(&self, mut job: Job) {
        if job.enqueued.elapsed() > self.cfg.request_deadline {
            self.reject(&mut job.stream, job.endpoint, "request waited past its deadline");
            return;
        }
        let in_flight = self.metrics.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.in_flight_peak.fetch_max(in_flight, Ordering::SeqCst);
        ppdt_obs::record_max(Counter::HttpInFlightPeak, in_flight);

        let _t = ppdt_obs::phase(job.endpoint.phase_name());
        let start = Instant::now();
        let outcome = handlers::handle(job.endpoint, &job.req, &self.store);
        self.metrics.timed(job.endpoint, start.elapsed());
        match outcome {
            Ok(resp) => self.answer(&mut job.stream, job.endpoint, resp),
            Err(e) => self.answer_error(&mut job.stream, Some(job.endpoint), &e),
        }
        self.metrics.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Writes a `503 + Retry-After` and books it as backpressure, not
    /// as an endpoint failure.
    fn reject(&self, stream: &mut TcpStream, endpoint: Endpoint, why: &str) {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        self.metrics.errored(endpoint);
        ppdt_obs::add(Counter::HttpRejected, 1);
        let _ = write_response(stream, &HttpError::overloaded(why).to_response());
    }

    fn answer(&self, stream: &mut TcpStream, endpoint: Endpoint, resp: Response) {
        if resp.status >= 400 {
            self.metrics.errored(endpoint);
            ppdt_obs::add(Counter::HttpErrors, 1);
        }
        let _ = write_response(stream, &resp);
    }

    fn answer_error(&self, stream: &mut TcpStream, endpoint: Option<Endpoint>, e: &HttpError) {
        if let Some(ep) = endpoint {
            self.metrics.errored(ep);
        }
        if e.status == 503 {
            ppdt_obs::add(Counter::HttpRejected, 1);
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        } else {
            ppdt_obs::add(Counter::HttpErrors, 1);
        }
        let _ = write_response(stream, &e.to_response());
    }

    fn render_healthz(&self) -> Response {
        let body = HealthzBody {
            status: "ok".to_string(),
            workers: self.workers,
            queue_capacity: self.cfg.queue_capacity,
        };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("healthz: {e}"))).to_response(),
        }
    }

    fn render_metrics(&self) -> Response {
        let body = MetricsBody { serve: self.metrics.snapshot(), process: ppdt_obs::snapshot() };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("metrics: {e}"))).to_response(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.workers, 0, "0 means auto-resolve");
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.request_deadline > Duration::ZERO);
        assert_eq!(cfg.max_body_bytes, crate::http::DEFAULT_MAX_BODY_BYTES);
    }

    #[test]
    fn serve_snapshot_shape_is_stable() {
        let m = ServeMetrics::default();
        m.requested(Endpoint::Encode);
        m.errored(Endpoint::Encode);
        m.timed(Endpoint::Encode, Duration::from_micros(42));
        let snap = m.snapshot();
        assert_eq!(snap.endpoints.len(), ENDPOINTS.len());
        let enc =
            snap.endpoints.iter().find(|s| s.endpoint == "encode").expect("encode row present");
        assert_eq!((enc.requests, enc.errors, enc.latency_micros), (1, 1, 42));
        // Round-trips through the JSON body type.
        let body = MetricsBody { serve: snap, process: ppdt_obs::snapshot() };
        let text = serde_json::to_string(&body).expect("serializes");
        let back: MetricsBody = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.serve.endpoints.len(), ENDPOINTS.len());
    }
}
