//! The daemon: a three-stage pipeline — accept, parse, work — with
//! bounded queues between the stages and graceful drain.
//!
//! The acceptor thread does nothing but `accept()` and hand the raw
//! socket to a bounded connection queue; it never reads from a peer,
//! so a slow or hostile connection cannot stall accepting. A small
//! dedicated parser pool reads and routes each connection under an
//! overall per-connection parse deadline ([`ServerConfig::
//! parse_deadline`], enforced by [`DeadlineStream`]) — a slow-loris
//! trickling bytes cannot reset it and is cut off with `408`.
//! Liveness (`/healthz`) and `/metrics` are answered by the parser
//! threads directly so they keep responding while the worker pool is
//! saturated; everything else is pushed onto the bounded job queue.
//! When a queue is full the request is answered `503` with
//! `Retry-After` immediately instead of buffering — the backpressure
//! is visible to the client, not hidden in latency. Workers drop jobs
//! that waited past the per-request deadline (the client has likely
//! given up; doing the work anyway is wasted CPU under overload), and
//! a panicking handler is caught, answered `500`, and the worker
//! lives on.
//!
//! Shutdown is cooperative: a SIGINT/SIGTERM (or a programmatic
//! [`Server::shutdown_flag`] store) makes the acceptor stop accepting
//! and drop the connection sender; parsers drain the accepted
//! connections, workers drain the queued jobs and finish their
//! in-flight requests, and [`Server::run`] returns.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppdt_error::PpdtError;
use ppdt_obs::Counter;
use serde::Serialize;

use crate::cache::Caches;
use crate::handlers::{self, Endpoint, ENDPOINTS};
use crate::http::{read_request, write_response, DeadlineStream, HttpError, Request, Response};
use crate::keystore::KeyStore;

/// Everything tunable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` resolves via [`ppdt_obs::threads`]
    /// (`PPDT_THREADS` / available parallelism).
    pub workers: usize,
    /// Bounded queue depth between the acceptor and the pool; a full
    /// queue answers `503` immediately.
    pub queue_capacity: usize,
    /// Queued requests older than this are answered `503` instead of
    /// being processed.
    pub request_deadline: Duration,
    /// Per-request body cap, bytes.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Dedicated parse/inline threads; `0` resolves to `2`. They read
    /// requests off accepted connections and answer `/healthz` and
    /// `/metrics`, so slow peers and a saturated worker pool cannot
    /// stall liveness.
    pub parser_threads: usize,
    /// Hard ceiling on the total time a connection may take to deliver
    /// one complete request (head + body). Unlike `io_timeout` it is
    /// not reset by each byte, so it bounds slow-loris peers.
    pub parse_deadline: Duration,
    /// Routes the test-only `POST /v1/debug/*` endpoints.
    pub debug_endpoints: bool,
    /// Compiled-plan cache capacity (keys held at once); `0` disables
    /// the cache and every request re-loads, re-audits, and
    /// re-compiles its key (the benches use this for the cold path).
    pub plan_cache_capacity: usize,
    /// Validated/decoded tree cache capacity; `0` disables it.
    pub tree_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            request_deadline: Duration::from_secs(10),
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
            io_timeout: Duration::from_secs(30),
            parser_threads: 0,
            parse_deadline: Duration::from_secs(5),
            debug_endpoints: false,
            plan_cache_capacity: 64,
            tree_cache_capacity: 32,
        }
    }
}

/// Per-endpoint request/error/latency counters, readable while the
/// server runs.
#[derive(Debug)]
struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_micros: AtomicU64,
    min_micros: AtomicU64,
    max_micros: AtomicU64,
    timed_count: AtomicU64,
}

impl Default for EndpointStats {
    fn default() -> Self {
        EndpointStats {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_micros: AtomicU64::new(0),
            // MAX sentinel so the first sample's fetch_min wins; the
            // snapshot renders it as 0 when no request was timed.
            min_micros: AtomicU64::new(u64::MAX),
            max_micros: AtomicU64::new(0),
            timed_count: AtomicU64::new(0),
        }
    }
}

/// Live serve-side metrics (lock-free; rendered by `/metrics`).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    per_endpoint: [EndpointStats; ENDPOINTS.len()],
    rejected: AtomicU64,
    in_flight: AtomicU64,
    in_flight_peak: AtomicU64,
}

impl ServeMetrics {
    fn requested(&self, e: Endpoint) {
        self.per_endpoint[e.index()].requests.fetch_add(1, Ordering::Relaxed);
    }

    fn errored(&self, e: Endpoint) {
        self.per_endpoint[e.index()].errors.fetch_add(1, Ordering::Relaxed);
    }

    fn timed(&self, e: Endpoint, elapsed: Duration) {
        let micros = elapsed.as_micros() as u64;
        let s = &self.per_endpoint[e.index()];
        s.latency_micros.fetch_add(micros, Ordering::Relaxed);
        s.min_micros.fetch_min(micros, Ordering::Relaxed);
        s.max_micros.fetch_max(micros, Ordering::Relaxed);
        s.timed_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered `503` (queue full or deadline expired).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently processed requests.
    pub fn in_flight_peak(&self) -> u64 {
        self.in_flight_peak.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for `/metrics` and reports.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            rejected: self.rejected(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_peak: self.in_flight_peak(),
            endpoints: ENDPOINTS
                .iter()
                .map(|&e| {
                    let s = &self.per_endpoint[e.index()];
                    let sum = s.latency_micros.load(Ordering::Relaxed);
                    let count = s.timed_count.load(Ordering::Relaxed);
                    let min = s.min_micros.load(Ordering::Relaxed);
                    EndpointSnapshot {
                        endpoint: e.name().to_string(),
                        requests: s.requests.load(Ordering::Relaxed),
                        errors: s.errors.load(Ordering::Relaxed),
                        latency_micros: sum,
                        min_micros: if count == 0 { 0 } else { min },
                        mean_micros: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
                        max_micros: s.max_micros.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        }
    }
}

/// One `/metrics` row.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct EndpointSnapshot {
    /// Stable endpoint name ([`Endpoint::name`]).
    pub endpoint: String,
    /// Requests routed to the endpoint (including rejected ones).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx.
    pub errors: u64,
    /// Summed handler latency, microseconds (inline endpoints included).
    pub latency_micros: u64,
    /// Fastest timed request, microseconds (0 when nothing was timed).
    pub min_micros: u64,
    /// Mean handler latency, microseconds (0 when nothing was timed).
    pub mean_micros: f64,
    /// Slowest timed request, microseconds.
    pub max_micros: u64,
}

/// The `serve` half of the `/metrics` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct ServeSnapshot {
    /// `503` answers (queue full + deadline expiries).
    pub rejected: u64,
    /// Requests being processed right now.
    pub in_flight: u64,
    /// High-water mark of `in_flight`.
    pub in_flight_peak: u64,
    /// Per-endpoint counters, [`ENDPOINTS`] order.
    pub endpoints: Vec<EndpointSnapshot>,
}

/// `GET /healthz` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct HealthzBody {
    /// Always `"ok"` while the daemon answers at all.
    pub status: String,
    /// Resolved worker-pool size.
    pub workers: usize,
    /// Configured queue depth.
    pub queue_capacity: usize,
}

/// `GET /metrics` body.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct MetricsBody {
    /// Serve-layer counters.
    pub serve: ServeSnapshot,
    /// Process-wide [`ppdt_obs`] counters and phase timings.
    pub process: ppdt_obs::MetricsSnapshot,
}

/// An accepted, not-yet-parsed connection awaiting a parser thread.
struct Conn {
    stream: TcpStream,
}

/// One queued unit of work: the parsed request plus the socket to
/// answer on.
struct Job {
    stream: TcpStream,
    req: Request,
    endpoint: Endpoint,
    enqueued: Instant,
}

/// A bound, not-yet-running custodian daemon.
pub struct Server {
    cfg: ServerConfig,
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    parsers: usize,
    store: KeyStore,
    caches: Caches,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
}

impl Server {
    /// Binds the listener (so the final address — including an
    /// OS-assigned port for `:0` — is known before [`Server::run`]).
    pub fn bind(cfg: ServerConfig, store: KeyStore) -> Result<Server, PpdtError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("bind: {e}"),
        })?;
        let addr = listener.local_addr().map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("local_addr: {e}"),
        })?;
        // Non-blocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true).map_err(|e| PpdtError::Io {
            path: Some(cfg.addr.clone()),
            detail: format!("set_nonblocking: {e}"),
        })?;
        let workers = if cfg.workers == 0 { ppdt_obs::threads(None) } else { cfg.workers };
        let parsers = if cfg.parser_threads == 0 { 2 } else { cfg.parser_threads };
        let caches = Caches::new(cfg.plan_cache_capacity, cfg.tree_cache_capacity);
        Ok(Server {
            cfg,
            listener,
            addr,
            workers,
            parsers,
            store,
            caches,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(ServeMetrics::default()),
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cooperative shutdown handle: store `true` and [`Server::run`]
    /// drains and returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Live metrics handle (shared with `/metrics`).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::signalled()
    }

    /// Accepts and serves until shutdown, then drains. Blocks the
    /// calling thread for the daemon's whole life.
    pub fn run(self) -> Result<(), PpdtError> {
        // Two bounded hand-offs: accepted sockets to the parsers,
        // parsed jobs to the workers. Either queue being full is
        // answered 503 by the stage that fails to enqueue.
        let (conn_tx, conn_rx) =
            std::sync::mpsc::sync_channel::<Conn>(self.cfg.queue_capacity.max(self.parsers));
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(self.cfg.queue_capacity);
        let conn_rx = Mutex::new(conn_rx);
        let job_rx = Mutex::new(job_rx);
        let this = &self;
        let joined = crossbeam::thread::scope(|s| {
            for _ in 0..this.workers {
                let job_rx = &job_rx;
                s.spawn(move |_| this.worker_loop(job_rx));
            }
            for _ in 0..this.parsers {
                let conn_rx = &conn_rx;
                let tx = job_tx.clone();
                s.spawn(move |_| this.parser_loop(conn_rx, tx));
            }
            // Each parser owns a job-sender clone; dropping the
            // original here means the workers' `recv()` unblocks as
            // soon as the last parser exits and the queue is empty.
            drop(job_tx);
            this.accept_loop(&conn_tx);
            // Dropping the only connection sender wakes every parser
            // out of `recv()` once the backlog is empty: the drain
            // barrier cascades parser → worker.
            drop(conn_tx);
        });
        joined.map_err(|_| PpdtError::internal("a server thread panicked"))
    }

    /// Accepts sockets and hands them off; never reads from a peer, so
    /// no connection — however slow or hostile — can stall `accept()`.
    fn accept_loop(&self, tx: &SyncSender<Conn>) {
        while !self.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
                    let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
                    match tx.try_send(Conn { stream }) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut c)) => {
                            self.reject_conn(&mut c.stream, "connection backlog is full");
                        }
                        Err(TrySendError::Disconnected(mut c)) => {
                            self.reject_conn(&mut c.stream, "server is shutting down");
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE); back off
                    // rather than spinning.
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    fn parser_loop(&self, rx: &Mutex<Receiver<Conn>>, tx: SyncSender<Job>) {
        loop {
            let conn = {
                let Ok(guard) = rx.lock() else { return };
                match guard.recv() {
                    Ok(conn) => conn,
                    Err(_) => return, // sender dropped: drain complete
                }
            };
            self.handle_conn(conn.stream, &tx);
        }
    }

    /// Parses, routes, and either answers inline or enqueues. Runs on
    /// a parser thread under the per-connection parse deadline.
    fn handle_conn(&self, stream: TcpStream, tx: &SyncSender<Job>) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut stream = stream;
        let deadline = Instant::now() + self.cfg.parse_deadline;
        let mut reader = BufReader::new(DeadlineStream::new(read_half, deadline));
        let req = match read_request(&mut reader, self.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(e) => {
                self.answer_error(&mut stream, None, &e);
                return;
            }
        };
        ppdt_obs::add(Counter::HttpRequests, 1);
        let endpoint = match handlers::route(&req, self.cfg.debug_endpoints) {
            Ok(e) => e,
            Err(e) => {
                self.answer_error(&mut stream, None, &e);
                return;
            }
        };
        self.metrics.requested(endpoint);

        if endpoint.is_inline() {
            // Liveness, metrics, and version negotiation bypass the
            // queue so they stay responsive while the pool is
            // saturated.
            let start = Instant::now();
            let resp = match endpoint {
                Endpoint::Healthz => self.render_healthz(),
                Endpoint::Version => self.render_version(),
                _ => self.render_metrics(),
            };
            self.metrics.timed(endpoint, start.elapsed());
            self.answer(&mut stream, endpoint, resp);
            return;
        }

        let job = Job { stream, req, endpoint, enqueued: Instant::now() };
        match tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(mut job)) => {
                self.reject(&mut job.stream, job.endpoint, "request queue is full");
            }
            Err(TrySendError::Disconnected(mut job)) => {
                self.reject(&mut job.stream, job.endpoint, "server is shutting down");
            }
        }
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<Job>>) {
        loop {
            // Lock only around `recv` so workers take turns pulling
            // jobs; processing runs unlocked.
            let job = {
                let Ok(guard) = rx.lock() else { return };
                match guard.recv() {
                    Ok(job) => job,
                    Err(_) => return, // sender dropped: drain complete
                }
            };
            self.process(job);
        }
    }

    fn process(&self, mut job: Job) {
        if job.enqueued.elapsed() > self.cfg.request_deadline {
            self.reject(&mut job.stream, job.endpoint, "request waited past its deadline");
            return;
        }
        let in_flight = self.metrics.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.in_flight_peak.fetch_max(in_flight, Ordering::SeqCst);
        ppdt_obs::record_max(Counter::HttpInFlightPeak, in_flight);
        // RAII so a panicking handler cannot leak the in-flight gauge.
        struct InFlight<'a>(&'a ServeMetrics);
        impl Drop for InFlight<'_> {
            fn drop(&mut self) {
                self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _in_flight = InFlight(&self.metrics);

        let _t = ppdt_obs::phase(job.endpoint.phase_name());
        let start = Instant::now();
        // A handler panic is a bug, but it must cost one 500, not a
        // worker thread for the daemon's remaining lifetime.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handlers::handle(job.endpoint, &job.req, &self.store, &self.caches)
        }));
        self.metrics.timed(job.endpoint, start.elapsed());
        match outcome {
            Ok(Ok(resp)) => self.answer(&mut job.stream, job.endpoint, resp),
            Ok(Err(e)) => self.answer_error(&mut job.stream, Some(job.endpoint), &e),
            Err(_) => {
                let e = HttpError::from(PpdtError::internal(format!(
                    "handler for {} panicked",
                    job.endpoint.name()
                )));
                self.answer_error(&mut job.stream, Some(job.endpoint), &e);
            }
        }
    }

    /// Writes a `503 + Retry-After` and books it as backpressure, not
    /// as an endpoint failure.
    fn reject(&self, stream: &mut TcpStream, endpoint: Endpoint, why: &str) {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        self.metrics.errored(endpoint);
        ppdt_obs::add(Counter::HttpRejected, 1);
        let _ = write_response(stream, &HttpError::overloaded(why).to_response());
    }

    /// Writes a `503` to a connection rejected before parsing (the
    /// backlog is full or the daemon is draining). The response is a
    /// few hundred bytes into a fresh socket's empty send buffer, so
    /// it cannot stall the acceptor beyond the write timeout.
    fn reject_conn(&self, stream: &mut TcpStream, why: &str) {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        ppdt_obs::add(Counter::HttpRejected, 1);
        let _ = write_response(stream, &HttpError::overloaded(why).to_response());
    }

    fn answer(&self, stream: &mut TcpStream, endpoint: Endpoint, resp: Response) {
        if resp.status >= 400 {
            self.metrics.errored(endpoint);
            ppdt_obs::add(Counter::HttpErrors, 1);
        }
        let _ = write_response(stream, &resp);
    }

    fn answer_error(&self, stream: &mut TcpStream, endpoint: Option<Endpoint>, e: &HttpError) {
        if let Some(ep) = endpoint {
            self.metrics.errored(ep);
        }
        if e.status == 503 {
            ppdt_obs::add(Counter::HttpRejected, 1);
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        } else {
            ppdt_obs::add(Counter::HttpErrors, 1);
        }
        let _ = write_response(stream, &e.to_response());
    }

    fn render_healthz(&self) -> Response {
        let body = HealthzBody {
            status: "ok".to_string(),
            workers: self.workers,
            queue_capacity: self.cfg.queue_capacity,
        };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("healthz: {e}"))).to_response(),
        }
    }

    fn render_version(&self) -> Response {
        let body = crate::api::VersionResponse {
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            api_schema_version: crate::api::API_SCHEMA_VERSION,
            keystore_schema_version: crate::keystore::KEYSTORE_SCHEMA_VERSION,
            bench_report_schema_version: crate::api::BENCH_REPORT_SCHEMA_VERSION,
        };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("version: {e}"))).to_response(),
        }
    }

    fn render_metrics(&self) -> Response {
        let body = MetricsBody { serve: self.metrics.snapshot(), process: ppdt_obs::snapshot() };
        match serde_json::to_string(&body) {
            Ok(s) => Response::ok(s),
            Err(e) => HttpError::from(PpdtError::internal(format!("metrics: {e}"))).to_response(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.workers, 0, "0 means auto-resolve");
        assert!(cfg.queue_capacity > 0);
        assert!(cfg.request_deadline > Duration::ZERO);
        assert_eq!(cfg.max_body_bytes, crate::http::DEFAULT_MAX_BODY_BYTES);
    }

    #[test]
    fn serve_snapshot_shape_is_stable() {
        let m = ServeMetrics::default();
        m.requested(Endpoint::Encode);
        m.errored(Endpoint::Encode);
        m.timed(Endpoint::Encode, Duration::from_micros(42));
        m.timed(Endpoint::Encode, Duration::from_micros(8));
        let snap = m.snapshot();
        assert_eq!(snap.endpoints.len(), ENDPOINTS.len());
        let enc =
            snap.endpoints.iter().find(|s| s.endpoint == "encode").expect("encode row present");
        assert_eq!((enc.requests, enc.errors, enc.latency_micros), (1, 1, 50));
        assert_eq!((enc.min_micros, enc.max_micros), (8, 42));
        assert!((enc.mean_micros - 25.0).abs() < 1e-9, "{}", enc.mean_micros);
        // Untouched endpoints render zeros, not the MAX sentinel.
        let idle = snap.endpoints.iter().find(|s| s.endpoint == "classify").expect("classify row");
        assert_eq!((idle.min_micros, idle.max_micros), (0, 0));
        assert_eq!(idle.mean_micros, 0.0);
        // Round-trips through the JSON body type.
        let body = MetricsBody { serve: snap, process: ppdt_obs::snapshot() };
        let text = serde_json::to_string(&body).expect("serializes");
        let back: MetricsBody = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.serve.endpoints.len(), ENDPOINTS.len());
    }
}
