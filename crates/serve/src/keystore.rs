//! Persistent, versioned, content-addressed store for
//! [`TransformKey`]s, namespaced by [`Tenant`].
//!
//! Every key is serialized inside a schema-versioned [`KeyEnvelope`]
//! and stored under `<key_id>.json`, where `key_id` is a 128-bit
//! FNV-1a digest of the key's canonical JSON. Content addressing *is*
//! the versioning story: a key is immutable under its id, re-storing
//! the same key is a no-op, and any edit produces a new id — there is
//! nothing to overwrite and therefore nothing to corrupt in place.
//!
//! Tenancy is a directory dimension on top: the [`Tenant::Default`]
//! namespace (what every `/v1` route serves) lives flat at the store
//! root — byte-compatible with pre-tenancy stores — and each named
//! tenant lives under `t/<name>/`. Content addressing is *per file*,
//! unchanged by tenancy, so cluster anti-entropy replicates
//! `(tenant, key)` pairs with the exact same no-conflict guarantees
//! as before: the same key stored under two tenants is two
//! independent files with the same digest.
//!
//! Durability and trust:
//!
//! * writes go to a per-call-unique temp file in the same directory,
//!   are fsynced, and land via an atomic `rename`, so neither a
//!   crashed daemon nor two threads storing concurrently can leave a
//!   half-written envelope under a valid id;
//! * loads re-derive the digest from the stored key and require it to
//!   match both the envelope's recorded id and the file name, so
//!   bit-rot or tampering is detected before the key is trusted;
//! * loads then run [`ppdt_transform::audit_key`] and refuse to serve
//!   a key whose structural invariants fail — a corrupted key can
//!   never reach a request handler.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ppdt_error::PpdtError;
use ppdt_transform::TransformKey;
use serde::{Deserialize, Serialize};

use crate::cache::{FileStamp, LruCache};

/// Bound on the in-memory envelope cache: enough for every key a
/// realistic custodian ring serves hot, small enough that even large
/// keys stay within a few megabytes of retained memory.
const ENVELOPE_CACHE_CAPACITY: usize = 64;

/// Version of the on-disk envelope layout. Bumped on breaking
/// changes; [`KeyStore::get`] rejects versions it does not know.
pub const KEYSTORE_SCHEMA_VERSION: u64 = 1;

/// A custodian namespace.
///
/// `Default` is the unnamed namespace every `/v1` route maps to; its
/// keys live flat at the keystore root so pre-tenancy stores (and the
/// `/v1` wire protocol) keep working unchanged. Named tenants come
/// from `/v2/t/<name>/...` routes and live under `t/<name>/`.
///
/// Valid names are 1–32 chars of `[a-z0-9_-]` — the same shape gate
/// as [`valid_id`], so a tenant name that reaches the file system can
/// never traverse out of the store (and `"default"` normalizes to
/// `Default`, making `/v2/t/default/...` an exact alias of `/v1`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Tenant {
    /// The unnamed namespace `/v1` routes serve.
    Default,
    /// A named namespace from a `/v2/t/<name>/...` route.
    Named(String),
}

impl Tenant {
    /// The reserved name the default namespace answers to.
    pub const DEFAULT_NAME: &'static str = "default";

    /// Parses and validates a tenant name from a route or wire field.
    /// `"default"` yields [`Tenant::Default`]; anything outside
    /// `[a-z0-9_-]{1,32}` is rejected.
    pub fn parse(name: &str) -> Option<Tenant> {
        if name == Self::DEFAULT_NAME {
            return Some(Tenant::Default);
        }
        let shape_ok = !name.is_empty()
            && name.len() <= 32
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_');
        shape_ok.then(|| Tenant::Named(name.to_string()))
    }

    /// Resolves the optional wire form carried by API types: a missing
    /// field means the default tenant, anything else must
    /// [`Tenant::parse`].
    pub fn from_wire(wire: Option<&str>) -> Option<Tenant> {
        match wire {
            None => Some(Tenant::Default),
            Some(name) => Self::parse(name),
        }
    }

    /// The wire form for API types: `None` for the default tenant (so
    /// `/v1` response bodies stay shaped exactly as before tenancy),
    /// the name otherwise.
    pub fn wire(&self) -> Option<String> {
        match self {
            Tenant::Default => None,
            Tenant::Named(name) => Some(name.clone()),
        }
    }

    /// The display name (`"default"` for the unnamed namespace).
    pub fn as_str(&self) -> &str {
        match self {
            Tenant::Default => Self::DEFAULT_NAME,
            Tenant::Named(name) => name,
        }
    }

    /// Whether this is the unnamed `/v1` namespace.
    pub fn is_default(&self) -> bool {
        matches!(self, Tenant::Default)
    }

    /// The URL prefix the tenant's data routes live under: `/v1` for
    /// the default tenant (the back-compat shim), `/v2/t/<name>`
    /// otherwise. `route_prefix() + "/encode"` etc. is always a valid
    /// route.
    pub fn route_prefix(&self) -> String {
        match self {
            Tenant::Default => "/v1".to_string(),
            Tenant::Named(name) => format!("/v2/t/{name}"),
        }
    }
}

impl std::fmt::Display for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The on-disk wrapper around a stored key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KeyEnvelope {
    /// Envelope layout version ([`KEYSTORE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Content address of `key` (also the file stem).
    pub key_id: String,
    /// Attribute count, denormalized for cheap listings.
    pub num_attrs: usize,
    /// The key itself.
    pub key: TransformKey,
}

/// One row of a [`KeyStore::list`] listing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KeyEntry {
    /// Content address.
    pub key_id: String,
    /// Attribute count, when the envelope was readable.
    pub num_attrs: Option<usize>,
    /// Whether the entry passes the full load-time validation
    /// (digest match + structural audit). Invalid entries are listed —
    /// an operator needs to see them — but can never be served.
    pub valid: bool,
}

/// A directory of content-addressed key envelopes.
///
/// Repeated loads of the same id are served from an in-memory
/// envelope cache keyed by the file's [`FileStamp`] (length + mtime):
/// a hit with a matching stamp returns the already-parsed,
/// already-audited [`TransformKey`] without re-reading the file, and a
/// stamp mismatch (or a missing file) drops the entry and forces the
/// full read → parse → digest-check → audit path. This is the same
/// trust model as the plan cache one level up — the cached key passed
/// the full validation when it entered the cache, and content
/// addressing means the only same-id rewrites are repairs with
/// byte-identical content or tampering that realistically moves
/// length/mtime.
pub struct KeyStore {
    dir: PathBuf,
    envelopes: LruCache<(FileStamp, TransformKey)>,
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyStore").field("dir", &self.dir).finish_non_exhaustive()
    }
}

/// 128-bit FNV-1a over `bytes`, rendered as 32 hex chars: two 64-bit
/// passes with distinct offset bases (the second seeded from the
/// first), which is plenty for content addressing a custodian's key
/// ring and keeps the workspace dependency-free. Also used by the
/// serve-side caches to digest request payloads.
pub(crate) fn content_id(bytes: &[u8]) -> String {
    fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
        let mut h = seed;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
    let a = fnv64(0xcbf2_9ce4_8422_2325, bytes);
    let b = fnv64(a ^ 0x9e37_79b9_7f4a_7c15, bytes);
    format!("{a:016x}{b:016x}")
}

/// A syntactically valid id: exactly 32 lowercase hex chars. Gates
/// every id that arrives over the wire before it touches the file
/// system (path traversal is unrepresentable).
pub fn valid_id(id: &str) -> bool {
    id.len() == 32 && id.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Distinguishes concurrent `put` temp files: the pid alone is shared
/// by every worker thread of one daemon, so two simultaneous stores of
/// the same key would otherwise collide on one temp path and can
/// rename a half-written envelope into the final content-addressed
/// file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl KeyStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<KeyStore, PpdtError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| PpdtError::io(dir.display().to_string(), e))?;
        Ok(KeyStore { dir, envelopes: LruCache::new(ENVELOPE_CACHE_CAPACITY) })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address `put` would store `key` under.
    pub fn key_id(key: &TransformKey) -> Result<String, PpdtError> {
        let canonical = serde_json::to_string(key)
            .map_err(|e| PpdtError::internal(format!("key serialization failed: {e}")))?;
        Ok(content_id(canonical.as_bytes()))
    }

    /// The directory a tenant's envelopes live in: the store root for
    /// the default tenant (pre-tenancy layout), `t/<name>/` otherwise.
    fn tenant_dir(&self, tenant: &Tenant) -> PathBuf {
        match tenant {
            Tenant::Default => self.dir.clone(),
            Tenant::Named(name) => self.dir.join("t").join(name),
        }
    }

    fn path_in(&self, tenant: &Tenant, id: &str) -> PathBuf {
        self.tenant_dir(tenant).join(format!("{id}.json"))
    }

    #[cfg(test)]
    fn path_for(&self, id: &str) -> PathBuf {
        self.path_in(&Tenant::Default, id)
    }

    /// Key the envelope cache scopes entries under: tenant-qualified
    /// so the same content address under two tenants never
    /// cross-serves (`/` cannot appear in a tenant name or an id).
    fn cache_key(tenant: &Tenant, id: &str) -> String {
        format!("{tenant}/{id}")
    }

    #[cfg(test)]
    fn stamp(&self, id: &str) -> Option<FileStamp> {
        self.stamp_in(&Tenant::Default, id)
    }

    /// Cheap freshness stamp (length + mtime) of the envelope file for
    /// `id` under `tenant`, or `None` when no such envelope exists
    /// (including malformed ids). The plan cache and the store's own
    /// envelope cache compare stamps to detect on-disk replacement of
    /// a cached key without re-reading bytes.
    pub(crate) fn stamp_in(&self, tenant: &Tenant, id: &str) -> Option<FileStamp> {
        if !valid_id(id) {
            return None;
        }
        let meta = fs::metadata(self.path_in(tenant, id)).ok()?;
        Some(FileStamp { len: meta.len(), mtime: meta.modified().ok() })
    }

    /// Stores `key` in the default tenant, returning
    /// `(key_id, created)`. The key is audited first — a structurally
    /// corrupt key is rejected with the audit's first error rather
    /// than persisted. Re-storing an existing key is a no-op
    /// (`created = false`).
    pub fn put(&self, key: &TransformKey) -> Result<(String, bool), PpdtError> {
        self.put_in(&Tenant::Default, key)
    }

    /// Tenant-scoped [`KeyStore::put`].
    pub fn put_in(&self, tenant: &Tenant, key: &TransformKey) -> Result<(String, bool), PpdtError> {
        self.put_impl(tenant, key, false)
    }

    /// Like [`KeyStore::put`], but replaces whatever is on disk under
    /// the key's content address even when a file already exists
    /// there. Content addressing makes this safe — the only bytes that
    /// can legally live under the id are the canonical envelope, so
    /// the sole effect of overwriting is to *repair* a corrupt or
    /// torn on-disk entry (the anti-entropy loop uses exactly this
    /// after re-fetching a quarantined key from a healthy peer).
    pub(crate) fn put_repairing(
        &self,
        tenant: &Tenant,
        key: &TransformKey,
    ) -> Result<(String, bool), PpdtError> {
        self.put_impl(tenant, key, true)
    }

    fn put_impl(
        &self,
        tenant: &Tenant,
        key: &TransformKey,
        overwrite: bool,
    ) -> Result<(String, bool), PpdtError> {
        let report = ppdt_transform::audit_key(key);
        if !report.passed() {
            return Err(report
                .first_error()
                .unwrap_or_else(|| PpdtError::key_corrupt("key failed audit")));
        }
        let id = Self::key_id(key)?;
        let tdir = self.tenant_dir(tenant);
        if !tenant.is_default() {
            // Lazily materialize the tenant's directory on first put.
            fs::create_dir_all(&tdir).map_err(|e| PpdtError::io(tdir.display().to_string(), e))?;
        }
        let path = self.path_in(tenant, &id);
        if !overwrite && path.exists() {
            return Ok((id, false));
        }
        let envelope = KeyEnvelope {
            schema_version: KEYSTORE_SCHEMA_VERSION,
            key_id: id.clone(),
            num_attrs: key.transforms.len(),
            key: key.clone(),
        };
        let text = serde_json::to_string_pretty(&envelope)
            .map_err(|e| PpdtError::internal(format!("envelope serialization failed: {e}")))?;
        // Write-then-rename onto a per-call-unique temp path: a crash
        // mid-write leaves only a temp file that no valid id ever
        // resolves to, and concurrent puts of the same key each own
        // their temp file (the last rename wins with identical bytes).
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = tdir.join(format!(".tmp-{id}-{}-{seq}", std::process::id()));
        let result = (|| {
            let mut f =
                fs::File::create(&tmp).map_err(|e| PpdtError::io(tmp.display().to_string(), e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| PpdtError::io(tmp.display().to_string(), e))?;
            // fsync before rename: the envelope is durable before it
            // becomes reachable under its id.
            f.sync_all().map_err(|e| PpdtError::io(tmp.display().to_string(), e))?;
            drop(f);
            fs::rename(&tmp, &path).map_err(|e| PpdtError::io(path.display().to_string(), e))?;
            // fsync the *directory* as well: rename only updates the
            // directory entry, and that entry lives in directory
            // metadata the file's own fsync does not cover. Without
            // this, a power loss after `put` returns can roll the
            // rename back and silently drop an envelope the caller
            // was told is durable (and a replica may have already
            // stopped re-fetching). POSIX durability for a rename is
            // file fsync + containing-directory fsync — both or
            // neither.
            let dirf =
                fs::File::open(&tdir).map_err(|e| PpdtError::io(tdir.display().to_string(), e))?;
            dirf.sync_all().map_err(|e| PpdtError::io(tdir.display().to_string(), e))
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result.map(|()| (id, true))
    }

    /// Loads and fully validates the key stored under `id`.
    ///
    /// Returns `Ok(None)` when no such id exists — including ids that
    /// are not [`valid_id`]-shaped, which cannot name any stored key
    /// and never touch the file system (path traversal is
    /// unrepresentable). The HTTP layer answers 404 for unknown ids
    /// and pre-validates the shape for a more precise 400. Every
    /// corruption path on a *stored* envelope — unparseable JSON,
    /// unknown schema version, digest mismatch, failed audit — is a
    /// typed [`PpdtError::KeyCorrupt`].
    pub fn get(&self, id: &str) -> Result<Option<TransformKey>, PpdtError> {
        self.get_in(&Tenant::Default, id)
    }

    /// Tenant-scoped [`KeyStore::get`].
    pub fn get_in(&self, tenant: &Tenant, id: &str) -> Result<Option<TransformKey>, PpdtError> {
        if !valid_id(id) {
            return Ok(None);
        }
        let cache_key = Self::cache_key(tenant, id);
        // Stamp *before* reading: if the file is replaced between the
        // stamp and the read we cache the new bytes under the old
        // stamp, and the next call's stamp mismatch forces a reload —
        // the race costs one redundant load, never a stale serve.
        let stamp = self.stamp_in(tenant, id);
        if let (Some(current), Some(cached)) = (stamp, self.envelopes.get(&cache_key)) {
            let (cached_stamp, ref key) = *cached;
            if cached_stamp == current {
                return Ok(Some(key.clone()));
            }
            self.envelopes.remove(&cache_key);
        }
        let path = self.path_in(tenant, id);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(PpdtError::io(path.display().to_string(), e)),
        };
        let envelope: KeyEnvelope = serde_json::from_str(&text).map_err(|e| {
            PpdtError::key_corrupt(format!("envelope for {id} does not parse: {e}"))
        })?;
        if envelope.schema_version != KEYSTORE_SCHEMA_VERSION {
            return Err(PpdtError::key_corrupt(format!(
                "envelope for {id} has schema version {} but this daemon speaks {}",
                envelope.schema_version, KEYSTORE_SCHEMA_VERSION
            )));
        }
        let digest = Self::key_id(&envelope.key)?;
        if digest != id || envelope.key_id != id {
            return Err(PpdtError::key_corrupt(format!(
                "content digest mismatch for {id}: stored key hashes to {digest} \
                 (envelope says {}) — the envelope was tampered with or bit-rotted",
                envelope.key_id
            )));
        }
        let report = ppdt_transform::audit_key(&envelope.key);
        if !report.passed() {
            return Err(report
                .first_error()
                .unwrap_or_else(|| PpdtError::key_corrupt(format!("key {id} failed audit"))));
        }
        if let Some(stamp) = stamp {
            self.envelopes.insert(cache_key, Arc::new((stamp, envelope.key.clone())));
        }
        Ok(Some(envelope.key))
    }

    /// The raw on-disk envelope bytes for `id` under `tenant`, with no
    /// validation: `Ok(None)` for malformed or absent ids. The peer
    /// manifest digests these bytes — envelope serialization is
    /// deterministic, so two replicas holding the same key hold
    /// byte-identical files and advertise identical digests.
    pub(crate) fn raw_in(&self, tenant: &Tenant, id: &str) -> Result<Option<Vec<u8>>, PpdtError> {
        if !valid_id(id) {
            return Ok(None);
        }
        let path = self.path_in(tenant, id);
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PpdtError::io(path.display().to_string(), e)),
        }
    }

    /// Lists every `*.json` entry in the default tenant with its
    /// validation status. Unreadable or corrupt entries appear with
    /// `valid = false`; they are diagnosable but unservable.
    pub fn list(&self) -> Result<Vec<KeyEntry>, PpdtError> {
        self.list_in(&Tenant::Default)
    }

    /// Tenant-scoped [`KeyStore::list`]. A named tenant whose
    /// directory has never been materialized simply has no keys.
    pub fn list_in(&self, tenant: &Tenant) -> Result<Vec<KeyEntry>, PpdtError> {
        let tdir = self.tenant_dir(tenant);
        let mut out = Vec::new();
        let entries = match fs::read_dir(&tdir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && !tenant.is_default() => {
                return Ok(out);
            }
            Err(e) => return Err(PpdtError::io(tdir.display().to_string(), e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| PpdtError::io(tdir.display().to_string(), e))?;
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            if !valid_id(stem) {
                continue; // temp files and foreign debris are not entries
            }
            let (valid, num_attrs) = match self.get_in(tenant, stem) {
                Ok(Some(key)) => (true, Some(key.transforms.len())),
                Ok(None) | Err(_) => (false, None),
            };
            out.push(KeyEntry { key_id: stem.to_string(), num_attrs, valid });
        }
        out.sort_by(|a, b| a.key_id.cmp(&b.key_id));
        Ok(out)
    }

    /// Every tenant with a presence on disk: the default tenant
    /// (always, even when empty) followed by named tenants in sorted
    /// order. Directories under `t/` whose names fail [`Tenant::parse`]
    /// are foreign debris and are skipped.
    pub fn list_tenants(&self) -> Result<Vec<Tenant>, PpdtError> {
        let mut out = vec![Tenant::Default];
        let tdir = self.dir.join("t");
        let entries = match fs::read_dir(&tdir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(PpdtError::io(tdir.display().to_string(), e)),
        };
        let mut named = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| PpdtError::io(tdir.display().to_string(), e))?;
            if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let name = entry.file_name();
            let Some(tenant) = name.to_str().and_then(Tenant::parse) else {
                continue;
            };
            if !tenant.is_default() {
                named.push(tenant);
            }
        }
        named.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        out.extend(named);
        Ok(out)
    }

    /// How many well-formed envelope files a tenant holds, counted
    /// directly off the directory (no envelope loads) — cheap enough
    /// to gate every key store against a per-tenant quota.
    pub fn key_count(&self, tenant: &Tenant) -> Result<usize, PpdtError> {
        let tdir = self.tenant_dir(tenant);
        let entries = match fs::read_dir(&tdir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && !tenant.is_default() => {
                return Ok(0);
            }
            Err(e) => return Err(PpdtError::io(tdir.display().to_string(), e)),
        };
        let mut n = 0;
        for entry in entries {
            let entry = entry.map_err(|e| PpdtError::io(tdir.display().to_string(), e))?;
            let name = entry.file_name();
            if name.to_str().and_then(|n| n.strip_suffix(".json")).is_some_and(valid_id) {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_transform::{EncodeConfig, Encoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_key(seed: u64) -> TransformKey {
        let d = ppdt_data::gen::figure1();
        let mut rng = StdRng::seed_from_u64(seed);
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encodes").key
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("ppdt_keystore_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn put_get_roundtrip_and_dedupe() {
        let dir = tmp_dir("roundtrip");
        let store = KeyStore::open(&dir).unwrap();
        let key = sample_key(7);
        let (id, created) = store.put(&key).unwrap();
        assert!(created);
        assert!(valid_id(&id), "{id}");
        let (id2, created2) = store.put(&key).unwrap();
        assert_eq!(id, id2);
        assert!(!created2, "second put of the same key is a no-op");
        let back = store.get(&id).unwrap().expect("present");
        assert_eq!(back, key);
        // A different key gets a different address.
        let other = sample_key(8);
        let (other_id, _) = store.put(&other).unwrap();
        assert_ne!(other_id, id);
        assert_eq!(store.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_and_malformed_ids_are_none() {
        let dir = tmp_dir("unknown");
        let store = KeyStore::open(&dir).unwrap();
        assert_eq!(store.get(&"0".repeat(32)).unwrap(), None);
        // Malformed shapes (including path traversal) cannot name any
        // stored key and never reach the file system.
        for bad in ["../../etc/passwd", "short", "ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ", ""] {
            assert!(!valid_id(bad), "{bad:?}");
            assert_eq!(store.get(bad).unwrap(), None, "{bad:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_puts_never_corrupt_the_store() {
        let dir = tmp_dir("race");
        let store = KeyStore::open(&dir).unwrap();
        // Several threads race to store the same small set of keys:
        // with a shared temp path one thread's rename could ship
        // another's half-written envelope.
        let keys: Vec<TransformKey> = (0..4).map(|s| sample_key(100 + s)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for key in &keys {
                        let (id, _) = store.put(key).expect("put succeeds");
                        let back = store.get(&id).expect("no corruption").expect("present");
                        assert_eq!(&back, key);
                    }
                });
            }
        });
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), keys.len());
        assert!(entries.iter().all(|e| e.valid), "{entries:?}");
        // No temp-file debris survives the racing puts.
        let debris: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(debris.is_empty(), "{debris:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_envelope_never_serves() {
        let dir = tmp_dir("tamper");
        let store = KeyStore::open(&dir).unwrap();
        let (id, _) = store.put(&sample_key(9)).unwrap();
        let path = store.path_for(&id);
        let good = fs::read_to_string(&path).unwrap();

        // A flipped digit breaks the content digest.
        let mut flipped = None;
        for seed in 0..40 {
            let bad = ppdt_data::corrupt::flip_ascii_digit(&good, seed);
            if bad != good {
                flipped = Some(bad);
                break;
            }
        }
        fs::write(&path, flipped.expect("some digit flips")).unwrap();
        let err = store.get(&id).expect_err("tampered envelope must not serve");
        assert_eq!(err.category(), ppdt_error::ErrorCategory::CorruptKey, "{err}");

        // Truncation (crash mid-copy, disk trouble) must not serve.
        fs::write(&path, ppdt_data::corrupt::truncate_at(&good, 0.5)).unwrap();
        assert!(store.get(&id).is_err());

        // An envelope from a future schema must not serve.
        fs::write(&path, good.replacen("\"schema_version\": 1", "\"schema_version\": 99", 1))
            .unwrap();
        let err = store.get(&id).expect_err("future schema must not serve");
        assert!(err.to_string().contains("schema version"), "{err}");

        // The listing still surfaces the broken entry as invalid.
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].valid);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_repairing_overwrites_a_torn_entry() {
        let dir = tmp_dir("repair");
        let store = KeyStore::open(&dir).unwrap();
        let key = sample_key(11);
        let (id, _) = store.put(&key).unwrap();
        let path = store.path_for(&id);
        let good = fs::read_to_string(&path).unwrap();
        fs::write(&path, ppdt_data::corrupt::truncate_at(&good, 0.4)).unwrap();
        assert!(store.get(&id).is_err(), "torn envelope must be quarantined");
        // The plain put dedupes on the existing path, so it cannot
        // repair — that asymmetry is why put_repairing exists.
        let (_, created) = store.put(&key).unwrap();
        assert!(!created);
        assert!(store.get(&id).is_err(), "plain put left the torn file in place");
        let (rid, created) = store.put_repairing(&Tenant::Default, &key).unwrap();
        assert_eq!(rid, id);
        assert!(created);
        assert_eq!(store.get(&id).unwrap().expect("repaired"), key);
        assert_eq!(fs::read_to_string(&path).unwrap(), good, "repair is byte-identical");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_cache_serves_on_stamp_match_and_reloads_on_mismatch() {
        let dir = tmp_dir("envcache");
        let store = KeyStore::open(&dir).unwrap();
        let key = sample_key(13);
        let (id, _) = store.put(&key).unwrap();
        let path = store.path_for(&id);

        // First load parses + audits and populates the cache.
        assert_eq!(store.get(&id).unwrap().expect("present"), key);
        let stamp = store.stamp(&id).expect("stamped");
        let Some(mtime) = stamp.mtime else {
            // Platform without mtimes: the stamp can never match, so
            // the cache is inert and there is nothing to test.
            let _ = fs::remove_dir_all(&dir);
            return;
        };

        // Tamper with the bytes while *forging the stamp back*: same
        // length (one flipped digit), original mtime. The stamp still
        // matches, so the cached parsed key is served without touching
        // the corrupted bytes — which is exactly the trust model: the
        // cached key already passed digest + audit.
        let good = fs::read_to_string(&path).unwrap();
        let mut flipped = None;
        for seed in 0..40 {
            let bad = ppdt_data::corrupt::flip_ascii_digit(&good, seed);
            if bad != good {
                flipped = Some(bad);
                break;
            }
        }
        let bad = flipped.expect("some digit flips");
        assert_eq!(bad.len(), good.len(), "tamper must preserve the length");
        fs::write(&path, &bad).unwrap();
        let f = fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(mtime).unwrap();
        drop(f);
        assert_eq!(store.stamp(&id), Some(stamp), "forged stamp matches");
        assert_eq!(
            store.get(&id).unwrap().expect("served from cache"),
            key,
            "stamp match serves the cached parsed key without re-reading"
        );

        // Let the stamp move (tampered bytes keep their own mtime):
        // the mismatch drops the cached entry and the full reload path
        // sees the corruption.
        let f = fs::File::options().write(true).open(&path).unwrap();
        f.set_modified(std::time::SystemTime::now()).unwrap();
        drop(f);
        assert_ne!(store.stamp(&id), Some(stamp));
        let err = store.get(&id).expect_err("stamp mismatch forces the full load path");
        assert_eq!(err.category(), ppdt_error::ErrorCategory::CorruptKey, "{err}");

        // Repairing the envelope makes it loadable (and cacheable)
        // again through the normal path.
        fs::write(&path, &good).unwrap();
        assert_eq!(store.get(&id).unwrap().expect("repaired"), key);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn content_id_is_stable_and_order_sensitive() {
        assert_eq!(content_id(b"abc"), content_id(b"abc"));
        assert_ne!(content_id(b"abc"), content_id(b"acb"));
        assert_eq!(content_id(b"").len(), 32);
        assert!(valid_id(&content_id(b"anything")));
    }

    #[test]
    fn tenant_parse_validates_shape_and_normalizes_default() {
        assert_eq!(Tenant::parse("default"), Some(Tenant::Default));
        assert_eq!(Tenant::parse("acme"), Some(Tenant::Named("acme".into())));
        assert_eq!(Tenant::parse("a-b_c9"), Some(Tenant::Named("a-b_c9".into())));
        for bad in ["", "UPPER", "with space", "dot.dot", "a/..", "..", &"x".repeat(33)] {
            assert_eq!(Tenant::parse(bad), None, "{bad:?}");
        }
        // Wire round-trip: default is omitted, names survive.
        assert_eq!(Tenant::Default.wire(), None);
        assert_eq!(Tenant::from_wire(None), Some(Tenant::Default));
        assert_eq!(Tenant::from_wire(Some("default")), Some(Tenant::Default));
        let acme = Tenant::parse("acme").unwrap();
        assert_eq!(Tenant::from_wire(acme.wire().as_deref()), Some(acme));
    }

    #[test]
    fn tenants_are_isolated_namespaces_with_the_layout_on_disk() {
        let dir = tmp_dir("tenancy");
        let store = KeyStore::open(&dir).unwrap();
        let acme = Tenant::parse("acme").unwrap();
        let globex = Tenant::parse("globex").unwrap();
        let key = sample_key(21);

        // The same key under two tenants: same content address, two
        // independent files, and the default namespace stays empty.
        let (id_a, created_a) = store.put_in(&acme, &key).unwrap();
        let (id_g, created_g) = store.put_in(&globex, &key).unwrap();
        assert!(created_a && created_g, "each tenant's first put creates");
        assert_eq!(id_a, id_g, "content addressing is tenant-independent");
        assert!(dir.join("t").join("acme").join(format!("{id_a}.json")).is_file());
        assert!(dir.join("t").join("globex").join(format!("{id_a}.json")).is_file());
        assert!(!dir.join(format!("{id_a}.json")).exists(), "default stays flat and empty");

        // Reads never cross namespaces — including via the envelope
        // cache, which is what a bare-id cache key would leak through.
        assert_eq!(store.get_in(&acme, &id_a).unwrap().as_ref(), Some(&key));
        assert_eq!(store.get(&id_a).unwrap(), None, "default tenant does not see acme's key");
        let fresno = Tenant::parse("fresno").unwrap();
        assert_eq!(store.get_in(&fresno, &id_a).unwrap(), None);

        // Listings are per tenant; the default listing is untouched.
        assert_eq!(store.list_in(&acme).unwrap().len(), 1);
        assert_eq!(store.list_in(&fresno).unwrap().len(), 0, "unmaterialized tenant is empty");
        assert_eq!(store.list().unwrap().len(), 0);
        assert_eq!(store.key_count(&acme).unwrap(), 1);
        assert_eq!(store.key_count(&Tenant::Default).unwrap(), 0);
        assert_eq!(store.key_count(&fresno).unwrap(), 0);

        // Tenant discovery: default first, then named, sorted.
        let tenants = store.list_tenants().unwrap();
        assert_eq!(tenants, vec![Tenant::Default, acme.clone(), globex.clone()]);

        // `/v2/t/default` is an exact alias of the flat root.
        let other = sample_key(22);
        let (oid, _) = store.put_in(&Tenant::Default, &other).unwrap();
        assert!(dir.join(format!("{oid}.json")).is_file());
        assert_eq!(store.get(&oid).unwrap().as_ref(), Some(&other));
        let _ = fs::remove_dir_all(&dir);
    }
}
