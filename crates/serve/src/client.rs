//! Deadline-aware loopback HTTP client with `Retry-After`-honoring
//! retry — the shared client for cluster peers, integration tests,
//! and bench binaries.
//!
//! [`crate::http::request`] answers exactly one exchange and drops
//! the response headers on the floor, so every test and bench binary
//! that needed a deadline, a retry, or a `Retry-After` value grew its
//! own ad-hoc socket loop. This module is the one shared
//! implementation:
//!
//! * a fresh `Connection: close` socket per attempt — an overload 503
//!   always closes the connection, so there is nothing to reuse on
//!   the retry path;
//! * hard connect and read/write deadlines, so a dead or wedged peer
//!   costs bounded wall-clock time instead of a hung thread;
//! * a bounded retry loop (budgeted by [`ppdt_transform::RetryPolicy`])
//!   that sleeps the server's `Retry-After` on a 503 and backs off
//!   exponentially on connection errors.
//!
//! The cluster anti-entropy loop ([`crate::peer`]) runs on this
//! client, and `scripts/cluster_smoke.py` mirrors the same policy in
//! Python — a client following it observes zero lost requests across
//! a node SIGKILL, which is exactly what the smoke test proves.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ppdt_error::PpdtError;
use ppdt_transform::RetryPolicy;

/// Ceiling on any single retry sleep (backoff or `Retry-After`): the
/// client is for loopback/LAN peers where multi-second waits only
/// hide problems.
const MAX_SLEEP: Duration = Duration::from_secs(2);

/// Deadlines and retry budget for a [`RetryingClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write deadline per attempt.
    pub io_timeout: Duration,
    /// Attempt budget ([`RetryPolicy::max_attempts`]; the exhaust
    /// mode is irrelevant here — a client can only fail with its last
    /// error, there is no fallback value to substitute).
    pub retry: RetryPolicy,
    /// Base sleep after a connection error; doubles per failed
    /// attempt (capped). A 503 sleeps its `Retry-After` instead.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            retry: RetryPolicy::failing(4),
            backoff: Duration::from_millis(50),
        }
    }
}

/// One parsed HTTP exchange: the status, the server's `Retry-After`
/// (seconds) when it sent one, and the full body.
#[derive(Clone, Debug)]
pub struct Exchange {
    /// HTTP status code.
    pub status: u16,
    /// Parsed `Retry-After` header, if present.
    pub retry_after: Option<u64>,
    /// Response body.
    pub body: String,
}

/// A retrying one-shot client bound to a single server address.
#[derive(Clone, Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    cfg: ClientConfig,
}

impl RetryingClient {
    /// A client for `addr` with [`ClientConfig::default`] deadlines.
    pub fn new(addr: SocketAddr) -> RetryingClient {
        RetryingClient { addr, cfg: ClientConfig::default() }
    }

    /// A client with explicit deadlines and retry budget.
    pub fn with_config(addr: SocketAddr, cfg: ClientConfig) -> RetryingClient {
        RetryingClient { addr, cfg }
    }

    /// The server this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn err(&self, what: &str, e: &dyn std::fmt::Display) -> PpdtError {
        PpdtError::Io {
            path: Some(format!("http://{}", self.addr)),
            detail: format!("{what}: {e}"),
        }
    }

    /// One exchange on a fresh `Connection: close` socket, no retry.
    /// Connection and read errors surface as [`PpdtError::Io`]; any
    /// parsed HTTP response — including errors — is `Ok`.
    pub fn exchange_once(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Exchange, PpdtError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)
            .map_err(|e| self.err("connect", &e))?;
        stream.set_read_timeout(Some(self.cfg.io_timeout)).map_err(|e| self.err("timeout", &e))?;
        stream.set_write_timeout(Some(self.cfg.io_timeout)).map_err(|e| self.err("timeout", &e))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes()).map_err(|e| self.err("write", &e))?;
        stream.write_all(body.as_bytes()).map_err(|e| self.err("write", &e))?;
        stream.flush().map_err(|e| self.err("flush", &e))?;

        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(|e| self.err("read", &e))?;
        let text = String::from_utf8_lossy(&raw);
        let (head, tail) = text
            .split_once("\r\n\r\n")
            .ok_or_else(|| self.err("parse", &"no header terminator in response"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("parse", &"no status code in response"))?;
        let retry_after = head.lines().find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("retry-after")
                .then(|| value.trim().parse().ok())
                .flatten()
        });
        Ok(Exchange { status, retry_after, body: tail.to_string() })
    }

    /// One logical request with the full retry policy applied:
    /// connection/read errors and overload 503s are retried up to the
    /// attempt budget (503s sleep the server's `Retry-After`,
    /// connection errors back off exponentially). Returns the final
    /// `(status, body)` — a non-503 error status is a *server
    /// decision*, not a transport fault, and is returned on the first
    /// attempt rather than retried.
    ///
    /// Callers that need to separate service latency from retry delay
    /// (open-loop load generators) should use [`request_traced`],
    /// which this delegates to.
    ///
    /// [`request_traced`]: RetryingClient::request_traced
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), PpdtError> {
        self.request_traced(method, path, body).map(|o| (o.status, o.body))
    }

    /// [`request`](RetryingClient::request) with full retry
    /// accounting: how many attempts the exchange took and how long
    /// the client slept between them. Under overload, retries used to
    /// silently inflate observed latency — a caller timing `request`
    /// around a 503-then-200 saw service latency *plus* the
    /// `Retry-After` sleep with no way to tell them apart. Subtracting
    /// [`RequestOutcome::retry_wait`] from the wall clock recovers the
    /// time actually spent connecting and exchanging.
    pub fn request_traced(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<RequestOutcome, PpdtError> {
        let attempts = self.cfg.retry.max_attempts.max(1);
        let mut backoff = self.cfg.backoff;
        let mut retry_wait = Duration::ZERO;
        for attempt in 1..=attempts {
            let last = attempt == attempts;
            match self.exchange_once(method, path, body) {
                Ok(ex) if ex.status == 503 && !last => {
                    let wait = ex.retry_after.map_or(backoff, Duration::from_secs).min(MAX_SLEEP);
                    retry_wait += wait;
                    std::thread::sleep(wait);
                }
                Ok(ex) => {
                    return Ok(RequestOutcome {
                        status: ex.status,
                        body: ex.body,
                        attempts: attempt,
                        retry_wait,
                    });
                }
                Err(e) => {
                    if last {
                        return Err(e);
                    }
                    let wait = backoff.min(MAX_SLEEP);
                    retry_wait += wait;
                    std::thread::sleep(wait);
                }
            }
            backoff = backoff.saturating_mul(2);
        }
        unreachable!("the loop returns on its last attempt")
    }
}

/// Result of [`RetryingClient::request_traced`]: the final response
/// plus the retry accounting needed to separate service latency from
/// client-side retry delay.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Final HTTP status code.
    pub status: u16,
    /// Final response body.
    pub body: String,
    /// Exchanges performed, including the successful one (1 = no
    /// retries).
    pub attempts: usize,
    /// Total time slept between attempts (`Retry-After` sleeps plus
    /// connection-error backoff). Wall clock minus this is the time
    /// spent actually connecting and exchanging.
    pub retry_wait: Duration,
}

/// Writes `raw` bytes to a fresh socket, half-closes the write side,
/// and reads to EOF, returning everything the server sent (possibly
/// several pipelined responses). The shared form of the tests'
/// hostile/overload probes — malformed heads, pipelined bursts,
/// truncated bodies — which all used to hand-roll this
/// connect/write/drain loop. The write shutdown matters: it is the
/// EOF that lets the server distinguish a *truncated* body from a
/// merely *slow* one, so truncation probes get their typed 400
/// instead of waiting out the parse deadline. (Slow-loris tests,
/// whose whole point is a stalled-but-open socket, cannot use this.)
pub fn raw_probe(addr: SocketAddr, raw: &[u8], io_timeout: Duration) -> Result<String, PpdtError> {
    let err = |what: &str, e: &dyn std::fmt::Display| PpdtError::Io {
        path: Some(format!("http://{addr}")),
        detail: format!("{what}: {e}"),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| err("connect", &e))?;
    stream.set_read_timeout(Some(io_timeout)).map_err(|e| err("timeout", &e))?;
    stream.set_write_timeout(Some(io_timeout)).map_err(|e| err("timeout", &e))?;
    stream.write_all(raw).map_err(|e| err("write", &e))?;
    stream.flush().map_err(|e| err("flush", &e))?;
    stream.shutdown(std::net::Shutdown::Write).map_err(|e| err("shutdown", &e))?;
    let mut out = Vec::new();
    stream.read_to_end(&mut out).map_err(|e| err("read", &e))?;
    Ok(String::from_utf8_lossy(&out).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    /// Drains one request's head off `conn` (ignores the body — every
    /// scripted test request is bodyless) then writes `response`.
    fn answer(mut conn: TcpStream, response: &str) {
        let mut buf = [0u8; 4096];
        let mut seen = Vec::new();
        while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
            let n = conn.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            seen.extend_from_slice(&buf[..n]);
        }
        conn.write_all(response.as_bytes()).unwrap();
    }

    #[test]
    fn retries_past_a_503_honoring_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            answer(
                conn,
                "HTTP/1.1 503 Service Unavailable\r\nretry-after: 0\r\n\
                 content-length: 2\r\nconnection: close\r\n\r\n{}",
            );
            let (conn, _) = listener.accept().unwrap();
            answer(conn, "HTTP/1.1 200 OK\r\ncontent-length: 4\r\nconnection: close\r\n\r\nfine");
        });
        let client = RetryingClient::new(addr);
        let (status, body) = client.request("GET", "/x", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "fine"));
        server.join().unwrap();
    }

    #[test]
    fn request_traced_accounts_for_retries() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (conn, _) = listener.accept().unwrap();
                answer(
                    conn,
                    "HTTP/1.1 503 Service Unavailable\r\nretry-after: 1\r\n\
                     content-length: 2\r\nconnection: close\r\n\r\n{}",
                );
            }
            let (conn, _) = listener.accept().unwrap();
            answer(conn, "HTTP/1.1 200 OK\r\ncontent-length: 4\r\nconnection: close\r\n\r\nfine");
        });
        let out = RetryingClient::new(addr).request_traced("GET", "/x", "").unwrap();
        assert_eq!((out.status, out.body.as_str()), (200, "fine"));
        assert_eq!(out.attempts, 3, "two 503s then the success");
        // Two Retry-After sleeps of 1s each — the accounting must
        // report exactly what the client slept, no more.
        assert_eq!(out.retry_wait, Duration::from_secs(2));
        server.join().unwrap();
    }

    #[test]
    fn request_traced_first_try_reports_no_wait() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            answer(conn, "HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok");
        });
        let out = RetryingClient::new(addr).request_traced("GET", "/x", "").unwrap();
        assert_eq!((out.status, out.attempts, out.retry_wait), (200, 1, Duration::ZERO));
        server.join().unwrap();
    }

    #[test]
    fn exchange_once_surfaces_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            answer(
                conn,
                "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 7\r\n\
                 content-length: 0\r\nconnection: close\r\n\r\n",
            );
        });
        let ex = RetryingClient::new(addr).exchange_once("GET", "/x", "").unwrap();
        assert_eq!(ex.status, 503);
        assert_eq!(ex.retry_after, Some(7));
        server.join().unwrap();
    }

    #[test]
    fn connection_errors_retry_then_fail_within_bounded_time() {
        // Bind, learn the port, drop the listener: connects now fail
        // fast with ECONNREFUSED on loopback.
        let addr = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        let cfg = ClientConfig {
            retry: RetryPolicy::failing(3),
            backoff: Duration::from_millis(10),
            ..ClientConfig::default()
        };
        let t0 = Instant::now();
        let err = RetryingClient::with_config(addr, cfg)
            .request("GET", "/x", "")
            .expect_err("nothing listens");
        assert!(err.to_string().contains("connect"), "{err}");
        assert!(t0.elapsed() < Duration::from_secs(5), "retries must stay bounded");
    }
}
