//! The daemon's hot-path caches: compiled key plans and decoded
//! trees.
//!
//! After PR 4 every `/v1/encode`/`/v1/classify` request re-read the
//! key envelope from disk, re-parsed it, re-derived its digest,
//! re-audited it, and then enum-dispatched the interpreted
//! [`TransformKey`] per value. The
//! [`PlanCache`] does all of that once per key: the first request (or
//! the `PUT /v1/keys` that stores it) loads, audits, and lowers the
//! key into a [`CompiledKey`] — flat arrays, no per-value dispatch or
//! allocation — and every later request under the same content id
//! reuses the `Arc`-shared plan.
//!
//! Staleness: the store is content-addressed, so under normal
//! operation a key id's bytes never change. But the audit boundary
//! assumes hostile storage — an operator (or an attacker) can
//! overwrite `<id>.json` in place. Every cache lookup therefore
//! revalidates a cheap [`FileStamp`] (length + mtime) against the
//! envelope file and treats any change, or a missing file, as a miss:
//! the stale plan is dropped and the key goes back through the full
//! load → digest-check → audit → compile path.
//!
//! The [`TreeCache`] is the same idea one level up: `/v1/classify`
//! and `/v1/decode-tree` ship a mined tree (and optionally the
//! original dataset) with every request, and repeated requests
//! against the same table re-validate and re-decode identical
//! payloads. Caching the validated/decoded tree under
//! `(key id, payload digest)` turns the repeat into a lookup.
//!
//! Both caches are bounded LRU maps behind one mutex each (lookups
//! copy an `Arc`, so the critical sections are tiny), and both are
//! observable: [`ppdt_obs::Counter::PlanCacheHits`]/`Misses`/
//! `Evictions` and [`ppdt_obs::Counter::TreeCacheHits`] flow into
//! `/metrics` and `BenchReport`. Capacity 0 disables a cache — the
//! benches use that to measure the cold path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use ppdt_error::PpdtError;
use ppdt_obs::Counter;
use ppdt_transform::{CompiledKey, TransformKey};
use ppdt_tree::DecisionTree;

use crate::keystore::{KeyStore, Tenant};

/// Cheap change detector for a key-envelope file: byte length plus
/// mtime. Content addressing means same-id rewrites only happen on
/// tampering or operator error, where length/mtime realistically
/// move; the full digest check still runs on the reload that a stamp
/// mismatch triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileStamp {
    /// Envelope file length in bytes.
    pub len: u64,
    /// Envelope file modification time, when the platform reports one.
    pub mtime: Option<SystemTime>,
}

/// A compiled, audit-cleared key pinned in the [`PlanCache`].
#[derive(Debug)]
pub struct CachedPlan {
    /// The interpreted key (still needed for tree decoding, which
    /// walks [`PiecewiseTransform`](ppdt_transform::PiecewiseTransform)
    /// structure).
    pub key: TransformKey,
    /// The flat compiled form used for per-value encode/decode.
    pub plan: CompiledKey,
    stamp: FileStamp,
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Inner<V> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
}

/// A bounded string-keyed LRU map. Capacity 0 disables it: every
/// `get` misses and `insert` is a no-op, which is how the benches
/// force the cold path. Crate-visible so the key store can reuse it
/// for parsed-envelope caching.
pub(crate) struct LruCache<V> {
    capacity: usize,
    inner: Mutex<Inner<V>>,
}

impl<V> LruCache<V> {
    pub(crate) fn new(capacity: usize) -> Self {
        LruCache { capacity, inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }) }
    }

    /// Locks the cache, recovering from poisoning: a panic in a
    /// worker (already contained by the server's `catch_unwind`)
    /// never runs while mutating the map mid-operation, so the inner
    /// state is always coherent and losing the cache to poisoning
    /// would turn one contained panic into a permanent cold path.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner<V>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn get(&self, id: &str) -> Option<Arc<V>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(id).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    /// Inserts (replacing any entry under `id`), evicting the least
    /// recently used entry when full. Returns whether an eviction
    /// happened.
    pub(crate) fn insert(&self, id: String, value: Arc<V>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = false;
        if !inner.map.contains_key(&id) && inner.map.len() >= self.capacity {
            if let Some(oldest) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                evicted = true;
            }
        }
        inner.map.insert(id, Entry { value, last_used: tick });
        evicted
    }

    pub(crate) fn remove(&self, id: &str) {
        if self.capacity == 0 {
            return;
        }
        self.locked().map.remove(id);
    }

    fn len(&self) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.locked().map.len()
    }
}

/// Bounded cache of compiled key plans, keyed by content-addressed
/// key id and invalidated by envelope [`FileStamp`].
pub struct PlanCache {
    cache: LruCache<CachedPlan>,
}

impl PlanCache {
    /// A plan cache holding at most `capacity` compiled keys
    /// (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        PlanCache { cache: LruCache::new(capacity) }
    }

    /// Returns the compiled plan for `id`, compiling (and caching) on
    /// miss. `Ok(None)` means no such key exists — including a key
    /// whose envelope vanished after being cached. A corrupt envelope
    /// surfaces as the store's typed error and is never cached.
    ///
    /// The audit runs inside [`KeyStore::get`] on the miss path, so a
    /// cache hit is exactly the case where the (expensive) audit and
    /// compile are both skipped.
    pub fn get_or_compile(
        &self,
        store: &KeyStore,
        tenant: &Tenant,
        id: &str,
    ) -> Result<Option<Arc<CachedPlan>>, PpdtError> {
        // Tenant-qualified cache key: the same content address under
        // two tenants is two independent entries (and `/` can appear
        // in neither component, so the key is unambiguous).
        let cache_key = format!("{tenant}/{id}");
        let Some(stamp) = store.stamp_in(tenant, id) else {
            // No envelope on disk: drop any stale plan so a later
            // re-store starts clean.
            self.cache.remove(&cache_key);
            return Ok(None);
        };
        if let Some(cached) = self.cache.get(&cache_key) {
            if cached.stamp == stamp {
                ppdt_obs::add(Counter::PlanCacheHits, 1);
                return Ok(Some(cached));
            }
            // The envelope changed under a cached id (tampering or
            // operator overwrite): the plan is stale.
            self.cache.remove(&cache_key);
        }
        ppdt_obs::add(Counter::PlanCacheMisses, 1);
        let Some(key) = store.get_in(tenant, id)? else {
            return Ok(None);
        };
        let plan = {
            let _t = ppdt_obs::phase("key_compile");
            // The store's load already audited the key; the trusted
            // lowering skips the second audit.
            CompiledKey::compile_trusted(&key)
        };
        let cached = Arc::new(CachedPlan { key, plan, stamp });
        if self.cache.insert(cache_key, Arc::clone(&cached)) {
            ppdt_obs::add(Counter::PlanCacheEvictions, 1);
        }
        Ok(Some(cached))
    }

    /// Pre-compiles `id` so the first request after `PUT /v1/keys` is
    /// already warm. Failures are ignored — the request path will
    /// surface them with proper status mapping.
    pub fn warm(&self, store: &KeyStore, tenant: &Tenant, id: &str) {
        let _ = self.get_or_compile(store, tenant, id);
    }

    /// Drops any cached plan for `id` in `tenant`.
    pub fn invalidate(&self, tenant: &Tenant, id: &str) {
        self.cache.remove(&format!("{tenant}/{id}"));
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty (or disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Bounded cache of validated/decoded trees, keyed by
/// `(key id, payload digest)`, so repeated `/v1/classify` and
/// `/v1/decode-tree` calls against the same table skip re-validating
/// and re-decoding identical payloads.
pub struct TreeCache {
    cache: LruCache<DecisionTree>,
}

impl TreeCache {
    /// A tree cache holding at most `capacity` trees (0 disables it).
    pub fn new(capacity: usize) -> Self {
        TreeCache { cache: LruCache::new(capacity) }
    }

    /// Composite cache key: the tenant, the key id, and a content
    /// digest of the relevant payload bytes (tree JSON, plus the
    /// dataset text for replayed decodes). Tenant-qualifying the key
    /// keeps identical payloads under identical key ids in two
    /// tenants as two entries — isolation over dedup.
    pub fn cache_key(tenant: &Tenant, key_id: &str, payload: &[u8]) -> String {
        format!("{tenant}/{key_id}:{}", crate::keystore::content_id(payload))
    }

    /// Cached tree for a composite key, counting the hit.
    pub fn get(&self, composite: &str) -> Option<Arc<DecisionTree>> {
        let hit = self.cache.get(composite);
        if hit.is_some() {
            ppdt_obs::add(Counter::TreeCacheHits, 1);
        }
        hit
    }

    /// Stores a validated/decoded tree under a composite key.
    pub fn put(&self, composite: String, tree: Arc<DecisionTree>) {
        self.cache.insert(composite, tree);
    }

    /// Number of trees currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty (or disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The daemon's cache pair, shared across workers.
pub struct Caches {
    /// Compiled key plans.
    pub plans: PlanCache,
    /// Validated/decoded trees.
    pub trees: TreeCache,
}

impl Caches {
    /// Caches with the given capacities (0 disables either).
    pub fn new(plan_capacity: usize, tree_capacity: usize) -> Self {
        Caches { plans: PlanCache::new(plan_capacity), trees: TreeCache::new(tree_capacity) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_transform::{EncodeConfig, Encoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_key(seed: u64) -> TransformKey {
        let d = ppdt_data::gen::figure1();
        let mut rng = StdRng::seed_from_u64(seed);
        Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).expect("encodes").key
    }

    fn tmp_store(name: &str) -> (KeyStore, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("ppdt_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (KeyStore::open(&dir).unwrap(), dir)
    }

    #[test]
    fn plan_cache_compiles_once_and_matches_interpreted() {
        let (store, dir) = tmp_store("compile_once");
        let key = sample_key(7);
        let (id, _) = store.put(&key).unwrap();
        let cache = PlanCache::new(4);
        let p1 = cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().expect("present");
        let p2 = cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().expect("present");
        assert!(Arc::ptr_eq(&p1, &p2), "second lookup must be a cache hit");
        assert_eq!(cache.len(), 1);
        // The cached plan encodes identically to the interpreted key.
        let a = ppdt_data::AttrId(0);
        for &x in &key.transforms[0].orig_domain {
            let interp = key.encode_value(a, x).unwrap();
            let compiled = p1.plan.encode_value(a, x).unwrap();
            assert_eq!(interp.to_bits(), compiled.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_cache_unknown_and_vanished_keys_are_none() {
        let (store, dir) = tmp_store("vanish");
        let cache = PlanCache::new(4);
        assert!(cache.get_or_compile(&store, &Tenant::Default, &"0".repeat(32)).unwrap().is_none());
        let (id, _) = store.put(&sample_key(8)).unwrap();
        assert!(cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().is_some());
        std::fs::remove_file(dir.join(format!("{id}.json"))).unwrap();
        assert!(
            cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().is_none(),
            "a vanished envelope must not serve from cache"
        );
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_cache_detects_in_place_overwrite() {
        let (store, dir) = tmp_store("overwrite");
        let cache = PlanCache::new(4);
        let (id, _) = store.put(&sample_key(9)).unwrap();
        cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().expect("warm");
        // Overwrite the envelope in place with different bytes (a
        // different key's envelope): the digest no longer matches the
        // file name, so the reload must fail — and the stale cached
        // plan must NOT paper over it.
        let (other_id, _) = store.put(&sample_key(10)).unwrap();
        let other = std::fs::read(dir.join(format!("{other_id}.json"))).unwrap();
        std::fs::write(dir.join(format!("{id}.json")), other).unwrap();
        let err = cache
            .get_or_compile(&store, &Tenant::Default, &id)
            .expect_err("stale plan must not serve");
        assert_eq!(err.category(), ppdt_error::ErrorCategory::CorruptKey, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_cache_bounded_with_evictions() {
        let (store, dir) = tmp_store("evict");
        let cache = PlanCache::new(2);
        let ids: Vec<String> = (0..3).map(|s| store.put(&sample_key(20 + s)).unwrap().0).collect();
        for id in &ids {
            cache.get_or_compile(&store, &Tenant::Default, id).unwrap().expect("present");
        }
        assert_eq!(cache.len(), 2, "capacity bound must hold");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (store, dir) = tmp_store("disabled");
        let cache = PlanCache::new(0);
        let (id, _) = store.put(&sample_key(30)).unwrap();
        let p1 = cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().expect("present");
        let p2 = cache.get_or_compile(&store, &Tenant::Default, &id).unwrap().expect("present");
        assert!(!Arc::ptr_eq(&p1, &p2), "capacity 0 must recompile every time");
        assert!(cache.is_empty());
        let trees = TreeCache::new(0);
        assert!(trees.get("anything").is_none());
        assert!(trees.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tree_cache_roundtrip_and_keying() {
        let trees = TreeCache::new(2);
        let k1 = TreeCache::cache_key(&Tenant::Default, &"a".repeat(32), b"payload-1");
        let k2 = TreeCache::cache_key(&Tenant::Default, &"a".repeat(32), b"payload-2");
        assert_ne!(k1, k2, "different payloads must key differently");
        assert_eq!(k1, TreeCache::cache_key(&Tenant::Default, &"a".repeat(32), b"payload-1"));
        assert!(trees.get(&k1).is_none());
        let tree = Arc::new(DecisionTree {
            root: ppdt_tree::Node::Leaf { label: ppdt_data::ClassId(0), class_counts: vec![1, 0] },
            num_classes: 2,
            criterion: ppdt_tree::SplitCriterion::Gini,
        });
        trees.put(k1.clone(), Arc::clone(&tree));
        let back = trees.get(&k1).expect("hit");
        assert!(Arc::ptr_eq(&back, &tree));
    }
}
