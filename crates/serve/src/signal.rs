//! Minimal SIGINT/SIGTERM latching without a libc dependency.
//!
//! The handler does the only async-signal-safe thing there is to do:
//! store one atomic flag. The accept loop polls
//! [`signalled`] between accepts and begins the graceful drain when
//! it flips.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs the latching handler for SIGINT (2) and SIGTERM (15).
///
/// Idempotent; meant to be called once by the CLI before
/// [`crate::Server::run`]. On non-Unix targets this is a no-op and
/// only the programmatic [`crate::Server::shutdown_flag`] stops the
/// daemon.
pub fn install() {
    #[cfg(unix)]
    {
        // The libc `signal` entry point, declared directly so the
        // vendored-deps-only policy holds. glibc gives `signal` BSD
        // semantics (the handler stays installed after delivery).
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` only stores to an atomic, which is
        // async-signal-safe; the handler pointer outlives the process.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Whether a termination signal has been delivered since process
/// start.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}
