//! Streaming bodies: `POST /v1/encode` and `POST /v1/classify` with
//! `Transfer-Encoding: chunked`.
//!
//! A chunked request never materializes the dataset: the worker
//! decodes the body incrementally ([`ChunkedReader`]), batches rows
//! ([`crate::server::ServerConfig::stream_chunk_rows`] at a time),
//! feeds each batch column-wise through
//! [`CompiledKey::encode_column`](ppdt_transform::CompiledKey::encode_column),
//! and streams the answer back as a chunked response — so a
//! million-row dataset is encoded under a bounded memory ceiling
//! (one batch of columns, not the relation).
//!
//! The wire format inside the chunked body is line-oriented:
//!
//! * **encode** — line 1 is a JSON [`StreamEncodeHeader`]
//!   (`{"key_id": "..."}`), line 2 the CSV header, then one CSV data
//!   row per line (the same labelled text `ppdt encode` reads). The
//!   response streams the transformed CSV (`text/csv`).
//! * **classify** — line 1 is a JSON [`StreamClassifyHeader`]
//!   (`{"key_id": "...", "tree": {...}}`), then one plaintext query
//!   row per line (comma-separated attribute values, no header, no
//!   label). The response streams one predicted class id per line
//!   (`text/plain`).
//!
//! Failure semantics: anything wrong with the stream header, the key,
//! or the *first* batch is answered as a normal structured JSON error
//! (the response has not started). Once the 200 head is on the wire a
//! failure can only truncate: the daemon drops the connection without
//! the terminating `0` chunk, which every chunked client detects as
//! an aborted body.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Instant;

use ppdt_data::AttrId;
use ppdt_error::PpdtError;

use crate::api::{StreamClassifyHeader, StreamEncodeHeader};
use crate::conn::Conn;
use crate::handlers::{self, Endpoint, HandlerCtx, RequestCtx, Route};
use crate::http::{
    chunk_read_failed, finish_chunked, write_chunk, write_stream_head, ChunkedReader, HttpError,
};
use crate::server::ServerConfig;

/// Cap on one line inside a streamed CSV body.
const MAX_ROW_LINE: usize = 1024 * 1024;

/// How a streaming request ended, from the connection's perspective.
pub(crate) enum StreamEnd {
    /// Response fully streamed; `keep` says whether the connection
    /// survives for the next request.
    Done { keep: bool, rows: u64, chunks: u64 },
    /// Failed before the response head was written: answer this as a
    /// normal JSON error. The body was not fully consumed, so the
    /// connection must close afterwards.
    Error(HttpError),
    /// Failed after the response head was written: the wire is
    /// mid-body and unrecoverable, the connection is already dead.
    Aborted,
}

/// Runs one streaming request on a worker thread. `seq`/`close_after`
/// come from the parser (response ordering and keep-alive policy),
/// `expect_continue` triggers the interim `100` once it is this
/// request's turn.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    conn: &mut Conn,
    seq: u64,
    close_after: bool,
    expect_continue: bool,
    route: &Route,
    shared: &HandlerCtx,
    cfg: &ServerConfig,
) -> StreamEnd {
    conn.set_deadline(Instant::now() + cfg.stream_deadline);
    if expect_continue {
        conn.writer.try_continue(seq);
    }
    let ctx = shared.scoped(&route.tenant);
    let writer = Arc::clone(&conn.writer);
    let mut body = BufReader::new(ChunkedReader::new(&mut conn.reader));
    let mut out = match route.endpoint {
        Endpoint::Encode => stream_encode(&writer, &mut body, seq, close_after, &ctx, cfg),
        Endpoint::Classify => stream_classify(&writer, &mut body, seq, close_after, &ctx, cfg),
        _ => StreamEnd::Error(HttpError::from(PpdtError::internal(
            "streaming dispatched to a non-streamable endpoint",
        ))),
    };
    if let StreamEnd::Done { rows, chunks, .. } = &mut out {
        // `chunks` leaves here as the full wire-chunk count: response
        // chunks written plus request chunks decoded.
        *chunks += body.get_ref().chunks_read();
        ppdt_obs::add(ppdt_obs::Counter::StreamedChunks, *chunks);
        ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, *rows);
    }
    out
}

/// Reads one `\n`-terminated line off the de-chunked body, capped at
/// `cap` bytes. `Ok(None)` is end of body. Allocates per call; the
/// row hot loop uses [`read_line_capped_into`] with a reused buffer.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &str,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    Ok(read_line_capped_into(reader, cap, what, &mut buf)?.map(str::to_owned))
}

/// [`read_line_capped`] into a caller-owned scratch buffer (cleared,
/// capacity retained): one buffer serves every row of a streamed
/// dataset, so the per-line path never touches the allocator once the
/// buffer has grown to the longest row seen.
fn read_line_capped_into<'b, R: BufRead>(
    reader: &mut R,
    cap: usize,
    what: &str,
    out: &'b mut Vec<u8>,
) -> Result<Option<&'b str>, HttpError> {
    out.clear();
    loop {
        let buf = reader.fill_buf().map_err(|e| chunk_read_failed(what, &e))?;
        if buf.is_empty() {
            if out.is_empty() {
                return Ok(None);
            }
            break; // final line without a trailing newline
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            out.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        out.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
        if out.len() > cap {
            return Err(HttpError::payload_too_large(format!(
                "{what}: line exceeds the {cap}-byte cap"
            )));
        }
    }
    if out.last() == Some(&b'\r') {
        out.pop();
    }
    std::str::from_utf8(out)
        .map(Some)
        .map_err(|e| HttpError::bad_request("invalid_utf8", format!("{what}: {e}")))
}

/// One batch of rows held column-wise, ready for
/// `CompiledKey::encode_column`.
struct Batch {
    /// One plaintext column per attribute.
    cols: Vec<Vec<f64>>,
    /// Encoded columns (reused across batches).
    enc: Vec<Vec<f64>>,
    /// Class labels carried through verbatim (empty for classify).
    labels: Vec<String>,
    rows: usize,
}

impl Batch {
    fn new(num_attrs: usize) -> Batch {
        Batch {
            cols: vec![Vec::new(); num_attrs],
            enc: vec![Vec::new(); num_attrs],
            labels: Vec::new(),
            rows: 0,
        }
    }

    fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.labels.clear();
        self.rows = 0;
    }

    /// Parses one CSV data line into the columns. `with_label` keeps
    /// the last field as a pass-through label (encode); without, every
    /// field is an attribute value (classify).
    fn push_line(&mut self, line: &str, line_no: u64, with_label: bool) -> Result<(), HttpError> {
        let num_attrs = self.cols.len();
        let expect = num_attrs + usize::from(with_label);
        let mut fields = line.split(',');
        for a in 0..num_attrs {
            let field = fields.next().map(str::trim).unwrap_or("");
            let v: f64 = field.parse().map_err(|_| row_error(line_no, a, field))?;
            if !v.is_finite() {
                return Err(row_error(line_no, a, field));
            }
            self.cols[a].push(v);
        }
        let rest: Vec<&str> = fields.collect();
        if with_label {
            match rest.as_slice() {
                [label] => self.labels.push(label.trim().to_string()),
                _ => return Err(arity_error(line_no, expect, num_attrs + rest.len())),
            }
        } else if !rest.is_empty() {
            return Err(arity_error(line_no, expect, num_attrs + rest.len()));
        }
        self.rows += 1;
        Ok(())
    }

    /// Fills the batch with up to `max_rows` lines; returns whether
    /// the body is exhausted. `line_buf` is the caller's scratch
    /// buffer, reused across every row of the stream.
    fn fill<R: BufRead>(
        &mut self,
        reader: &mut R,
        max_rows: usize,
        line_no: &mut u64,
        with_label: bool,
        line_buf: &mut Vec<u8>,
    ) -> Result<bool, HttpError> {
        self.clear();
        while self.rows < max_rows {
            match read_line_capped_into(reader, MAX_ROW_LINE, "streamed row", line_buf)? {
                None => return Ok(true),
                Some(line) => {
                    if line.trim().is_empty() {
                        continue; // ignore blank lines (trailing newline etc.)
                    }
                    *line_no += 1;
                    self.push_line(line, *line_no, with_label)?;
                }
            }
        }
        Ok(false)
    }

    /// Encodes every column through the compiled plan.
    fn encode(&mut self, plan: &ppdt_transform::CompiledKey) -> Result<(), HttpError> {
        for (a, (src, dst)) in self.cols.iter().zip(&mut self.enc).enumerate() {
            plan.encode_column(AttrId(a), src, dst).map_err(HttpError::from)?;
        }
        Ok(())
    }

    /// Renders the encoded batch back to CSV text (labels appended).
    fn render_csv(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.clear();
        for i in 0..self.rows {
            for col in &self.enc {
                let _ = write!(out, "{},", col[i]);
            }
            let _ = writeln!(out, "{}", self.labels[i]);
        }
    }
}

fn row_error(line_no: u64, attr: usize, field: &str) -> HttpError {
    HttpError::from(PpdtError::DataCorrupt {
        row: Some(line_no as usize),
        column: Some(attr),
        detail: format!("not a finite number: {field:?}"),
    })
}

fn arity_error(line_no: u64, expect: usize, got: usize) -> HttpError {
    HttpError::from(PpdtError::DataCorrupt {
        row: Some(line_no as usize),
        column: None,
        detail: format!("row has {got} field(s), expected {expect}"),
    })
}

/// Maps a mid-stream failure into the `io::Error` that aborts the
/// chunked response.
fn abort(e: HttpError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{} ({})", e.message, e.code))
}

#[allow(clippy::too_many_arguments)]
fn stream_encode<R: BufRead>(
    writer: &crate::conn::ConnWriter,
    body: &mut R,
    seq: u64,
    close_after: bool,
    ctx: &RequestCtx,
    cfg: &ServerConfig,
) -> StreamEnd {
    // Everything up to (and including) the first batch is validated
    // before a single response byte, so these failures are clean JSON
    // errors.
    let header_line =
        match read_line_capped(body, cfg.max_body_bytes.max(MAX_ROW_LINE), "stream header") {
            Ok(Some(line)) => line,
            Ok(None) => {
                return StreamEnd::Error(HttpError::bad_request(
                    "missing_stream_header",
                    "a chunked encode body starts with a JSON header line",
                ))
            }
            Err(e) => return StreamEnd::Error(e),
        };
    let header: StreamEncodeHeader = match serde_json::from_str(&header_line) {
        Ok(h) => h,
        Err(e) => {
            return StreamEnd::Error(HttpError::bad_request(
                "invalid_json",
                format!("stream header does not parse: {e}"),
            ))
        }
    };
    let plan = match handlers::load_plan(ctx, &header.key_id) {
        Ok(plan) => plan,
        Err(e) => return StreamEnd::Error(e),
    };
    let csv_header = match read_line_capped(body, MAX_ROW_LINE, "CSV header") {
        Ok(Some(line)) if !line.trim().is_empty() => line,
        Ok(_) => {
            return StreamEnd::Error(HttpError::bad_request(
                "missing_csv_header",
                "the streamed CSV needs a header row",
            ))
        }
        Err(e) => return StreamEnd::Error(e),
    };
    let num_fields = csv_header.split(',').count();
    if num_fields < 2 {
        return StreamEnd::Error(HttpError::bad_request(
            "missing_csv_header",
            "the CSV header needs at least one attribute and the label column",
        ));
    }
    let num_attrs = num_fields - 1;
    if let Err(e) = handlers::check_arity(&plan.key, num_attrs) {
        return StreamEnd::Error(e);
    }
    // The buffered path round-trips through `Dataset`, whose CSV
    // writer names the label column `class` whatever the client
    // called it. Normalize the same way so a streamed encode is
    // byte-identical to the buffered one.
    let csv_header = {
        let attrs = csv_header.rsplit_once(',').map(|(a, _)| a).unwrap_or(&csv_header);
        format!("{attrs},class")
    };

    let max_rows = cfg.stream_chunk_rows.max(1);
    let mut batch = Batch::new(num_attrs);
    let mut line_no = 0u64;
    let mut line_buf = Vec::new();
    let mut eof = match batch.fill(body, max_rows, &mut line_no, true, &mut line_buf) {
        Ok(eof) => eof,
        Err(e) => return StreamEnd::Error(e),
    };
    if let Err(e) = batch.encode(&plan.plan) {
        return StreamEnd::Error(e);
    }

    // First batch is good: commit to a 200 and stream.
    let mut rows = batch.rows as u64;
    let mut chunks = 0u64;
    let mut text = String::new();
    let streamed = writer.stream_response(seq, |w| {
        write_stream_head(w, 200, "text/csv", close_after)?;
        write_chunk(w, format!("{csv_header}\n").as_bytes())?;
        chunks += 1;
        batch.render_csv(&mut text);
        write_chunk(w, text.as_bytes())?;
        chunks += 1;
        while !eof {
            eof = batch.fill(body, max_rows, &mut line_no, true, &mut line_buf).map_err(abort)?;
            if batch.rows == 0 {
                break;
            }
            batch.encode(&plan.plan).map_err(abort)?;
            rows += batch.rows as u64;
            batch.render_csv(&mut text);
            write_chunk(w, text.as_bytes())?;
            chunks += 1;
            w.flush()?;
        }
        finish_chunked(w)?;
        Ok(close_after)
    });
    match streamed {
        Ok(()) => StreamEnd::Done { keep: !close_after, rows, chunks },
        Err(()) => StreamEnd::Aborted,
    }
}

#[allow(clippy::too_many_arguments)]
fn stream_classify<R: BufRead>(
    writer: &crate::conn::ConnWriter,
    body: &mut R,
    seq: u64,
    close_after: bool,
    ctx: &RequestCtx,
    cfg: &ServerConfig,
) -> StreamEnd {
    let header_line =
        match read_line_capped(body, cfg.max_body_bytes.max(MAX_ROW_LINE), "stream header") {
            Ok(Some(line)) => line,
            Ok(None) => {
                return StreamEnd::Error(HttpError::bad_request(
                    "missing_stream_header",
                    "a chunked classify body starts with a JSON header line",
                ))
            }
            Err(e) => return StreamEnd::Error(e),
        };
    let header: StreamClassifyHeader = match serde_json::from_str(&header_line) {
        Ok(h) => h,
        Err(e) => {
            return StreamEnd::Error(HttpError::bad_request(
                "invalid_json",
                format!("stream header does not parse: {e}"),
            ))
        }
    };
    let plan = match handlers::load_plan(ctx, &header.key_id) {
        Ok(plan) => plan,
        Err(e) => return StreamEnd::Error(e),
    };
    let tree = match handlers::validated_tree(
        ctx.caches,
        ctx.tenant,
        &header.key_id,
        &plan,
        &header.tree,
        true,
    ) {
        Ok(tree) => tree,
        Err(e) => return StreamEnd::Error(e),
    };

    let num_attrs = plan.plan.num_attrs();
    let max_rows = cfg.stream_chunk_rows.max(1);
    let mut batch = Batch::new(num_attrs);
    let mut line_no = 0u64;
    let mut line_buf = Vec::new();
    let mut eof = match batch.fill(body, max_rows, &mut line_no, false, &mut line_buf) {
        Ok(eof) => eof,
        Err(e) => return StreamEnd::Error(e),
    };
    if let Err(e) = batch.encode(&plan.plan) {
        return StreamEnd::Error(e);
    }

    let mut rows = batch.rows as u64;
    let mut chunks = 0u64;
    let mut text = String::new();
    let mut point = vec![0.0f64; num_attrs];
    let render = |batch: &Batch, text: &mut String, point: &mut Vec<f64>| {
        use std::fmt::Write as _;
        text.clear();
        for i in 0..batch.rows {
            for (a, col) in batch.enc.iter().enumerate() {
                point[a] = col[i];
            }
            let _ = writeln!(text, "{}", tree.predict(point).0);
        }
    };
    let streamed = writer.stream_response(seq, |w| {
        write_stream_head(w, 200, "text/plain", close_after)?;
        render(&batch, &mut text, &mut point);
        write_chunk(w, text.as_bytes())?;
        chunks += 1;
        while !eof {
            eof = batch.fill(body, max_rows, &mut line_no, false, &mut line_buf).map_err(abort)?;
            if batch.rows == 0 {
                break;
            }
            batch.encode(&plan.plan).map_err(abort)?;
            rows += batch.rows as u64;
            render(&batch, &mut text, &mut point);
            write_chunk(w, text.as_bytes())?;
            chunks += 1;
            w.flush()?;
        }
        finish_chunked(w)?;
        Ok(close_after)
    });
    match streamed {
        Ok(()) => StreamEnd::Done { keep: !close_after, rows, chunks },
        Err(()) => StreamEnd::Aborted,
    }
}
