//! # ppdt-serve
//!
//! The custodian as a **long-running daemon**: the paper's workflow
//! (encode the relation, ship `D'` to the miner, decode the mined
//! tree, answer classification queries) exposed as a small JSON API
//! over hand-rolled HTTP/1.1 on stdlib TCP — no web framework, per
//! the vendored-dependencies-only policy.
//!
//! The wire protocol is specified normatively in `docs/PROTOCOL.md`
//! at the repository root; the types in [`api`] are its Rust shape.
//!
//! The daemon is **multi-tenant**: every data route exists in a
//! `/v2/t/{tenant}/...` form whose [`Tenant`] segment namespaces the
//! key store, the compiled-plan and tree caches, replication, and the
//! per-tenant quotas/metrics. The whole `/v1` surface is a shim over
//! the same handlers bound to the implicit `default` tenant, so
//! pre-tenancy clients (and the on-disk layout they wrote) keep
//! working unchanged. `POST /v2/t/{tenant}/rekey` rotates a dataset
//! between two stored keys in one fused pass
//! ([`ppdt_transform::RekeyPlan`]) — plaintext never leaves the
//! custodian boundary.
//!
//! Modules:
//!
//! * [`http`] — minimal HTTP/1.1 framing: persistent keep-alive
//!   connections, `Content-Length` and `Transfer-Encoding: chunked`
//!   bodies, hard head/body caps, typed [`HttpError`]s, plus the
//!   blocking loopback clients (one-shot [`request`], persistent
//!   [`Client`]),
//! * [`api`] — the public wire types (request/response payloads) and
//!   the schema-version constants reported by `GET /v1/version`,
//! * [`keystore`] — the persistent versioned key store:
//!   [`TransformKey`](ppdt_transform::TransformKey)s under
//!   content-addressed ids in schema-versioned envelopes, written
//!   atomically (write-then-rename) and audited on load so a
//!   corrupted key can never serve,
//! * [`cache`] — the hot-path caches: audited keys lowered once into
//!   [`CompiledKey`](ppdt_transform::CompiledKey) plans (stamp-checked
//!   against the envelope file so on-disk replacement invalidates),
//!   plus a mined-tree cache keyed by `(key id, payload digest)`,
//! * [`handlers`] — the API surface: `POST /v1/keys`, `/v1/encode`,
//!   `/v1/classify`, `/v1/decode-tree`, `/v1/audit`, their
//!   tenant-scoped `/v2/t/{tenant}/...` forms plus
//!   `POST /v2/t/{tenant}/rekey`, the cluster `GET /v1/peer/keys` /
//!   `POST /v1/peer/fetch`, and the inline `GET /healthz` /
//!   `GET /metrics` / `GET /v1/version`,
//! * [`client`] — the deadline-aware loopback client with
//!   `Retry-After`-honoring retry, shared by the cluster sync loop,
//!   the integration tests, and the bench binaries,
//! * [`peer`] — cluster membership and the pull-based anti-entropy
//!   sync loop: manifest polling, read-through fetch for
//!   not-yet-synced keys, best-effort push on store, per-peer health
//!   with bounded exponential backoff,
//! * [`server`] — the daemon: an accept → poll → parse → work pipeline
//!   with bounded queues, a never-reading acceptor, a readiness poller
//!   that parks idle keep-alive sockets threadlessly, dedicated parser
//!   threads under a slow-loris-proof parse deadline, in-order
//!   pipelined responses, streaming chunked encode/classify, `503 +
//!   Retry-After` backpressure, per-request deadlines, panic-contained
//!   workers, graceful drain, and (with peers configured) the cluster
//!   sync thread,
//! * [`signal`] — SIGINT/SIGTERM latching without a libc dependency.
//!
//! Error mapping is the workspace table
//! ([`ppdt_error::ErrorCategory::http_status`]): usage → 400, corrupt
//! data → 422, corrupt key → 409, incompatible tree → 424, io/internal
//! → 500, with transport-level 404/405/408/413/431/503 on top
//! (and a `400 invalid_key_id` for ids that are not 32 lowercase hex
//! chars — 409 is reserved for keys corrupt *on disk*). Every failure
//! is a structured JSON body — hostile input gets a typed 4xx, never
//! a panic.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
mod conn;
pub mod handlers;
pub mod http;
pub mod keystore;
pub mod peer;
mod peer_client;
mod poller;
pub mod server;
pub mod signal;
mod stream;

pub use api::{VersionResponse, API_SCHEMA_VERSION, BENCH_REPORT_SCHEMA_VERSION};
pub use cache::{Caches, PlanCache, TreeCache};
pub use client::{ClientConfig, Exchange, RequestOutcome, RetryingClient};
pub use handlers::{Endpoint, Route};
pub use http::{request, Client, HttpError, Request, Response};
pub use keystore::{KeyEntry, KeyEnvelope, KeyStore, Tenant, KEYSTORE_SCHEMA_VERSION};
pub use peer::PeerSnapshot;
pub use server::{Server, ServerConfig};
