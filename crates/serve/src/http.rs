//! Minimal HTTP/1.1 framing over stdlib TCP.
//!
//! The daemon speaks just enough HTTP for its JSON API, now with
//! persistent connections: requests are parsed head-first
//! ([`read_head`]) so the connection loop can route before the body
//! arrives, bodies are either `Content-Length` or
//! `Transfer-Encoding: chunked` ([`read_body`] buffers, the serve
//! layer streams via [`ChunkedReader`]), and hard caps on head and
//! body size mean a hostile peer cannot make the server buffer
//! unbounded input. Parsing failures are typed [`HttpError`]s
//! carrying the status code to answer with — a malformed request is
//! an expected input, never a panic.
//!
//! The module also ships two blocking loopback clients used by the
//! integration tests, the throughput benchmark, and the smoke
//! script: the one-shot [`request`] helper (`Connection: close`) and
//! the persistent [`Client`], which reuses one socket across many
//! requests and can pipeline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ppdt_error::PpdtError;

/// Hard cap on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body, bytes (overridable per server via
/// `ServerConfig::max_body_bytes`).
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Cap on one chunk-size line of a chunked body (hex digits plus
/// extensions the daemon ignores).
const MAX_CHUNK_LINE: usize = 1024;

/// A parsed request: method, path (query string stripped), and the
/// raw body bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Absolute path with any `?query` suffix removed.
    pub path: String,
    /// Raw body (`Content-Length` bytes, or the de-chunked payload).
    pub body: Vec<u8>,
}

/// The parsed request line + headers of one request, before any body
/// byte is consumed.
///
/// Splitting the head from the body lets the connection loop route
/// (and reject) early, and lets `/v1/encode`–`/v1/classify` consume a
/// chunked body incrementally instead of buffering it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestHead {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Absolute path with any `?query` suffix removed.
    pub path: String,
    /// `Content-Length`, when the request carries one.
    pub content_length: Option<usize>,
    /// The body uses `Transfer-Encoding: chunked`.
    pub chunked: bool,
    /// The peer asked for the connection to close after this exchange
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub close: bool,
    /// The peer sent `Expect: 100-continue` and is waiting for an
    /// interim go-ahead before transmitting the body.
    pub expect_continue: bool,
}

impl RequestHead {
    /// Whether any body bytes follow this head on the wire.
    pub fn has_body(&self) -> bool {
        self.chunked || self.content_length.unwrap_or(0) > 0
    }
}

/// A transport-level failure answered with a plain HTTP status.
///
/// `code` is a stable snake_case token mirrored into the JSON error
/// body; `detail` carries a typed [`PpdtError`] when the failure came
/// from the domain layer rather than the wire.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable error token (`unknown_key`, ...).
    pub code: &'static str,
    /// Human-readable one-liner.
    pub message: String,
    /// The underlying typed error, when one exists.
    pub detail: Option<PpdtError>,
}

impl HttpError {
    /// A 400 with a stable code and message.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        HttpError { status: 400, code, message: message.into(), detail: None }
    }

    /// 404 for an unknown route or key id.
    pub fn not_found(code: &'static str, message: impl Into<String>) -> Self {
        HttpError { status: 404, code, message: message.into(), detail: None }
    }

    /// 405 for a known path with the wrong method.
    pub fn method_not_allowed(path: &str) -> Self {
        HttpError {
            status: 405,
            code: "method_not_allowed",
            message: format!("method not allowed on {path}"),
            detail: None,
        }
    }

    /// 503 with `Retry-After` semantics (overload / shutdown).
    pub fn overloaded(message: impl Into<String>) -> Self {
        HttpError { status: 503, code: "overloaded", message: message.into(), detail: None }
    }

    /// 429 with `Retry-After` semantics: a per-tenant quota (keys or
    /// in-flight requests) is exhausted. Distinct from 503, which
    /// means the *daemon* is saturated — a 429 singles out one tenant
    /// while the rest of the fleet is served normally.
    pub fn too_many_requests(message: impl Into<String>) -> Self {
        HttpError { status: 429, code: "quota_exceeded", message: message.into(), detail: None }
    }

    /// 413 for a body (declared or streamed) over the configured cap.
    pub fn payload_too_large(message: impl Into<String>) -> Self {
        HttpError { status: 413, code: "payload_too_large", message: message.into(), detail: None }
    }
}

impl HttpError {
    /// Renders the structured JSON error body:
    /// `{"error": {"status", "code", "message", "detail"?}}` where
    /// `detail` is the serialized [`PpdtError`] when one exists.
    pub fn to_response(&self) -> Response {
        use serde::{Serialize as _, Value};
        let mut fields = vec![
            ("status".to_string(), Value::UInt(u64::from(self.status))),
            ("code".to_string(), Value::Str(self.code.to_string())),
            ("message".to_string(), Value::Str(self.message.clone())),
        ];
        if let Some(e) = &self.detail {
            fields.push(("detail".to_string(), e.to_value()));
        }
        let envelope = Value::Object(vec![("error".to_string(), Value::Object(fields))]);
        let body = serde_json::to_string(&envelope)
            .unwrap_or_else(|_| format!("{{\"error\":{{\"status\":{}}}}}", self.status));
        let retry_after = if self.status == 503 || self.status == 429 { Some(1) } else { None };
        Response { status: self.status, body, retry_after }
    }
}

impl From<PpdtError> for HttpError {
    /// Maps a domain error onto the workspace category→status table
    /// ([`ppdt_error::ErrorCategory::http_status`]).
    fn from(e: PpdtError) -> Self {
        let cat = e.category();
        HttpError {
            status: cat.http_status(),
            code: cat.name(),
            message: e.to_string(),
            detail: Some(e),
        }
    }
}

/// Wraps a socket so the *total* time spent delivering one request is
/// bounded: every read gets `deadline - now` as its timeout, and a
/// read at or past the deadline fails with `TimedOut`. A per-read
/// timeout alone lets a slow-loris peer reset the clock with one byte
/// per interval; this deadline cannot be reset *by the peer* — the
/// serve layer re-arms it via [`DeadlineStream::set_deadline`] once
/// per request on a kept-alive connection.
#[derive(Debug)]
pub struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Bounds all reads on `stream` by `deadline`.
    pub fn new(stream: TcpStream, deadline: Instant) -> Self {
        DeadlineStream { stream, deadline }
    }

    /// Re-arms the deadline for the next request on a persistent
    /// connection (only the server side moves it, never the peer).
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = deadline;
    }

    /// The wrapped socket (for readiness polling).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request parse deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf)
    }
}

/// Maps a failed request read to its status: a timed-out read is the
/// peer being too slow (`408`), anything else is a truncated request
/// (`400`).
fn read_failed(code: &'static str, what: &str, e: &std::io::Error) -> HttpError {
    if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
        HttpError {
            status: 408,
            code: "request_timeout",
            message: format!("{what}: connection too slow delivering the request"),
            detail: None,
        }
    } else {
        HttpError::bad_request(code, format!("{what}: {e}"))
    }
}

/// Reads one request head (request line + headers) from `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly
/// before sending any byte — the normal end of a keep-alive
/// conversation, not an error. EOF *inside* a head is a `400`.
pub fn read_head<R: BufRead>(reader: &mut R) -> Result<Option<RequestHead>, HttpError> {
    let mut head = String::new();
    let mut line = String::new();
    // Request line + headers, terminated by an empty line.
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| read_failed("truncated_head", "head read failed", &e))?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None); // clean close between requests
            }
            return Err(HttpError::bad_request(
                "truncated_head",
                "connection closed before the header terminator",
            ));
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                code: "head_too_large",
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                detail: None,
            });
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(HttpError::bad_request(
                "malformed_request_line",
                format!("cannot parse request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(
            "unsupported_version",
            format!("unsupported protocol version {version:?}"),
        ));
    }
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut close = version == "HTTP/1.0";

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut expect_continue = false;
    for h in lines {
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::bad_request(
                "malformed_header",
                format!("header line without a colon: {h:?}"),
            ));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| {
                HttpError::bad_request(
                    "bad_content_length",
                    format!("Content-Length is not a non-negative integer: {value:?}"),
                )
            })?);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            if !value.eq_ignore_ascii_case("chunked") {
                return Err(HttpError::bad_request(
                    "unsupported_transfer_encoding",
                    format!("only `chunked` transfer encoding is supported, got {value:?}"),
                ));
            }
            chunked = true;
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }
    if chunked && content_length.is_some() {
        return Err(HttpError::bad_request(
            "ambiguous_body_length",
            "a request cannot send both Content-Length and Transfer-Encoding: chunked",
        ));
    }

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Some(RequestHead {
        method: method.to_ascii_uppercase(),
        path,
        content_length,
        chunked,
        close,
        expect_continue,
    }))
}

/// Reads (and fully buffers) the body described by `head`, enforcing
/// `max_body` on `Content-Length` and on the de-chunked total alike.
pub fn read_body<R: BufRead>(
    reader: &mut R,
    head: &RequestHead,
    max_body: usize,
) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    read_body_into(reader, head, max_body, &mut body)?;
    Ok(body)
}

/// [`read_body`] into a caller-owned buffer: `body` is cleared but its
/// capacity is retained, so a buffer recycled across the keep-alive
/// requests of one connection reads every body after the first without
/// reallocating (once it has grown to the connection's working size).
pub fn read_body_into<R: BufRead>(
    reader: &mut R,
    head: &RequestHead,
    max_body: usize,
    body: &mut Vec<u8>,
) -> Result<(), HttpError> {
    body.clear();
    if head.chunked {
        let mut chunks = ChunkedReader::new(reader);
        // `max_body + 1` so an over-cap body is detected, not
        // silently truncated.
        let mut bounded = (&mut chunks).take(max_body as u64 + 1);
        bounded.read_to_end(body).map_err(|e| chunk_read_failed("chunked body read failed", &e))?;
        if body.len() > max_body {
            return Err(HttpError::payload_too_large(format!(
                "chunked body exceeds the {max_body}-byte cap"
            )));
        }
        return Ok(());
    }
    let content_length = head.content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::payload_too_large(format!(
            "Content-Length {content_length} exceeds the {max_body}-byte cap"
        )));
    }
    body.resize(content_length, 0);
    reader.read_exact(body).map_err(|e| {
        read_failed(
            "truncated_body",
            &format!("body shorter than Content-Length {content_length}"),
            &e,
        )
    })?;
    Ok(())
}

/// Maps a failed chunked-body read to its status: timeouts are `408`,
/// bad framing (reported by [`ChunkedReader`] as `InvalidData`) and
/// truncation are `400`.
pub(crate) fn chunk_read_failed(what: &str, e: &std::io::Error) -> HttpError {
    if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
        HttpError {
            status: 408,
            code: "request_timeout",
            message: format!("{what}: connection too slow delivering the request"),
            detail: None,
        }
    } else if e.kind() == std::io::ErrorKind::InvalidData {
        HttpError::bad_request("bad_chunk", format!("{what}: {e}"))
    } else {
        HttpError::bad_request("truncated_body", format!("{what}: {e}"))
    }
}

/// Reads one request from `reader`, enforcing the head cap and
/// `max_body` on the body (`Content-Length` or chunked).
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let head = read_head(reader)?.ok_or_else(|| {
        HttpError::bad_request("truncated_head", "connection closed before the request line")
    })?;
    let body = read_body(reader, &head, max_body)?;
    Ok(Request { method: head.method, path: head.path, body })
}

/// Incremental decoder for a `Transfer-Encoding: chunked` body.
///
/// Implements [`Read`] over the *payload* bytes, consuming the chunk
/// framing (size lines, CRLF separators, trailers) from the inner
/// reader as it goes. Framing
/// violations surface as `InvalidData` I/O errors, which the serve
/// layer maps to `400 bad_chunk`; the wrapped stream's deadline keeps
/// a stalled peer bounded. [`ChunkedReader::chunks_read`] reports how
/// many data chunks were consumed (the `streamed_chunks` metric).
pub struct ChunkedReader<'a, R: BufRead> {
    inner: &'a mut R,
    /// Payload bytes left in the current chunk.
    remaining: usize,
    /// A chunk's trailing CRLF still has to be consumed.
    needs_crlf: bool,
    /// The terminating `0` chunk (and trailers) have been consumed.
    done: bool,
    chunks: u64,
    total: u64,
}

impl<'a, R: BufRead> ChunkedReader<'a, R> {
    /// Starts decoding a chunked body off `inner`.
    pub fn new(inner: &'a mut R) -> Self {
        ChunkedReader { inner, remaining: 0, needs_crlf: false, done: false, chunks: 0, total: 0 }
    }

    /// Data chunks decoded so far (excludes the terminating `0`).
    pub fn chunks_read(&self) -> u64 {
        self.chunks
    }

    /// Payload bytes decoded so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    fn bad(msg: String) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
    }

    /// Reads one CRLF-terminated framing line, capped.
    fn read_frame_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        loop {
            let mut byte = [0u8; 1];
            self.inner.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                break;
            }
            line.push(byte[0] as char);
            if line.len() > MAX_CHUNK_LINE {
                return Err(Self::bad(format!(
                    "chunk framing line exceeds {MAX_CHUNK_LINE} bytes"
                )));
            }
        }
        if line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Advances to the next chunk; sets `done` on the `0` terminator.
    fn next_chunk(&mut self) -> std::io::Result<()> {
        if self.needs_crlf {
            let sep = self.read_frame_line()?;
            if !sep.is_empty() {
                return Err(Self::bad(format!("expected CRLF after chunk data, got {sep:?}")));
            }
            self.needs_crlf = false;
        }
        let line = self.read_frame_line()?;
        let size_token = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_token, 16)
            .map_err(|_| Self::bad(format!("chunk size is not hex: {size_token:?}")))?;
        if size == 0 {
            // Trailers (ignored), terminated by an empty line.
            loop {
                if self.read_frame_line()?.is_empty() {
                    break;
                }
            }
            self.done = true;
        } else {
            self.remaining = size;
            self.needs_crlf = true;
            self.chunks += 1;
        }
        Ok(())
    }
}

impl<R: BufRead> Read for ChunkedReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        while self.remaining == 0 {
            if self.done {
                return Ok(0);
            }
            self.next_chunk()?;
            if self.done {
                return Ok(0);
            }
        }
        let want = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..want])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside a chunk",
            ));
        }
        self.remaining -= n;
        self.total += n as u64;
        Ok(n)
    }
}

/// Writes one data chunk of a chunked body (no-op for empty `data`,
/// which would otherwise terminate the stream early).
pub fn write_chunk<W: Write>(w: &mut W, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")
}

/// Terminates a chunked body (`0` chunk, no trailers) and flushes.
pub fn finish_chunked<W: Write>(w: &mut W) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// A response ready to be written to the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// UTF-8 body (the API is JSON throughout).
    pub body: String,
    /// Seconds for a `Retry-After` header (503 and 429 answers).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body, retry_after: None }
    }

    /// An arbitrary-status JSON response.
    pub fn with_status(status: u16, body: String) -> Self {
        Response { status, body, retry_after: None }
    }
}

/// Reason phrases for the statuses this API emits.
fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        424 => "Failed Dependency",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serializes and writes `resp` on a persistent connection: the
/// `connection` header advertises `close` or `keep-alive` per
/// `close`, and the caller decides whether to shut the socket down.
pub fn write_response_conn<W: Write>(
    w: &mut W,
    resp: &Response,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(resp.body.as_bytes())?;
    w.flush()
}

/// Writes `resp` with `Connection: close`; the caller closes the
/// connection. Write failures are reported but routinely ignored by
/// callers — the peer may be gone.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    write_response_conn(stream, resp, true)
}

/// Writes the head of a streamed (chunked) response; the body follows
/// via [`write_chunk`]/[`finish_chunked`].
pub fn write_stream_head<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        if close { "close" } else { "keep-alive" },
    )
}

/// Blocking loopback client: one request, one `(status, body)` answer
/// over a fresh `Connection: close` socket.
///
/// Used by the integration tests, `serve_throughput`'s fresh-connection
/// mode, and anything else that wants to poke the daemon without an
/// external tool. For connection reuse, see [`Client`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), PpdtError> {
    let err = |what: &str, e: &dyn std::fmt::Display| PpdtError::Io {
        path: Some(format!("http://{addr}{path}")),
        detail: format!("{what}: {e}"),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| err("connect", &e))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| err("timeout", &e))?;
    stream.set_write_timeout(Some(Duration::from_secs(30))).map_err(|e| err("timeout", &e))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| err("write", &e))?;
    stream.write_all(body.as_bytes()).map_err(|e| err("write", &e))?;
    stream.flush().map_err(|e| err("flush", &e))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| err("read", &e))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, tail) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| err("parse", &"no header terminator in response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("parse", &"no status code in response"))?;
    Ok((status, tail.to_string()))
}

/// A persistent (keep-alive) loopback HTTP client.
///
/// Holds one TCP connection open across many requests, supports
/// pipelining (send several requests, then read the answers in
/// order), and parses both `Content-Length` and chunked response
/// bodies. This is the client half of the daemon's event-driven
/// connection loop; the benches use it to measure the reuse win.
///
/// ```no_run
/// # fn main() -> Result<(), ppdt_error::PpdtError> {
/// let addr: std::net::SocketAddr = "127.0.0.1:7070".parse().unwrap();
/// let mut client = ppdt_serve::http::Client::connect(addr)?;
/// let (status, body) = client.request("GET", "/healthz", "")?;
/// assert_eq!(status, 200);
/// // Same socket, next request — no new TCP handshake.
/// let (status, _) = client.request("GET", "/v1/version", "")?;
/// assert_eq!(status, 200);
/// # let _ = body; Ok(())
/// # }
/// ```
pub struct Client {
    addr: SocketAddr,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    server_closed: bool,
}

impl Client {
    /// Connects and prepares a persistent connection (30 s socket
    /// timeouts, `TCP_NODELAY` so pipelined requests are not Nagle-
    /// delayed).
    pub fn connect(addr: SocketAddr) -> Result<Client, PpdtError> {
        let err = |what: &str, e: &dyn std::fmt::Display| PpdtError::Io {
            path: Some(format!("http://{addr}")),
            detail: format!("{what}: {e}"),
        };
        let writer = TcpStream::connect(addr).map_err(|e| err("connect", &e))?;
        writer.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| err("timeout", &e))?;
        writer.set_write_timeout(Some(Duration::from_secs(30))).map_err(|e| err("timeout", &e))?;
        let _ = writer.set_nodelay(true);
        let read_half = writer.try_clone().map_err(|e| err("clone", &e))?;
        Ok(Client { addr, writer, reader: BufReader::new(read_half), server_closed: false })
    }

    /// Whether the last response carried `Connection: close` — the
    /// server will not answer further requests on this socket (the
    /// daemon sends it every [`crate::ServerConfig::keep_alive_requests`]
    /// exchanges as connection hygiene). A caller reusing the client
    /// should reconnect instead of writing into a closing socket and
    /// misreading the resulting reset as a transport fault.
    pub fn server_closed(&self) -> bool {
        self.server_closed
    }

    fn err(&self, what: &str, e: &dyn std::fmt::Display) -> PpdtError {
        PpdtError::Io {
            path: Some(format!("http://{}", self.addr)),
            detail: format!("{what}: {e}"),
        }
    }

    /// Sends one request without waiting for the answer (pipelining);
    /// pair with [`Client::read_response`] in send order.
    pub fn send(&mut self, method: &str, path: &str, body: &str) -> Result<(), PpdtError> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        self.writer.write_all(head.as_bytes()).map_err(|e| self.err("write", &e))?;
        self.writer.write_all(body.as_bytes()).map_err(|e| self.err("write", &e))?;
        self.writer.flush().map_err(|e| self.err("flush", &e))
    }

    /// Starts a chunked-body request: the head goes out with
    /// `Transfer-Encoding: chunked`; stream the body with
    /// [`Client::send_chunk`] and [`Client::finish_chunks`].
    pub fn send_chunked_head(&mut self, method: &str, path: &str) -> Result<(), PpdtError> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ntransfer-encoding: chunked\r\n\r\n",
            self.addr
        );
        self.writer.write_all(head.as_bytes()).map_err(|e| self.err("write", &e))
    }

    /// Sends one body chunk of an in-progress chunked request.
    pub fn send_chunk(&mut self, data: &[u8]) -> Result<(), PpdtError> {
        write_chunk(&mut self.writer, data).map_err(|e| self.err("write chunk", &e))
    }

    /// Terminates the chunked body; the response can now be read.
    pub fn finish_chunks(&mut self) -> Result<(), PpdtError> {
        finish_chunked(&mut self.writer).map_err(|e| self.err("finish chunks", &e))
    }

    /// Reads one response off the connection, buffering the body
    /// (`Content-Length` or chunked alike).
    pub fn read_response(&mut self) -> Result<(u16, String), PpdtError> {
        let mut body = Vec::new();
        let status = self.read_response_into(|data| body.extend_from_slice(data))?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }

    /// Reads one response, handing body bytes to `sink` as they
    /// arrive (so a streamed response never has to fit in memory).
    /// Returns the status code.
    pub fn read_response_into(&mut self, mut sink: impl FnMut(&[u8])) -> Result<u16, PpdtError> {
        let addr = self.addr;
        let err = |what: &str, e: &dyn std::fmt::Display| PpdtError::Io {
            path: Some(format!("http://{addr}")),
            detail: format!("{what}: {e}"),
        };
        // Status line + headers.
        let mut status: Option<u16> = None;
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        let mut close = false;
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).map_err(|e| err("read head", &e))?;
            if n == 0 {
                return Err(err("read head", &"connection closed before a response"));
            }
            let trimmed = line.trim_end();
            if status.is_none() {
                let code = trimmed
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("parse", &format!("bad status line {trimmed:?}")))?;
                // Skip interim 1xx responses (100 Continue).
                if code < 200 {
                    line.clear();
                    self.reader.read_line(&mut line).map_err(|e| err("read head", &e))?;
                    continue;
                }
                status = Some(code);
                continue;
            }
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let name = name.trim();
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length =
                        Some(value.parse().map_err(|e| err("parse content-length", &e))?);
                } else if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.eq_ignore_ascii_case("chunked")
                {
                    chunked = true;
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.eq_ignore_ascii_case("close");
                }
            }
        }
        let status = status.ok_or_else(|| err("parse", &"no status line"))?;
        self.server_closed = close;
        let mut buf = [0u8; 16 * 1024];
        if chunked {
            let mut chunks = ChunkedReader::new(&mut self.reader);
            loop {
                let n = chunks.read(&mut buf).map_err(|e| err("read chunked body", &e))?;
                if n == 0 {
                    break;
                }
                sink(&buf[..n]);
            }
        } else {
            let mut left = content_length.unwrap_or(0);
            while left > 0 {
                let want = left.min(buf.len());
                let n = self.reader.read(&mut buf[..want]).map_err(|e| err("read body", &e))?;
                if n == 0 {
                    return Err(err("read body", &"connection closed inside the body"));
                }
                sink(&buf[..n]);
                left -= n;
            }
        }
        Ok(status)
    }

    /// One request/response exchange on the persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), PpdtError> {
        self.send(method, path, body)?;
        self.read_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn read_body_into_reuses_capacity_across_requests() {
        // Two keep-alive bodies through one buffer: after the first
        // request grows the buffer, the second (same size or smaller)
        // must not reallocate — Content-Length and chunked alike.
        let head_cl = |n: usize| RequestHead {
            method: "POST".into(),
            path: "/".into(),
            content_length: Some(n),
            chunked: false,
            close: false,
            expect_continue: false,
        };
        let mut body = Vec::new();
        let mut reader = BufReader::new(&[0x41u8; 512][..]);
        read_body_into(&mut reader, &head_cl(512), 1 << 20, &mut body).unwrap();
        assert_eq!(body.len(), 512);
        let (ptr, cap) = (body.as_ptr(), body.capacity());

        let mut reader = BufReader::new(&[0x42u8; 300][..]);
        read_body_into(&mut reader, &head_cl(300), 1 << 20, &mut body).unwrap();
        assert_eq!(body, vec![0x42u8; 300]);
        assert_eq!((body.as_ptr(), body.capacity()), (ptr, cap), "no realloc on reuse");

        let chunked = b"5\r\nhello\r\n0\r\n\r\n";
        let head_chunked = RequestHead { content_length: None, chunked: true, ..head_cl(0) };
        let mut reader = BufReader::new(&chunked[..]);
        read_body_into(&mut reader, &head_chunked, 1 << 20, &mut body).unwrap();
        assert_eq!(body, b"hello");
        assert_eq!((body.as_ptr(), body.capacity()), (ptr, cap), "no realloc on chunked reuse");
    }

    #[test]
    fn client_surfaces_connection_close_from_the_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            for response in [
                "HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok",
                "HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok",
            ] {
                let mut seen = Vec::new();
                while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                    let n = conn.read(&mut buf).unwrap();
                    seen.extend_from_slice(&buf[..n]);
                }
                conn.write_all(response.as_bytes()).unwrap();
            }
        });
        let mut client = Client::connect(addr).unwrap();
        assert!(!client.server_closed(), "fresh connection: nothing announced yet");
        client.request("GET", "/a", "").unwrap();
        assert!(!client.server_closed(), "plain keep-alive response must not flag close");
        client.request("GET", "/b", "").unwrap();
        assert!(client.server_closed(), "Connection: close response must be surfaced");
        server.join().unwrap();
    }

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            // Keep the socket open until the server is done parsing.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let out = read_request(&mut reader, max_body);
        // Close the server side first or the client's `read_to_end`
        // never sees EOF and the join deadlocks.
        drop(reader);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /v1/encode HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello", 1024)
            .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/encode");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn strips_query_and_uppercases_method() {
        let req = roundtrip(b"get /healthz?verbose=1 HTTP/1.1\r\n\r\n", 1024).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncated_body_is_a_400() {
        let err = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "truncated_body");
    }

    #[test]
    fn oversized_content_length_is_a_413() {
        let err = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: 99999\r\n\r\n", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn garbage_request_line_is_a_400() {
        let err = roundtrip(b"NOT-HTTP\r\n\r\n", 1024).expect_err("must fail");
        assert_eq!(err.status, 400);
        let err = roundtrip(b"GET / SPDY/9\r\n\r\n", 1024).expect_err("must fail");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let err = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: -4\r\n\r\n", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 400);
        // Both body framings at once is ambiguous.
        let err = roundtrip(
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ntransfer-encoding: chunked\r\n\r\nabcd",
            1024,
        )
        .expect_err("must fail");
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "ambiguous_body_length");
    }

    #[test]
    fn chunked_bodies_are_decoded() {
        let req = roundtrip(
            b"POST /v1/encode HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
            1024,
        )
        .expect("parses");
        assert_eq!(req.body, b"hello world");
        // Malformed framing is a typed 400, not a hang or panic.
        let err = roundtrip(
            b"POST /v1/encode HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nZZ\r\nhello\r\n",
            1024,
        )
        .expect_err("must fail");
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "bad_chunk");
        // The de-chunked total is capped like Content-Length.
        let err = roundtrip(
            b"POST /v1/encode HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n10\r\naaaaaaaaaaaaaaaa\r\n0\r\n\r\n",
            8,
        )
        .expect_err("must fail");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn head_parses_connection_and_expect() {
        let raw = b"POST /v1/encode HTTP/1.1\r\nconnection: close\r\nexpect: 100-continue\r\ncontent-length: 0\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let head = read_head(&mut reader).expect("parses").expect("present");
        assert!(head.close);
        assert!(head.expect_continue);
        assert_eq!(head.content_length, Some(0));
        assert!(!head.has_body());

        // HTTP/1.1 defaults to keep-alive, 1.0 to close.
        let mut reader = BufReader::new(&b"GET / HTTP/1.1\r\n\r\n"[..]);
        assert!(!read_head(&mut reader).unwrap().unwrap().close);
        let mut reader = BufReader::new(&b"GET / HTTP/1.0\r\n\r\n"[..]);
        assert!(read_head(&mut reader).unwrap().unwrap().close);

        // Clean EOF between requests is None, not an error.
        let mut reader = BufReader::new(&b""[..]);
        assert!(read_head(&mut reader).unwrap().is_none());
    }

    #[test]
    fn chunk_writer_and_reader_roundtrip() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"hello ").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut wire, b"world").unwrap();
        finish_chunked(&mut wire).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        let mut chunks = ChunkedReader::new(&mut reader);
        let mut out = Vec::new();
        chunks.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello world");
        assert_eq!(chunks.chunks_read(), 2);
        assert_eq!(chunks.total_bytes(), 11);
    }

    #[test]
    fn error_bodies_are_structured_json() {
        let resp = HttpError::from(PpdtError::key_corrupt("bit rot")).to_response();
        assert_eq!(resp.status, 409);
        let v: serde::Value = serde_json::from_str(&resp.body).expect("valid JSON");
        let err = v.get("error").expect("error envelope");
        assert_eq!(err.get("status").and_then(|s| s.as_f64()), Some(409.0));
        assert_eq!(err.get("code").and_then(|s| s.as_str()), Some("corrupt_key"));
        assert!(err.get("detail").is_some(), "typed detail is serialized");
        // Overload and quota answers advertise Retry-After.
        let resp = HttpError::overloaded("queue full").to_response();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
        let resp = HttpError::too_many_requests("tenant over quota").to_response();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(1));
    }

    #[test]
    fn ppdt_errors_map_through_the_category_table() {
        let e = PpdtError::DataCorrupt { row: Some(3), column: None, detail: "ragged".into() };
        let h = HttpError::from(e);
        assert_eq!(h.status, 422);
        assert_eq!(h.code, "corrupt_data");
        assert!(h.detail.is_some());
        assert_eq!(HttpError::from(PpdtError::key_corrupt("x")).status, 409);
        assert_eq!(HttpError::from(PpdtError::internal("x")).status, 500);
    }
}
