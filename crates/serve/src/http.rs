//! Minimal HTTP/1.1 framing over stdlib TCP.
//!
//! The daemon speaks just enough HTTP for its JSON API: one request
//! per connection (`Connection: close` semantics), `Content-Length`
//! bodies only (no chunked encoding), and hard caps on head and body
//! size so a hostile peer cannot make the server buffer unbounded
//! input. Parsing failures are typed [`HttpError`]s carrying the
//! status code to answer with — a malformed request is an expected
//! input, never a panic.
//!
//! The module also ships the tiny blocking [`request`] client used by
//! the integration tests, the loopback throughput benchmark, and the
//! smoke script.

use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ppdt_error::PpdtError;

/// Hard cap on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body, bytes (overridable per server via
/// `ServerConfig::max_body_bytes`).
pub const DEFAULT_MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request: method, path (query string stripped), and the
/// raw body bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Absolute path with any `?query` suffix removed.
    pub path: String,
    /// Raw body (exactly `Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

/// A transport-level failure answered with a plain HTTP status.
///
/// `code` is a stable snake_case token mirrored into the JSON error
/// body; `detail` carries a typed [`PpdtError`] when the failure came
/// from the domain layer rather than the wire.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable error token (`unknown_key`, ...).
    pub code: &'static str,
    /// Human-readable one-liner.
    pub message: String,
    /// The underlying typed error, when one exists.
    pub detail: Option<PpdtError>,
}

impl HttpError {
    /// A 400 with a stable code and message.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        HttpError { status: 400, code, message: message.into(), detail: None }
    }

    /// 404 for an unknown route or key id.
    pub fn not_found(code: &'static str, message: impl Into<String>) -> Self {
        HttpError { status: 404, code, message: message.into(), detail: None }
    }

    /// 405 for a known path with the wrong method.
    pub fn method_not_allowed(path: &str) -> Self {
        HttpError {
            status: 405,
            code: "method_not_allowed",
            message: format!("method not allowed on {path}"),
            detail: None,
        }
    }

    /// 503 with `Retry-After` semantics (overload / shutdown).
    pub fn overloaded(message: impl Into<String>) -> Self {
        HttpError { status: 503, code: "overloaded", message: message.into(), detail: None }
    }
}

impl HttpError {
    /// Renders the structured JSON error body:
    /// `{"error": {"status", "code", "message", "detail"?}}` where
    /// `detail` is the serialized [`PpdtError`] when one exists.
    pub fn to_response(&self) -> Response {
        use serde::{Serialize as _, Value};
        let mut fields = vec![
            ("status".to_string(), Value::UInt(u64::from(self.status))),
            ("code".to_string(), Value::Str(self.code.to_string())),
            ("message".to_string(), Value::Str(self.message.clone())),
        ];
        if let Some(e) = &self.detail {
            fields.push(("detail".to_string(), e.to_value()));
        }
        let envelope = Value::Object(vec![("error".to_string(), Value::Object(fields))]);
        let body = serde_json::to_string(&envelope)
            .unwrap_or_else(|_| format!("{{\"error\":{{\"status\":{}}}}}", self.status));
        let retry_after = if self.status == 503 { Some(1) } else { None };
        Response { status: self.status, body, retry_after }
    }
}

impl From<PpdtError> for HttpError {
    /// Maps a domain error onto the workspace category→status table
    /// ([`ppdt_error::ErrorCategory::http_status`]).
    fn from(e: PpdtError) -> Self {
        let cat = e.category();
        HttpError {
            status: cat.http_status(),
            code: cat.name(),
            message: e.to_string(),
            detail: Some(e),
        }
    }
}

/// Wraps a socket so the *total* time spent delivering one request is
/// bounded: every read gets `deadline - now` as its timeout, and a
/// read at or past the deadline fails with `TimedOut`. A per-read
/// timeout alone lets a slow-loris peer reset the clock with one byte
/// per interval; this deadline cannot be reset.
#[derive(Debug)]
pub struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Bounds all reads on `stream` by `deadline`.
    pub fn new(stream: TcpStream, deadline: Instant) -> Self {
        DeadlineStream { stream, deadline }
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request parse deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf)
    }
}

/// Maps a failed request read to its status: a timed-out read is the
/// peer being too slow (`408`), anything else is a truncated request
/// (`400`).
fn read_failed(code: &'static str, what: &str, e: &std::io::Error) -> HttpError {
    if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
        HttpError {
            status: 408,
            code: "request_timeout",
            message: format!("{what}: connection too slow delivering the request"),
            detail: None,
        }
    } else {
        HttpError::bad_request(code, format!("{what}: {e}"))
    }
}

/// Reads one request from `reader`, enforcing the head cap and
/// `max_body` on `Content-Length`.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let mut head = String::new();
    let mut line = String::new();
    // Request line + headers, terminated by an empty line.
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| read_failed("truncated_head", "head read failed", &e))?;
        if n == 0 {
            return Err(HttpError::bad_request(
                "truncated_head",
                "connection closed before the header terminator",
            ));
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                code: "head_too_large",
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                detail: None,
            });
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }

    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(HttpError::bad_request(
                "malformed_request_line",
                format!("cannot parse request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(
            "unsupported_version",
            format!("unsupported protocol version {version:?}"),
        ));
    }

    let mut content_length: usize = 0;
    for h in lines {
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(HttpError::bad_request(
                "malformed_header",
                format!("header line without a colon: {h:?}"),
            ));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                HttpError::bad_request(
                    "bad_content_length",
                    format!("Content-Length is not a non-negative integer: {:?}", value.trim()),
                )
            })?;
        }
        if name.trim().eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError {
                status: 411,
                code: "length_required",
                message: "chunked bodies are not supported; send Content-Length".into(),
                detail: None,
            });
        }
    }
    if content_length > max_body {
        return Err(HttpError {
            status: 413,
            code: "payload_too_large",
            message: format!("Content-Length {content_length} exceeds the {max_body}-byte cap"),
            detail: None,
        });
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        read_failed(
            "truncated_body",
            &format!("body shorter than Content-Length {content_length}"),
            &e,
        )
    })?;

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request { method: method.to_ascii_uppercase(), path, body })
}

/// A response ready to be written to the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// UTF-8 body (the API is JSON throughout).
    pub body: String,
    /// Seconds for a `Retry-After` header (503 answers).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 with a JSON body.
    pub fn ok(body: String) -> Self {
        Response { status: 200, body, retry_after: None }
    }

    /// An arbitrary-status JSON response.
    pub fn with_status(status: u16, body: String) -> Self {
        Response { status, body, retry_after: None }
    }
}

/// Reason phrases for the statuses this API emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        424 => "Failed Dependency",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serializes and writes `resp`; the caller closes the connection
/// (every response carries `Connection: close`). Write failures are
/// reported but routinely ignored by callers — the peer may be gone.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// Blocking loopback client: one request, one `(status, body)` answer.
///
/// Used by the integration tests, `serve_throughput`, and anything
/// else that wants to poke the daemon without an external tool.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), PpdtError> {
    let err = |what: &str, e: &dyn std::fmt::Display| PpdtError::Io {
        path: Some(format!("http://{addr}{path}")),
        detail: format!("{what}: {e}"),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| err("connect", &e))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| err("timeout", &e))?;
    stream.set_write_timeout(Some(Duration::from_secs(30))).map_err(|e| err("timeout", &e))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| err("write", &e))?;
    stream.write_all(body.as_bytes()).map_err(|e| err("write", &e))?;
    stream.flush().map_err(|e| err("flush", &e))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| err("read", &e))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, tail) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| err("parse", &"no header terminator in response"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("parse", &"no status code in response"))?;
    Ok((status, tail.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            // Keep the socket open until the server is done parsing.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let out = read_request(&mut reader, max_body);
        // Close the server side first or the client's `read_to_end`
        // never sees EOF and the join deadlocks.
        drop(reader);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /v1/encode HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello", 1024)
            .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/encode");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn strips_query_and_uppercases_method() {
        let req = roundtrip(b"get /healthz?verbose=1 HTTP/1.1\r\n\r\n", 1024).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncated_body_is_a_400() {
        let err = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "truncated_body");
    }

    #[test]
    fn oversized_content_length_is_a_413() {
        let err = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: 99999\r\n\r\n", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn garbage_request_line_is_a_400() {
        let err = roundtrip(b"NOT-HTTP\r\n\r\n", 1024).expect_err("must fail");
        assert_eq!(err.status, 400);
        let err = roundtrip(b"GET / SPDY/9\r\n\r\n", 1024).expect_err("must fail");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn bad_content_length_and_chunked_are_rejected() {
        let err = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: -4\r\n\r\n", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 400);
        let err = roundtrip(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 1024)
            .expect_err("must fail");
        assert_eq!(err.status, 411);
    }

    #[test]
    fn error_bodies_are_structured_json() {
        let resp = HttpError::from(PpdtError::key_corrupt("bit rot")).to_response();
        assert_eq!(resp.status, 409);
        let v: serde::Value = serde_json::from_str(&resp.body).expect("valid JSON");
        let err = v.get("error").expect("error envelope");
        assert_eq!(err.get("status").and_then(|s| s.as_f64()), Some(409.0));
        assert_eq!(err.get("code").and_then(|s| s.as_str()), Some("corrupt_key"));
        assert!(err.get("detail").is_some(), "typed detail is serialized");
        // Overload answers advertise Retry-After.
        let resp = HttpError::overloaded("queue full").to_response();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
    }

    #[test]
    fn ppdt_errors_map_through_the_category_table() {
        let e = PpdtError::DataCorrupt { row: Some(3), column: None, detail: "ragged".into() };
        let h = HttpError::from(e);
        assert_eq!(h.status, 422);
        assert_eq!(h.code, "corrupt_data");
        assert!(h.detail.is_some());
        assert_eq!(HttpError::from(PpdtError::key_corrupt("x")).status, 409);
        assert_eq!(HttpError::from(PpdtError::internal("x")).status, 500);
    }
}
