//! The custodian API: request/response payloads and the pooled
//! endpoint handlers.
//!
//! Every body is JSON; CSV datasets ride inside JSON strings (the
//! same text `ppdt encode`/`mine` read and write). Handlers never
//! panic on hostile input — every failure path surfaces as an
//! [`HttpError`] whose status comes from the workspace category table
//! ([`ppdt_error::ErrorCategory::http_status`]), plus transport-level
//! 404/405 for unknown keys and routes.

use ppdt_data::{csv, AttrId, Dataset};
use ppdt_error::PpdtError;
use ppdt_transform::{AuditReport, TransformKey};
use ppdt_tree::{DecisionTree, ThresholdPolicy};
use serde::{Deserialize, Serialize};

use crate::http::{HttpError, Request, Response};
use crate::keystore::{KeyEntry, KeyStore};

/// The routable endpoints, used for dispatch, per-endpoint counters,
/// and phase-timer names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/keys` — store a key, get its content address.
    StoreKey,
    /// `GET /v1/keys` — list stored keys with validity.
    ListKeys,
    /// `POST /v1/encode` — transform CSV text or raw rows under a key.
    Encode,
    /// `POST /v1/classify` — encode query rows and route them through
    /// a mined tree (custodian-side inference).
    Classify,
    /// `POST /v1/decode-tree` — decode a mined tree with a stored key.
    DecodeTree,
    /// `POST /v1/audit` — structural audit of a stored key.
    Audit,
    /// `GET /healthz` — liveness (answered inline, never queued).
    Healthz,
    /// `GET /metrics` — counters (answered inline, never queued).
    Metrics,
    /// `POST /v1/debug/sleep` — test-only worker occupier; routed only
    /// when `ServerConfig::debug_endpoints` is set.
    DebugSleep,
    /// `POST /v1/debug/panic` — test-only deliberate handler panic
    /// (exercises the worker pool's panic containment); routed only
    /// when `ServerConfig::debug_endpoints` is set.
    DebugPanic,
}

/// All endpoints, for metrics table construction.
pub const ENDPOINTS: [Endpoint; 10] = [
    Endpoint::StoreKey,
    Endpoint::ListKeys,
    Endpoint::Encode,
    Endpoint::Classify,
    Endpoint::DecodeTree,
    Endpoint::Audit,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::DebugSleep,
    Endpoint::DebugPanic,
];

impl Endpoint {
    /// Stable snake_case name used in `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::StoreKey => "store_key",
            Endpoint::ListKeys => "list_keys",
            Endpoint::Encode => "encode",
            Endpoint::Classify => "classify",
            Endpoint::DecodeTree => "decode_tree",
            Endpoint::Audit => "audit",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::DebugSleep => "debug_sleep",
            Endpoint::DebugPanic => "debug_panic",
        }
    }

    /// The `ppdt_obs` phase-timer name for this endpoint.
    pub fn phase_name(self) -> &'static str {
        match self {
            Endpoint::StoreKey => "serve.store_key",
            Endpoint::ListKeys => "serve.list_keys",
            Endpoint::Encode => "serve.encode",
            Endpoint::Classify => "serve.classify",
            Endpoint::DecodeTree => "serve.decode_tree",
            Endpoint::Audit => "serve.audit",
            Endpoint::Healthz => "serve.healthz",
            Endpoint::Metrics => "serve.metrics",
            Endpoint::DebugSleep => "serve.debug_sleep",
            Endpoint::DebugPanic => "serve.debug_panic",
        }
    }

    /// Position in [`ENDPOINTS`] (stable metrics index).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the parser threads answer this endpoint directly
    /// instead of queueing it: liveness and metrics must keep
    /// responding while the worker pool is saturated.
    pub fn is_inline(self) -> bool {
        matches!(self, Endpoint::Healthz | Endpoint::Metrics)
    }
}

/// Routes a parsed request to an endpoint. `debug` enables the
/// test-only routes.
pub fn route(req: &Request, debug: bool) -> Result<Endpoint, HttpError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/keys") => Ok(Endpoint::StoreKey),
        ("GET", "/v1/keys") => Ok(Endpoint::ListKeys),
        ("POST", "/v1/encode") => Ok(Endpoint::Encode),
        ("POST", "/v1/classify") => Ok(Endpoint::Classify),
        ("POST", "/v1/decode-tree") => Ok(Endpoint::DecodeTree),
        ("POST", "/v1/audit") => Ok(Endpoint::Audit),
        ("GET", "/healthz") => Ok(Endpoint::Healthz),
        ("GET", "/metrics") => Ok(Endpoint::Metrics),
        ("POST", "/v1/debug/sleep") if debug => Ok(Endpoint::DebugSleep),
        ("POST", "/v1/debug/panic") if debug => Ok(Endpoint::DebugPanic),
        (
            _,
            p @ ("/v1/keys" | "/v1/encode" | "/v1/classify" | "/v1/decode-tree" | "/v1/audit"
            | "/healthz" | "/metrics"),
        ) => Err(HttpError::method_not_allowed(p)),
        _ => Err(HttpError::not_found("unknown_route", format!("no such route: {}", req.path))),
    }
}

// ---------------------------------------------------------- payloads

/// `POST /v1/keys` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreKeyRequest {
    /// The key to store (the same JSON `TransformKey::save_json`
    /// writes).
    pub key: TransformKey,
}

/// `POST /v1/keys` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreKeyResponse {
    /// Content address of the stored key.
    pub key_id: String,
    /// Attribute count of the stored key.
    pub num_attrs: usize,
    /// False when the identical key was already stored.
    pub created: bool,
}

/// `GET /v1/keys` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ListKeysResponse {
    /// One row per stored envelope.
    pub keys: Vec<KeyEntry>,
}

/// `POST /v1/encode` request: exactly one of `csv` / `rows`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncodeRequest {
    /// Key to encode under.
    pub key_id: String,
    /// A labelled CSV dataset (header + label column, like `ppdt
    /// encode` reads).
    pub csv: Option<String>,
    /// Raw attribute rows (no labels), for batched point encoding.
    pub rows: Option<Vec<Vec<f64>>>,
}

/// `POST /v1/encode` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncodeResponse {
    /// Echo of the request key.
    pub key_id: String,
    /// Rows transformed.
    pub rows_encoded: u64,
    /// Transformed CSV (when the request sent `csv`).
    pub csv: Option<String>,
    /// Transformed rows (when the request sent `rows`).
    pub rows: Option<Vec<Vec<f64>>>,
}

/// `POST /v1/classify` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassifyRequest {
    /// Key the tree was mined under.
    pub key_id: String,
    /// The tree `T'` mined on the transformed data.
    pub tree: DecisionTree,
    /// Plaintext query rows (original space, one value per attribute).
    pub rows: Vec<Vec<f64>>,
}

/// `POST /v1/classify` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassifyResponse {
    /// Echo of the request key.
    pub key_id: String,
    /// Predicted class ids, one per query row.
    pub labels: Vec<u16>,
}

/// `POST /v1/decode-tree` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodeTreeRequest {
    /// Key the tree was mined under.
    pub key_id: String,
    /// The tree `T'` mined on the transformed data.
    pub tree: DecisionTree,
    /// The custodian's original dataset; with it the decode replays
    /// the data (bit-exact, Theorem 2), without it the blind decode
    /// is used (training-equivalent).
    pub csv: Option<String>,
}

/// `POST /v1/decode-tree` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodeTreeResponse {
    /// Echo of the request key.
    pub key_id: String,
    /// Whether the replayed (data-backed) decode ran.
    pub replayed: bool,
    /// The decoded tree `S`.
    pub tree: DecisionTree,
}

/// `POST /v1/audit` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditRequestBody {
    /// Key to audit.
    pub key_id: String,
    /// Optional dataset to audit the key against (domain coverage).
    pub csv: Option<String>,
}

/// `POST /v1/audit` response. Audit findings are a *report*, not a
/// failure: a 200 with `passed = false` means the audit ran and the
/// key is bad.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditResponseBody {
    /// Echo of the request key.
    pub key_id: String,
    /// `report.passed()`.
    pub passed: bool,
    /// The full structural report (`AuditReport` schema v1).
    pub report: AuditReport,
}

/// `POST /v1/debug/sleep` request (test-only).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SleepRequest {
    /// Milliseconds to hold a worker, capped at 10 000.
    pub ms: u64,
}

// ---------------------------------------------------------- handlers

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|e| HttpError::bad_request("invalid_utf8", format!("body is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| HttpError::bad_request("invalid_json", format!("body does not parse: {e}")))
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Result<Response, HttpError> {
    let body = serde_json::to_string(value).map_err(|e| {
        HttpError::from(PpdtError::internal(format!("response serialization: {e}")))
    })?;
    Ok(Response::with_status(status, body))
}

/// Rejects ids that are not 32 lowercase hex chars with a `400`: a
/// malformed id is a client usage error, not a corrupt stored key —
/// `409 corrupt_key` is reserved for envelopes that fail validation
/// on disk.
fn check_key_id(key_id: &str) -> Result<(), HttpError> {
    if !crate::keystore::valid_id(key_id) {
        return Err(HttpError::bad_request(
            "invalid_key_id",
            format!("malformed key id {key_id:?}: expected 32 lowercase hex characters"),
        ));
    }
    Ok(())
}

fn load_key(store: &KeyStore, key_id: &str) -> Result<TransformKey, HttpError> {
    check_key_id(key_id)?;
    match store.get(key_id) {
        Ok(Some(key)) => Ok(key),
        Ok(None) => {
            Err(HttpError::not_found("unknown_key", format!("no key stored under {key_id:?}")))
        }
        Err(e) => Err(HttpError::from(e)),
    }
}

fn parse_csv_body(csv_text: &str) -> Result<Dataset, HttpError> {
    csv::parse_csv(csv_text).map_err(|e| HttpError::from(PpdtError::from(e)))
}

fn check_arity(key: &TransformKey, num_attrs: usize) -> Result<(), HttpError> {
    if key.transforms.len() != num_attrs {
        return Err(HttpError::from(PpdtError::SchemaMismatch {
            detail: format!(
                "key has {} transform(s) but the payload has {} attribute(s)",
                key.transforms.len(),
                num_attrs
            ),
        }));
    }
    Ok(())
}

/// Encodes one plaintext row in place of the caller's buffer.
fn encode_row(key: &TransformKey, row: &[f64], row_idx: usize) -> Result<Vec<f64>, HttpError> {
    if row.len() != key.transforms.len() {
        return Err(HttpError::from(PpdtError::DataCorrupt {
            row: Some(row_idx + 1),
            column: None,
            detail: format!(
                "row has {} value(s) but the key has {} transform(s)",
                row.len(),
                key.transforms.len()
            ),
        }));
    }
    row.iter()
        .enumerate()
        .map(|(a, &x)| key.encode_value(AttrId(a), x).map_err(HttpError::from))
        .collect()
}

/// Dispatches a pooled request. `Endpoint::Healthz`/`Metrics` never
/// arrive here (the acceptor answers them inline); routing them in is
/// an internal error by construction.
pub fn handle(endpoint: Endpoint, req: &Request, store: &KeyStore) -> Result<Response, HttpError> {
    match endpoint {
        Endpoint::StoreKey => store_key(req, store),
        Endpoint::ListKeys => list_keys(store),
        Endpoint::Encode => encode(req, store),
        Endpoint::Classify => classify(req, store),
        Endpoint::DecodeTree => decode_tree(req, store),
        Endpoint::Audit => audit(req, store),
        Endpoint::DebugSleep => debug_sleep(req),
        Endpoint::DebugPanic => panic!("debug panic endpoint: deliberate handler panic"),
        Endpoint::Healthz | Endpoint::Metrics => {
            Err(HttpError::from(PpdtError::internal("inline endpoint reached the worker pool")))
        }
    }
}

fn store_key(req: &Request, store: &KeyStore) -> Result<Response, HttpError> {
    let body: StoreKeyRequest = parse_body(req)?;
    let num_attrs = body.key.transforms.len();
    let (key_id, created) = store.put(&body.key).map_err(HttpError::from)?;
    let status = if created { 201 } else { 200 };
    json_response(status, &StoreKeyResponse { key_id, num_attrs, created })
}

fn list_keys(store: &KeyStore) -> Result<Response, HttpError> {
    let keys = store.list().map_err(HttpError::from)?;
    json_response(200, &ListKeysResponse { keys })
}

fn encode(req: &Request, store: &KeyStore) -> Result<Response, HttpError> {
    let body: EncodeRequest = parse_body(req)?;
    // Shape errors are usage errors regardless of whether the key
    // exists, so validate the payload before touching the store.
    if body.csv.is_some() == body.rows.is_some() {
        return Err(HttpError::bad_request(
            "invalid_payload",
            "send exactly one of `csv` (a labelled dataset) or `rows` (raw attribute rows)",
        ));
    }
    let key = load_key(store, &body.key_id)?;
    match (body.csv, body.rows) {
        (Some(csv_text), None) => {
            let d = parse_csv_body(&csv_text)?;
            check_arity(&key, d.num_attrs())?;
            let mut columns = Vec::with_capacity(d.num_attrs());
            for a in d.schema().attrs() {
                let mut col = Vec::with_capacity(d.num_rows());
                for &x in d.column(a) {
                    col.push(key.encode_value(a, x).map_err(HttpError::from)?);
                }
                columns.push(col);
            }
            let d_prime = d.with_columns(columns);
            ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, d.num_rows() as u64);
            json_response(
                200,
                &EncodeResponse {
                    key_id: body.key_id,
                    rows_encoded: d.num_rows() as u64,
                    csv: Some(csv::to_csv(&d_prime)),
                    rows: None,
                },
            )
        }
        (None, Some(rows)) => {
            let encoded: Vec<Vec<f64>> = rows
                .iter()
                .enumerate()
                .map(|(i, row)| encode_row(&key, row, i))
                .collect::<Result<_, _>>()?;
            ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, encoded.len() as u64);
            json_response(
                200,
                &EncodeResponse {
                    key_id: body.key_id,
                    rows_encoded: encoded.len() as u64,
                    csv: None,
                    rows: Some(encoded),
                },
            )
        }
        _ => Err(HttpError::bad_request(
            "invalid_payload",
            "send exactly one of `csv` (a labelled dataset) or `rows` (raw attribute rows)",
        )),
    }
}

fn classify(req: &Request, store: &KeyStore) -> Result<Response, HttpError> {
    let body: ClassifyRequest = parse_body(req)?;
    let key = load_key(store, &body.key_id)?;
    body.tree.validate(Some(key.transforms.len())).map_err(HttpError::from)?;
    key.check_tree(&body.tree).map_err(HttpError::from)?;
    let mut labels = Vec::with_capacity(body.rows.len());
    for (i, row) in body.rows.iter().enumerate() {
        // The custodian encodes the plaintext query point and routes
        // it through the miner's tree T' — inference without ever
        // decoding the tree (§5 custodian workflow).
        let encoded = encode_row(&key, row, i)?;
        labels.push(body.tree.predict(&encoded).0);
    }
    json_response(200, &ClassifyResponse { key_id: body.key_id, labels })
}

fn decode_tree(req: &Request, store: &KeyStore) -> Result<Response, HttpError> {
    let body: DecodeTreeRequest = parse_body(req)?;
    let key = load_key(store, &body.key_id)?;
    body.tree.validate(Some(key.transforms.len())).map_err(HttpError::from)?;
    let (decoded, replayed) = match body.csv {
        Some(csv_text) => {
            let d = parse_csv_body(&csv_text)?;
            check_arity(&key, d.num_attrs())?;
            (
                key.decode_tree(&body.tree, ThresholdPolicy::DataValue, &d)
                    .map_err(HttpError::from)?,
                true,
            )
        }
        None => (
            key.decode_tree_blind(&body.tree, ThresholdPolicy::DataValue)
                .map_err(HttpError::from)?,
            false,
        ),
    };
    json_response(200, &DecodeTreeResponse { key_id: body.key_id, replayed, tree: decoded })
}

fn audit(req: &Request, store: &KeyStore) -> Result<Response, HttpError> {
    let body: AuditRequestBody = parse_body(req)?;
    check_key_id(&body.key_id)?;
    let key = match store.get(&body.key_id) {
        Ok(Some(key)) => key,
        Ok(None) => {
            return Err(HttpError::not_found(
                "unknown_key",
                format!("no key stored under {:?}", body.key_id),
            ))
        }
        // get() refuses to *serve* a corrupt key, but the audit
        // endpoint's whole point is to report on it: fall back to the
        // raw envelope read failing with the typed error.
        Err(e) => return Err(HttpError::from(e)),
    };
    let report = match body.csv {
        Some(csv_text) => {
            let d = parse_csv_body(&csv_text)?;
            ppdt_transform::audit_key_against(&key, &d)
        }
        None => ppdt_transform::audit_key(&key),
    };
    let passed = report.passed();
    json_response(200, &AuditResponseBody { key_id: body.key_id, passed, report })
}

fn debug_sleep(req: &Request) -> Result<Response, HttpError> {
    let body: SleepRequest = parse_body(req)?;
    let ms = body.ms.min(10_000);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    json_response(200, &SleepRequest { ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), body: Vec::new() }
    }

    fn post(path: &str) -> Request {
        Request { method: "POST".into(), path: path.into(), body: Vec::new() }
    }

    #[test]
    fn routing_table() {
        assert_eq!(route(&post("/v1/encode"), false).unwrap(), Endpoint::Encode);
        assert_eq!(route(&get("/healthz"), false).unwrap(), Endpoint::Healthz);
        assert_eq!(route(&get("/v1/keys"), false).unwrap(), Endpoint::ListKeys);
        assert_eq!(route(&post("/v1/keys"), false).unwrap(), Endpoint::StoreKey);
        // Wrong method on a known path is 405, unknown path 404.
        assert_eq!(route(&get("/v1/encode"), false).unwrap_err().status, 405);
        assert_eq!(route(&post("/healthz"), false).unwrap_err().status, 405);
        assert_eq!(route(&get("/nope"), false).unwrap_err().status, 404);
        // Debug routes exist only when enabled.
        assert_eq!(route(&post("/v1/debug/sleep"), false).unwrap_err().status, 404);
        assert_eq!(route(&post("/v1/debug/sleep"), true).unwrap(), Endpoint::DebugSleep);
        assert_eq!(route(&post("/v1/debug/panic"), false).unwrap_err().status, 404);
        assert_eq!(route(&post("/v1/debug/panic"), true).unwrap(), Endpoint::DebugPanic);
    }

    #[test]
    fn malformed_key_ids_are_client_errors() {
        for bad in ["../../etc/passwd", "short", "", &"A".repeat(32)] {
            let err = check_key_id(bad).expect_err("malformed id must be rejected");
            assert_eq!(err.status, 400, "{bad:?}");
            assert_eq!(err.code, "invalid_key_id", "{bad:?}");
        }
        assert!(check_key_id(&"0a".repeat(16)).is_ok());
    }

    #[test]
    fn endpoint_names_and_indices_are_stable() {
        for (i, e) in ENDPOINTS.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert!(e.phase_name().starts_with("serve."));
            assert!(e.phase_name().ends_with(e.name()));
        }
        assert!(Endpoint::Healthz.is_inline() && Endpoint::Metrics.is_inline());
        assert!(!Endpoint::Encode.is_inline());
    }
}
