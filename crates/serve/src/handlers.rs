//! The pooled endpoint handlers and the routing table.
//!
//! Wire payloads live in [`crate::api`]; this module consumes them.
//! Handlers never panic on hostile input — every failure path
//! surfaces as an [`HttpError`] whose status comes from the workspace
//! category table ([`ppdt_error::ErrorCategory::http_status`]), plus
//! transport-level 404/405 for unknown keys and routes.
//!
//! Hot-path requests (`/v1/encode`, `/v1/classify`,
//! `/v1/decode-tree`) go through the [`Caches`]: the key is loaded,
//! audited, and lowered to a [`CompiledKey`]
//! once per content id, and repeated tree payloads skip
//! re-validation/re-decoding.

use std::sync::Arc;

use ppdt_data::{csv, AttrId, Dataset};
use ppdt_error::PpdtError;
use ppdt_transform::{CompiledKey, TransformKey};
use ppdt_tree::{DecisionTree, ThresholdPolicy};
use serde::{Deserialize, Serialize};

// Re-exported so existing `handlers::*` paths keep working; the wire
// types canonically live in [`crate::api`].
pub use crate::api::{
    AuditRequestBody, AuditResponseBody, ClassifyRequest, ClassifyResponse, DecodeTreeRequest,
    DecodeTreeResponse, EncodeRequest, EncodeResponse, ListKeysResponse, PeerFetchRequest,
    PeerFetchResponse, PeerManifestEntry, PeerManifestResponse, RekeyRequest, RekeyResponse,
    SleepRequest, StoreKeyRequest, StoreKeyResponse,
};
use crate::cache::{CachedPlan, Caches, TreeCache};
use crate::http::{HttpError, Request, Response};
use crate::keystore::{KeyEnvelope, KeyStore, Tenant, KEYSTORE_SCHEMA_VERSION};
use crate::peer::Cluster;

/// Everything a pooled handler can touch, threaded as one borrow so
/// the worker pool, the streaming path, and the tests pass the same
/// shape. `cluster` is `None` on a standalone node — handlers that
/// consult it (read-through fetch, push-on-store) degrade to local
/// behavior.
pub struct HandlerCtx<'a> {
    /// The content-addressed key store.
    pub store: &'a KeyStore,
    /// Plan and tree caches.
    pub caches: &'a Caches,
    /// Cluster membership, when running with `--peer`.
    pub cluster: Option<&'a Cluster>,
    /// This node's advertised identity (its bound address).
    pub node_id: &'a str,
    /// Per-tenant stored-key quota (0 = unlimited), enforced by the
    /// store-key handler with a 429.
    pub tenant_max_keys: usize,
}

impl<'a> HandlerCtx<'a> {
    /// Scopes the shared daemon state to one request's namespace.
    pub fn scoped(&'a self, tenant: &'a Tenant) -> RequestCtx<'a> {
        RequestCtx {
            store: self.store,
            caches: self.caches,
            cluster: self.cluster,
            node_id: self.node_id,
            tenant_max_keys: self.tenant_max_keys,
            tenant,
        }
    }
}

/// One request's view of the daemon: the shared state plus the
/// [`Tenant`] the route resolved to. Handlers receive this instead of
/// re-parsing the path — the router ([`route_parts`]) is the only
/// place a tenant name is ever extracted from a URL.
pub struct RequestCtx<'a> {
    /// The content-addressed key store.
    pub store: &'a KeyStore,
    /// Plan and tree caches.
    pub caches: &'a Caches,
    /// Cluster membership, when running with `--peer`.
    pub cluster: Option<&'a Cluster>,
    /// This node's advertised identity (its bound address).
    pub node_id: &'a str,
    /// Per-tenant stored-key quota (0 = unlimited).
    pub tenant_max_keys: usize,
    /// The namespace this request is scoped to.
    pub tenant: &'a Tenant,
}

/// The routable endpoints, used for dispatch, per-endpoint counters,
/// and phase-timer names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/keys` — store a key, get its content address.
    StoreKey,
    /// `GET /v1/keys` — list stored keys with validity.
    ListKeys,
    /// `POST /v1/encode` — transform CSV text or raw rows under a key.
    Encode,
    /// `POST /v1/classify` — encode query rows and route them through
    /// a mined tree (custodian-side inference).
    Classify,
    /// `POST /v1/decode-tree` — decode a mined tree with a stored key.
    DecodeTree,
    /// `POST /v1/audit` — structural audit of a stored key.
    Audit,
    /// `POST /v2/t/<tenant>/rekey` — re-encode a dataset from one
    /// stored key to another through the fused decode∘encode plan
    /// (online key rotation; `/v2`-only).
    Rekey,
    /// `GET /healthz` — liveness (answered inline, never queued).
    Healthz,
    /// `GET /metrics` — counters (answered inline, never queued).
    Metrics,
    /// `GET /v1/version` — crate + schema versions (answered inline,
    /// never queued: clients probe it before committing to a dialect).
    Version,
    /// `POST /v1/debug/sleep` — test-only worker occupier; routed only
    /// when `ServerConfig::debug_endpoints` is set.
    DebugSleep,
    /// `POST /v1/debug/panic` — test-only deliberate handler panic
    /// (exercises the worker pool's panic containment); routed only
    /// when `ServerConfig::debug_endpoints` is set.
    DebugPanic,
    /// `GET /v1/peer/keys` — anti-entropy manifest: every servable
    /// key's id plus a digest of its raw envelope bytes.
    PeerManifest,
    /// `POST /v1/peer/fetch` — one full envelope by content address,
    /// for a peer that found itself behind.
    PeerFetch,
}

/// All endpoints, for metrics table construction.
pub const ENDPOINTS: [Endpoint; 14] = [
    Endpoint::StoreKey,
    Endpoint::ListKeys,
    Endpoint::Encode,
    Endpoint::Classify,
    Endpoint::DecodeTree,
    Endpoint::Audit,
    Endpoint::Rekey,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Version,
    Endpoint::DebugSleep,
    Endpoint::DebugPanic,
    Endpoint::PeerManifest,
    Endpoint::PeerFetch,
];

impl Endpoint {
    /// Stable snake_case name used in `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::StoreKey => "store_key",
            Endpoint::ListKeys => "list_keys",
            Endpoint::Encode => "encode",
            Endpoint::Classify => "classify",
            Endpoint::DecodeTree => "decode_tree",
            Endpoint::Audit => "audit",
            Endpoint::Rekey => "rekey",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Version => "version",
            Endpoint::DebugSleep => "debug_sleep",
            Endpoint::DebugPanic => "debug_panic",
            Endpoint::PeerManifest => "peer_manifest",
            Endpoint::PeerFetch => "peer_fetch",
        }
    }

    /// The `ppdt_obs` phase-timer name for this endpoint.
    pub fn phase_name(self) -> &'static str {
        match self {
            Endpoint::StoreKey => "serve.store_key",
            Endpoint::ListKeys => "serve.list_keys",
            Endpoint::Encode => "serve.encode",
            Endpoint::Classify => "serve.classify",
            Endpoint::DecodeTree => "serve.decode_tree",
            Endpoint::Audit => "serve.audit",
            Endpoint::Rekey => "serve.rekey",
            Endpoint::Healthz => "serve.healthz",
            Endpoint::Metrics => "serve.metrics",
            Endpoint::Version => "serve.version",
            Endpoint::DebugSleep => "serve.debug_sleep",
            Endpoint::DebugPanic => "serve.debug_panic",
            Endpoint::PeerManifest => "serve.peer_manifest",
            Endpoint::PeerFetch => "serve.peer_fetch",
        }
    }

    /// Position in [`ENDPOINTS`] (stable metrics index).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the parser threads answer this endpoint directly
    /// instead of queueing it: liveness, metrics, and version
    /// negotiation must keep responding while the worker pool is
    /// saturated.
    pub fn is_inline(self) -> bool {
        matches!(self, Endpoint::Healthz | Endpoint::Metrics | Endpoint::Version)
    }
}

/// A resolved route: the endpoint plus the [`Tenant`] the path
/// scoped it to. `/v1/*` routes are a shim onto the default tenant —
/// the mapping happens here, once, and handlers never look at the
/// path again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// The endpoint to dispatch to.
    pub endpoint: Endpoint,
    /// The namespace the path scoped the request to
    /// ([`Tenant::Default`] for every `/v1/*` route).
    pub tenant: Tenant,
}

impl Route {
    /// A default-tenant route (what every `/v1` path resolves to).
    pub fn v1(endpoint: Endpoint) -> Route {
        Route { endpoint, tenant: Tenant::Default }
    }
}

/// Routes a parsed request. `debug` enables the test-only routes.
pub fn route(req: &Request, debug: bool) -> Result<Route, HttpError> {
    route_parts(&req.method, &req.path, debug)
}

/// Routes on the request line alone, before any body bytes are read —
/// the keep-alive parser decides buffered-vs-streaming dispatch from
/// the head, so routing cannot wait for the body.
///
/// `/v2/t/<tenant>/...` routes carry the namespace in the path;
/// `/v1/*` routes live on as a shim onto [`Tenant::Default`], and
/// `/v2/t/default/...` is an exact alias of the corresponding `/v1`
/// route. A syntactically invalid tenant name is a 400 before any
/// endpoint matching (the name gate is what makes path traversal
/// unrepresentable downstream).
pub fn route_parts(method: &str, path: &str, debug: bool) -> Result<Route, HttpError> {
    // The `/v2` route table. `{tenant}` stands for one validated
    // tenant name segment; `scripts/protocol_gate.py` reads these
    // tuples and pins them against `docs/PROTOCOL.md`.
    const V2_ROUTES: [(&str, &str, Endpoint); 7] = [
        ("POST", "/v2/t/{tenant}/keys", Endpoint::StoreKey),
        ("GET", "/v2/t/{tenant}/keys", Endpoint::ListKeys),
        ("POST", "/v2/t/{tenant}/encode", Endpoint::Encode),
        ("POST", "/v2/t/{tenant}/classify", Endpoint::Classify),
        ("POST", "/v2/t/{tenant}/decode-tree", Endpoint::DecodeTree),
        ("POST", "/v2/t/{tenant}/audit", Endpoint::Audit),
        ("POST", "/v2/t/{tenant}/rekey", Endpoint::Rekey),
    ];
    const V2_PREFIX: &str = "/v2/t/";
    const V2_PATTERN_PREFIX: &str = "/v2/t/{tenant}";

    if let Some(rest) = path.strip_prefix(V2_PREFIX) {
        let Some(slash) = rest.find('/') else {
            return Err(HttpError::not_found("unknown_route", format!("no such route: {path}")));
        };
        let (name, suffix) = rest.split_at(slash);
        let Some(tenant) = Tenant::parse(name) else {
            return Err(HttpError::bad_request(
                "invalid_tenant",
                format!("malformed tenant name {name:?}: expected 1-32 chars of [a-z0-9_-]"),
            ));
        };
        let mut known_path = false;
        for (m, pattern, endpoint) in V2_ROUTES {
            let pattern_suffix =
                pattern.strip_prefix(V2_PATTERN_PREFIX).expect("v2 patterns share the prefix");
            if suffix == pattern_suffix {
                if method == m {
                    return Ok(Route { endpoint, tenant });
                }
                known_path = true;
            }
        }
        if known_path {
            return Err(HttpError::method_not_allowed(path));
        }
        return Err(HttpError::not_found("unknown_route", format!("no such route: {path}")));
    }

    let endpoint = match (method, path) {
        ("POST", "/v1/keys") => Endpoint::StoreKey,
        ("GET", "/v1/keys") => Endpoint::ListKeys,
        ("POST", "/v1/encode") => Endpoint::Encode,
        ("POST", "/v1/classify") => Endpoint::Classify,
        ("POST", "/v1/decode-tree") => Endpoint::DecodeTree,
        ("POST", "/v1/audit") => Endpoint::Audit,
        ("GET", "/healthz") => Endpoint::Healthz,
        ("GET", "/metrics") => Endpoint::Metrics,
        ("GET", "/v1/version") => Endpoint::Version,
        ("GET", "/v1/peer/keys") => Endpoint::PeerManifest,
        ("POST", "/v1/peer/fetch") => Endpoint::PeerFetch,
        ("POST", "/v1/debug/sleep") if debug => Endpoint::DebugSleep,
        ("POST", "/v1/debug/panic") if debug => Endpoint::DebugPanic,
        (
            _,
            p @ ("/v1/keys" | "/v1/encode" | "/v1/classify" | "/v1/decode-tree" | "/v1/audit"
            | "/v1/version" | "/healthz" | "/metrics" | "/v1/peer/keys" | "/v1/peer/fetch"),
        ) => return Err(HttpError::method_not_allowed(p)),
        _ => return Err(HttpError::not_found("unknown_route", format!("no such route: {path}"))),
    };
    Ok(Route::v1(endpoint))
}

// ---------------------------------------------------------- handlers

fn parse_body<T: Deserialize>(req: &Request) -> Result<T, HttpError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|e| HttpError::bad_request("invalid_utf8", format!("body is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| HttpError::bad_request("invalid_json", format!("body does not parse: {e}")))
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Result<Response, HttpError> {
    let body = serde_json::to_string(value).map_err(|e| {
        HttpError::from(PpdtError::internal(format!("response serialization: {e}")))
    })?;
    Ok(Response::with_status(status, body))
}

/// Rejects ids that are not 32 lowercase hex chars with a `400`: a
/// malformed id is a client usage error, not a corrupt stored key —
/// `409 corrupt_key` is reserved for envelopes that fail validation
/// on disk.
fn check_key_id(key_id: &str) -> Result<(), HttpError> {
    if !crate::keystore::valid_id(key_id) {
        return Err(HttpError::bad_request(
            "invalid_key_id",
            format!("malformed key id {key_id:?}: expected 32 lowercase hex characters"),
        ));
    }
    Ok(())
}

/// Resolves `key_id` to its compiled plan: a cache hit skips the disk
/// read, digest check, audit, and lowering entirely; a miss performs
/// all of them once and caches the result.
///
/// In cluster mode a locally *absent* key triggers a read-through
/// fetch from the peers (bounded by the fetch deadline) before the
/// 404 — during sync lag any node can answer for any key some node
/// holds. A locally *corrupt* key deliberately does not: 409 is a
/// report about this node's disk, and papering over it with a peer
/// copy would hide the fault from operators (the anti-entropy loop
/// repairs it out-of-band instead).
pub(crate) fn load_plan(ctx: &RequestCtx, key_id: &str) -> Result<Arc<CachedPlan>, HttpError> {
    check_key_id(key_id)?;
    match ctx.caches.plans.get_or_compile(ctx.store, ctx.tenant, key_id) {
        Ok(Some(plan)) => Ok(plan),
        Ok(None) => {
            if let Some(cluster) = ctx.cluster {
                if cluster.fetch_from_peers(ctx.store, ctx.tenant, key_id) {
                    if let Ok(Some(plan)) =
                        ctx.caches.plans.get_or_compile(ctx.store, ctx.tenant, key_id)
                    {
                        return Ok(plan);
                    }
                }
            }
            Err(HttpError::not_found("unknown_key", format!("no key stored under {key_id:?}")))
        }
        Err(e) => Err(HttpError::from(e)),
    }
}

fn parse_csv_body(csv_text: &str) -> Result<Dataset, HttpError> {
    csv::parse_csv(csv_text).map_err(|e| HttpError::from(PpdtError::from(e)))
}

pub(crate) fn check_arity(key: &TransformKey, num_attrs: usize) -> Result<(), HttpError> {
    if key.transforms.len() != num_attrs {
        return Err(HttpError::from(PpdtError::SchemaMismatch {
            detail: format!(
                "key has {} transform(s) but the payload has {} attribute(s)",
                key.transforms.len(),
                num_attrs
            ),
        }));
    }
    Ok(())
}

/// Encodes one plaintext row through the compiled plan.
fn encode_row(plan: &CompiledKey, row: &[f64], row_idx: usize) -> Result<Vec<f64>, HttpError> {
    let mut out = Vec::new();
    encode_row_into(plan, row, row_idx, &mut out)?;
    Ok(out)
}

/// [`encode_row`] into a caller-owned buffer (cleared, capacity
/// retained): classify reuses one point buffer across every query row
/// instead of allocating per row.
fn encode_row_into(
    plan: &CompiledKey,
    row: &[f64],
    row_idx: usize,
    out: &mut Vec<f64>,
) -> Result<(), HttpError> {
    out.clear();
    if row.len() != plan.num_attrs() {
        return Err(HttpError::from(PpdtError::DataCorrupt {
            row: Some(row_idx + 1),
            column: None,
            detail: format!(
                "row has {} value(s) but the key has {} transform(s)",
                row.len(),
                plan.num_attrs()
            ),
        }));
    }
    out.reserve(row.len());
    for (a, &x) in row.iter().enumerate() {
        out.push(plan.encode_value(AttrId(a), x).map_err(HttpError::from)?);
    }
    Ok(())
}

/// Validates (and `check_tree`s, when `check` is set) a request tree,
/// serving repeats from the tree cache: the composite cache key is
/// `(key id, digest of the tree JSON)`, so a hit proves this exact
/// payload already passed validation against this exact key.
pub(crate) fn validated_tree(
    caches: &Caches,
    tenant: &Tenant,
    key_id: &str,
    plan: &CachedPlan,
    tree: &DecisionTree,
    check: bool,
) -> Result<Arc<DecisionTree>, HttpError> {
    let tree_json = serde_json::to_string(tree)
        .map_err(|e| HttpError::from(PpdtError::internal(format!("tree re-serialization: {e}"))))?;
    let composite = TreeCache::cache_key(tenant, key_id, tree_json.as_bytes());
    if let Some(cached) = caches.trees.get(&composite) {
        return Ok(cached);
    }
    tree.validate(Some(plan.key.transforms.len())).map_err(HttpError::from)?;
    if check {
        plan.key.check_tree(tree).map_err(HttpError::from)?;
    }
    let validated = Arc::new(tree.clone());
    caches.trees.put(composite, Arc::clone(&validated));
    Ok(validated)
}

/// Dispatches a pooled request. Inline endpoints
/// (`Endpoint::Healthz`/`Metrics`/`Version`) never arrive here (the
/// parser threads answer them directly); routing them in is an
/// internal error by construction.
pub fn handle(route: &Route, req: &Request, shared: &HandlerCtx) -> Result<Response, HttpError> {
    let ctx = shared.scoped(&route.tenant);
    match route.endpoint {
        Endpoint::StoreKey => store_key(req, &ctx),
        Endpoint::ListKeys => list_keys(&ctx),
        Endpoint::Encode => encode(req, &ctx),
        Endpoint::Classify => classify(req, &ctx),
        Endpoint::DecodeTree => decode_tree(req, &ctx),
        Endpoint::Audit => audit(req, &ctx),
        Endpoint::Rekey => rekey(req, &ctx),
        Endpoint::PeerManifest => peer_manifest(&ctx),
        Endpoint::PeerFetch => peer_fetch(req, &ctx),
        Endpoint::DebugSleep => debug_sleep(req),
        Endpoint::DebugPanic => panic!("debug panic endpoint: deliberate handler panic"),
        Endpoint::Healthz | Endpoint::Metrics | Endpoint::Version => {
            Err(HttpError::from(PpdtError::internal("inline endpoint reached the worker pool")))
        }
    }
}

fn store_key(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: StoreKeyRequest = parse_body(req)?;
    let num_attrs = body.key.transforms.len();
    // Per-tenant key quota: a 429 (with Retry-After) singles the
    // tenant out without touching the daemon's global health.
    // Re-storing an already-held key is always allowed — it is a
    // no-op that changes nothing the quota measures.
    if ctx.tenant_max_keys > 0 {
        let held = ctx.store.key_count(ctx.tenant).map_err(HttpError::from)?;
        if held >= ctx.tenant_max_keys {
            let id = KeyStore::key_id(&body.key).map_err(HttpError::from)?;
            if ctx.store.stamp_in(ctx.tenant, &id).is_none() {
                return Err(HttpError::too_many_requests(format!(
                    "tenant {:?} holds {held} of {} allowed keys",
                    ctx.tenant.as_str(),
                    ctx.tenant_max_keys
                )));
            }
        }
    }
    let (key_id, created) = ctx.store.put_in(ctx.tenant, &body.key).map_err(HttpError::from)?;
    // Compile at store time so the first encode/classify under this
    // key is already warm (no-op when the plan cache is disabled).
    ctx.caches.plans.warm(ctx.store, ctx.tenant, &key_id);
    // Best-effort push so new keys cross the cluster in milliseconds
    // instead of a sync interval. Only a *created* store queues one:
    // the pushed copy arrives at each peer as `created = false` (or
    // races the pull to `created = true` exactly once), so push
    // ping-pong between peers terminates by construction.
    if created {
        if let Some(cluster) = ctx.cluster {
            cluster.notify_stored(ctx.tenant, &key_id);
        }
    }
    let status = if created { 201 } else { 200 };
    json_response(
        status,
        &StoreKeyResponse { tenant: ctx.tenant.wire(), key_id, num_attrs, created },
    )
}

/// `GET /v1/peer/keys`: the anti-entropy manifest. Only entries that
/// pass the full load-time validation are advertised — a node never
/// offers a peer something it would refuse to serve itself — and the
/// digest is over the raw envelope bytes, so manifest agreement
/// across nodes is byte-identical convergence.
fn peer_manifest(ctx: &RequestCtx) -> Result<Response, HttpError> {
    let mut keys = Vec::new();
    for tenant in ctx.store.list_tenants().map_err(HttpError::from)? {
        for entry in ctx.store.list_in(&tenant).map_err(HttpError::from)? {
            if !entry.valid {
                continue;
            }
            if let Ok(Some(bytes)) = ctx.store.raw_in(&tenant, &entry.key_id) {
                keys.push(PeerManifestEntry {
                    tenant: tenant.wire(),
                    key_id: entry.key_id,
                    envelope_digest: crate::keystore::content_id(&bytes),
                });
            }
        }
    }
    json_response(200, &PeerManifestResponse { node_id: ctx.node_id.to_string(), keys })
}

/// `POST /v1/peer/fetch`: one full envelope. Goes through the fully
/// validating [`KeyStore::get`] — a torn or tampered local entry is a
/// 409, never served to a peer — and deliberately does *not*
/// read-through to other peers (the fetcher already fans out itself;
/// recursing here could bounce a missing id around the cluster).
fn peer_fetch(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: PeerFetchRequest = parse_body(req)?;
    check_key_id(&body.key_id)?;
    // The namespace rides in the body (the peer protocol stays on its
    // `/v1` paths): a missing field is the default tenant, so
    // pre-tenancy peers keep interoperating.
    let Some(tenant) = Tenant::from_wire(body.tenant.as_deref()) else {
        return Err(HttpError::bad_request(
            "invalid_tenant",
            format!("malformed tenant name {:?}", body.tenant),
        ));
    };
    match ctx.store.get_in(&tenant, &body.key_id) {
        Ok(Some(key)) => {
            let envelope = KeyEnvelope {
                schema_version: KEYSTORE_SCHEMA_VERSION,
                key_id: body.key_id.clone(),
                num_attrs: key.transforms.len(),
                key,
            };
            json_response(200, &PeerFetchResponse { key_id: body.key_id, envelope })
        }
        Ok(None) => Err(HttpError::not_found(
            "unknown_key",
            format!("no key stored under {:?}", body.key_id),
        )),
        Err(e) => Err(HttpError::from(e)),
    }
}

fn list_keys(ctx: &RequestCtx) -> Result<Response, HttpError> {
    let keys = ctx.store.list_in(ctx.tenant).map_err(HttpError::from)?;
    json_response(200, &ListKeysResponse { tenant: ctx.tenant.wire(), keys })
}

fn encode(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: EncodeRequest = parse_body(req)?;
    // Shape errors are usage errors regardless of whether the key
    // exists, so validate the payload before touching the store.
    if body.csv.is_some() == body.rows.is_some() {
        return Err(HttpError::bad_request(
            "invalid_payload",
            "send exactly one of `csv` (a labelled dataset) or `rows` (raw attribute rows)",
        ));
    }
    let plan = load_plan(ctx, &body.key_id)?;
    match (body.csv, body.rows) {
        (Some(csv_text), None) => {
            let d = parse_csv_body(&csv_text)?;
            check_arity(&plan.key, d.num_attrs())?;
            let mut columns = Vec::with_capacity(d.num_attrs());
            for a in d.schema().attrs() {
                let mut col = Vec::new();
                plan.plan.encode_column(a, d.column(a), &mut col).map_err(HttpError::from)?;
                columns.push(col);
            }
            let d_prime = d.with_columns(columns);
            ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, d.num_rows() as u64);
            json_response(
                200,
                &EncodeResponse {
                    tenant: ctx.tenant.wire(),
                    key_id: body.key_id,
                    rows_encoded: d.num_rows() as u64,
                    csv: Some(csv::to_csv(&d_prime)),
                    rows: None,
                },
            )
        }
        (None, Some(rows)) => {
            let encoded: Vec<Vec<f64>> = rows
                .iter()
                .enumerate()
                .map(|(i, row)| encode_row(&plan.plan, row, i))
                .collect::<Result<_, _>>()?;
            ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, encoded.len() as u64);
            json_response(
                200,
                &EncodeResponse {
                    tenant: ctx.tenant.wire(),
                    key_id: body.key_id,
                    rows_encoded: encoded.len() as u64,
                    csv: None,
                    rows: Some(encoded),
                },
            )
        }
        _ => Err(HttpError::bad_request(
            "invalid_payload",
            "send exactly one of `csv` (a labelled dataset) or `rows` (raw attribute rows)",
        )),
    }
}

fn classify(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: ClassifyRequest = parse_body(req)?;
    let plan = load_plan(ctx, &body.key_id)?;
    let tree = validated_tree(ctx.caches, ctx.tenant, &body.key_id, &plan, &body.tree, true)?;
    let mut labels = Vec::with_capacity(body.rows.len());
    let mut encoded = Vec::new();
    for (i, row) in body.rows.iter().enumerate() {
        // The custodian encodes the plaintext query point and routes
        // it through the miner's tree T' — inference without ever
        // decoding the tree (§5 custodian workflow).
        encode_row_into(&plan.plan, row, i, &mut encoded)?;
        labels.push(tree.predict(&encoded).0);
    }
    json_response(200, &ClassifyResponse { tenant: ctx.tenant.wire(), key_id: body.key_id, labels })
}

fn decode_tree(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: DecodeTreeRequest = parse_body(req)?;
    let plan = load_plan(ctx, &body.key_id)?;
    let replayed = body.csv.is_some();
    // The cached artifact here is the *decoded* tree, so the cache key
    // digests everything the decode depends on: the mined tree AND the
    // dataset text (a replayed decode over different data is a
    // different result).
    let tree_json = serde_json::to_string(&body.tree)
        .map_err(|e| HttpError::from(PpdtError::internal(format!("tree re-serialization: {e}"))))?;
    let mut payload = tree_json.into_bytes();
    if let Some(csv_text) = &body.csv {
        payload.push(b'\n');
        payload.extend_from_slice(csv_text.as_bytes());
    }
    let composite = TreeCache::cache_key(ctx.tenant, &body.key_id, &payload);
    if let Some(decoded) = ctx.caches.trees.get(&composite) {
        return json_response(
            200,
            &DecodeTreeResponse {
                tenant: ctx.tenant.wire(),
                key_id: body.key_id,
                replayed,
                tree: (*decoded).clone(),
            },
        );
    }
    body.tree.validate(Some(plan.key.transforms.len())).map_err(HttpError::from)?;
    let decoded = match body.csv {
        Some(csv_text) => {
            let d = parse_csv_body(&csv_text)?;
            check_arity(&plan.key, d.num_attrs())?;
            plan.key
                .decode_tree(&body.tree, ThresholdPolicy::DataValue, &d)
                .map_err(HttpError::from)?
        }
        None => plan
            .key
            .decode_tree_blind(&body.tree, ThresholdPolicy::DataValue)
            .map_err(HttpError::from)?,
    };
    ctx.caches.trees.put(composite, Arc::new(decoded.clone()));
    json_response(
        200,
        &DecodeTreeResponse {
            tenant: ctx.tenant.wire(),
            key_id: body.key_id,
            replayed,
            tree: decoded,
        },
    )
}

fn audit(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: AuditRequestBody = parse_body(req)?;
    check_key_id(&body.key_id)?;
    // The audit endpoint deliberately bypasses the plan cache: its job
    // is to re-examine the envelope as stored *right now*, not a
    // previously-blessed compiled form.
    let key = match ctx.store.get_in(ctx.tenant, &body.key_id) {
        Ok(Some(key)) => key,
        Ok(None) => {
            return Err(HttpError::not_found(
                "unknown_key",
                format!("no key stored under {:?}", body.key_id),
            ))
        }
        // get() refuses to *serve* a corrupt key, but the audit
        // endpoint's whole point is to report on it: fall back to the
        // raw envelope read failing with the typed error.
        Err(e) => return Err(HttpError::from(e)),
    };
    let report = match body.csv {
        Some(csv_text) => {
            let d = parse_csv_body(&csv_text)?;
            ppdt_transform::audit_key_against(&key, &d)
        }
        None => ppdt_transform::audit_key(&key),
    };
    let passed = report.passed();
    json_response(
        200,
        &AuditResponseBody { tenant: ctx.tenant.wire(), key_id: body.key_id, passed, report },
    )
}

/// `POST /v2/t/<tenant>/rekey`: online key rotation. The dataset
/// arrives in `from_key_id`'s transformed space and leaves in
/// `to_key_id`'s, re-encoded column-by-column through the fused
/// [`ppdt_transform::RekeyPlan`] — one pass, with the plaintext
/// confined to a scratch buffer inside this handler. The fused path
/// is bit-identical to decode-then-encode by construction (proven by
/// the transform crate's property tests), so a rekeyed dataset mines
/// the same tree as a fresh encode under the target key.
fn rekey(req: &Request, ctx: &RequestCtx) -> Result<Response, HttpError> {
    let body: RekeyRequest = parse_body(req)?;
    check_key_id(&body.from_key_id)?;
    check_key_id(&body.to_key_id)?;
    let from = load_plan(ctx, &body.from_key_id)?;
    let to = load_plan(ctx, &body.to_key_id)?;
    let d_prime = parse_csv_body(&body.csv)?;
    check_arity(&from.key, d_prime.num_attrs())?;
    let mut plan = ppdt_transform::RekeyPlan::new(&from.plan, &to.plan).map_err(HttpError::from)?;
    let rekeyed = plan.rekey_dataset(&d_prime).map_err(HttpError::from)?;
    ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, d_prime.num_rows() as u64);
    json_response(
        200,
        &RekeyResponse {
            tenant: ctx.tenant.wire(),
            from_key_id: body.from_key_id,
            to_key_id: body.to_key_id,
            rows_rekeyed: d_prime.num_rows() as u64,
            csv: csv::to_csv(&rekeyed),
        },
    )
}

fn debug_sleep(req: &Request) -> Result<Response, HttpError> {
    let body: SleepRequest = parse_body(req)?;
    let ms = body.ms.min(10_000);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    json_response(200, &SleepRequest { ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), body: Vec::new() }
    }

    fn post(path: &str) -> Request {
        Request { method: "POST".into(), path: path.into(), body: Vec::new() }
    }

    #[test]
    fn routing_table() {
        assert_eq!(route(&post("/v1/encode"), false).unwrap(), Route::v1(Endpoint::Encode));
        assert_eq!(route(&get("/healthz"), false).unwrap(), Route::v1(Endpoint::Healthz));
        assert_eq!(route(&get("/v1/keys"), false).unwrap(), Route::v1(Endpoint::ListKeys));
        assert_eq!(route(&post("/v1/keys"), false).unwrap(), Route::v1(Endpoint::StoreKey));
        assert_eq!(route(&get("/v1/version"), false).unwrap(), Route::v1(Endpoint::Version));
        // Cluster routes are always live (a standalone node serves an
        // honest manifest of itself).
        assert_eq!(route(&get("/v1/peer/keys"), false).unwrap(), Route::v1(Endpoint::PeerManifest));
        assert_eq!(route(&post("/v1/peer/fetch"), false).unwrap(), Route::v1(Endpoint::PeerFetch));
        // Wrong method on a known path is 405, unknown path 404.
        assert_eq!(route(&get("/v1/encode"), false).unwrap_err().status, 405);
        assert_eq!(route(&post("/healthz"), false).unwrap_err().status, 405);
        assert_eq!(route(&post("/v1/version"), false).unwrap_err().status, 405);
        assert_eq!(route(&post("/v1/peer/keys"), false).unwrap_err().status, 405);
        assert_eq!(route(&get("/v1/peer/fetch"), false).unwrap_err().status, 405);
        assert_eq!(route(&get("/nope"), false).unwrap_err().status, 404);
        // Debug routes exist only when enabled.
        assert_eq!(route(&post("/v1/debug/sleep"), false).unwrap_err().status, 404);
        assert_eq!(route(&post("/v1/debug/sleep"), true).unwrap(), Route::v1(Endpoint::DebugSleep));
        assert_eq!(route(&post("/v1/debug/panic"), false).unwrap_err().status, 404);
        assert_eq!(route(&post("/v1/debug/panic"), true).unwrap(), Route::v1(Endpoint::DebugPanic));
    }

    #[test]
    fn v2_routing_carries_the_tenant() {
        let acme = Tenant::parse("acme").unwrap();
        for (path, endpoint) in [
            ("/v2/t/acme/encode", Endpoint::Encode),
            ("/v2/t/acme/classify", Endpoint::Classify),
            ("/v2/t/acme/decode-tree", Endpoint::DecodeTree),
            ("/v2/t/acme/audit", Endpoint::Audit),
            ("/v2/t/acme/keys", Endpoint::StoreKey),
            ("/v2/t/acme/rekey", Endpoint::Rekey),
        ] {
            let r = route(&post(path), false).unwrap();
            assert_eq!(r.endpoint, endpoint, "{path}");
            assert_eq!(r.tenant, acme, "{path}");
        }
        assert_eq!(
            route(&get("/v2/t/acme/keys"), false).unwrap(),
            Route { endpoint: Endpoint::ListKeys, tenant: acme.clone() }
        );
        // `/v2/t/default/...` is an exact alias of the `/v1` route.
        assert_eq!(
            route(&post("/v2/t/default/encode"), false).unwrap(),
            Route::v1(Endpoint::Encode)
        );
        // Known path + wrong method is 405; unknown suffix is 404.
        assert_eq!(route(&get("/v2/t/acme/encode"), false).unwrap_err().status, 405);
        assert_eq!(route(&get("/v2/t/acme/rekey"), false).unwrap_err().status, 405);
        assert_eq!(route(&post("/v2/t/acme/nope"), false).unwrap_err().status, 404);
        assert_eq!(route(&post("/v2/t/acme"), false).unwrap_err().status, 404);
        // A malformed tenant name is a 400 *before* endpoint matching:
        // the name gate is the path-traversal boundary.
        for bad in ["/v2/t/UPPER/keys", "/v2/t/dot.dot/keys", "/v2/t//keys"] {
            let err = route(&post(bad), false).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
            assert_eq!(err.code, "invalid_tenant", "{bad}");
        }
        // There is no tenant-scoped spelling of the infra routes.
        assert_eq!(route(&get("/v2/t/acme/version"), false).unwrap_err().status, 404);
        assert_eq!(route(&get("/v2/t/acme/peer/keys"), false).unwrap_err().status, 404);
        // Rekey is /v2-only: no /v1 spelling exists.
        assert_eq!(route(&post("/v1/rekey"), false).unwrap_err().status, 404);
    }

    #[test]
    fn malformed_key_ids_are_client_errors() {
        for bad in ["../../etc/passwd", "short", "", &"A".repeat(32)] {
            let err = check_key_id(bad).expect_err("malformed id must be rejected");
            assert_eq!(err.status, 400, "{bad:?}");
            assert_eq!(err.code, "invalid_key_id", "{bad:?}");
        }
        assert!(check_key_id(&"0a".repeat(16)).is_ok());
    }

    #[test]
    fn endpoint_names_and_indices_are_stable() {
        for (i, e) in ENDPOINTS.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert!(e.phase_name().starts_with("serve."));
            assert!(e.phase_name().ends_with(e.name()));
        }
        assert!(Endpoint::Healthz.is_inline() && Endpoint::Metrics.is_inline());
        assert!(Endpoint::Version.is_inline(), "version must answer while workers are busy");
        assert!(!Endpoint::Encode.is_inline());
    }
}
