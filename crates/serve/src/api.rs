//! The custodian daemon's wire types: request/response payloads for
//! every `/v1/*` and `/v2/*` endpoint, plus the schema-version
//! constants clients use to negotiate (`GET /v1/version`).
//!
//! Every body is JSON; CSV datasets ride inside JSON strings (the
//! same text `ppdt encode`/`mine` read and write). These types are
//! public so clients, benches, and tests can build payloads without
//! string-templating JSON by hand.
//!
//! Tenancy rides on the *same* types for both API generations:
//! responses carry an optional `tenant` field that `/v2/t/<name>/...`
//! routes fill with the namespace they served and `/v1` routes omit
//! (`None` serializes as `null`, and a missing field deserializes as
//! `None`), so pre-tenancy clients parse `/v1` bodies unchanged and
//! tenancy-aware clients get an explicit echo. The one genuinely new
//! surface is online key rotation ([`RekeyRequest`]/[`RekeyResponse`],
//! `POST /v2/t/<tenant>/rekey`), which has no `/v1` counterpart.

use ppdt_transform::{AuditReport, TransformKey};
use ppdt_tree::DecisionTree;
use serde::{Deserialize, Serialize};

use crate::keystore::KeyEntry;

/// Version of the request/response payload schema in this module.
/// Bumped on any breaking change to a wire type; clients compare it
/// via `GET /v1/version` before relying on field shapes.
pub const API_SCHEMA_VERSION: u64 = 1;

/// The `BenchReport` schema version the daemon's metrics flow into
/// (`ppdt_bench::report::SCHEMA_VERSION`; duplicated here because the
/// dependency points the other way — a cross-crate test in
/// `crates/bench` pins the two constants equal).
pub const BENCH_REPORT_SCHEMA_VERSION: u64 = 2;

/// `GET /v1/version` response: everything a client needs to decide
/// whether it speaks this daemon's dialect.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VersionResponse {
    /// The `ppdt-serve` crate version.
    pub crate_version: String,
    /// Wire-payload schema ([`API_SCHEMA_VERSION`]).
    pub api_schema_version: u64,
    /// On-disk key-envelope schema
    /// ([`crate::keystore::KEYSTORE_SCHEMA_VERSION`]).
    pub keystore_schema_version: u64,
    /// `BenchReport` schema the daemon's metrics flow into
    /// ([`BENCH_REPORT_SCHEMA_VERSION`]).
    pub bench_report_schema_version: u64,
}

/// `POST /v1/keys` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreKeyRequest {
    /// The key to store (the same JSON `TransformKey::save_json`
    /// writes).
    pub key: TransformKey,
}

/// `POST /v1/keys` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreKeyResponse {
    /// Namespace served (`None` on `/v1` routes).
    pub tenant: Option<String>,
    /// Content address of the stored key.
    pub key_id: String,
    /// Attribute count of the stored key.
    pub num_attrs: usize,
    /// False when the identical key was already stored.
    pub created: bool,
}

/// `GET /v1/keys` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ListKeysResponse {
    /// Namespace served (`None` on `/v1` routes).
    pub tenant: Option<String>,
    /// One row per stored envelope.
    pub keys: Vec<KeyEntry>,
}

/// `POST /v1/encode` request: exactly one of `csv` / `rows`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncodeRequest {
    /// Key to encode under.
    pub key_id: String,
    /// A labelled CSV dataset (header + label column, like `ppdt
    /// encode` reads).
    pub csv: Option<String>,
    /// Raw attribute rows (no labels), for batched point encoding.
    pub rows: Option<Vec<Vec<f64>>>,
}

/// `POST /v1/encode` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EncodeResponse {
    /// Namespace served (`None` on `/v1` routes).
    pub tenant: Option<String>,
    /// Echo of the request key.
    pub key_id: String,
    /// Rows transformed.
    pub rows_encoded: u64,
    /// Transformed CSV (when the request sent `csv`).
    pub csv: Option<String>,
    /// Transformed rows (when the request sent `rows`).
    pub rows: Option<Vec<Vec<f64>>>,
}

/// `POST /v1/classify` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassifyRequest {
    /// Key the tree was mined under.
    pub key_id: String,
    /// The tree `T'` mined on the transformed data.
    pub tree: DecisionTree,
    /// Plaintext query rows (original space, one value per attribute).
    pub rows: Vec<Vec<f64>>,
}

/// `POST /v1/classify` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassifyResponse {
    /// Namespace served (`None` on `/v1` routes).
    pub tenant: Option<String>,
    /// Echo of the request key.
    pub key_id: String,
    /// Predicted class ids, one per query row.
    pub labels: Vec<u16>,
}

/// `POST /v1/decode-tree` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodeTreeRequest {
    /// Key the tree was mined under.
    pub key_id: String,
    /// The tree `T'` mined on the transformed data.
    pub tree: DecisionTree,
    /// The custodian's original dataset; with it the decode replays
    /// the data (bit-exact, Theorem 2), without it the blind decode
    /// is used (training-equivalent).
    pub csv: Option<String>,
}

/// `POST /v1/decode-tree` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecodeTreeResponse {
    /// Namespace served (`None` on `/v1` routes).
    pub tenant: Option<String>,
    /// Echo of the request key.
    pub key_id: String,
    /// Whether the replayed (data-backed) decode ran.
    pub replayed: bool,
    /// The decoded tree `S`.
    pub tree: DecisionTree,
}

/// `POST /v1/audit` request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditRequestBody {
    /// Key to audit.
    pub key_id: String,
    /// Optional dataset to audit the key against (domain coverage).
    pub csv: Option<String>,
}

/// `POST /v1/audit` response. Audit findings are a *report*, not a
/// failure: a 200 with `passed = false` means the audit ran and the
/// key is bad.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuditResponseBody {
    /// Namespace served (`None` on `/v1` routes).
    pub tenant: Option<String>,
    /// Echo of the request key.
    pub key_id: String,
    /// `report.passed()`.
    pub passed: bool,
    /// The full structural report (`AuditReport` schema v1).
    pub report: AuditReport,
}

/// `POST /v2/t/<tenant>/rekey` request: re-encode a dataset from one
/// stored key to another within a tenant, in one pass through the
/// fused decode∘encode plan
/// ([`ppdt_transform::RekeyPlan`]) — the plaintext exists only
/// column-by-column in a scratch buffer inside the custodian
/// boundary, never in a response or on disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RekeyRequest {
    /// Key the dataset is currently encoded under.
    pub from_key_id: String,
    /// Key to re-encode it under; must already be stored in the same
    /// tenant.
    pub to_key_id: String,
    /// The labelled CSV dataset in `from_key_id`'s transformed space.
    pub csv: String,
}

/// `POST /v2/t/<tenant>/rekey` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RekeyResponse {
    /// Namespace served.
    pub tenant: Option<String>,
    /// Echo of the source key.
    pub from_key_id: String,
    /// Echo of the target key.
    pub to_key_id: String,
    /// Rows re-encoded.
    pub rows_rekeyed: u64,
    /// The dataset in `to_key_id`'s transformed space — bit-identical
    /// to decoding under `from_key_id` and freshly encoding under
    /// `to_key_id`.
    pub csv: String,
}

/// First line of a chunked (`Transfer-Encoding: chunked`)
/// `POST /v1/encode` body. The rest of the body is the labelled CSV
/// text itself — a header row, then one data row per line — which the
/// daemon encodes batch-by-batch and streams back as chunked
/// `text/csv`, never holding the whole dataset in memory.
///
/// ```
/// let header = r#"{"key_id": "00112233445566778899aabbccddeeff"}"#;
/// let parsed: ppdt_serve::api::StreamEncodeHeader =
///     serde_json::from_str(header).unwrap();
/// assert_eq!(parsed.key_id.len(), 32);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamEncodeHeader {
    /// Key to encode under.
    pub key_id: String,
}

/// First line of a chunked `POST /v1/classify` body. The rest of the
/// body is one plaintext query row per line (comma-separated
/// attribute values, no CSV header, no label); the response streams
/// back one predicted class id per line as chunked `text/plain`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamClassifyHeader {
    /// Key the tree was mined under.
    pub key_id: String,
    /// The tree `T'` mined on the transformed data.
    pub tree: DecisionTree,
}

/// One row of a `GET /v1/peer/keys` manifest: a key this node holds
/// *and can serve*, with a digest of its raw on-disk envelope bytes.
/// Envelope serialization is deterministic, so two replicas holding
/// the same key advertise identical digests — digest equality across
/// the cluster IS byte-identical convergence. Invalid (torn,
/// tampered) entries are never advertised; a node only offers what it
/// would serve.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerManifestEntry {
    /// Namespace holding the key (`None` = the default tenant, so
    /// pre-tenancy peers' manifests parse unchanged).
    pub tenant: Option<String>,
    /// Content address of the key.
    pub key_id: String,
    /// 128-bit FNV-1a digest of the raw envelope file bytes.
    pub envelope_digest: String,
}

/// `GET /v1/peer/keys` response: the node's identity plus every
/// servable key it holds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeerManifestResponse {
    /// The answering node's advertised address (its `--addr`).
    pub node_id: String,
    /// Servable keys, sorted by id.
    pub keys: Vec<PeerManifestEntry>,
}

/// `POST /v1/peer/fetch` request: ask a peer for one full envelope.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeerFetchRequest {
    /// Namespace to fetch from (`None` = the default tenant).
    pub tenant: Option<String>,
    /// Content address of the wanted key.
    pub key_id: String,
}

/// `POST /v1/peer/fetch` response. The fetching node re-audits the
/// key and re-derives its content address before storing, so a lying
/// or corrupt peer cannot propagate a bad envelope.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeerFetchResponse {
    /// Echo of the requested id.
    pub key_id: String,
    /// The full stored envelope.
    pub envelope: crate::keystore::KeyEnvelope,
}

/// `POST /v1/debug/sleep` request (test-only).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SleepRequest {
    /// Milliseconds to hold a worker, capped at 10 000.
    pub ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden back-compat: the exact response shapes a pre-tenancy
    /// `/v1` client produces and consumes. Tenant-less JSON (no
    /// `tenant` field at all) must keep deserializing, because
    /// `RetryingClient` callers and external `/v1` consumers were
    /// built against these bodies.
    #[test]
    fn v1_tenantless_bodies_still_parse() {
        let golden = r#"{
            "key_id": "00112233445566778899aabbccddeeff",
            "num_attrs": 3,
            "created": true
        }"#;
        let resp: StoreKeyResponse = serde_json::from_str(golden).expect("v1 body parses");
        assert_eq!(resp.tenant, None, "missing field means the default tenant");
        assert_eq!(resp.num_attrs, 3);
        assert!(resp.created);

        let golden = r#"{"keys": []}"#;
        let resp: ListKeysResponse = serde_json::from_str(golden).expect("v1 body parses");
        assert_eq!(resp.tenant, None);
        assert!(resp.keys.is_empty());

        let golden = r#"{
            "key_id": "00112233445566778899aabbccddeeff",
            "rows_encoded": 14,
            "csv": "a,b,label\n1,2,0\n",
            "rows": null
        }"#;
        let resp: EncodeResponse = serde_json::from_str(golden).expect("v1 body parses");
        assert_eq!(resp.tenant, None);
        assert_eq!(resp.rows_encoded, 14);

        let golden = r#"{
            "key_id": "00112233445566778899aabbccddeeff",
            "labels": [0, 1, 0]
        }"#;
        let resp: ClassifyResponse = serde_json::from_str(golden).expect("v1 body parses");
        assert_eq!(resp.tenant, None);
        assert_eq!(resp.labels, vec![0, 1, 0]);

        // Peer protocol: a manifest row from a pre-tenancy replica.
        let golden = r#"{
            "key_id": "00112233445566778899aabbccddeeff",
            "envelope_digest": "ffeeddccbbaa99887766554433221100"
        }"#;
        let entry: PeerManifestEntry = serde_json::from_str(golden).expect("v1 manifest parses");
        assert_eq!(entry.tenant, None);
        let golden = r#"{"key_id": "00112233445566778899aabbccddeeff"}"#;
        let req: PeerFetchRequest = serde_json::from_str(golden).expect("v1 fetch parses");
        assert_eq!(req.tenant, None);
    }

    /// The tenant echo round-trips through serialization, and a named
    /// tenant is visible to a tenancy-aware client.
    #[test]
    fn tenant_echo_round_trips() {
        let resp = StoreKeyResponse {
            tenant: Some("acme".to_string()),
            key_id: "00112233445566778899aabbccddeeff".to_string(),
            num_attrs: 2,
            created: false,
        };
        let text = serde_json::to_string(&resp).unwrap();
        assert!(text.contains("\"acme\""), "{text}");
        let back: StoreKeyResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back.tenant.as_deref(), Some("acme"));

        let req = RekeyRequest {
            from_key_id: "0".repeat(32),
            to_key_id: "1".repeat(32),
            csv: "a,label\n1,0\n".to_string(),
        };
        let text = serde_json::to_string(&req).unwrap();
        let back: RekeyRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.from_key_id, req.from_key_id);
        assert_eq!(back.to_key_id, req.to_key_id);
        assert_eq!(back.csv, req.csv);
    }
}
