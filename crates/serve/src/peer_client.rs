//! Typed client for the `/v1/peer/*` endpoints — the wire half of
//! the anti-entropy loop in [`crate::peer`].
//!
//! Built on [`crate::client::RetryingClient`], so every call gets the
//! shared deadline/retry policy: a fresh connection per attempt, hard
//! connect/read deadlines, and a bounded retry budget
//! ([`ppdt_transform::RetryPolicy`]) so a dead peer costs bounded
//! wall-clock time per sync round instead of a wedged loop.

use std::net::SocketAddr;
use std::time::Duration;

use ppdt_error::PpdtError;
use ppdt_transform::{RetryPolicy, TransformKey};

use crate::api::{PeerFetchRequest, PeerFetchResponse, PeerManifestResponse, StoreKeyRequest};
use crate::client::{ClientConfig, RetryingClient};
use crate::keystore::{KeyEnvelope, Tenant};

/// One peer's typed endpoint surface.
#[derive(Debug)]
pub(crate) struct PeerClient {
    http: RetryingClient,
}

impl PeerClient {
    /// A client for `addr`: `deadline` bounds each attempt's I/O,
    /// `attempts` is the per-call retry budget.
    pub fn new(addr: SocketAddr, deadline: Duration, attempts: usize) -> PeerClient {
        let cfg = ClientConfig {
            connect_timeout: deadline.min(Duration::from_secs(1)),
            io_timeout: deadline,
            retry: RetryPolicy::failing(attempts.max(1)),
            backoff: Duration::from_millis(25),
        };
        PeerClient { http: RetryingClient::with_config(addr, cfg) }
    }

    /// The peer's address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    fn unexpected(&self, what: &str, status: u16, body: &str) -> PpdtError {
        PpdtError::Io {
            path: Some(format!("http://{}", self.http.addr())),
            detail: format!("{what}: peer answered {status}: {}", &body[..body.len().min(200)]),
        }
    }

    /// `GET /v1/peer/keys`: the peer's manifest of servable keys.
    pub fn manifest(&self) -> Result<PeerManifestResponse, PpdtError> {
        let (status, body) = self.http.request("GET", "/v1/peer/keys", "")?;
        if status != 200 {
            return Err(self.unexpected("manifest", status, &body));
        }
        serde_json::from_str(&body)
            .map_err(|e| self.unexpected("manifest parse", status, &e.to_string()))
    }

    /// `POST /v1/peer/fetch`: one full envelope by `(tenant, id)`.
    /// The caller re-derives the id and re-audits before storing —
    /// this client does not trust the peer. The tenant travels in the
    /// body (omitted for the default tenant, so pre-tenancy peers
    /// parse the request unchanged).
    pub fn fetch(&self, tenant: &Tenant, key_id: &str) -> Result<KeyEnvelope, PpdtError> {
        let req = serde_json::to_string(&PeerFetchRequest {
            tenant: tenant.wire(),
            key_id: key_id.to_string(),
        })
        .map_err(|e| PpdtError::internal(format!("peer fetch serialization: {e}")))?;
        let (status, body) = self.http.request("POST", "/v1/peer/fetch", &req)?;
        if status != 200 {
            return Err(self.unexpected("fetch", status, &body));
        }
        let resp: PeerFetchResponse = serde_json::from_str(&body)
            .map_err(|e| self.unexpected("fetch parse", status, &e.to_string()))?;
        Ok(resp.envelope)
    }

    /// Best-effort push of a freshly stored key: a plain store on the
    /// peer (`POST /v1/keys` for the default tenant,
    /// `POST /v2/t/<name>/keys` otherwise), so a push and a pull of
    /// the same key are indistinguishable and idempotent.
    pub fn push(&self, tenant: &Tenant, key: &TransformKey) -> Result<(), PpdtError> {
        let req = serde_json::to_string(&StoreKeyRequest { key: key.clone() })
            .map_err(|e| PpdtError::internal(format!("peer push serialization: {e}")))?;
        let path = format!("{}/keys", tenant.route_prefix());
        let (status, body) = self.http.request("POST", &path, &req)?;
        if status != 200 && status != 201 {
            return Err(self.unexpected("push", status, &body));
        }
        Ok(())
    }
}
