//! The invertible monotone function family `F_mono` (Section 5.3).
//!
//! Every variant is strictly monotone on its stated domain and has a
//! closed-form inverse — the custodian needs `f⁻¹` to decode the mined
//! tree (Section 3.1). Whether a function is monotone (increasing) or
//! anti-monotone (decreasing) is determined by its parameters;
//! [`MonoFunc::is_increasing`] reports the direction.

use serde::{Deserialize, Serialize};

/// A strictly monotone, invertible scalar function.
///
/// Section 5.3 notes that `F_mono` is closed under composition — the
/// [`MonoFunc::Composed`] variant realizes that closure (composing two
/// strictly monotone invertible functions is strictly monotone and
/// invertible, with direction the product of the parts' directions).
///
/// ```
/// use ppdt_transform::MonoFunc;
///
/// // The paper's Figure 1 transformation: age' = 0.9·age + 10.
/// let f = MonoFunc::Linear { a: 0.9, b: 10.0 };
/// assert!(f.is_increasing());
/// assert_eq!(f.eval(20.0), 28.0);
/// assert!((f.inverse(28.0) - 20.0).abs() < 1e-12);
///
/// // Compositions stay invertible.
/// let g = MonoFunc::compose(MonoFunc::Log { a: 1.0, c: 0.0, b: 0.0 }, f);
/// assert!((g.inverse(g.eval(20.0)) - 20.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MonoFunc {
    /// `f(x) = a·x + b`, `a ≠ 0`.
    Linear {
        /// Slope (sign gives the direction).
        a: f64,
        /// Intercept.
        b: f64,
    },
    /// Signed power — the "higher-order polynomial" of the paper with
    /// an exact inverse: `f(x) = a·sgn(x−c)·|x−c|^p + b`, `a ≠ 0`,
    /// `p > 0`. Strictly monotone on all of ℝ.
    Power {
        /// Scale (sign gives the direction).
        a: f64,
        /// Center of the power law.
        c: f64,
        /// Exponent (`p = 2, 3, …` mimic polynomial degree).
        p: f64,
        /// Offset.
        b: f64,
    },
    /// `f(x) = a·ln(x − c) + b`, defined for `x > c`.
    Log {
        /// Scale (sign gives the direction).
        a: f64,
        /// Horizontal shift; must satisfy `c < min(domain)`.
        c: f64,
        /// Offset.
        b: f64,
    },
    /// `f(x) = a·√(ln(x − c)) + b`, defined for `x ≥ c + 1` —
    /// the paper's `sqrt(log)` transformation.
    SqrtLog {
        /// Scale (sign gives the direction).
        a: f64,
        /// Horizontal shift; must satisfy `c ≤ min(domain) − 1`.
        c: f64,
        /// Offset.
        b: f64,
    },
    /// `f(x) = a·e^{k(x−c)} + b`, `a ≠ 0`, `k ≠ 0`; increasing iff
    /// `a·k > 0`.
    Exp {
        /// Scale.
        a: f64,
        /// Rate.
        k: f64,
        /// Horizontal shift (keeps the exponent in a sane range).
        c: f64,
        /// Offset.
        b: f64,
    },
    /// `f(x) = outer(inner(x))` — the composition closure of `F_mono`.
    Composed {
        /// Applied second.
        outer: Box<MonoFunc>,
        /// Applied first.
        inner: Box<MonoFunc>,
    },
}

impl MonoFunc {
    /// Composes two functions: `outer ∘ inner`.
    pub fn compose(outer: MonoFunc, inner: MonoFunc) -> MonoFunc {
        MonoFunc::Composed { outer: Box::new(outer), inner: Box::new(inner) }
    }

    /// Evaluates the function.
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            MonoFunc::Linear { a, b } => a * x + b,
            MonoFunc::Power { a, c, p, b } => {
                let d = x - c;
                a * d.signum() * d.abs().powf(*p) + b
            }
            MonoFunc::Log { a, c, b } => a * (x - c).ln() + b,
            MonoFunc::SqrtLog { a, c, b } => a * (x - c).ln().sqrt() + b,
            MonoFunc::Exp { a, k, c, b } => a * (k * (x - c)).exp() + b,
            MonoFunc::Composed { outer, inner } => outer.eval(inner.eval(x)),
        }
    }

    /// Evaluates the closed-form inverse.
    pub fn inverse(&self, y: f64) -> f64 {
        match self {
            MonoFunc::Linear { a, b } => (y - b) / a,
            MonoFunc::Power { a, c, p, b } => {
                let u = (y - b) / a;
                c + u.signum() * u.abs().powf(1.0 / p)
            }
            MonoFunc::Log { a, c, b } => c + ((y - b) / a).exp(),
            MonoFunc::SqrtLog { a, c, b } => {
                let s = (y - b) / a;
                c + (s * s).exp()
            }
            MonoFunc::Exp { a, k, c, b } => c + ((y - b) / a).ln() / k,
            MonoFunc::Composed { outer, inner } => inner.inverse(outer.inverse(y)),
        }
    }

    /// True iff the function is strictly increasing (monotone in the
    /// paper's terminology); false iff strictly decreasing
    /// (anti-monotone).
    pub fn is_increasing(&self) -> bool {
        match self {
            MonoFunc::Linear { a, .. }
            | MonoFunc::Power { a, .. }
            | MonoFunc::Log { a, .. }
            | MonoFunc::SqrtLog { a, .. } => *a > 0.0,
            MonoFunc::Exp { a, k, .. } => a * k > 0.0,
            MonoFunc::Composed { outer, inner } => outer.is_increasing() == inner.is_increasing(),
        }
    }

    /// Checks the function is well defined and produces finite values
    /// over the closed interval `[lo, hi]`.
    pub fn valid_on(&self, lo: f64, hi: f64) -> bool {
        let param_ok = match self {
            MonoFunc::Linear { a, .. } => *a != 0.0,
            MonoFunc::Power { a, p, .. } => *a != 0.0 && *p > 0.0,
            MonoFunc::Log { a, c, .. } => *a != 0.0 && *c < lo,
            MonoFunc::SqrtLog { a, c, .. } => *a != 0.0 && *c <= lo - 1.0,
            MonoFunc::Exp { a, k, c, .. } => {
                *a != 0.0
                    && *k != 0.0
                    && (k * (lo - c)).abs() < 700.0
                    && (k * (hi - c)).abs() < 700.0
            }
            MonoFunc::Composed { outer, inner } => {
                if !inner.valid_on(lo, hi) {
                    return false;
                }
                let (ia, ib) = (inner.eval(lo), inner.eval(hi));
                outer.valid_on(ia.min(ib), ia.max(ib))
            }
        };
        param_ok && self.eval(lo).is_finite() && self.eval(hi).is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(f: &MonoFunc, x: f64, tol: f64) {
        let y = f.eval(x);
        assert!(y.is_finite(), "{f:?} at {x}");
        let back = f.inverse(y);
        let scale = x.abs().max(1.0);
        assert!((back - x).abs() <= tol * scale, "{f:?}: {x} -> {y} -> {back}");
    }

    #[test]
    fn linear_roundtrip_and_direction() {
        let f = MonoFunc::Linear { a: 0.9, b: 10.0 };
        assert!(f.is_increasing());
        roundtrip(&f, 17.0, 1e-12);
        let g = MonoFunc::Linear { a: -2.0, b: 1.0 };
        assert!(!g.is_increasing());
        roundtrip(&g, -5.5, 1e-12);
    }

    #[test]
    fn power_handles_both_sides_of_center() {
        let f = MonoFunc::Power { a: 2.0, c: 10.0, p: 3.0, b: -1.0 };
        assert!(f.is_increasing());
        roundtrip(&f, 4.0, 1e-9); // below center
        roundtrip(&f, 10.0, 1e-9); // at center
        roundtrip(&f, 25.0, 1e-9); // above center
                                   // Strictly increasing across the center.
        assert!(f.eval(9.0) < f.eval(10.0));
        assert!(f.eval(10.0) < f.eval(11.0));
    }

    #[test]
    fn log_and_sqrtlog_roundtrip() {
        let f = MonoFunc::Log { a: 3.0, c: -5.0, b: 2.0 };
        roundtrip(&f, 0.0, 1e-9);
        roundtrip(&f, 100.0, 1e-9);
        let g = MonoFunc::SqrtLog { a: -4.0, c: -1.0, b: 0.5 };
        assert!(!g.is_increasing());
        roundtrip(&g, 0.0, 1e-9);
        roundtrip(&g, 57.0, 1e-9);
    }

    #[test]
    fn exp_roundtrip_and_direction() {
        let f = MonoFunc::Exp { a: 1.5, k: 0.01, c: 50.0, b: -3.0 };
        assert!(f.is_increasing());
        roundtrip(&f, 0.0, 1e-9);
        roundtrip(&f, 200.0, 1e-9);
        let g = MonoFunc::Exp { a: -1.5, k: 0.01, c: 0.0, b: 0.0 };
        assert!(!g.is_increasing());
        let h = MonoFunc::Exp { a: -1.5, k: -0.01, c: 0.0, b: 0.0 };
        assert!(h.is_increasing());
    }

    #[test]
    fn validity_checks() {
        assert!(MonoFunc::Linear { a: 1.0, b: 0.0 }.valid_on(0.0, 10.0));
        assert!(!MonoFunc::Linear { a: 0.0, b: 0.0 }.valid_on(0.0, 10.0));
        assert!(!MonoFunc::Log { a: 1.0, c: 5.0, b: 0.0 }.valid_on(0.0, 10.0));
        assert!(MonoFunc::Log { a: 1.0, c: -1.0, b: 0.0 }.valid_on(0.0, 10.0));
        assert!(!MonoFunc::SqrtLog { a: 1.0, c: -0.5, b: 0.0 }.valid_on(0.0, 10.0));
        assert!(MonoFunc::SqrtLog { a: 1.0, c: -1.0, b: 0.0 }.valid_on(0.0, 10.0));
        assert!(!MonoFunc::Exp { a: 1.0, k: 100.0, c: 0.0, b: 0.0 }.valid_on(0.0, 10.0));
    }

    #[test]
    fn serde_roundtrip() {
        let f = MonoFunc::SqrtLog { a: 2.0, c: -3.0, b: 1.0 };
        let s = serde_json::to_string(&f).unwrap();
        let g: MonoFunc = serde_json::from_str(&s).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn composition_roundtrip_and_direction() {
        // log ∘ linear: increasing ∘ increasing = increasing.
        let f = MonoFunc::compose(
            MonoFunc::Log { a: 2.0, c: -1.0, b: 0.5 },
            MonoFunc::Linear { a: 3.0, b: 10.0 },
        );
        assert!(f.is_increasing());
        assert!(f.valid_on(0.0, 100.0));
        for x in [0.0, 1.5, 42.0, 100.0] {
            roundtrip(&f, x, 1e-9);
            // eval really is outer(inner(x)).
            let expect = 2.0 * (3.0 * x + 10.0 - (-1.0)).ln() + 0.5;
            assert!((f.eval(x) - expect).abs() < 1e-12);
        }
        // decreasing ∘ increasing = decreasing; decreasing ∘ decreasing
        // = increasing.
        let dec = MonoFunc::Linear { a: -1.0, b: 0.0 };
        let inc = MonoFunc::Linear { a: 2.0, b: 0.0 };
        assert!(!MonoFunc::compose(dec.clone(), inc.clone()).is_increasing());
        assert!(MonoFunc::compose(dec.clone(), dec.clone()).is_increasing());
        let _ = inc;
    }

    #[test]
    fn composition_validity_checks_inner_image() {
        // Inner maps [0, 10] to [-30, -10]; log with c = 0 is invalid
        // on that image.
        let f = MonoFunc::compose(
            MonoFunc::Log { a: 1.0, c: 0.0, b: 0.0 },
            MonoFunc::Linear { a: -2.0, b: -10.0 },
        );
        assert!(!f.valid_on(0.0, 10.0));
        // With a compatible shift the composition is valid.
        let g = MonoFunc::compose(
            MonoFunc::Log { a: 1.0, c: -100.0, b: 0.0 },
            MonoFunc::Linear { a: -2.0, b: -10.0 },
        );
        assert!(g.valid_on(0.0, 10.0));
        assert!(!g.is_increasing());
    }

    #[test]
    fn nested_composition() {
        let f = MonoFunc::compose(
            MonoFunc::compose(
                MonoFunc::Linear { a: 0.5, b: 1.0 },
                MonoFunc::Power { a: 1.0, c: 0.0, p: 3.0, b: 0.0 },
            ),
            MonoFunc::Linear { a: 2.0, b: -1.0 },
        );
        roundtrip(&f, 7.0, 1e-9);
        roundtrip(&f, -4.2, 1e-9);
        let s = serde_json::to_string(&f).unwrap();
        let g: MonoFunc = serde_json::from_str(&s).unwrap();
        assert_eq!(f, g);
    }

    proptest! {
        #[test]
        fn prop_linear_roundtrip(a in 0.01f64..100.0, b in -1e3f64..1e3, x in -1e4f64..1e4, neg in any::<bool>()) {
            let a = if neg { -a } else { a };
            roundtrip(&MonoFunc::Linear { a, b }, x, 1e-9);
        }

        #[test]
        fn prop_power_roundtrip(a in 0.1f64..10.0, c in -100.0f64..100.0, p in 0.5f64..4.0, b in -100.0f64..100.0, x in -500.0f64..500.0) {
            roundtrip(&MonoFunc::Power { a, c, p, b }, x, 1e-6);
        }

        #[test]
        fn prop_log_roundtrip(a in 0.1f64..10.0, off in 0.1f64..100.0, b in -100.0f64..100.0, x in 0.0f64..1e4) {
            let c = -off; // ensure c < x for x >= 0
            roundtrip(&MonoFunc::Log { a, c, b }, x, 1e-7);
        }

        #[test]
        fn prop_sqrtlog_roundtrip(a in 0.1f64..10.0, off in 1.0f64..50.0, b in -100.0f64..100.0, x in 0.0f64..5e3) {
            let c = -off; // c <= x - 1 for x >= 0
            roundtrip(&MonoFunc::SqrtLog { a, c, b }, x, 1e-6);
        }

        #[test]
        fn prop_monotonicity(a in 0.1f64..5.0, c in -50.0f64..50.0, p in 0.5f64..3.0, x in -200.0f64..200.0, dx in 0.001f64..10.0) {
            let f = MonoFunc::Power { a, c, p, b: 0.0 };
            prop_assert!(f.eval(x) < f.eval(x + dx));
        }

        #[test]
        fn prop_direction_flip(x in -100.0f64..100.0, dx in 0.01f64..5.0) {
            let inc = MonoFunc::SqrtLog { a: 2.0, c: -200.0, b: 0.0 };
            let dec = MonoFunc::SqrtLog { a: -2.0, c: -200.0, b: 0.0 };
            prop_assert!(inc.eval(x) < inc.eval(x + dx));
            prop_assert!(dec.eval(x) > dec.eval(x + dx));
        }
    }
}
