//! Verification of the paper's guarantees: Lemma 1 (class-string
//! preservation) and Theorems 1–2 (no outcome change).
//!
//! ## Ties and the class string
//!
//! Definition 6 orders equal values "in some canonical order". A
//! strictly monotone transformation maps tie groups to tie groups, so
//! under any fixed canonical order the class string is preserved
//! literally. Under an **anti-monotone** transformation the *group
//! order* reverses but each tie group is re-canonicalized, so the
//! literal string `σ_{A,D'}` equals `σ_{A,D}^R` only when every tie
//! group is monochromatic. Likewise a permutation on a monochromatic
//! piece may move tuple counts between the piece's distinct values
//! without changing any label. The invariant we verify is therefore
//! the canonical per-tuple class string — each tie group expanded in
//! ascending label order — preserved exactly (monotone) or reversed
//! group-wise (anti-monotone). This is precisely what the tree's
//! split search consumes.

use ppdt_error::PpdtError;
use rand::Rng;

use ppdt_data::{AttrId, Dataset};
use ppdt_tree::{tree_diff, TreeBuilder, TreeParams};

use crate::encoder::{EncodeConfig, Encoder, TransformKey};

/// The per-distinct-value class histograms of attribute `a`, in
/// ascending value order — the tie-robust form of the class string.
pub fn group_histograms(d: &Dataset, a: AttrId) -> Vec<Vec<u32>> {
    d.sorted_column(a).groups.into_iter().map(|g| g.hist).collect()
}

/// Expands group histograms into the canonical per-tuple class string
/// (labels within each tie group in ascending class order).
fn expand(hists: &[Vec<u32>]) -> Vec<u16> {
    let mut out = Vec::new();
    for h in hists {
        for (c, &n) in h.iter().enumerate() {
            out.extend(std::iter::repeat_n(c as u16, n as usize));
        }
    }
    out
}

/// Checks Lemma 1 for one attribute: the canonical class string of
/// `d2` equals that of `d` (when `increasing`) or its group-order
/// reversal (when not).
///
/// Note this is the per-*tuple* class string: within a monochromatic
/// piece a permutation may reorder which distinct value carries how
/// many tuples, but the label substring — all the tree ever sees —
/// stays constant.
pub fn class_strings_preserved(d: &Dataset, d2: &Dataset, a: AttrId, increasing: bool) -> bool {
    let h1 = group_histograms(d, a);
    let mut h2 = group_histograms(d2, a);
    if !increasing {
        h2.reverse();
    }
    expand(&h1) == expand(&h2)
}

/// Checks Lemma 1 for every attribute under `key`'s directions.
pub fn all_class_strings_preserved(d: &Dataset, d2: &Dataset, key: &TransformKey) -> bool {
    d.schema().attrs().all(|a| class_strings_preserved(d, d2, a, key.transform(a).increasing))
}

/// Outcome of a full no-outcome-change verification run.
#[derive(Clone, Debug)]
pub struct OutcomeReport {
    /// Lemma 1 held on every attribute.
    pub class_strings_ok: bool,
    /// The decoded tree equals the directly mined tree (Theorem 2).
    pub trees_equal: bool,
    /// Human-readable first difference, when `trees_equal` is false.
    pub first_diff: Option<String>,
    /// Leaves of the directly mined tree (sanity statistic).
    pub num_leaves: usize,
    /// Depth of the directly mined tree.
    pub depth: usize,
}

impl OutcomeReport {
    /// True iff every checked guarantee held.
    pub fn all_ok(&self) -> bool {
        self.class_strings_ok && self.trees_equal
    }
}

/// End-to-end Theorem 2 verification: encode `d`, mine both versions
/// with `params`, decode the mined tree with the key, compare.
pub fn no_outcome_change<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    encode_config: &EncodeConfig,
    params: TreeParams,
) -> Result<OutcomeReport, PpdtError> {
    let (key, d2) = Encoder::new(*encode_config).encode(rng, d)?.into_parts();
    let class_strings_ok = all_class_strings_preserved(d, &d2, &key);

    let builder = TreeBuilder::new(params);
    let t = builder.fit(d);
    let t2 = builder.fit(&d2);
    let s = key.decode_tree(&t2, params.threshold_policy, d)?;
    let first_diff = tree_diff(&s, &t, 0.0);

    Ok(OutcomeReport {
        class_strings_ok,
        trees_equal: first_diff.is_none(),
        first_diff,
        num_leaves: t.num_leaves(),
        depth: t.depth(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::BreakpointStrategy;
    use crate::encoder::RetryPolicy;
    use crate::family::FnFamily;
    use ppdt_data::gen::{census_like, figure1, random_dataset, wdbc_like, RandomDatasetConfig};
    use ppdt_data::{ClassId, DatasetBuilder, Schema};
    use ppdt_tree::{SplitCriterion, ThresholdPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_all_strategies_all_criteria() {
        let d = figure1();
        let mut rng = StdRng::seed_from_u64(1);
        for strat in [
            BreakpointStrategy::None,
            BreakpointStrategy::ChooseBP { w: 2 },
            BreakpointStrategy::ChooseMaxMP { w: 3, min_piece_len: 1 },
        ] {
            for crit in [SplitCriterion::Gini, SplitCriterion::Entropy] {
                for policy in [ThresholdPolicy::DataValue, ThresholdPolicy::Midpoint] {
                    let cfg = EncodeConfig { strategy: strat, ..Default::default() };
                    let params = TreeParams {
                        criterion: crit,
                        threshold_policy: policy,
                        ..Default::default()
                    };
                    let report = no_outcome_change(&mut rng, &d, &cfg, params).unwrap();
                    assert!(
                        report.all_ok(),
                        "{strat:?} {crit:?} {policy:?}: {:?}",
                        report.first_diff
                    );
                }
            }
        }
    }

    #[test]
    fn random_datasets_fuzz_no_outcome_change() {
        // The workhorse guarantee test: many random datasets with heavy
        // ties, random strategies and directions.
        let mut rng = StdRng::seed_from_u64(2);
        let cfg =
            RandomDatasetConfig { num_rows: 150, num_attrs: 3, num_classes: 3, value_range: 25 };
        for trial in 0..25 {
            let d = random_dataset(&mut rng, &cfg);
            let strat = match trial % 3 {
                0 => BreakpointStrategy::None,
                1 => BreakpointStrategy::ChooseBP { w: 1 + trial % 7 },
                _ => BreakpointStrategy::ChooseMaxMP { w: trial % 9, min_piece_len: 1 + trial % 3 },
            };
            let encode_config =
                EncodeConfig { strategy: strat, family: FnFamily::Mixed, ..Default::default() };
            let params = TreeParams {
                criterion: if trial % 2 == 0 {
                    SplitCriterion::Gini
                } else {
                    SplitCriterion::Entropy
                },
                ..Default::default()
            };
            let report = no_outcome_change(&mut rng, &d, &encode_config, params).unwrap();
            assert!(report.all_ok(), "trial {trial} ({strat:?}): {:?}", report.first_diff);
        }
    }

    #[test]
    fn anti_monotone_fuzz_with_verified_encode() {
        // Anti-monotone directions reverse the candidate-boundary
        // order, so exact metric ties can break differently; the
        // verified encoder redraws until exactness holds (see the
        // EncodeConfig docs). Heavy-tie random data is the worst case.
        let mut rng = StdRng::seed_from_u64(20);
        let cfg =
            RandomDatasetConfig { num_rows: 120, num_attrs: 3, num_classes: 3, value_range: 20 };
        for trial in 0..10 {
            let d = random_dataset(&mut rng, &cfg);
            let encode_config = EncodeConfig {
                anti_monotone_prob: 1.0,
                strategy: BreakpointStrategy::ChooseMaxMP { w: 5, min_piece_len: 1 },
                ..Default::default()
            };
            let params = TreeParams::default();
            let encoded = Encoder::new(encode_config)
                .retry(RetryPolicy::with_fallback(8))
                .verify_with(params)
                .encode(&mut rng, &d)
                .unwrap();
            let (key, d2, attempts) = (encoded.key, encoded.dataset, encoded.attempts);
            assert!(attempts >= 1);
            let builder = TreeBuilder::new(params);
            let t = builder.fit(&d);
            let t2 = builder.fit(&d2);
            let s = key.decode_tree(&t2, params.threshold_policy, &d).unwrap();
            assert!(ppdt_tree::trees_equal(&s, &t), "trial {trial}: {:?}", tree_diff(&s, &t, 0.0));
        }
    }

    #[test]
    fn anti_monotone_class_strings_always_preserved() {
        // Even when a tie flips the mined tree, Lemma 1 (histogram
        // reversal) must hold for every anti-monotone encode.
        let mut rng = StdRng::seed_from_u64(21);
        let cfg =
            RandomDatasetConfig { num_rows: 100, num_attrs: 2, num_classes: 2, value_range: 15 };
        for _ in 0..10 {
            let d = random_dataset(&mut rng, &cfg);
            let encode_config = EncodeConfig { anti_monotone_prob: 1.0, ..Default::default() };
            let (key, d2) = Encoder::new(encode_config).encode(&mut rng, &d).unwrap().into_parts();
            assert!(all_class_strings_preserved(&d, &d2, &key));
        }
    }

    #[test]
    fn census_and_wdbc_no_outcome_change() {
        let mut rng = StdRng::seed_from_u64(3);
        let census = census_like(&mut rng, 1_500);
        let wdbc = wdbc_like(&mut rng, 569);
        for d in [census, wdbc] {
            let report =
                no_outcome_change(&mut rng, &d, &EncodeConfig::default(), TreeParams::default())
                    .unwrap();
            assert!(report.all_ok(), "{:?}", report.first_diff);
        }
    }

    #[test]
    fn naive_antimonotone_inside_monotone_attribute_breaks_runs() {
        // The DESIGN.md §4 refinement, demonstrated: flip one
        // non-monochromatic piece's direction by hand and observe the
        // histogram sequence change. This is why the encoder restricts
        // non-mono pieces to the global direction.
        let schema = Schema::new(["a"], ["H", "L"]);
        let mut b = DatasetBuilder::new(schema);
        // Non-monochromatic stretch with an asymmetric label pattern
        // H,H,L over values 1,2,3 and a tail 4(L), 5(L).
        for (v, c) in [(1.0, 0u16), (2.0, 0), (3.0, 1), (4.0, 1), (5.0, 1)] {
            b.push_row(&[v], ClassId(c));
        }
        let d = b.build();
        // "Piece" = values {1,2,3} transformed anti-monotonically onto
        // [10,30]; values {4,5} monotonically onto [40,50]. The
        // piece's label pattern HHL becomes LHH — the class string
        // changes, so the paper's Lemma 1 machinery breaks.
        let col: Vec<f64> = d
            .column(AttrId(0))
            .iter()
            .map(|&v| match v as i64 {
                1 => 30.0,
                2 => 20.0,
                3 => 10.0,
                4 => 40.0,
                _ => 50.0,
            })
            .collect();
        let d2 = d.with_column(AttrId(0), col);
        assert!(!class_strings_preserved(&d, &d2, AttrId(0), true));
    }

    #[test]
    fn histogram_reversal_detects_direction() {
        let d = figure1();
        let col: Vec<f64> = d.column(AttrId(0)).iter().map(|&v| -v).collect();
        let d2 = d.with_column(AttrId(0), col);
        assert!(class_strings_preserved(&d, &d2, AttrId(0), false));
        assert!(!class_strings_preserved(&d, &d2, AttrId(0), true));
    }

    #[test]
    fn pruned_trees_also_preserved() {
        // Pruning is count-based, so prune(decode(T')) == prune(T).
        use ppdt_tree::prune_pessimistic;
        let mut rng = StdRng::seed_from_u64(4);
        let cfg =
            RandomDatasetConfig { num_rows: 200, num_attrs: 2, num_classes: 2, value_range: 30 };
        for _ in 0..5 {
            let d = random_dataset(&mut rng, &cfg);
            let (key, d2) =
                Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).unwrap().into_parts();
            let builder = TreeBuilder::default();
            let t = prune_pessimistic(&builder.fit(&d), 0.25);
            let t2 = prune_pessimistic(&builder.fit(&d2), 0.25);
            let s = key.decode_tree(&t2, ThresholdPolicy::DataValue, &d).unwrap();
            assert!(ppdt_tree::trees_equal(&s, &t), "{:?}", tree_diff(&s, &t, 0.0));
        }
    }
}
