//! Dataset-level encoding and the custodian's key.
//!
//! The one front door is the [`Encoder`] builder: configure it once
//! (`Encoder::new(config).threads(0).verify(true)`), then call
//! [`Encoder::encode`]. It draws one independent RNG stream per
//! attribute (seeded from the caller's generator), so the serial path
//! and the crossbeam-threaded path produce **bit-identical** output
//! for the same master seed — parallelism is purely a wall-clock
//! optimization, never a semantic choice. The historical free
//! functions (`encode_dataset` & co.) are gone; the builder is the
//! only entry point.
//!
//! ## Hostile inputs
//!
//! Everything that crosses the untrusted custodian/miner boundary —
//! serialized keys, mined trees, datasets — is treated as potentially
//! corrupt: every fallible operation returns a typed
//! [`PpdtError`] instead of panicking, and the internal draw loop is
//! governed by an explicit [`RetryPolicy`] whose exhaustion surfaces
//! as [`PpdtError::DrawExhausted`] with per-attempt reasons.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ppdt_data::{AttrId, Dataset, SortedColumn};
use ppdt_error::PpdtError;
use ppdt_tree::{tree_diff, DecisionTree, ThresholdPolicy, TreeBuilder, TreeParams};

use crate::breakpoints::{plan_pieces, BreakpointStrategy, PiecePlan};
use crate::family::FnFamily;
use crate::func::MonoFunc;
use crate::piecewise::{Piece, PieceKind, PiecewiseTransform};

/// Configuration of the encoder.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EncodeConfig {
    /// Breakpoint strategy (shared by all attributes).
    pub strategy: BreakpointStrategy,
    /// Function family for non-monochromatic pieces.
    pub family: FnFamily,
    /// Probability that an attribute is globally anti-monotone
    /// (0.0 = always monotone; the paper allows either).
    ///
    /// Exactness caveat: with a globally monotone direction the
    /// decoded tree equals the directly mined tree unconditionally.
    /// Under an anti-monotone direction the candidate-boundary order
    /// reverses, so when two boundaries have *exactly* equal impurity
    /// the miner's deterministic tie-break can pick the mirror
    /// boundary, yielding an equally optimal but structurally
    /// different tree. The default is therefore 0.0;
    /// [`Encoder::verify`] lets a custodian use anti-monotone
    /// directions and redraw until exactness holds.
    pub anti_monotone_prob: f64,
    /// Fraction of the total output span reserved for the random gaps
    /// between piece output intervals; must be strictly positive (a
    /// zero gap would let adjacent intervals touch and break strict
    /// output disjointness).
    pub gap_fraction: f64,
    /// How piece output-interval widths are drawn. Default (and the
    /// only sound choice for privacy): [`LayoutKind::Cascade`].
    /// [`LayoutKind::IidProportional`] exists for the ablation bench —
    /// it concentrates as the piece count grows and hands curve-fitting
    /// attacks a nearly linear aggregate map (`DESIGN.md` §4.4).
    pub layout: LayoutKind,
}

/// Interval-layout generator for the piecewise transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutKind {
    /// Binary multiplicative cascade: partial sums fluctuate at every
    /// scale, keeping the aggregate map non-linear for any piece count.
    Cascade,
    /// Widths i.i.d.-jittered proportional to piece size — the naive
    /// scheme; kept for the `ablation_layout` experiment.
    IidProportional,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 20, min_piece_len: 5 },
            family: FnFamily::Mixed,
            anti_monotone_prob: 0.0,
            gap_fraction: 0.15,
            layout: LayoutKind::Cascade,
        }
    }
}

impl EncodeConfig {
    /// The Figure 9 "no breakpoint" baseline: one monotone function per
    /// attribute.
    pub fn baseline(family: FnFamily) -> Self {
        EncodeConfig { strategy: BreakpointStrategy::None, family, ..Default::default() }
    }
}

/// What to do when a bounded draw loop runs out of attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnExhaust {
    /// Return [`PpdtError::DrawExhausted`] with per-attempt reasons.
    #[default]
    Fail,
    /// Fall back to the conservative configuration that cannot fail
    /// validation in practice — a single globally monotone piece
    /// ([`BreakpointStrategy::None`], `anti_monotone_prob = 0`) — and
    /// only error if even that draw is invalid.
    Fallback,
}

/// Bounded-retry policy for the randomized draw loops (per-attribute
/// transform draws, and [`Encoder::verify`]'s whole-dataset redraws).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of attempts before giving up (≥ 1).
    pub max_attempts: usize,
    /// What to do when attempts run out.
    pub on_exhaust: OnExhaust,
}

impl Default for RetryPolicy {
    /// 16 attempts, then fail with diagnostics — the historical
    /// hard-coded loop bound, now surfaced as a typed error instead of
    /// a panic.
    fn default() -> Self {
        RetryPolicy { max_attempts: 16, on_exhaust: OnExhaust::Fail }
    }
}

impl RetryPolicy {
    /// A policy that fails after `max_attempts` attempts.
    pub fn failing(max_attempts: usize) -> Self {
        RetryPolicy { max_attempts, on_exhaust: OnExhaust::Fail }
    }

    /// A policy that falls back to the conservative configuration
    /// after `max_attempts` attempts.
    pub fn with_fallback(max_attempts: usize) -> Self {
        RetryPolicy { max_attempts, on_exhaust: OnExhaust::Fallback }
    }

    /// Rejects a policy with zero attempts.
    pub fn validate(&self) -> Result<(), PpdtError> {
        if self.max_attempts == 0 {
            return Err(PpdtError::InvalidConfig {
                param: "retry.max_attempts".into(),
                detail: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// The custodian's key: one [`PiecewiseTransform`] per attribute.
///
/// Serializable (`serde`) — this is the "rather minimal" information
/// of Section 5.4 the custodian must keep to decode the mining result:
/// breakpoints and per-piece transformations.
///
/// A key loaded from disk is untrusted until audited: run
/// [`crate::audit::audit_key`] (or `audit_key_against` with the
/// dataset) before using it on anything that matters. For hot paths,
/// [`crate::compiled::CompiledKey::compile`] audits once and returns a
/// flat, dispatch-free form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransformKey {
    /// Per-attribute transforms, indexed by attribute.
    pub transforms: Vec<PiecewiseTransform>,
}

impl TransformKey {
    /// The transform of attribute `a`.
    ///
    /// # Panics
    /// Panics when `a` is out of range — this is the trusted-path
    /// accessor for attribute ids that were validated upstream; use
    /// [`TransformKey::try_transform`] for ids read from hostile
    /// artifacts.
    pub fn transform(&self, a: AttrId) -> &PiecewiseTransform {
        &self.transforms[a.index()]
    }

    /// The transform of attribute `a`, or
    /// [`PpdtError::SchemaMismatch`] when the key has no such
    /// attribute.
    pub fn try_transform(&self, a: AttrId) -> Result<&PiecewiseTransform, PpdtError> {
        self.transforms.get(a.index()).ok_or_else(|| PpdtError::SchemaMismatch {
            detail: format!(
                "attribute {a} out of range for a key with {} transform(s)",
                self.transforms.len()
            ),
        })
    }

    /// Encodes one original value of attribute `a`.
    pub fn encode_value(&self, a: AttrId, x: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.encode(x).map_err(|e| e.with_attr(a.index()))
    }

    /// Inverts one transformed value of attribute `a` (`f⁻¹(ν')`),
    /// snapped to the original active domain — exact for every value
    /// appearing in `D'`.
    pub fn decode_value(&self, a: AttrId, y: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.decode_snapped(y).map_err(|e| e.with_attr(a.index()))
    }

    /// Raw analytic inverse (no snapping) — what Definitions 1–3 call
    /// `f⁻¹` on arbitrary transformed values.
    pub fn decode_value_raw(&self, a: AttrId, y: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.decode(y).map_err(|e| e.with_attr(a.index()))
    }

    /// Decodes an entire transformed dataset back to the original —
    /// the custodian's sanity check that the key losslessly inverts
    /// `D'`. Exact on every value produced by [`Encoder::encode`];
    /// a key/dataset arity mismatch or a corrupt transform yields a
    /// typed error.
    pub fn decode_dataset(&self, d_prime: &Dataset) -> Result<Dataset, PpdtError> {
        if self.transforms.len() != d_prime.num_attrs() {
            return Err(PpdtError::SchemaMismatch {
                detail: format!(
                    "key has {} transform(s) but the dataset has {} attribute(s)",
                    self.transforms.len(),
                    d_prime.num_attrs()
                ),
            });
        }
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(self.transforms.len());
        for a in d_prime.schema().attrs() {
            let tr = self.transform(a);
            let mut col = Vec::with_capacity(d_prime.num_rows());
            for &y in d_prime.column(a) {
                col.push(tr.decode_snapped(y).map_err(|e| e.with_attr(a.index()))?);
            }
            columns.push(col);
        }
        Ok(d_prime.with_columns(columns))
    }

    /// Serializes the key to pretty JSON and writes it to `path`.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> Result<(), PpdtError> {
        let path = path.as_ref();
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| PpdtError::internal(format!("key serialization failed: {e}")))?;
        std::fs::write(path, json).map_err(|e| PpdtError::io(path.display().to_string(), e))
    }

    /// Loads a key previously written with [`TransformKey::save_json`].
    ///
    /// Parsing only — a well-formed JSON file with garbage *contents*
    /// parses fine; run [`crate::audit::audit_key`] on the result
    /// before trusting it.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<TransformKey, PpdtError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| PpdtError::io(path.display().to_string(), e))?;
        serde_json::from_str(&text)
            .map_err(|e| PpdtError::key_corrupt(format!("key file does not parse: {e}")))
    }

    /// Checks that a mined tree is structurally decodable against this
    /// key: every split attribute exists in the key and every
    /// threshold is finite. Cheap; run it before the replay walk.
    pub fn check_tree(&self, mined: &DecisionTree) -> Result<(), PpdtError> {
        use ppdt_tree::Node;
        fn rec(key: &TransformKey, n: &Node) -> Result<(), PpdtError> {
            if let Node::Split { attr, threshold, left, right, .. } = n {
                if attr.index() >= key.transforms.len() {
                    return Err(PpdtError::TreeIncompatible {
                        detail: format!(
                            "split on attribute {attr} but the key has {} transform(s)",
                            key.transforms.len()
                        ),
                    });
                }
                if !threshold.is_finite() {
                    return Err(PpdtError::TreeIncompatible {
                        detail: format!(
                            "non-finite split threshold {threshold} on attribute {attr}"
                        ),
                    });
                }
                rec(key, left)?;
                rec(key, right)?;
            }
            Ok(())
        }
        rec(self, &mined.root)
    }

    /// Decodes the tree `T'` mined on the transformed data into the
    /// tree `S` of Theorem 2, replaying the original data `d` (which
    /// the custodian owns) down the tree. `S` is **bit-exactly** the
    /// tree mined on `d` directly.
    ///
    /// Per node `A' ≤ ν'`:
    /// * the node's tuple subset is partitioned by `f_A(v) ≤ ν'`;
    /// * for a globally monotone attribute the decoded threshold is
    ///   the largest original value on the `≤` side (`DataValue`) or
    ///   the midpoint across the separation (`Midpoint`);
    /// * for a globally **anti-monotone** attribute `A' ≤ ν'` means
    ///   `A ≥ f⁻¹(ν')`, so the children are swapped and the decoded
    ///   `≤`-threshold comes from the complement side.
    ///
    /// Replaying the subset matters: the largest original value on a
    /// side *within the node's subset* is what the direct miner used,
    /// and pointwise inversion of `ν'` does not recover it for
    /// anti-monotone attributes or inside permutation pieces. The
    /// data-free variant [`TransformKey::decode_tree_blind`] is exact
    /// whenever every attribute is globally monotone with no
    /// permutation pieces, and training-equivalent otherwise.
    ///
    /// A tampered tree — unknown attribute id, non-finite threshold,
    /// or a threshold placed so a split side is empty on replay —
    /// yields [`PpdtError::TreeIncompatible`]; a value `d` contains
    /// but the key does not cover yields the underlying transform
    /// error with attribute context.
    ///
    /// # Example
    /// ```
    /// use ppdt_transform::{EncodeConfig, Encoder};
    /// use ppdt_tree::{ThresholdPolicy, TreeBuilder};
    /// use rand::SeedableRng;
    ///
    /// let d = ppdt_data::gen::figure1();
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let (key, d_prime) =
    ///     Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).unwrap().into_parts();
    ///
    /// // The (untrusted) miner sees only D'.
    /// let t_prime = TreeBuilder::default().fit(&d_prime);
    ///
    /// // Decoding T' with the key recovers the tree mined on D directly.
    /// let s = key.decode_tree(&t_prime, ThresholdPolicy::DataValue, &d).unwrap();
    /// let t = TreeBuilder::default().fit(&d);
    /// assert!(ppdt_tree::trees_equal(&s, &t));
    /// ```
    pub fn decode_tree(
        &self,
        mined: &DecisionTree,
        policy: ThresholdPolicy,
        d: &Dataset,
    ) -> Result<DecisionTree, PpdtError> {
        use ppdt_tree::Node;
        let _t = ppdt_obs::phase("decode");
        self.check_tree(mined)?;
        let midpoint = matches!(policy, ThresholdPolicy::Midpoint);

        struct Ctx<'a> {
            key: &'a TransformKey,
            d: &'a Dataset,
            midpoint: bool,
        }

        fn rec(ctx: &Ctx<'_>, n: &Node, rows: Vec<u32>) -> Result<Node, PpdtError> {
            match n {
                Node::Leaf { .. } => Ok(n.clone()),
                Node::Split { attr, threshold, class_counts, left, right } => {
                    ppdt_obs::add(ppdt_obs::Counter::NodesDecoded, 1);
                    let tr = ctx.key.transform(*attr);
                    let col = ctx.d.column(*attr);
                    let mut rows_le = Vec::new();
                    let mut rows_gt = Vec::new();
                    let mut le_min = f64::INFINITY;
                    let mut le_max = f64::NEG_INFINITY;
                    let mut gt_min = f64::INFINITY;
                    let mut gt_max = f64::NEG_INFINITY;
                    for &r in &rows {
                        let x = col[r as usize];
                        let y = tr.encode(x).map_err(|e| e.with_attr(attr.index()))?;
                        if y <= *threshold {
                            le_min = le_min.min(x);
                            le_max = le_max.max(x);
                            rows_le.push(r);
                        } else {
                            gt_min = gt_min.min(x);
                            gt_max = gt_max.max(x);
                            rows_gt.push(r);
                        }
                    }
                    if rows_le.is_empty() || rows_gt.is_empty() {
                        return Err(PpdtError::TreeIncompatible {
                            detail: format!(
                                "split `attr {attr} ≤ {threshold}` leaves an empty side when \
                                 replayed on the original data"
                            ),
                        });
                    }
                    let left_d = rec(ctx, left, rows_le)?;
                    let right_d = rec(ctx, right, rows_gt)?;
                    let (t, l, r) = if le_max < gt_min {
                        // `≤` side is the original-space lower side.
                        let t = if ctx.midpoint { 0.5 * (le_max + gt_min) } else { le_max };
                        (t, left_d, right_d)
                    } else {
                        // Anti-monotone: `≤` side is the upper side.
                        let t = if ctx.midpoint { 0.5 * (gt_max + le_min) } else { gt_max };
                        (t, right_d, left_d)
                    };
                    Ok(Node::Split {
                        attr: *attr,
                        threshold: t,
                        class_counts: class_counts.clone(),
                        left: Box::new(l),
                        right: Box::new(r),
                    })
                }
            }
        }

        let ctx = Ctx { key: self, d, midpoint };
        let rows: Vec<u32> = (0..d.num_rows() as u32).collect();
        Ok(DecisionTree {
            root: rec(&ctx, &mined.root, rows)?,
            num_classes: mined.num_classes,
            criterion: mined.criterion,
        })
    }

    /// Data-free decode (the literal Theorem 2 construction): every
    /// threshold is decoded against the key's recorded active domain,
    /// with children swapped on anti-monotone attributes. Bit-exact
    /// when every attribute is globally monotone with no permutation
    /// pieces; otherwise the result classifies the training data
    /// identically but thresholds may sit at different (equivalent)
    /// positions within inter-value gaps.
    pub fn decode_tree_blind(
        &self,
        mined: &DecisionTree,
        policy: ThresholdPolicy,
    ) -> Result<DecisionTree, PpdtError> {
        use ppdt_tree::Node;
        self.check_tree(mined)?;
        let midpoint = matches!(policy, ThresholdPolicy::Midpoint);
        let mut maps: Vec<Option<Vec<(f64, f64)>>> = vec![None; self.transforms.len()];

        fn rec(
            key: &TransformKey,
            maps: &mut Vec<Option<Vec<(f64, f64)>>>,
            n: &Node,
            midpoint: bool,
        ) -> Result<Node, PpdtError> {
            match n {
                Node::Leaf { .. } => Ok(n.clone()),
                Node::Split { attr, threshold, class_counts, left, right } => {
                    let tr = key.transform(*attr);
                    let map = match &maps[attr.index()] {
                        Some(m) => m,
                        None => {
                            let m = tr
                                .transformed_domain_map()
                                .map_err(|e| e.with_attr(attr.index()))?;
                            maps[attr.index()].insert(m)
                        }
                    };
                    let t = crate::piecewise::decode_le_split(map, *threshold, midpoint)
                        .map_err(|e| e.with_attr(attr.index()))?;
                    let left_d = rec(key, maps, left, midpoint)?;
                    let right_d = rec(key, maps, right, midpoint)?;
                    let (l, r) = if tr.increasing { (left_d, right_d) } else { (right_d, left_d) };
                    Ok(Node::Split {
                        attr: *attr,
                        threshold: t,
                        class_counts: class_counts.clone(),
                        left: Box::new(l),
                        right: Box::new(r),
                    })
                }
            }
        }
        Ok(DecisionTree {
            root: rec(self, &mut maps, &mined.root, midpoint)?,
            num_classes: mined.num_classes,
            criterion: mined.criterion,
        })
    }
}

/// The result of an [`Encoder::encode`] run: the custodian's key, the
/// transformed dataset `D'` handed to the miner, and (for verified
/// runs) how many draw attempts were used.
#[derive(Clone, Debug, PartialEq)]
pub struct Encoded {
    /// The custodian's key.
    pub key: TransformKey,
    /// The transformed dataset `D'`.
    pub dataset: Dataset,
    /// Number of whole-dataset draw attempts used. Always 1 for
    /// unverified runs; for verified runs a fallback re-draw counts as
    /// one extra attempt.
    pub attempts: usize,
}

impl Encoded {
    /// Splits into `(key, dataset)` — the shape the historical free
    /// functions returned.
    pub fn into_parts(self) -> (TransformKey, Dataset) {
        (self.key, self.dataset)
    }
}

/// The one front door for dataset encoding. Collapses the historical
/// `encode_dataset` / `_with` / `_parallel` / `_parallel_with` /
/// `_verified` free functions behind a builder:
///
/// ```
/// use ppdt_data::gen::figure1;
/// use ppdt_transform::{EncodeConfig, Encoder};
/// use ppdt_tree::{trees_equal, ThresholdPolicy, TreeBuilder};
/// use rand::SeedableRng;
///
/// let d = figure1();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (key, d_prime) =
///     Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).unwrap().into_parts();
///
/// // The miner's tree decodes to exactly the direct tree (Theorem 2).
/// let builder = TreeBuilder::default();
/// let mined = builder.fit(&d_prime);
/// let decoded = key.decode_tree(&mined, ThresholdPolicy::DataValue, &d).unwrap();
/// assert!(trees_equal(&decoded, &builder.fit(&d)));
/// ```
///
/// Thread count is a pure wall-clock choice — any value produces
/// bit-identical output for the same master seed:
///
/// ```
/// use ppdt_data::gen::figure1;
/// use ppdt_transform::{EncodeConfig, Encoder};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let d = figure1();
/// let config = EncodeConfig::default();
/// let serial = Encoder::new(config).encode(&mut StdRng::seed_from_u64(7), &d).unwrap();
/// let parallel =
///     Encoder::new(config).threads(0).encode(&mut StdRng::seed_from_u64(7), &d).unwrap();
/// assert_eq!(serial, parallel);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Encoder {
    config: EncodeConfig,
    retry: RetryPolicy,
    /// 1 = serial (default); 0 = auto (`ppdt_obs::threads`); n =
    /// exactly n crossbeam workers.
    threads: usize,
    verify: Option<TreeParams>,
    metrics: bool,
}

impl Encoder {
    /// An encoder with the given configuration, default
    /// [`RetryPolicy`], serial execution, no verification, and
    /// metrics recording on.
    pub fn new(config: EncodeConfig) -> Encoder {
        Encoder { config, retry: RetryPolicy::default(), threads: 1, verify: None, metrics: true }
    }

    /// Sets the draw [`RetryPolicy`] (per-attribute draws, and the
    /// whole-dataset redraw loop when verification is on).
    pub fn retry(mut self, policy: RetryPolicy) -> Encoder {
        self.retry = policy;
        self
    }

    /// Sets the worker-thread count: `1` (default) encodes serially on
    /// the calling thread, `0` auto-sizes via [`ppdt_obs::threads`]
    /// (`PPDT_THREADS` / hardware), any other value uses exactly that
    /// many crossbeam scoped workers. Output is bit-identical at every
    /// setting.
    pub fn threads(mut self, n: usize) -> Encoder {
        self.threads = n;
        self
    }

    /// Turns end-to-end verification on (with [`TreeParams::default`])
    /// or off: after each draw the mined-and-decoded tree is compared
    /// against the directly mined tree, redrawing until exactness
    /// holds (bounded by the retry policy). Required for exactness
    /// under `anti_monotone_prob > 0`.
    pub fn verify(mut self, yes: bool) -> Encoder {
        self.verify = yes.then(TreeParams::default);
        self
    }

    /// Like [`Encoder::verify`] with explicit mining parameters.
    pub fn verify_with(mut self, params: TreeParams) -> Encoder {
        self.verify = Some(params);
        self
    }

    /// Toggles recording on the global [`ppdt_obs`] registry (the
    /// `encode` phase timer and the `rows_encoded` counter). On by
    /// default; the deep per-draw counters (`draw_retries`,
    /// `pieces_drawn`, `verify_retries`) are always recorded.
    pub fn metrics(mut self, record: bool) -> Encoder {
        self.metrics = record;
        self
    }

    /// Encodes every attribute of `d`, returning the custodian's key
    /// and the transformed dataset `D'` (plus the attempt count when
    /// verifying).
    pub fn encode<R: Rng + ?Sized>(&self, rng: &mut R, d: &Dataset) -> Result<Encoded, PpdtError> {
        let threads = self.resolve_threads(d.num_attrs());
        match self.verify {
            None => {
                let (key, dataset) = self.encode_once(rng, d, &self.config, threads)?;
                Ok(Encoded { key, dataset, attempts: 1 })
            }
            Some(params) => self.encode_verified(rng, d, params, threads),
        }
    }

    /// Builds the piecewise transform of one attribute — the
    /// single-attribute front door (replaces the historical
    /// `encode_attribute{,_with}`). Ignores the thread and verify
    /// settings; the retry policy bounds the draw loop.
    pub fn encode_attribute<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d: &Dataset,
        a: AttrId,
    ) -> Result<PiecewiseTransform, PpdtError> {
        draw_attribute_transform(rng, d, a, &self.config, self.retry)
    }

    fn resolve_threads(&self, num_attrs: usize) -> usize {
        let n = match self.threads {
            0 => ppdt_obs::threads(None),
            n => n,
        };
        n.min(num_attrs).max(1)
    }

    /// One whole-dataset draw at the resolved thread count.
    fn encode_once<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d: &Dataset,
        config: &EncodeConfig,
        threads: usize,
    ) -> Result<(TransformKey, Dataset), PpdtError> {
        validate_encode_inputs(d, config, self.retry)?;
        let _t = self.metrics.then(|| ppdt_obs::phase("encode"));
        let seeds = attr_seeds(rng, d.num_attrs());
        if self.metrics {
            ppdt_obs::add(ppdt_obs::Counter::RowsEncoded, d.num_rows() as u64);
        }

        let n = d.num_attrs();
        let policy = self.retry;
        if threads <= 1 {
            let mut transforms = Vec::with_capacity(n);
            let mut columns = Vec::with_capacity(n);
            for (a, &seed) in d.schema().attrs().zip(&seeds) {
                let (tr, col) = encode_attribute_seeded(seed, d, a, config, policy)?;
                transforms.push(tr);
                columns.push(col);
            }
            return Ok((TransformKey { transforms }, d.with_columns(columns)));
        }

        type Slot = Option<Result<(PiecewiseTransform, Vec<f64>), PpdtError>>;
        let mut slots: Vec<Slot> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let chunk_len = n.div_ceil(threads);
            for (t, chunk) in slots.chunks_mut(chunk_len).enumerate() {
                let seeds = &seeds;
                let start = t * chunk_len;
                scope.spawn(move |_| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let a = AttrId(start + i);
                        *slot =
                            Some(encode_attribute_seeded(seeds[start + i], d, a, config, policy));
                    }
                });
            }
        })
        .map_err(|_| PpdtError::internal("encode worker thread panicked"))?;

        let mut transforms = Vec::with_capacity(n);
        let mut columns = Vec::with_capacity(n);
        for slot in slots {
            let (tr, col) = slot.ok_or_else(|| {
                PpdtError::internal("encode worker left an attribute slot empty")
            })??;
            transforms.push(tr);
            columns.push(col);
        }
        Ok((TransformKey { transforms }, d.with_columns(columns)))
    }

    /// Custodian-side verified encoding: draws transformations and
    /// checks the no-outcome-change guarantee end-to-end, redrawing
    /// (bounded by the retry policy) if a metric tie under an
    /// anti-monotone direction broke exactness. On exhaustion,
    /// [`OnExhaust::Fallback`] re-encodes with all-monotone directions
    /// (for which exactness is unconditional under the default
    /// run-boundary candidate policy), while [`OnExhaust::Fail`]
    /// returns [`PpdtError::DrawExhausted`] carrying the first tree
    /// difference observed on every failed attempt.
    fn encode_verified<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d: &Dataset,
        params: TreeParams,
        threads: usize,
    ) -> Result<Encoded, PpdtError> {
        self.retry.validate()?;
        let builder = TreeBuilder::new(params);
        let t = builder.fit(d);
        let mut reasons: Vec<String> = Vec::new();
        for attempt in 1..=self.retry.max_attempts {
            if attempt > 1 {
                ppdt_obs::add(ppdt_obs::Counter::VerifyRetries, 1);
            }
            let (key, d2) = self.encode_once(rng, d, &self.config, threads)?;
            let t2 = builder.fit(&d2);
            let s = key.decode_tree(&t2, params.threshold_policy, d)?;
            match tree_diff(&s, &t, 0.0) {
                None => return Ok(Encoded { key, dataset: d2, attempts: attempt }),
                Some(diff) => {
                    reasons.push(format!("attempt {attempt}: decoded tree differs: {diff}"))
                }
            }
        }
        if self.retry.on_exhaust == OnExhaust::Fallback {
            // Monotone directions cannot flip tie-breaks; this always
            // verifies.
            ppdt_obs::add(ppdt_obs::Counter::VerifyRetries, 1);
            let fallback = EncodeConfig { anti_monotone_prob: 0.0, ..self.config };
            let (key, d2) = self.encode_once(rng, d, &fallback, threads)?;
            let t2 = builder.fit(&d2);
            let s = key.decode_tree(&t2, params.threshold_policy, d)?;
            match tree_diff(&s, &t, 0.0) {
                None => {
                    return Ok(Encoded { key, dataset: d2, attempts: self.retry.max_attempts + 1 })
                }
                Some(diff) => reasons.push(format!("fallback: decoded tree differs: {diff}")),
            }
        }
        Err(PpdtError::DrawExhausted { attr: None, attempts: self.retry.max_attempts, reasons })
    }
}

fn validate_encode_inputs(
    d: &Dataset,
    config: &EncodeConfig,
    policy: RetryPolicy,
) -> Result<(), PpdtError> {
    policy.validate()?;
    if d.num_rows() == 0 {
        return Err(PpdtError::EmptyInput { what: "dataset".into() });
    }
    if !(0.0..=1.0).contains(&config.anti_monotone_prob) {
        return Err(PpdtError::InvalidConfig {
            param: "anti_monotone_prob".into(),
            detail: format!("{} is outside [0, 1]", config.anti_monotone_prob),
        });
    }
    if !(config.gap_fraction > 0.0 && config.gap_fraction < 0.9) {
        return Err(PpdtError::InvalidConfig {
            param: "gap_fraction".into(),
            detail: format!(
                "{} is outside (0, 0.9): zero-width gaps would let adjacent piece intervals \
                 touch and break strict output disjointness",
                config.gap_fraction
            ),
        });
    }
    Ok(())
}

/// One seed per attribute, drawn in attribute order from the caller's
/// generator. Pre-drawing is what decouples the per-attribute streams:
/// any encode order (serial, chunked, threaded) then yields the same
/// transforms.
fn attr_seeds<R: Rng + ?Sized>(rng: &mut R, num_attrs: usize) -> Vec<u64> {
    (0..num_attrs).map(|_| rng.gen()).collect()
}

/// Encodes one attribute from its own seeded stream and applies the
/// transform to the attribute's column.
fn encode_attribute_seeded(
    seed: u64,
    d: &Dataset,
    a: AttrId,
    config: &EncodeConfig,
    policy: RetryPolicy,
) -> Result<(PiecewiseTransform, Vec<f64>), PpdtError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tr = draw_attribute_transform(&mut rng, d, a, config, policy)?;
    let col: Result<Vec<f64>, PpdtError> =
        d.column(a).iter().map(|&x| tr.encode(x).map_err(|e| e.with_attr(a.index()))).collect();
    Ok((tr, col?))
}

/// Builds the piecewise transform of one attribute.
///
/// The draw is randomized and validated; the (rare) numeric validation
/// failure — e.g. a cascade squeezing a large piece into an interval
/// narrow enough for two f64 outputs to collide — triggers a redraw,
/// bounded by `policy`. Exhaustion yields
/// [`PpdtError::DrawExhausted`] carrying one reason per failed
/// attempt (or, under [`OnExhaust::Fallback`], one last conservative
/// single-piece monotone draw). Retries beyond the first attempt are
/// counted on [`ppdt_obs::Counter::DrawRetries`].
pub(crate) fn draw_attribute_transform<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    config: &EncodeConfig,
    policy: RetryPolicy,
) -> Result<PiecewiseTransform, PpdtError> {
    policy.validate()?;
    let sc = d.sorted_column(a);
    if sc.num_distinct() == 0 {
        return Err(PpdtError::EmptyInput { what: format!("attribute {a}") });
    }
    let mut reasons: Vec<String> = Vec::new();
    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            ppdt_obs::add(ppdt_obs::Counter::DrawRetries, 1);
        }
        let plan = plan_pieces(rng, &sc, config.strategy);
        let increasing = !rng.gen_bool(config.anti_monotone_prob);
        let tr = build_transform(rng, &sc, &plan, increasing, config);
        match tr.validate() {
            Ok(()) => {
                ppdt_obs::add(ppdt_obs::Counter::PiecesDrawn, tr.pieces.len() as u64);
                return Ok(tr);
            }
            Err(e) => reasons.push(format!("attempt {}: {e}", attempt + 1)),
        }
    }
    if policy.on_exhaust == OnExhaust::Fallback {
        // Conservative last resort: one globally monotone piece.
        let conservative =
            EncodeConfig { strategy: BreakpointStrategy::None, anti_monotone_prob: 0.0, ..*config };
        let plan = plan_pieces(rng, &sc, conservative.strategy);
        let tr = build_transform(rng, &sc, &plan, true, &conservative);
        match tr.validate() {
            Ok(()) => {
                ppdt_obs::add(ppdt_obs::Counter::PiecesDrawn, tr.pieces.len() as u64);
                return Ok(tr);
            }
            Err(e) => reasons.push(format!("fallback: {e}")),
        }
    }
    Err(PpdtError::DrawExhausted { attr: Some(a.index()), attempts: policy.max_attempts, reasons })
}

/// Materializes a [`PiecewiseTransform`] from a piece plan:
/// 1. draws the overall output span (randomly scaled and shifted copy
///    of the input span),
/// 2. allocates disjoint per-piece output intervals (widths
///    proportional to piece size with random jitter; random gaps in
///    between) in input order — reversed when globally anti-monotone,
///    which realizes the global-(anti-)monotone invariant,
/// 3. draws each piece's function: a random permutation for
///    monochromatic pieces, a direction-consistent sample from the
///    configured family otherwise, renormalized affinely into the
///    piece's interval.
fn build_transform<R: Rng + ?Sized>(
    rng: &mut R,
    sc: &SortedColumn,
    plan: &[PiecePlan],
    increasing: bool,
    config: &EncodeConfig,
) -> PiecewiseTransform {
    let values: Vec<f64> = sc.groups.iter().map(|g| g.value).collect();
    let in_lo = values[0];
    let in_hi = values[values.len() - 1];
    let in_span = (in_hi - in_lo).max(1.0);

    // Overall output span.
    let out_span = in_span * rng.gen_range(0.6..1.8);
    let out_origin = in_lo + rng.gen_range(-0.75..0.75) * in_span;

    // Piece widths: a multiplicative cascade (recursive random
    // splitting) scaled by the square root of the piece's size. Any
    // i.i.d. jitter scheme concentrates as the piece count grows —
    // cumulative interval positions would track the input positions
    // almost linearly, handing curve-fitting attacks an easy target.
    // The cascade keeps relative fluctuations O(1) at *every* scale,
    // so the aggregate map stays non-linear no matter how many pieces
    // ChooseMaxMP produces. (`IidProportional` is the ablation.)
    let weights: Vec<f64> = match config.layout {
        LayoutKind::Cascade => cascade_weights(rng, plan.len())
            .into_iter()
            .zip(plan)
            .map(|(w, p)| w * (p.len() as f64).sqrt())
            .collect(),
        LayoutKind::IidProportional => {
            plan.iter().map(|p| (p.len() as f64) * rng.gen_range(0.6..1.6)).collect()
        }
    };
    let weight_sum: f64 = weights.iter().sum();
    let gaps_total = out_span * config.gap_fraction;
    let body = out_span - gaps_total;
    let n_gaps = plan.len().saturating_sub(1);
    let gap_weights: Vec<f64> = cascade_weights(rng, n_gaps);
    let gap_weight_sum: f64 = gap_weights.iter().sum::<f64>().max(1e-12);

    // Intervals in *input order*; for an anti-monotone attribute they
    // are laid out from the top of the output span downward.
    let mut intervals: Vec<(f64, f64)> = Vec::with_capacity(plan.len());
    let mut cursor = 0.0; // offset within [0, out_span]
    for (i, w) in weights.iter().enumerate() {
        let width = body * w / weight_sum;
        let (lo_off, hi_off) = (cursor, cursor + width);
        cursor = hi_off;
        if i < n_gaps {
            cursor += gaps_total * gap_weights[i] / gap_weight_sum;
        }
        let (lo, hi) = if increasing {
            (out_origin + lo_off, out_origin + hi_off)
        } else {
            (out_origin + out_span - hi_off, out_origin + out_span - lo_off)
        };
        intervals.push((lo, hi));
    }

    let mut pieces = Vec::with_capacity(plan.len());
    for (p, &(out_lo, out_hi)) in plan.iter().zip(&intervals) {
        let vals = &values[p.first_group..p.end_group];
        let input_lo = vals[0];
        let input_hi = vals[vals.len() - 1];
        let kind = if p.mono_label.is_some() {
            PieceKind::Permutation { map: permutation_map(rng, vals, out_lo, out_hi) }
        } else {
            let f = config.family.sample(rng, input_lo, input_hi, increasing);
            let (s, t) = normalize(&f, input_lo, input_hi, out_lo, out_hi);
            PieceKind::Monotone { f, s, t }
        };
        pieces.push(Piece { input_lo, input_hi, output_lo: out_lo, output_hi: out_hi, kind });
    }

    PiecewiseTransform { pieces, increasing, orig_domain: values }
}

/// Positive weights summing to 1, drawn from a binary multiplicative
/// cascade: the budget is split recursively with a uniform fraction in
/// `[0.15, 0.85]` at each level. Unlike i.i.d. weights, the cascade's
/// partial sums fluctuate at every scale, which is what keeps many-
/// piece layouts non-linear (see `build_transform`).
fn cascade_weights<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    fn rec<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64], budget: f64) {
        match out.len() {
            0 => {}
            1 => out[0] = budget,
            len => {
                let mid = len / 2;
                let frac = rng.gen_range(0.07..0.93);
                rec(rng, &mut out[..mid], budget * frac);
                let (_, right) = out.split_at_mut(mid);
                rec(rng, right, budget * (1.0 - frac));
            }
        }
    }
    let mut out = vec![0.0; n];
    rec(rng, &mut out, 1.0);
    out
}

/// Affine renormalization `(s, t)` with `s > 0` mapping the raw range
/// of `f` over `[lo, hi]` onto `[out_lo, out_hi]`.
fn normalize(f: &MonoFunc, lo: f64, hi: f64, out_lo: f64, out_hi: f64) -> (f64, f64) {
    let (ra, rb) = (f.eval(lo), f.eval(hi));
    let (raw_min, raw_max) = (ra.min(rb), ra.max(rb));
    let raw_span = raw_max - raw_min;
    if raw_span <= f64::MIN_POSITIVE * 16.0 {
        // Single-value piece: park the value at the interval's center.
        return (1.0, 0.5 * (out_lo + out_hi) - raw_min);
    }
    let s = (out_hi - out_lo) / raw_span;
    (s, out_lo - s * raw_min)
}

/// A random bijection from the piece's distinct values onto jittered
/// grid positions in `[out_lo, out_hi]` — the `F_bi` of Section 5.3.
fn permutation_map<R: Rng + ?Sized>(
    rng: &mut R,
    vals: &[f64],
    out_lo: f64,
    out_hi: f64,
) -> Vec<(f64, f64)> {
    let k = vals.len();
    let span = out_hi - out_lo;
    let step = span / k as f64;
    let mut targets: Vec<f64> = (0..k)
        .map(|i| out_lo + (i as f64 + 0.5) * step + rng.gen_range(-0.4..0.4) * step)
        .collect();
    targets.shuffle(rng);
    vals.iter().copied().zip(targets.drain(..)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::{
        covertype_like, figure1, random_dataset, CovertypeConfig, RandomDatasetConfig,
    };
    use ppdt_data::ClassString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Test shorthand for the builder's `(key, dataset)` shape.
    fn enc(
        rng: &mut StdRng,
        d: &Dataset,
        config: &EncodeConfig,
    ) -> Result<(TransformKey, Dataset), PpdtError> {
        Encoder::new(*config).encode(rng, d).map(Encoded::into_parts)
    }

    fn all_strategies() -> Vec<BreakpointStrategy> {
        vec![
            BreakpointStrategy::None,
            BreakpointStrategy::ChooseBP { w: 3 },
            BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 1 },
        ]
    }

    #[test]
    fn encode_roundtrips_every_domain_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = figure1();
        for strat in all_strategies() {
            let config = EncodeConfig { strategy: strat, ..Default::default() };
            let (key, d2) = enc(&mut rng, &d, &config).unwrap();
            assert_eq!(d2.num_rows(), d.num_rows());
            for a in d.schema().attrs() {
                for &x in &d.active_domain(a) {
                    let y = key.encode_value(a, x).unwrap();
                    assert_eq!(key.decode_value(a, y).unwrap(), x, "{strat:?} attr {a} value {x}");
                }
            }
        }
    }

    #[test]
    fn class_strings_preserved_or_reversed() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg =
            RandomDatasetConfig { num_rows: 300, num_attrs: 3, num_classes: 3, value_range: 50 };
        for trial in 0..10 {
            let d = random_dataset(&mut rng, &cfg);
            let config = EncodeConfig::default();
            let (key, d2) = enc(&mut rng, &d, &config).unwrap();
            for a in d.schema().attrs() {
                // Tie-robust Lemma 1 check (histogram sequence).
                assert!(
                    crate::verify::class_strings_preserved(&d, &d2, a, key.transform(a).increasing),
                    "trial {trial} attr {a}"
                );
                // For globally monotone attributes the literal class
                // string is preserved too.
                if key.transform(a).increasing {
                    assert_eq!(
                        ClassString::of(&d, a),
                        ClassString::of(&d2, a),
                        "trial {trial} attr {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_value_is_changed() {
        // Paper, Section 1: "with the proposed transformations, every
        // data value is transformed" (contrast with perturbation).
        // Identity collisions are measure-zero; check none occur here.
        let mut rng = StdRng::seed_from_u64(3);
        let d = figure1();
        let (_, d2) = enc(&mut rng, &d, &EncodeConfig::default()).unwrap();
        for a in d.schema().attrs() {
            let changed = d.column(a).iter().zip(d2.column(a)).filter(|(x, y)| x != y).count();
            assert_eq!(changed, d.num_rows(), "attr {a}");
        }
    }

    #[test]
    fn transforms_validate_on_covertype_like_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = CovertypeConfig { num_rows: 8_000, ..Default::default() };
        let d = covertype_like(&mut rng, &cfg);
        let config = EncodeConfig::default();
        let (key, _) = enc(&mut rng, &d, &config).unwrap();
        for tr in &key.transforms {
            tr.validate().unwrap();
        }
    }

    #[test]
    fn key_serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = figure1();
        let (key, _) = enc(&mut rng, &d, &EncodeConfig::default()).unwrap();
        let s = serde_json::to_string(&key).unwrap();
        let key2: TransformKey = serde_json::from_str(&s).unwrap();
        assert_eq!(key, key2);
    }

    #[test]
    fn decode_tree_recovers_original_datavalue_policy() {
        use ppdt_tree::trees_equal;
        let mut rng = StdRng::seed_from_u64(6);
        let d = figure1();
        for strat in all_strategies() {
            let config = EncodeConfig { strategy: strat, ..Default::default() };
            let (key, d2) = enc(&mut rng, &d, &config).unwrap();
            let builder = TreeBuilder::default();
            let t = builder.fit(&d);
            let t2 = builder.fit(&d2);
            let s = key.decode_tree(&t2, ThresholdPolicy::DataValue, &d).unwrap();
            assert!(
                trees_equal(&s, &t),
                "{strat:?}\nmined:\n{}\ndecoded:\n{}\noriginal:\n{}",
                t2.render(None),
                s.render(None),
                t.render(None)
            );
        }
    }

    #[test]
    fn decode_tree_recovers_original_midpoint_policy() {
        use ppdt_tree::trees_equal;
        let mut rng = StdRng::seed_from_u64(7);
        let d = figure1();
        let params =
            TreeParams { threshold_policy: ThresholdPolicy::Midpoint, ..Default::default() };
        for strat in all_strategies() {
            let config = EncodeConfig { strategy: strat, ..Default::default() };
            let (key, d2) = enc(&mut rng, &d, &config).unwrap();
            let builder = TreeBuilder::new(params);
            let t = builder.fit(&d);
            let t2 = builder.fit(&d2);
            let s = key.decode_tree(&t2, ThresholdPolicy::Midpoint, &d).unwrap();
            assert!(
                trees_equal(&s, &t),
                "{strat:?}\ndecoded:\n{}\noriginal:\n{}",
                s.render(None),
                t.render(None)
            );
        }
    }

    #[test]
    fn decode_dataset_inverts_exactly() {
        let mut rng = StdRng::seed_from_u64(31);
        let d =
            covertype_like(&mut rng, &CovertypeConfig { num_rows: 2_000, ..Default::default() });
        let (key, d2) = enc(&mut rng, &d, &EncodeConfig::default()).unwrap();
        let back = key.decode_dataset(&d2).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn key_file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(32);
        let d = figure1();
        let (key, _) = enc(&mut rng, &d, &EncodeConfig::default()).unwrap();
        let path = std::env::temp_dir().join("ppdt_key_roundtrip.json");
        key.save_json(&path).unwrap();
        let loaded = TransformKey::load_json(&path).unwrap();
        assert_eq!(key, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_json_rejects_garbage_with_typed_errors() {
        let path = std::env::temp_dir().join("ppdt_key_garbage.json");
        std::fs::write(&path, "not a key").unwrap();
        assert!(matches!(TransformKey::load_json(&path), Err(PpdtError::KeyCorrupt { .. })));
        let _ = std::fs::remove_file(&path);
        // A missing file is an I/O error, not a corrupt key.
        let missing = std::env::temp_dir().join("ppdt_key_never_written.json");
        assert!(matches!(TransformKey::load_json(&missing), Err(PpdtError::Io { .. })));
    }

    #[test]
    fn try_encode_rejects_unseen_values() {
        let mut rng = StdRng::seed_from_u64(33);
        let d = figure1();
        let config = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 2, min_piece_len: 1 },
            ..Default::default()
        };
        let (key, _) = enc(&mut rng, &d, &config).unwrap();
        let tr = key.transform(AttrId(0));
        // All domain values encode; a value far outside does not.
        for &x in &tr.orig_domain {
            assert_eq!(tr.try_encode(x), Some(tr.encode(x).unwrap()));
        }
        assert_eq!(tr.try_encode(1e9), None);
    }

    #[test]
    fn composed_family_roundtrips_exactly_after_snapping() {
        // The raw analytic inverse of a composed function can be
        // ill-conditioned, but snapping to the active domain restores
        // exactness as long as the error is below half a domain gap.
        use ppdt_data::gen::{random_dataset, RandomDatasetConfig};
        let mut rng = StdRng::seed_from_u64(35);
        let cfg =
            RandomDatasetConfig { num_rows: 200, num_attrs: 2, num_classes: 2, value_range: 50 };
        for _ in 0..5 {
            let d = random_dataset(&mut rng, &cfg);
            let config = EncodeConfig { family: FnFamily::Composed, ..Default::default() };
            let (key, _) = enc(&mut rng, &d, &config).unwrap();
            for a in d.schema().attrs() {
                for &x in &d.active_domain(a) {
                    let y = key.encode_value(a, x).unwrap();
                    assert_eq!(key.decode_value(a, y).unwrap(), x, "attr {a} value {x}");
                }
            }
        }
    }

    #[test]
    fn iid_layout_ablation_still_correct() {
        // The i.i.d. layout is weaker for privacy but must preserve
        // the guarantee just the same.
        use ppdt_tree::trees_equal;
        let mut rng = StdRng::seed_from_u64(34);
        let d = figure1();
        let config = EncodeConfig { layout: LayoutKind::IidProportional, ..Default::default() };
        let (key, d2) = enc(&mut rng, &d, &config).unwrap();
        let builder = TreeBuilder::default();
        let s = key.decode_tree(&builder.fit(&d2), ThresholdPolicy::DataValue, &d).unwrap();
        assert!(trees_equal(&s, &builder.fit(&d)));
    }

    #[test]
    fn empty_dataset_rejected_with_typed_error() {
        let d = ppdt_data::Dataset::from_columns(
            ppdt_data::Schema::generated(1, 2),
            vec![vec![]],
            vec![],
        );
        let mut rng = StdRng::seed_from_u64(8);
        let err = enc(&mut rng, &d, &EncodeConfig::default()).unwrap_err();
        assert!(matches!(err, PpdtError::EmptyInput { .. }), "{err:?}");
    }

    #[test]
    fn invalid_config_rejected_with_typed_error() {
        let d = figure1();
        let mut rng = StdRng::seed_from_u64(8);
        let bad = EncodeConfig { gap_fraction: 0.0, ..Default::default() };
        let err = enc(&mut rng, &d, &bad).unwrap_err();
        assert!(matches!(err, PpdtError::InvalidConfig { .. }), "{err:?}");
        assert_eq!(err.category().exit_code(), 2);
        let zero_attempts = RetryPolicy::failing(0);
        let err = Encoder::new(EncodeConfig::default())
            .retry(zero_attempts)
            .encode(&mut rng, &d)
            .unwrap_err();
        assert!(matches!(err, PpdtError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn forced_anti_monotone_reverses_all() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = figure1();
        let config = EncodeConfig { anti_monotone_prob: 1.0, ..Default::default() };
        let (key, d2) = enc(&mut rng, &d, &config).unwrap();
        for a in d.schema().attrs() {
            assert!(!key.transform(a).increasing);
            assert_eq!(ClassString::of(&d, a).reversed(), ClassString::of(&d2, a), "attr {a}");
        }
    }

    #[test]
    fn decode_tree_rejects_tampered_trees() {
        use ppdt_tree::Node;
        let mut rng = StdRng::seed_from_u64(40);
        let d = figure1();
        let (key, d2) = enc(&mut rng, &d, &EncodeConfig::default()).unwrap();
        let mined = TreeBuilder::default().fit(&d2);

        // Unknown attribute id.
        let mut bad = mined.clone();
        if let Node::Split { attr, .. } = &mut bad.root {
            *attr = AttrId(99);
        }
        let err = key.decode_tree(&bad, ThresholdPolicy::DataValue, &d).unwrap_err();
        assert!(matches!(err, PpdtError::TreeIncompatible { .. }), "{err:?}");
        assert_eq!(err.category().exit_code(), 5);

        // Non-finite threshold.
        let mut bad = mined.clone();
        if let Node::Split { threshold, .. } = &mut bad.root {
            *threshold = f64::NAN;
        }
        let err = key.decode_tree(&bad, ThresholdPolicy::DataValue, &d).unwrap_err();
        assert!(matches!(err, PpdtError::TreeIncompatible { .. }), "{err:?}");

        // Threshold below every transformed value: empty `≤` side.
        let mut bad = mined.clone();
        if let Node::Split { threshold, .. } = &mut bad.root {
            *threshold = -1e18;
        }
        let err = key.decode_tree(&bad, ThresholdPolicy::DataValue, &d).unwrap_err();
        assert!(matches!(err, PpdtError::TreeIncompatible { .. }), "{err:?}");
        // The blind decoder accepts it (no replay), so only the
        // replayed decode catches this class of tampering.
        let _ = key.decode_tree_blind(&bad, ThresholdPolicy::DataValue).unwrap();
    }

    #[test]
    fn draw_exhaustion_reports_reasons_and_fallback_recovers() {
        // Policy plumbing through the single-attribute front door:
        // max_attempts=1 still succeeds on benign data, and the
        // fallback path yields a single-piece monotone transform.
        let d = figure1();
        let mut rng = StdRng::seed_from_u64(11);
        let tr = Encoder::new(EncodeConfig::default())
            .retry(RetryPolicy::failing(1))
            .encode_attribute(&mut rng, &d, AttrId(0))
            .unwrap();
        tr.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let tr = Encoder::new(EncodeConfig::default())
            .retry(RetryPolicy::with_fallback(1))
            .encode_attribute(&mut rng, &d, AttrId(0))
            .unwrap();
        tr.validate().unwrap();
    }

    #[test]
    fn builder_thread_counts_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(50);
        let cfg =
            RandomDatasetConfig { num_rows: 150, num_attrs: 5, num_classes: 3, value_range: 30 };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig::default();
        let base = Encoder::new(config).encode(&mut StdRng::seed_from_u64(7), &d).unwrap();
        for threads in [0, 2, 3, 8] {
            let got = Encoder::new(config)
                .threads(threads)
                .encode(&mut StdRng::seed_from_u64(7), &d)
                .unwrap();
            assert_eq!(base, got, "threads={threads}");
        }
    }

    #[test]
    fn builder_metrics_off_skips_rows_encoded() {
        // `metrics(false)` must not touch the rows_encoded counter
        // (other tests mutate global counters too, so measure a delta
        // of zero can race; instead just exercise the path).
        let d = figure1();
        let mut rng = StdRng::seed_from_u64(51);
        let got = Encoder::new(EncodeConfig::default()).metrics(false).encode(&mut rng, &d);
        assert!(got.is_ok());
    }

    #[test]
    fn builder_verified_encode_attempts_reported() {
        let mut rng = StdRng::seed_from_u64(52);
        let d = figure1();
        let e = Encoder::new(EncodeConfig { anti_monotone_prob: 1.0, ..Default::default() })
            .retry(RetryPolicy::with_fallback(8))
            .verify(true)
            .encode(&mut rng, &d)
            .unwrap();
        assert!((1..=9).contains(&e.attempts));
        let builder = TreeBuilder::default();
        let s =
            e.key.decode_tree(&builder.fit(&e.dataset), ThresholdPolicy::DataValue, &d).unwrap();
        assert!(ppdt_tree::trees_equal(&s, &builder.fit(&d)));
    }
}
