//! The per-attribute piecewise transform.
//!
//! An attribute's active domain is cut into pieces; each piece carries
//! its own transformation (a strictly monotone function for
//! non-monochromatic pieces, an arbitrary bijection — here a random
//! permutation — for monochromatic pieces) and its own *output
//! interval*. Output intervals are pairwise disjoint and ordered
//! consistently with the input order — ascending for a globally
//! monotone attribute, descending for a globally anti-monotone one —
//! which is exactly the **global-(anti-)monotone invariant** of
//! Definition 8. Together with direction-consistent per-piece
//! functions this preserves the class string (globally monotone) or
//! reverses it (globally anti-monotone), so by Lemma 1 / Theorem 1 the
//! decision tree's outcome is unchanged.
//!
//! ## Hostile inputs
//!
//! Keys cross the paper's untrusted custodian/miner boundary, so every
//! transform operation here is **fallible**: an out-of-domain value, a
//! truncated permutation table, or an empty piece list yields a typed
//! [`PpdtError`] (never a panic). Structural invariants are checked
//! wholesale by [`PiecewiseTransform::validate`] / the
//! [`crate::audit`] subsystem before a loaded key is trusted.

use ppdt_error::PpdtError;
use serde::{Deserialize, Serialize};

use crate::func::MonoFunc;

/// The transformation applied inside one piece.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PieceKind {
    /// A strictly monotone function followed by an affine
    /// renormalization `y = s·f(x) + t` (with `s > 0`) into the
    /// piece's output interval. Used for non-monochromatic pieces;
    /// direction must match the attribute's global direction.
    Monotone {
        /// The sampled shape function.
        f: MonoFunc,
        /// Positive renormalization scale.
        s: f64,
        /// Renormalization offset.
        t: f64,
    },
    /// An explicit bijection on the piece's distinct values — a random
    /// permutation onto jittered grid positions in the output interval.
    /// Only sound for monochromatic pieces, where any bijection
    /// preserves the (constant) class substring; this is what defeats
    /// sorting attacks (Section 5.4).
    Permutation {
        /// `(original value, transformed value)` pairs, sorted by
        /// original value.
        map: Vec<(f64, f64)>,
    },
}

/// One piece of a [`PiecewiseTransform`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Piece {
    /// Smallest original value belonging to the piece (inclusive).
    pub input_lo: f64,
    /// Largest original value belonging to the piece (inclusive).
    pub input_hi: f64,
    /// Lower end of the piece's output interval.
    pub output_lo: f64,
    /// Upper end of the piece's output interval.
    pub output_hi: f64,
    /// The piece's transformation.
    pub kind: PieceKind,
}

impl Piece {
    /// Transforms an original value belonging to this piece.
    ///
    /// For permutation pieces, returns
    /// [`PpdtError::DomainViolation`] when `x` is not one of the
    /// piece's recorded distinct values (encode is only defined on the
    /// active domain).
    pub fn encode(&self, x: f64) -> Result<f64, PpdtError> {
        match &self.kind {
            PieceKind::Monotone { f, s, t } => Ok(s * f.eval(x) + t),
            PieceKind::Permutation { map } => map
                .binary_search_by(|&(v, _)| v.total_cmp(&x))
                .map(|i| map[i].1)
                .map_err(|_| PpdtError::DomainViolation { attr: None, piece: None, value: x }),
        }
    }

    /// Inverts a transformed value belonging to this piece's output
    /// interval. Exact for permutation pieces; analytic (subject to
    /// floating-point rounding) for monotone pieces. An empty
    /// permutation table yields [`PpdtError::KeyCorrupt`].
    pub fn decode(&self, y: f64) -> Result<f64, PpdtError> {
        match &self.kind {
            PieceKind::Monotone { f, s, t } => Ok(f.inverse((y - t) / s)),
            PieceKind::Permutation { map } => {
                // Exact match first; otherwise the nearest recorded
                // output (thresholds decoded through a permutation
                // piece are always exact data values).
                let mut best: Option<(usize, f64)> = None;
                for (i, &(_, out)) in map.iter().enumerate() {
                    let d = (out - y).abs();
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                match best {
                    Some((i, _)) => Ok(map[i].0),
                    None => Err(PpdtError::key_corrupt("empty permutation table")),
                }
            }
        }
    }
}

/// Where a transformed value lands among a transform's output
/// intervals (see [`PiecewiseTransform::locate_output`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputLocation {
    /// Inside the output interval of the piece at this index.
    Inside(usize),
    /// In an inter-piece gap; the index names the nearest piece by
    /// output distance.
    Gap(usize),
}

impl OutputLocation {
    /// The piece index, regardless of inside/gap.
    pub fn piece(self) -> usize {
        match self {
            OutputLocation::Inside(i) | OutputLocation::Gap(i) => i,
        }
    }
}

/// The complete piecewise transformation `f_A` of one attribute,
/// together with everything the custodian needs to decode: this is the
/// per-attribute portion of the custodian's key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseTransform {
    /// Pieces in ascending input order. Output intervals are strictly
    /// ascending when `increasing`, strictly descending otherwise.
    pub pieces: Vec<Piece>,
    /// Global direction: `true` = globally monotone, `false` =
    /// globally anti-monotone.
    pub increasing: bool,
    /// The attribute's original active domain (sorted distinct
    /// values), used for exact threshold snapping during decode. The
    /// custodian derives this from `D`, which it owns.
    pub orig_domain: Vec<f64>,
}

impl PiecewiseTransform {
    /// Index of the piece whose input range contains `x`, or
    /// [`PpdtError::DomainViolation`] when `x` is outside every piece.
    pub fn piece_for_input(&self, x: f64) -> Result<usize, PpdtError> {
        let i = self.pieces.partition_point(|p| p.input_hi < x);
        if i < self.pieces.len() && self.pieces[i].input_lo <= x {
            Ok(i)
        } else {
            Err(PpdtError::DomainViolation { attr: None, piece: None, value: x })
        }
    }

    /// Locates `y` among the output intervals: inside a piece's
    /// interval, or in an inter-piece gap (nearest piece reported).
    /// A transform with no pieces yields [`PpdtError::KeyCorrupt`].
    pub fn locate_output(&self, y: f64) -> Result<OutputLocation, PpdtError> {
        // Pieces are ordered by output ascending or descending
        // depending on the global direction; normalize the search.
        let n = self.pieces.len();
        if n == 0 {
            return Err(PpdtError::key_corrupt("transform has no pieces"));
        }
        let idx_at = |rank: usize| if self.increasing { rank } else { n - 1 - rank };
        // Binary search over output-ascending ranks.
        let mut lo = 0usize;
        let mut hi = n; // exclusive
        while lo < hi {
            let mid = (lo + hi) / 2;
            let p = &self.pieces[idx_at(mid)];
            if y < p.output_lo {
                hi = mid;
            } else if y > p.output_hi {
                lo = mid + 1;
            } else {
                return Ok(OutputLocation::Inside(idx_at(mid)));
            }
        }
        // In a gap: pick the nearer neighbour by output distance.
        let below = lo.checked_sub(1).map(idx_at);
        let above = (lo < n).then(|| idx_at(lo));
        match (below, above) {
            (Some(b), Some(a)) => {
                let db =
                    (y - self.pieces[b].output_hi).abs().min((y - self.pieces[b].output_lo).abs());
                let da =
                    (y - self.pieces[a].output_lo).abs().min((y - self.pieces[a].output_hi).abs());
                Ok(OutputLocation::Gap(if db <= da { b } else { a }))
            }
            (Some(i), None) | (None, Some(i)) => Ok(OutputLocation::Gap(i)),
            (None, None) => Err(PpdtError::key_corrupt("transform has no pieces")),
        }
    }

    /// Transforms an original value (must lie in the active domain for
    /// permutation pieces). Out-of-domain values yield
    /// [`PpdtError::DomainViolation`] with the piece context; a
    /// corrupt piece that produces a non-finite output yields
    /// [`PpdtError::KeyCorrupt`].
    pub fn encode(&self, x: f64) -> Result<f64, PpdtError> {
        let i = self.piece_for_input(x)?;
        let y = self.pieces[i].encode(x).map_err(|e| e.with_piece(i))?;
        if y.is_finite() {
            Ok(y)
        } else {
            Err(PpdtError::KeyCorrupt {
                attr: None,
                piece: Some(i),
                detail: format!("value {x} encodes to non-finite {y}"),
            })
        }
    }

    /// Checked variant of [`Self::encode`] returning `None` on any
    /// failure: use this when encoding data that may contain values
    /// unseen at key-creation time (new tuples cannot, in general, be
    /// encoded consistently — a fresh value inside a monochromatic
    /// piece has no defined image under the recorded bijection).
    pub fn try_encode(&self, x: f64) -> Option<f64> {
        self.encode(x).ok()
    }

    /// Inverts a transformed value. Exact for values produced by
    /// [`Self::encode`] on permutation pieces; analytic for monotone
    /// pieces. Values in inter-piece output gaps are inverted through
    /// the nearest piece. The result is clamped to the decoding
    /// piece's input range (the analytic inverse can shoot far outside
    /// it for gap values under strongly nonlinear functions).
    pub fn decode(&self, y: f64) -> Result<f64, PpdtError> {
        let i = self.locate_output(y)?.piece();
        let p = &self.pieces[i];
        let x = p.decode(y).map_err(|e| e.with_piece(i))?;
        Ok(x.clamp(p.input_lo, p.input_hi))
    }

    /// Inverts a transformed value and snaps the result to the nearest
    /// value of the original active domain. For thresholds produced
    /// under `ThresholdPolicy::DataValue` this recovers the original
    /// data value **bit-exactly** (the analytic inverse lands within
    /// half a domain gap of it). An empty recorded domain yields
    /// [`PpdtError::KeyCorrupt`].
    pub fn decode_snapped(&self, y: f64) -> Result<f64, PpdtError> {
        let raw = self.decode(y)?;
        nearest(&self.orig_domain, raw)
            .ok_or_else(|| PpdtError::key_corrupt("empty recorded original domain"))
    }

    /// The `(transformed, original)` pairs of the active domain,
    /// sorted by transformed value. Precompute once per attribute when
    /// decoding many thresholds. Fails when a recorded domain value is
    /// not encodable under the (corrupt) transform.
    pub fn transformed_domain_map(&self) -> Result<Vec<(f64, f64)>, PpdtError> {
        let mut ty = Vec::with_capacity(self.orig_domain.len());
        for &x in &self.orig_domain {
            ty.push((self.encode(x)?, x));
        }
        ty.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(ty)
    }

    /// Data-aware decode of a split threshold (Theorem 2's workhorse):
    /// the mined node `A' ≤ y` partitions the active domain into
    /// `S = {v : f(v) ≤ y}` and its complement. For any threshold a
    /// tree builder can produce, `S` and its complement are separated
    /// intervals in *original* space (one entirely below the other;
    /// under a globally anti-monotone transform `S` is the upper one,
    /// and the caller swaps the node's children). The decoded
    /// `≤`-threshold is the largest value of the lower interval
    /// (`midpoint = false`, matching `ThresholdPolicy::DataValue`) or
    /// the midpoint across the separation (`midpoint = true`, matching
    /// `ThresholdPolicy::Midpoint`).
    pub fn decode_split(&self, y: f64, midpoint: bool) -> Result<f64, PpdtError> {
        decode_le_split(&self.transformed_domain_map()?, y, midpoint)
    }

    /// Backwards-compatible alias: midpoint split decode.
    pub fn decode_midpoint(&self, y: f64) -> Result<f64, PpdtError> {
        self.decode_split(y, true)
    }

    /// The largest original-domain value strictly below `x`, if any.
    pub fn domain_predecessor(&self, x: f64) -> Option<f64> {
        let i = self.orig_domain.partition_point(|&v| v < x);
        i.checked_sub(1).map(|j| self.orig_domain[j])
    }

    /// Validates the invariants: pieces cover ascending input ranges;
    /// output intervals are disjoint and ordered by the global
    /// direction; non-monochromatic (monotone) pieces move in the
    /// global direction; permutation tables are bijections within
    /// their interval; every original domain value encodes into its
    /// piece's output interval, and the full map over the active
    /// domain is injective.
    ///
    /// This is the boundary check: validate once when a key is drawn
    /// or loaded, then trust the transform on the hot paths. The
    /// [`crate::audit`] subsystem runs the same checks but reports
    /// *all* violations as a structured [`crate::audit::AuditReport`]
    /// instead of the first one.
    pub fn validate(&self) -> Result<(), PpdtError> {
        crate::audit::transform_first_error(self)
    }
}

/// Decodes a `≤ y` split against a precomputed
/// [`PiecewiseTransform::transformed_domain_map`]. See
/// [`PiecewiseTransform::decode_split`] for the semantics. An empty
/// map yields [`PpdtError::EmptyInput`].
pub fn decode_le_split(map: &[(f64, f64)], y: f64, midpoint: bool) -> Result<f64, PpdtError> {
    if map.is_empty() {
        return Err(PpdtError::EmptyInput { what: "transformed domain map".into() });
    }
    let i = map.partition_point(|&(t, _)| t <= y);
    if i == 0 {
        // Degenerate: nothing on the transformed-low side. No real
        // split produces this; answer "below everything".
        return Ok(map.iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min) - 1.0);
    }
    if i == map.len() {
        return Ok(map.iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max));
    }
    let a_max = map[..i].iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
    let a_min = map[..i].iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
    let b_max = map[i..].iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
    let b_min = map[i..].iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
    Ok(if a_max < b_min {
        // S is the lower interval (globally monotone transform).
        if midpoint {
            0.5 * (a_max + b_min)
        } else {
            a_max
        }
    } else {
        // S is the upper interval (globally anti-monotone transform);
        // the caller swaps children, so the `≤` side is the complement.
        if midpoint {
            0.5 * (b_max + a_min)
        } else {
            b_max
        }
    })
}

/// Nearest element of a sorted slice; `None` when empty. Shared with
/// the compiled path (`crate::compiled`) so snapping stays
/// bit-identical between the two.
pub(crate) fn nearest(sorted: &[f64], x: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let i = sorted.partition_point(|&v| v < x);
    Some(if i == 0 {
        sorted[0]
    } else if i == sorted.len() {
        sorted[sorted.len() - 1]
    } else {
        let (a, b) = (sorted[i - 1], sorted[i]);
        if (x - a).abs() <= (b - x).abs() {
            a
        } else {
            b
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-piece transform: monotone log piece on [1, 15],
    /// permutation piece on {27, 28} (monochromatic in the paper's
    /// running example).
    fn sample_transform() -> PiecewiseTransform {
        let f = MonoFunc::Log { a: 1.0, c: 0.0, b: 0.0 };
        // Raw range on [1, 15]: [0, ln 15]; normalize into [10, 20].
        let s = 10.0 / 15f64.ln();
        let t = 10.0;
        PiecewiseTransform {
            pieces: vec![
                Piece {
                    input_lo: 1.0,
                    input_hi: 15.0,
                    output_lo: 10.0,
                    output_hi: 20.0,
                    kind: PieceKind::Monotone { f, s, t },
                },
                Piece {
                    input_lo: 27.0,
                    input_hi: 28.0,
                    output_lo: 30.0,
                    output_hi: 40.0,
                    kind: PieceKind::Permutation { map: vec![(27.0, 38.0), (28.0, 31.0)] },
                },
            ],
            increasing: true,
            orig_domain: vec![1.0, 2.0, 15.0, 27.0, 28.0],
        }
    }

    fn enc(tr: &PiecewiseTransform, x: f64) -> f64 {
        tr.encode(x).unwrap()
    }

    #[test]
    fn validate_accepts_sample() {
        sample_transform().validate().unwrap();
    }

    #[test]
    fn encode_decode_roundtrip_on_domain() {
        let tr = sample_transform();
        for &x in &tr.orig_domain {
            let y = enc(&tr, x);
            assert_eq!(tr.decode_snapped(y).unwrap(), x, "roundtrip of {x}");
        }
    }

    #[test]
    fn permutation_blocks_order_but_stays_in_interval() {
        let tr = sample_transform();
        let y27 = enc(&tr, 27.0);
        let y28 = enc(&tr, 28.0);
        assert!(y27 > y28, "within-piece order scrambled");
        assert!((30.0..=40.0).contains(&y27));
        assert!((30.0..=40.0).contains(&y28));
        // But the global invariant holds: everything in piece 2 is
        // above everything in piece 1.
        assert!(y28 > enc(&tr, 15.0));
    }

    #[test]
    fn gap_outputs_decode_via_nearest_piece() {
        let tr = sample_transform();
        // 25.0 sits in the output gap (20, 30).
        let x = tr.decode_snapped(25.0).unwrap();
        assert!(x == 15.0 || x == 27.0);
    }

    #[test]
    fn decode_midpoint_brackets_correctly() {
        let tr = sample_transform();
        // Midpoint of the transformed values of 15 (=20.0) and the
        // smallest transformed value in piece 2 (28 -> 31.0): y=25.5
        // must decode to the original midpoint (15+27)/2 = 21.
        let y = 0.5 * (enc(&tr, 15.0) + enc(&tr, 28.0));
        assert_eq!(tr.decode_midpoint(y).unwrap(), 21.0);
    }

    #[test]
    fn validate_rejects_overlapping_outputs() {
        let mut tr = sample_transform();
        tr.pieces[1].output_lo = 15.0; // overlaps piece 1's [10, 20]
        assert!(tr.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_direction() {
        let mut tr = sample_transform();
        tr.increasing = false; // outputs ascend, so this must fail
        assert!(tr.validate().is_err());
    }

    #[test]
    fn validate_rejects_direction_inconsistent_piece() {
        let mut tr = sample_transform();
        if let PieceKind::Monotone { f, .. } = &mut tr.pieces[0].kind {
            *f = MonoFunc::Log { a: -1.0, c: 0.0, b: 0.0 };
        }
        assert!(tr.validate().is_err());
    }

    #[test]
    fn anti_monotone_transform_validates() {
        // Mirror of the sample: descending outputs, decreasing piece fn.
        let f = MonoFunc::Linear { a: -1.0, b: 0.0 };
        // raw on [1,15]: [-15,-1]; map into [30,40]: s=10/14, t=40+15*s.
        let s = 10.0 / 14.0;
        let t = 30.0 + 15.0 * s;
        let tr = PiecewiseTransform {
            pieces: vec![
                Piece {
                    input_lo: 1.0,
                    input_hi: 15.0,
                    output_lo: 30.0,
                    output_hi: 40.0,
                    kind: PieceKind::Monotone { f, s, t },
                },
                Piece {
                    input_lo: 27.0,
                    input_hi: 28.0,
                    output_lo: 10.0,
                    output_hi: 20.0,
                    kind: PieceKind::Permutation { map: vec![(27.0, 12.0), (28.0, 17.0)] },
                },
            ],
            increasing: false,
            orig_domain: vec![1.0, 2.0, 15.0, 27.0, 28.0],
        };
        tr.validate().unwrap();
        // Global anti-monotone: later inputs map strictly below.
        assert!(enc(&tr, 27.0) < enc(&tr, 15.0));
        assert!(enc(&tr, 1.0) > enc(&tr, 15.0));
        for &x in &tr.orig_domain {
            assert_eq!(tr.decode_snapped(enc(&tr, x)).unwrap(), x);
        }
    }

    #[test]
    fn nearest_picks_closest() {
        let dom = [1.0, 5.0, 9.0];
        assert_eq!(nearest(&dom, -3.0), Some(1.0));
        assert_eq!(nearest(&dom, 2.9), Some(1.0));
        assert_eq!(nearest(&dom, 3.1), Some(5.0));
        assert_eq!(nearest(&dom, 42.0), Some(9.0));
        assert_eq!(nearest(&dom, 5.0), Some(5.0));
        assert_eq!(nearest(&[], 5.0), None);
    }

    #[test]
    fn encode_outside_domain_is_typed_error() {
        let tr = sample_transform();
        match tr.encode(100.0) {
            Err(PpdtError::DomainViolation { value, .. }) => assert_eq!(value, 100.0),
            other => panic!("expected DomainViolation, got {other:?}"),
        }
        // Inside a permutation piece's range but not a recorded value.
        match tr.encode(27.5) {
            Err(PpdtError::DomainViolation { value, piece, .. }) => {
                assert_eq!(value, 27.5);
                assert_eq!(piece, Some(1));
            }
            other => panic!("expected DomainViolation, got {other:?}"),
        }
    }

    #[test]
    fn empty_transform_is_typed_error_everywhere() {
        let tr = PiecewiseTransform { pieces: vec![], increasing: true, orig_domain: vec![] };
        assert!(matches!(tr.encode(1.0), Err(PpdtError::DomainViolation { .. })));
        assert!(matches!(tr.decode(1.0), Err(PpdtError::KeyCorrupt { .. })));
        assert!(matches!(tr.decode_snapped(1.0), Err(PpdtError::KeyCorrupt { .. })));
        assert!(matches!(tr.validate(), Err(PpdtError::KeyCorrupt { .. })));
        assert!(matches!(decode_le_split(&[], 0.0, false), Err(PpdtError::EmptyInput { .. })));
    }

    #[test]
    fn serde_roundtrip() {
        let tr = sample_transform();
        let s = serde_json::to_string(&tr).unwrap();
        let tr2: PiecewiseTransform = serde_json::from_str(&s).unwrap();
        assert_eq!(tr, tr2);
    }
}
