//! # ppdt-transform
//!
//! The paper's primary contribution: **piecewise (anti-)monotone
//! transformations** that encode a training relation so that
//!
//! 1. the decision tree mined on the encoded data decodes *exactly* to
//!    the tree mined on the original data (the no-outcome-change
//!    guarantee, Section 4),
//! 2. the encoded values protect the inputs (domain / subspace
//!    association disclosure), and
//! 3. the mined tree's thresholds protect the outputs (pattern
//!    disclosure).
//!
//! Modules:
//!
//! * [`func`] — the invertible monotone function families `F_mono`
//!   (linear, power/polynomial, log, sqrt-log, exp; Section 5.3),
//! * [`family`] — random samplers over those families,
//! * [`breakpoints`] — `ChooseBP` (random breakpoints, Figure 5) and
//!   `ChooseMaxMP` (maximal monochromatic pieces, Figure 6),
//! * [`piecewise`] — the per-attribute piecewise transform: pieces,
//!   per-piece functions (any bijection on monochromatic pieces, a
//!   random permutation by default), disjoint output intervals
//!   enforcing the global-(anti-)monotone invariant (Definition 8),
//!   exact encode/decode,
//! * [`encoder`] — dataset-level encoding via the [`Encoder`] builder
//!   and the serializable custodian [`TransformKey`],
//! * [`compiled`] — [`CompiledKey`], an audited [`TransformKey`]
//!   lowered into flat cache-friendly arrays for allocation-free,
//!   dispatch-free per-value encode/decode (bit-identical to the
//!   interpreted path), and [`RekeyPlan`], the fused decode∘encode
//!   used for online key rotation,
//! * [`verify`] — class-string-preservation and no-outcome-change
//!   checkers (Lemma 1, Theorems 1–2),
//! * [`audit`] — structural audit of a loaded [`TransformKey`]
//!   (alone, or against a dataset), producing a machine-readable
//!   [`AuditReport`] for the untrusted custodian boundary,
//! * [`perturb`] — the random-perturbation baseline the paper contrasts
//!   against (Section 2).
//!
//! ## Correctness refinement
//!
//! Unlike a naive reading of Section 5.3, *non-monochromatic* pieces
//! are restricted to functions consistent with the attribute's global
//! direction: an anti-monotone function inside a globally monotone
//! attribute would reverse that chunk of the class string and could
//! change the mined tree. Monochromatic pieces may use any bijection.
//! See `DESIGN.md` §4 and `verify::tests` for the demonstration.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod breakpoints;
pub mod compiled;
pub mod encoder;
pub mod family;
pub mod func;
pub mod perturb;
pub mod piecewise;
pub mod verify;

pub use audit::{audit_key, audit_key_against, AuditFinding, AuditReport, Severity};
pub use breakpoints::{plan_pieces, BreakpointStrategy, PiecePlan};
pub use compiled::{CompiledKey, CompiledTransform, RekeyPlan};
pub use encoder::{
    EncodeConfig, Encoded, Encoder, LayoutKind, OnExhaust, RetryPolicy, TransformKey,
};
pub use family::FnFamily;
pub use func::MonoFunc;
pub use perturb::{perturb_dataset, PerturbKind, Perturbation};
pub use piecewise::{OutputLocation, Piece, PieceKind, PiecewiseTransform};
pub use ppdt_error::{ErrorCategory, PpdtError};
pub use verify::{class_strings_preserved, no_outcome_change, OutcomeReport};
