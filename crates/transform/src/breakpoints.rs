//! Breakpoint selection: `ChooseBP` (Figure 5) and `ChooseMaxMP`
//! (Figure 6).
//!
//! Both procedures decompose an attribute's active domain into pieces;
//! the output here is a [`PiecePlan`] — ranges over the distinct-value
//! groups of the sorted column, each flagged as monochromatic (eligible
//! for an arbitrary bijection) or not (restricted to a
//! direction-consistent monotone function).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use ppdt_data::{ClassId, MonoAnalysis, SortedColumn};

/// How an attribute's domain is decomposed into pieces.
///
/// # Example
/// ```
/// use ppdt_transform::{BreakpointStrategy, EncodeConfig, Encoder};
/// use rand::SeedableRng;
///
/// let d = ppdt_data::gen::figure1();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// // The paper's recommended strategy: maximal monochromatic pieces,
/// // topped up to at least `w` pieces with random breakpoints.
/// let config = EncodeConfig {
///     strategy: BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 2 },
///     ..Default::default()
/// };
/// let (key, _d_prime) = Encoder::new(config).encode(&mut rng, &d).unwrap().into_parts();
/// // ChooseBP instead draws `w` uniform breakpoints.
/// let config = EncodeConfig {
///     strategy: BreakpointStrategy::ChooseBP { w: 4 },
///     ..Default::default()
/// };
/// let (key_bp, _d_prime) = Encoder::new(config).encode(&mut rng, &d).unwrap().into_parts();
/// # let _ = (key, key_bp);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BreakpointStrategy {
    /// A single piece over the whole domain (the Figure 9 baseline:
    /// one plain (anti-)monotone function).
    None,
    /// `ChooseBP`: `w` breakpoints drawn uniformly from the distinct
    /// values (Figure 5). All resulting pieces are treated as
    /// non-monochromatic. Its privacy power is that neither `w` nor
    /// the locations are known to the hacker — `O(2^N)` combinations.
    ChooseBP {
        /// Number of random breakpoints.
        w: usize,
    },
    /// `ChooseMaxMP`: grow every monochromatic value into a maximal
    /// monochromatic piece (Figure 6); non-monochromatic gaps become
    /// monotone pieces, further cut with random breakpoints if fewer
    /// than `w` pieces resulted. Monochromatic pieces take arbitrary
    /// bijections — `O(N!)` combinations for the hacker.
    ChooseMaxMP {
        /// Desired minimum number of breakpoints.
        w: usize,
        /// Minimum monochromatic piece width (the paper suggests 5).
        min_piece_len: usize,
    },
}

/// One planned piece: a range of distinct-value groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PiecePlan {
    /// First distinct-value group (inclusive).
    pub first_group: usize,
    /// Last distinct-value group (exclusive).
    pub end_group: usize,
    /// `Some(label)` iff the piece is monochromatic.
    pub mono_label: Option<ClassId>,
}

impl PiecePlan {
    /// Number of distinct values in the piece.
    pub fn len(&self) -> usize {
        self.end_group - self.first_group
    }

    /// Pieces are never planned empty; mirrors the std convention.
    pub fn is_empty(&self) -> bool {
        self.first_group == self.end_group
    }
}

/// Plans the pieces of one attribute under `strategy`.
///
/// Returns pieces in ascending group order, covering every distinct
/// value exactly once. Returns an empty plan for an empty column.
pub fn plan_pieces<R: Rng + ?Sized>(
    rng: &mut R,
    sc: &SortedColumn,
    strategy: BreakpointStrategy,
) -> Vec<PiecePlan> {
    let n = sc.num_distinct();
    if n == 0 {
        return Vec::new();
    }
    match strategy {
        BreakpointStrategy::None => {
            vec![PiecePlan { first_group: 0, end_group: n, mono_label: None }]
        }
        BreakpointStrategy::ChooseBP { w } => {
            let cuts = random_cuts(rng, 1..n, w);
            pieces_from_cuts(n, &cuts)
        }
        BreakpointStrategy::ChooseMaxMP { w, min_piece_len } => {
            let ma = MonoAnalysis::analyze(sc, min_piece_len.max(1));
            let mut pieces: Vec<PiecePlan> = Vec::new();
            let mut next = 0usize;
            for mp in &ma.pieces {
                if mp.first_group > next {
                    pieces.push(PiecePlan {
                        first_group: next,
                        end_group: mp.first_group,
                        mono_label: None,
                    });
                }
                pieces.push(PiecePlan {
                    first_group: mp.first_group,
                    end_group: mp.end_group,
                    mono_label: Some(mp.label),
                });
                next = mp.end_group;
            }
            if next < n {
                pieces.push(PiecePlan { first_group: next, end_group: n, mono_label: None });
            }

            // Fewer pieces than requested: cut the non-monochromatic
            // pieces further at random positions (lines 18-20 of
            // Figure 6).
            let deficit = w.saturating_sub(pieces.len());
            if deficit > 0 {
                let mut candidates: Vec<usize> = Vec::new();
                for p in &pieces {
                    if p.mono_label.is_none() {
                        candidates.extend(p.first_group + 1..p.end_group);
                    }
                }
                ppdt_obs::add(ppdt_obs::Counter::BoundariesScanned, candidates.len() as u64);
                candidates.shuffle(rng);
                candidates.truncate(deficit);
                candidates.sort_unstable();
                if !candidates.is_empty() {
                    pieces = cut_plan(&pieces, &candidates);
                }
            }
            pieces
        }
    }
}

/// Draws up to `w` distinct cut positions from `range`.
fn random_cuts<R: Rng + ?Sized>(
    rng: &mut R,
    range: std::ops::Range<usize>,
    w: usize,
) -> Vec<usize> {
    let mut all: Vec<usize> = range.collect();
    ppdt_obs::add(ppdt_obs::Counter::BoundariesScanned, all.len() as u64);
    all.shuffle(rng);
    all.truncate(w);
    all.sort_unstable();
    all
}

/// Builds non-monochromatic pieces from sorted cut positions.
fn pieces_from_cuts(n: usize, cuts: &[usize]) -> Vec<PiecePlan> {
    let mut pieces = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0usize;
    for &c in cuts {
        debug_assert!(c > start && c < n);
        pieces.push(PiecePlan { first_group: start, end_group: c, mono_label: None });
        start = c;
    }
    pieces.push(PiecePlan { first_group: start, end_group: n, mono_label: None });
    pieces
}

/// Splits the non-monochromatic pieces of `plan` at the given (sorted,
/// globally indexed) cut positions.
fn cut_plan(plan: &[PiecePlan], cuts: &[usize]) -> Vec<PiecePlan> {
    let mut out = Vec::with_capacity(plan.len() + cuts.len());
    let mut ci = 0usize;
    for p in plan {
        if p.mono_label.is_some() {
            // Skip cuts that would fall inside a monochromatic piece
            // (the candidate list never contains them, but stay safe).
            while ci < cuts.len() && cuts[ci] < p.end_group {
                ci += 1;
            }
            out.push(*p);
            continue;
        }
        let mut start = p.first_group;
        while ci < cuts.len() && cuts[ci] > start && cuts[ci] < p.end_group {
            out.push(PiecePlan { first_group: start, end_group: cuts[ci], mono_label: None });
            start = cuts[ci];
            ci += 1;
        }
        out.push(PiecePlan { first_group: start, end_group: p.end_group, mono_label: None });
    }
    out
}

/// Checks a plan is a partition of `0..n` into nonempty pieces.
pub fn plan_is_partition(plan: &[PiecePlan], n: usize) -> bool {
    if n == 0 {
        return plan.is_empty();
    }
    if plan.is_empty() || plan[0].first_group != 0 || plan[plan.len() - 1].end_group != n {
        return false;
    }
    plan.iter().all(|p| p.first_group < p.end_group)
        && plan.windows(2).all(|w| w[0].end_group == w[1].first_group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::{AttrId, ClassId, DatasetBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's running example (Figures 3/4/7).
    fn paper_column() -> SortedColumn {
        let schema = Schema::new(["a"], ["H", "L"]);
        let mut b = DatasetBuilder::new(schema);
        let rows = [
            (1.0, 0u16),
            (2.0, 0),
            (15.0, 0),
            (15.0, 0),
            (27.0, 1),
            (28.0, 1),
            (29.0, 1),
            (29.0, 1),
            (29.0, 0),
            (29.0, 0),
            (42.0, 0),
            (43.0, 0),
            (44.0, 0),
        ];
        for (v, c) in rows {
            b.push_row(&[v], ClassId(c));
        }
        b.build().sorted_column(AttrId(0))
    }

    #[test]
    fn none_gives_single_piece() {
        let sc = paper_column();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = plan_pieces(&mut rng, &sc, BreakpointStrategy::None);
        assert_eq!(plan.len(), 1);
        assert!(plan_is_partition(&plan, sc.num_distinct()));
        assert_eq!(plan[0].mono_label, None);
    }

    #[test]
    fn choosebp_produces_w_plus_one_pieces() {
        let sc = paper_column();
        let mut rng = StdRng::seed_from_u64(2);
        let plan = plan_pieces(&mut rng, &sc, BreakpointStrategy::ChooseBP { w: 3 });
        assert_eq!(plan.len(), 4);
        assert!(plan_is_partition(&plan, sc.num_distinct()));
        assert!(plan.iter().all(|p| p.mono_label.is_none()));
    }

    #[test]
    fn choosebp_caps_at_available_cuts() {
        let sc = paper_column();
        let mut rng = StdRng::seed_from_u64(3);
        // Only 8 interior cut positions exist (9 distinct values).
        let plan = plan_pieces(&mut rng, &sc, BreakpointStrategy::ChooseBP { w: 100 });
        assert_eq!(plan.len(), 9);
        assert!(plan_is_partition(&plan, sc.num_distinct()));
    }

    #[test]
    fn choosemaxmp_matches_paper_walkthrough() {
        // Section 5.2 walkthrough: pieces r1={1,2,15} (H), r2={27,28}
        // (L), r3={29} (non-mono), r4={42,43,44} (H).
        let sc = paper_column();
        let mut rng = StdRng::seed_from_u64(4);
        let plan =
            plan_pieces(&mut rng, &sc, BreakpointStrategy::ChooseMaxMP { w: 0, min_piece_len: 1 });
        assert!(plan_is_partition(&plan, sc.num_distinct()));
        let labels: Vec<Option<u16>> = plan.iter().map(|p| p.mono_label.map(|c| c.0)).collect();
        assert_eq!(labels, vec![Some(0), Some(1), None, Some(0)]);
        let lens: Vec<usize> = plan.iter().map(PiecePlan::len).collect();
        assert_eq!(lens, vec![3, 2, 1, 3]);
    }

    #[test]
    fn choosemaxmp_pads_with_random_cuts() {
        let sc = paper_column();
        let mut rng = StdRng::seed_from_u64(5);
        // min_piece_len 10 disables mono pieces entirely, forcing the
        // random-cut fallback over the whole (non-mono) domain.
        let plan =
            plan_pieces(&mut rng, &sc, BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 10 });
        assert!(plan_is_partition(&plan, sc.num_distinct()));
        assert!(plan.len() >= 4, "got {} pieces", plan.len());
        assert!(plan.iter().all(|p| p.mono_label.is_none()));
    }

    #[test]
    fn choosemaxmp_never_cuts_inside_mono_pieces() {
        let sc = paper_column();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = plan_pieces(
                &mut rng,
                &sc,
                BreakpointStrategy::ChooseMaxMP { w: 8, min_piece_len: 1 },
            );
            assert!(plan_is_partition(&plan, sc.num_distinct()), "seed {seed}");
            // The three mono pieces must appear intact.
            let monos: Vec<(usize, usize)> = plan
                .iter()
                .filter(|p| p.mono_label.is_some())
                .map(|p| (p.first_group, p.end_group))
                .collect();
            assert_eq!(monos, vec![(0, 3), (3, 5), (6, 9)], "seed {seed}");
        }
    }

    #[test]
    fn empty_column_gives_empty_plan() {
        let d = ppdt_data::Dataset::from_columns(Schema::generated(1, 2), vec![vec![]], vec![]);
        let sc = d.sorted_column(AttrId(0));
        let mut rng = StdRng::seed_from_u64(6);
        for strat in [
            BreakpointStrategy::None,
            BreakpointStrategy::ChooseBP { w: 3 },
            BreakpointStrategy::ChooseMaxMP { w: 3, min_piece_len: 1 },
        ] {
            assert!(plan_pieces(&mut rng, &sc, strat).is_empty());
        }
    }
}
