//! Structural audit of a custodian key, alone or against a dataset.
//!
//! Keys cross the paper's untrusted boundary (Section 5.4: the key is
//! all the custodian keeps; whoever can corrupt it can corrupt every
//! decoded result). [`audit_key`] verifies a loaded [`TransformKey`]'s
//! structural invariants — piece-interval disjointness, the
//! global-(anti-)monotone invariant of Definition 8, permutation
//! bijectivity, active-domain coverage and injectivity — and
//! [`audit_key_against`] additionally cross-checks the key with a
//! dataset (schema arity, per-cell encodability, non-finite cells).
//!
//! Both return a machine-readable [`AuditReport`] listing *all*
//! violations (capped, with exact counts), mirroring the
//! `BenchReport` schema-versioning discipline. The CLI's `ppdt audit
//! --key` surfaces this report and exits with the corrupt-key code on
//! failure; [`PiecewiseTransform::validate`] reuses the same checks
//! but returns only the first error for the hot draw loop.

use ppdt_data::Dataset;
use ppdt_error::PpdtError;
use ppdt_obs::Counter;
use serde::{Deserialize, Serialize};

use crate::encoder::TransformKey;
use crate::piecewise::{PieceKind, PiecewiseTransform};

/// Version of the serialized [`AuditReport`] schema. Bump on breaking
/// changes to the JSON layout.
pub const AUDIT_SCHEMA_VERSION: u32 = 1;

/// Findings above this count are dropped from the report's list (the
/// error/warning *counts* stay exact) so auditing a large hostile
/// dataset cannot balloon memory.
pub const MAX_REPORTED_FINDINGS: usize = 200;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The key (or key/data pair) must not be used.
    Error,
    /// Suspicious but not disqualifying (e.g. a stale domain value).
    Warning,
}

/// One audit violation, with the position context needed to act on it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditFinding {
    /// Stable snake_case code (e.g. `global_invariant_violated`).
    pub code: String,
    /// Error or warning.
    pub severity: Severity,
    /// Attribute index, when the finding is attribute-scoped.
    pub attr: Option<usize>,
    /// Piece index within the attribute's transform, when piece-scoped.
    pub piece: Option<usize>,
    /// Row index, when the finding points at a dataset cell.
    pub row: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// The typed error equivalent, present on `Error` findings.
    pub error: Option<PpdtError>,
}

/// The audit result: every violation found (up to
/// [`MAX_REPORTED_FINDINGS`]), plus exact counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Schema version of this report ([`AUDIT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Attributes examined.
    pub attrs_checked: usize,
    /// Rows examined, when a dataset was supplied.
    pub rows_checked: Option<usize>,
    /// Exact number of `Error` findings (including dropped ones).
    pub errors: usize,
    /// Exact number of `Warning` findings (including dropped ones).
    pub warnings: usize,
    /// Whether findings beyond the cap were dropped from the list.
    pub truncated: bool,
    /// The findings, in discovery order.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// `true` when the audit found no errors (warnings allowed).
    pub fn passed(&self) -> bool {
        self.errors == 0
    }

    /// The first error finding's typed error, if any.
    pub fn first_error(&self) -> Option<PpdtError> {
        self.findings
            .iter()
            .find(|f| f.severity == Severity::Error)
            .map(|f| f.error.clone().unwrap_or_else(|| PpdtError::key_corrupt(f.message.clone())))
    }

    /// Pretty JSON rendering of the report.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit report serializes")
    }
}

/// Collects findings with exact counts and a reporting cap.
struct Sink {
    findings: Vec<AuditFinding>,
    errors: usize,
    warnings: usize,
}

impl Sink {
    fn new() -> Self {
        Sink { findings: Vec::new(), errors: 0, warnings: 0 }
    }

    fn push(&mut self, f: AuditFinding) {
        match f.severity {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
        }
        if self.findings.len() < MAX_REPORTED_FINDINGS {
            self.findings.push(f);
        }
    }

    fn error(&mut self, code: &'static str, err: PpdtError) {
        let (attr, piece, row) = positions(&err);
        self.push(AuditFinding {
            code: code.to_string(),
            severity: Severity::Error,
            attr,
            piece,
            row,
            message: err.to_string(),
            error: Some(err),
        });
    }

    fn warning(&mut self, code: &'static str, attr: Option<usize>, message: String) {
        self.push(AuditFinding {
            code: code.to_string(),
            severity: Severity::Warning,
            attr,
            piece: None,
            row: None,
            message,
            error: None,
        });
    }

    fn report(self, attrs_checked: usize, rows_checked: Option<usize>) -> AuditReport {
        let truncated = self.errors + self.warnings > self.findings.len();
        AuditReport {
            schema_version: AUDIT_SCHEMA_VERSION,
            attrs_checked,
            rows_checked,
            errors: self.errors,
            warnings: self.warnings,
            truncated,
            findings: self.findings,
        }
    }
}

/// Pulls the positional context out of a typed error for the finding.
fn positions(e: &PpdtError) -> (Option<usize>, Option<usize>, Option<usize>) {
    match e {
        PpdtError::DomainViolation { attr, piece, .. }
        | PpdtError::KeyCorrupt { attr, piece, .. } => (*attr, *piece, None),
        PpdtError::DrawExhausted { attr, .. } => (*attr, None, None),
        PpdtError::DataCorrupt { row, .. } => (None, None, *row),
        _ => (None, None, None),
    }
}

fn kc(attr: Option<usize>, piece: Option<usize>, detail: String) -> PpdtError {
    PpdtError::KeyCorrupt { attr, piece, detail }
}

/// Runs the structural checks of one per-attribute transform,
/// reporting into `sink` with `attr` context.
fn check_transform(tr: &PiecewiseTransform, attr: Option<usize>, sink: &mut Sink) {
    let n = tr.pieces.len();
    if n == 0 {
        sink.error("empty_transform", kc(attr, None, "transform has no pieces".into()));
        return;
    }

    // Per-piece well-formedness.
    for (i, p) in tr.pieces.iter().enumerate() {
        let ends = [p.input_lo, p.input_hi, p.output_lo, p.output_hi];
        if ends.iter().any(|v| !v.is_finite()) {
            sink.error(
                "piece_interval_invalid",
                kc(attr, Some(i), "piece has a non-finite interval endpoint".into()),
            );
            continue;
        }
        if p.input_lo > p.input_hi {
            sink.error(
                "piece_interval_invalid",
                kc(
                    attr,
                    Some(i),
                    format!("input interval inverted: [{}, {}]", p.input_lo, p.input_hi),
                ),
            );
        }
        if p.output_lo >= p.output_hi {
            sink.error(
                "piece_interval_invalid",
                kc(
                    attr,
                    Some(i),
                    format!("output interval degenerate: [{}, {}]", p.output_lo, p.output_hi),
                ),
            );
        }
        match &p.kind {
            PieceKind::Monotone { f, s, t } => {
                if !s.is_finite() || !t.is_finite() || *s <= 0.0 {
                    sink.error(
                        "piece_scale_invalid",
                        kc(attr, Some(i), format!("renormalization (s={s}, t={t}) invalid")),
                    );
                } else if !f.valid_on(p.input_lo, p.input_hi) {
                    sink.error(
                        "piece_function_invalid",
                        kc(
                            attr,
                            Some(i),
                            format!(
                                "function undefined on input range [{}, {}]",
                                p.input_lo, p.input_hi
                            ),
                        ),
                    );
                } else if f.is_increasing() != tr.increasing {
                    sink.error(
                        "piece_direction_mismatch",
                        kc(
                            attr,
                            Some(i),
                            format!(
                                "piece function is {} but the attribute is globally {}",
                                if f.is_increasing() { "increasing" } else { "decreasing" },
                                if tr.increasing { "monotone" } else { "anti-monotone" },
                            ),
                        ),
                    );
                }
            }
            PieceKind::Permutation { map } => {
                check_permutation(
                    p.input_lo,
                    p.input_hi,
                    p.output_lo,
                    p.output_hi,
                    map,
                    attr,
                    i,
                    sink,
                );
            }
        }
    }

    // Input ranges strictly ascending and disjoint.
    for i in 1..n {
        if tr.pieces[i].input_lo <= tr.pieces[i - 1].input_hi {
            sink.error(
                "input_overlap",
                kc(
                    attr,
                    Some(i),
                    format!(
                        "input range [{}, {}] overlaps previous piece ending at {}",
                        tr.pieces[i].input_lo,
                        tr.pieces[i].input_hi,
                        tr.pieces[i - 1].input_hi
                    ),
                ),
            );
        }
    }

    // Output intervals disjoint and ordered by the global direction —
    // Definition 8's global-(anti-)monotone invariant.
    for i in 1..n {
        let (prev, cur) = (&tr.pieces[i - 1], &tr.pieces[i]);
        let ok = if tr.increasing {
            cur.output_lo > prev.output_hi
        } else {
            cur.output_hi < prev.output_lo
        };
        if !ok {
            sink.error(
                "global_invariant_violated",
                kc(
                    attr,
                    Some(i),
                    format!(
                        "output interval [{}, {}] not strictly {} previous [{}, {}]",
                        cur.output_lo,
                        cur.output_hi,
                        if tr.increasing { "above" } else { "below" },
                        prev.output_lo,
                        prev.output_hi
                    ),
                ),
            );
        }
    }

    // Recorded original domain: sorted, distinct, finite.
    for w in tr.orig_domain.windows(2) {
        // NaN compares as None and must count as a violation.
        if w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less) {
            sink.error(
                "domain_not_sorted",
                kc(
                    attr,
                    None,
                    format!("original domain not strictly ascending at {} → {}", w[0], w[1]),
                ),
            );
            break;
        }
    }
    if tr.orig_domain.iter().any(|v| !v.is_finite()) {
        sink.error(
            "domain_not_finite",
            kc(attr, None, "original domain has non-finite values".into()),
        );
    }

    // Active-domain coverage: every recorded value must encode, into
    // its piece's output interval; and the full map must be injective.
    let mut images: Vec<(f64, f64)> = Vec::with_capacity(tr.orig_domain.len());
    for &x in &tr.orig_domain {
        match tr
            .piece_for_input(x)
            .and_then(|i| tr.pieces[i].encode(x).map(|y| (i, y)).map_err(|e| e.with_piece(i)))
        {
            Ok((i, y)) => {
                let p = &tr.pieces[i];
                let slack = 1e-9 * (p.output_hi - p.output_lo).abs().max(1.0);
                if !y.is_finite() || y < p.output_lo - slack || y > p.output_hi + slack {
                    sink.error(
                        "piece_output_escape",
                        kc(attr, Some(i), format!("domain value {x} encodes to {y}, outside the piece's output interval")),
                    );
                } else {
                    images.push((y, x));
                }
            }
            Err(e) => {
                let e = match attr {
                    Some(a) => e.with_attr(a),
                    None => e,
                };
                sink.error("domain_uncovered", e);
            }
        }
    }
    images.sort_by(|a, b| a.0.total_cmp(&b.0));
    for w in images.windows(2) {
        if w[0].0 == w[1].0 {
            sink.error(
                "encode_collision",
                kc(
                    attr,
                    None,
                    format!(
                        "domain values {} and {} encode to the same output {}",
                        w[0].1, w[1].1, w[0].0
                    ),
                ),
            );
        }
    }
}

/// Bijectivity and containment checks for one permutation piece.
#[allow(clippy::too_many_arguments)]
fn check_permutation(
    in_lo: f64,
    in_hi: f64,
    out_lo: f64,
    out_hi: f64,
    map: &[(f64, f64)],
    attr: Option<usize>,
    i: usize,
    sink: &mut Sink,
) {
    if map.is_empty() {
        sink.error("permutation_empty", kc(attr, Some(i), "permutation table is empty".into()));
        return;
    }
    for &(x, y) in map {
        if !x.is_finite() || !y.is_finite() {
            sink.error(
                "permutation_not_finite",
                kc(attr, Some(i), format!("permutation entry ({x}, {y}) is non-finite")),
            );
            return;
        }
    }
    for w in map.windows(2) {
        if w[0].0.partial_cmp(&w[1].0) != Some(std::cmp::Ordering::Less) {
            sink.error(
                "permutation_not_bijective",
                kc(
                    attr,
                    Some(i),
                    format!(
                        "permutation inputs not strictly ascending: {} then {}",
                        w[0].0, w[1].0
                    ),
                ),
            );
        }
    }
    let mut outs: Vec<f64> = map.iter().map(|&(_, y)| y).collect();
    outs.sort_by(f64::total_cmp);
    for w in outs.windows(2) {
        if w[0] == w[1] {
            sink.error(
                "permutation_not_bijective",
                kc(
                    attr,
                    Some(i),
                    format!("permutation maps two values to the same output {}", w[0]),
                ),
            );
        }
    }
    for &(x, y) in map {
        if x < in_lo || x > in_hi {
            sink.error(
                "permutation_out_of_interval",
                kc(attr, Some(i), format!("permutation input {x} outside [{in_lo}, {in_hi}]")),
            );
        }
        if y < out_lo || y > out_hi {
            sink.error(
                "permutation_out_of_interval",
                kc(attr, Some(i), format!("permutation output {y} outside [{out_lo}, {out_hi}]")),
            );
        }
    }
}

/// Audits a key's structural invariants attribute by attribute.
pub fn audit_key(key: &TransformKey) -> AuditReport {
    let mut sink = Sink::new();
    if key.transforms.is_empty() {
        sink.error("empty_key", PpdtError::key_corrupt("key has no attribute transforms"));
    }
    for (a, tr) in key.transforms.iter().enumerate() {
        check_transform(tr, Some(a), &mut sink);
    }
    let report = sink.report(key.transforms.len(), None);
    ppdt_obs::add(Counter::AuditViolations, report.errors as u64);
    report
}

/// Audits a key's structure **and** its fit to a dataset: schema
/// arity, per-cell finiteness, and per-cell encodability under the
/// key (active-domain coverage).
pub fn audit_key_against(key: &TransformKey, d: &Dataset) -> AuditReport {
    let mut sink = Sink::new();
    if key.transforms.is_empty() {
        sink.error("empty_key", PpdtError::key_corrupt("key has no attribute transforms"));
    }
    for (a, tr) in key.transforms.iter().enumerate() {
        check_transform(tr, Some(a), &mut sink);
    }

    if key.transforms.len() != d.num_attrs() {
        sink.error(
            "schema_mismatch",
            PpdtError::SchemaMismatch {
                detail: format!(
                    "key has {} attribute transform(s) but the dataset has {} attribute(s)",
                    key.transforms.len(),
                    d.num_attrs()
                ),
            },
        );
    }

    // Cross-check every cell the key claims to cover.
    let attrs = key.transforms.len().min(d.num_attrs());
    for a in 0..attrs {
        let tr = &key.transforms[a];
        let col = d.column(ppdt_data::AttrId(a));
        for (row, &x) in col.iter().enumerate() {
            if !x.is_finite() {
                sink.push(AuditFinding {
                    code: "cell_not_finite".to_string(),
                    severity: Severity::Error,
                    attr: Some(a),
                    piece: None,
                    row: Some(row),
                    message: format!("cell value {x} is not finite"),
                    error: Some(PpdtError::DataCorrupt {
                        row: Some(row),
                        column: Some(a),
                        detail: format!("non-finite value {x}"),
                    }),
                });
            } else if let Err(e) = tr.encode(x) {
                let e = e.with_attr(a);
                sink.push(AuditFinding {
                    code: "cell_uncovered".to_string(),
                    severity: Severity::Error,
                    attr: Some(a),
                    piece: None,
                    row: Some(row),
                    message: format!("row {row}: {e}"),
                    error: Some(e),
                });
            }
        }
        // Stale key-domain values (in the key, absent from the data)
        // are only a warning: decoding still works.
        let active = d.active_domain(ppdt_data::AttrId(a));
        let stale = tr
            .orig_domain
            .iter()
            .filter(|v| active.binary_search_by(|p| p.total_cmp(v)).is_err())
            .count();
        if stale > 0 {
            sink.warning(
                "stale_domain",
                Some(a),
                format!("{stale} key domain value(s) no longer appear in the dataset"),
            );
        }
    }

    let report = sink.report(key.transforms.len(), Some(d.num_rows()));
    ppdt_obs::add(Counter::AuditViolations, report.errors as u64);
    report
}

/// First-error form of the per-transform checks, used by
/// [`PiecewiseTransform::validate`] on the hot draw loop.
pub(crate) fn transform_first_error(tr: &PiecewiseTransform) -> Result<(), PpdtError> {
    let mut sink = Sink::new();
    check_transform(tr, None, &mut sink);
    match sink.findings.into_iter().find(|f| f.severity == Severity::Error) {
        Some(f) => Err(f.error.unwrap_or_else(|| PpdtError::key_corrupt(f.message))),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncodeConfig, Encoder};
    use ppdt_data::{ClassId, DatasetBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_dataset() -> Dataset {
        let schema = Schema::new(["age", "balance"], ["High", "Low"]);
        let mut b = DatasetBuilder::new(schema);
        let rows: [(f64, f64, u16); 8] = [
            (17.0, 100.0, 0),
            (23.0, 250.0, 0),
            (32.0, 90.0, 1),
            (41.0, 400.0, 1),
            (47.0, 380.0, 0),
            (55.0, 120.0, 1),
            (62.0, 310.0, 0),
            (68.0, 55.0, 1),
        ];
        for (a, bal, c) in rows {
            b.push_row(&[a, bal], ClassId(c));
        }
        b.build()
    }

    fn sample_key() -> (TransformKey, Dataset) {
        let d = sample_dataset();
        let mut rng = StdRng::seed_from_u64(7);
        let (key, _) =
            Encoder::new(EncodeConfig::default()).encode(&mut rng, &d).unwrap().into_parts();
        (key, d)
    }

    #[test]
    fn clean_key_passes_alone_and_against_data() {
        let (key, d) = sample_key();
        let r = audit_key(&key);
        assert!(r.passed(), "{}", r.to_json_pretty());
        let r = audit_key_against(&key, &d);
        assert!(r.passed(), "{}", r.to_json_pretty());
        assert_eq!(r.rows_checked, Some(d.num_rows()));
        assert_eq!(r.schema_version, AUDIT_SCHEMA_VERSION);
    }

    #[test]
    fn swapped_output_intervals_fail_the_global_invariant() {
        let (mut key, _) = sample_key();
        let tr = &mut key.transforms[0];
        if tr.pieces.len() < 2 {
            // Force a second piece by splitting? Simpler: flip direction flag.
            tr.increasing = !tr.increasing;
        } else {
            let (a, b) = (0, tr.pieces.len() - 1);
            let lo = tr.pieces[a].clone();
            let hi = tr.pieces[b].clone();
            tr.pieces[a].output_lo = hi.output_lo;
            tr.pieces[a].output_hi = hi.output_hi;
            tr.pieces[b].output_lo = lo.output_lo;
            tr.pieces[b].output_hi = lo.output_hi;
        }
        let r = audit_key(&key);
        assert!(!r.passed());
        assert!(r.first_error().is_some());
        assert!(r.findings.iter().any(|f| f.attr == Some(0)));
    }

    #[test]
    fn de_bijected_permutation_is_reported() {
        let (mut key, _) = sample_key();
        let mut hit = false;
        'outer: for tr in &mut key.transforms {
            for p in &mut tr.pieces {
                if let PieceKind::Permutation { map } = &mut p.kind {
                    if map.len() >= 2 {
                        map[1].1 = map[0].1; // two inputs, one output
                        hit = true;
                        break 'outer;
                    }
                }
            }
        }
        if !hit {
            return; // this draw produced no multi-entry permutation piece
        }
        let r = audit_key(&key);
        assert!(!r.passed());
        assert!(r.findings.iter().any(|f| f.code == "permutation_not_bijective"));
    }

    #[test]
    fn schema_mismatch_detected_against_data() {
        let (mut key, d) = sample_key();
        key.transforms.pop();
        let r = audit_key_against(&key, &d);
        assert!(!r.passed());
        assert!(r.findings.iter().any(|f| f.code == "schema_mismatch"));
        assert!(matches!(
            r.first_error(),
            Some(PpdtError::KeyCorrupt { .. } | PpdtError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn uncovered_cell_reported_with_row() {
        let (key, _) = sample_key();
        let schema = Schema::new(["age", "balance"], ["High", "Low"]);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(&[17.0, 100.0], ClassId(0));
        b.push_row(&[999.0, 100.0], ClassId(1)); // out of the key's domain
        let d2 = b.build();
        let r = audit_key_against(&key, &d2);
        assert!(!r.passed());
        let f = r.findings.iter().find(|f| f.code == "cell_uncovered").expect("finding");
        assert_eq!(f.row, Some(1));
        assert_eq!(f.attr, Some(0));
    }

    #[test]
    fn report_serde_roundtrip() {
        let (mut key, _) = sample_key();
        key.transforms[0].pieces.clear();
        let r = audit_key(&key);
        assert!(!r.passed());
        let json = r.to_json_pretty();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
