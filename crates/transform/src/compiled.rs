//! Compiled encode/decode plans: a flat, cache-friendly lowering of a
//! validated [`TransformKey`].
//!
//! The interpreted path ([`PiecewiseTransform`]) walks a `Vec<Piece>`
//! of enum variants and, for composed functions, a `Box` tree — fine
//! for one-shot CLI runs, wasteful inside a daemon encoding millions
//! of cells against the same key. [`CompiledKey::compile`] lowers each
//! attribute into struct-of-arrays form:
//!
//! * one sorted breakpoint array (`input_hi`) per attribute, so piece
//!   lookup is a branch-predictable `partition_point` over a flat
//!   `&[f64]`,
//! * per-piece function parameters unpacked out of the
//!   [`MonoFunc`] enum into a flat opcode
//!   program pool (compositions are flattened inner-first, so
//!   evaluation is a sequential scan instead of pointer-chasing),
//! * permutation tables for monochromatic pieces packed into shared
//!   lookup pools (`perm_orig` / `perm_out`) indexed by per-piece
//!   ranges.
//!
//! The compiled methods are **bit-identical** to the interpreted path
//! (every floating-point operation happens in the same order — see the
//! `compiled_matches_interpreted` proptest) but allocation-free and
//! dispatch-free per value. Compilation audits the key first: a
//! [`CompiledKey`] is always a *trusted* artifact, which is what lets
//! a server skip per-request auditing entirely.

use ppdt_data::AttrId;
use ppdt_error::PpdtError;

use crate::encoder::TransformKey;
use crate::func::MonoFunc;
use crate::piecewise::{nearest, PieceKind, PiecewiseTransform};

/// One primitive of a flattened monotone-function program. Mirrors the
/// non-composed [`MonoFunc`] variants with the
/// exact same formulas; [`MonoFunc::Composed`](crate::func::MonoFunc)
/// lowers to a sequence of these.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `a·x + b`.
    Linear { a: f64, b: f64 },
    /// `a·sgn(x−c)·|x−c|^p + b`.
    Power { a: f64, c: f64, p: f64, b: f64 },
    /// `a·ln(x − c) + b`.
    Log { a: f64, c: f64, b: f64 },
    /// `a·√(ln(x − c)) + b`.
    SqrtLog { a: f64, c: f64, b: f64 },
    /// `a·e^{k(x−c)} + b`.
    Exp { a: f64, k: f64, c: f64, b: f64 },
}

impl Op {
    /// Same expression, same operation order as
    /// [`MonoFunc::eval`](crate::func::MonoFunc::eval).
    #[inline]
    fn eval(self, x: f64) -> f64 {
        match self {
            Op::Linear { a, b } => a * x + b,
            Op::Power { a, c, p, b } => {
                let d = x - c;
                a * d.signum() * d.abs().powf(p) + b
            }
            Op::Log { a, c, b } => a * (x - c).ln() + b,
            Op::SqrtLog { a, c, b } => a * (x - c).ln().sqrt() + b,
            Op::Exp { a, k, c, b } => a * (k * (x - c)).exp() + b,
        }
    }

    /// Same expression, same operation order as
    /// [`MonoFunc::inverse`](crate::func::MonoFunc::inverse).
    #[inline]
    fn inverse(self, y: f64) -> f64 {
        match self {
            Op::Linear { a, b } => (y - b) / a,
            Op::Power { a, c, p, b } => {
                let u = (y - b) / a;
                c + u.signum() * u.abs().powf(1.0 / p)
            }
            Op::Log { a, c, b } => c + ((y - b) / a).exp(),
            Op::SqrtLog { a, c, b } => {
                let s = (y - b) / a;
                c + (s * s).exp()
            }
            Op::Exp { a, k, c, b } => c + ((y - b) / a).ln() / k,
        }
    }
}

/// Flattens a function tree into a sequential program, inner-first, so
/// `eval` = apply ops left-to-right and `inverse` = apply inverses
/// right-to-left. Bit-identical to the recursive evaluation because
/// `Composed::eval(x)` *is* `outer.eval(inner.eval(x))` — each
/// primitive sees exactly the same scalar input either way.
fn flatten(f: &MonoFunc, out: &mut Vec<Op>) {
    match f {
        MonoFunc::Linear { a, b } => out.push(Op::Linear { a: *a, b: *b }),
        MonoFunc::Power { a, c, p, b } => out.push(Op::Power { a: *a, c: *c, p: *p, b: *b }),
        MonoFunc::Log { a, c, b } => out.push(Op::Log { a: *a, c: *c, b: *b }),
        MonoFunc::SqrtLog { a, c, b } => out.push(Op::SqrtLog { a: *a, c: *c, b: *b }),
        MonoFunc::Exp { a, k, c, b } => out.push(Op::Exp { a: *a, k: *k, c: *c, b: *b }),
        MonoFunc::Composed { outer, inner } => {
            flatten(inner, out);
            flatten(outer, out);
        }
    }
}

/// Per-piece program descriptor: either an affine-renormalized op
/// range, or a range into the permutation pools.
#[derive(Clone, Copy, Debug)]
enum PieceProgram {
    /// `y = s·(ops applied to x) + t`; `ops` is `(start, len)` into
    /// [`CompiledTransform::ops`].
    Monotone { s: f64, t: f64, ops: (u32, u32) },
    /// `(start, len)` into `perm_orig` / `perm_out` (sorted by
    /// original value, mirroring the interpreted map).
    Permutation { perm: (u32, u32) },
}

/// One attribute's transform in compiled (struct-of-arrays) form.
#[derive(Clone, Debug)]
pub struct CompiledTransform {
    increasing: bool,
    /// Per-piece input range bounds; `input_hi` doubles as the sorted
    /// breakpoint array for piece lookup.
    input_lo: Vec<f64>,
    input_hi: Vec<f64>,
    /// Per-piece output interval bounds (ascending when `increasing`,
    /// descending otherwise — same layout as the interpreted key).
    output_lo: Vec<f64>,
    output_hi: Vec<f64>,
    prog: Vec<PieceProgram>,
    /// Shared flattened function-program pool.
    ops: Vec<Op>,
    /// Shared permutation pools: original values (sorted within each
    /// piece's range) and their transformed images.
    perm_orig: Vec<f64>,
    perm_out: Vec<f64>,
    /// The attribute's recorded active domain, for threshold snapping.
    orig_domain: Vec<f64>,
}

impl CompiledTransform {
    fn lower(tr: &PiecewiseTransform) -> CompiledTransform {
        let n = tr.pieces.len();
        let mut out = CompiledTransform {
            increasing: tr.increasing,
            input_lo: Vec::with_capacity(n),
            input_hi: Vec::with_capacity(n),
            output_lo: Vec::with_capacity(n),
            output_hi: Vec::with_capacity(n),
            prog: Vec::with_capacity(n),
            ops: Vec::new(),
            perm_orig: Vec::new(),
            perm_out: Vec::new(),
            orig_domain: tr.orig_domain.clone(),
        };
        for p in &tr.pieces {
            out.input_lo.push(p.input_lo);
            out.input_hi.push(p.input_hi);
            out.output_lo.push(p.output_lo);
            out.output_hi.push(p.output_hi);
            match &p.kind {
                PieceKind::Monotone { f, s, t } => {
                    let start = out.ops.len() as u32;
                    flatten(f, &mut out.ops);
                    let len = out.ops.len() as u32 - start;
                    out.prog.push(PieceProgram::Monotone { s: *s, t: *t, ops: (start, len) });
                }
                PieceKind::Permutation { map } => {
                    let start = out.perm_orig.len() as u32;
                    for &(orig, image) in map {
                        out.perm_orig.push(orig);
                        out.perm_out.push(image);
                    }
                    out.prog.push(PieceProgram::Permutation { perm: (start, map.len() as u32) });
                }
            }
        }
        out
    }

    /// Piece lookup over the flat breakpoint array — the compiled twin
    /// of [`PiecewiseTransform::piece_for_input`].
    #[inline]
    fn piece_for_input(&self, x: f64) -> Result<usize, PpdtError> {
        let i = self.input_hi.partition_point(|&hi| hi < x);
        if i < self.input_hi.len() && self.input_lo[i] <= x {
            Ok(i)
        } else {
            Err(PpdtError::DomainViolation { attr: None, piece: None, value: x })
        }
    }

    /// The compiled twin of `Piece::encode`.
    #[inline]
    fn encode_piece(&self, i: usize, x: f64) -> Result<f64, PpdtError> {
        match self.prog[i] {
            PieceProgram::Monotone { s, t, ops: (start, len) } => {
                let mut v = x;
                for op in &self.ops[start as usize..(start + len) as usize] {
                    v = op.eval(v);
                }
                Ok(s * v + t)
            }
            PieceProgram::Permutation { perm: (start, len) } => {
                let orig = &self.perm_orig[start as usize..(start + len) as usize];
                orig.binary_search_by(|v| v.total_cmp(&x))
                    .map(|j| self.perm_out[start as usize + j])
                    .map_err(|_| PpdtError::DomainViolation { attr: None, piece: None, value: x })
            }
        }
    }

    /// The compiled twin of `Piece::decode`.
    #[inline]
    fn decode_piece(&self, i: usize, y: f64) -> Result<f64, PpdtError> {
        match self.prog[i] {
            PieceProgram::Monotone { s, t, ops: (start, len) } => {
                let mut v = (y - t) / s;
                for op in self.ops[start as usize..(start + len) as usize].iter().rev() {
                    v = op.inverse(v);
                }
                Ok(v)
            }
            PieceProgram::Permutation { perm: (start, len) } => {
                // Nearest recorded output, earliest index on exact
                // ties — same scan as the interpreted path.
                let outs = &self.perm_out[start as usize..(start + len) as usize];
                let mut best: Option<(usize, f64)> = None;
                for (j, &out) in outs.iter().enumerate() {
                    let d = (out - y).abs();
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
                match best {
                    Some((j, _)) => Ok(self.perm_orig[start as usize + j]),
                    None => Err(PpdtError::key_corrupt("empty permutation table")),
                }
            }
        }
    }

    /// The compiled twin of [`PiecewiseTransform::locate_output`]:
    /// returns the owning (or, for gap values, nearest) piece index.
    fn locate_output(&self, y: f64) -> Result<usize, PpdtError> {
        let n = self.prog.len();
        if n == 0 {
            return Err(PpdtError::key_corrupt("transform has no pieces"));
        }
        let idx_at = |rank: usize| if self.increasing { rank } else { n - 1 - rank };
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let i = idx_at(mid);
            if y < self.output_lo[i] {
                hi = mid;
            } else if y > self.output_hi[i] {
                lo = mid + 1;
            } else {
                return Ok(i);
            }
        }
        let below = lo.checked_sub(1).map(idx_at);
        let above = (lo < n).then(|| idx_at(lo));
        match (below, above) {
            (Some(b), Some(a)) => {
                let db = (y - self.output_hi[b]).abs().min((y - self.output_lo[b]).abs());
                let da = (y - self.output_lo[a]).abs().min((y - self.output_hi[a]).abs());
                Ok(if db <= da { b } else { a })
            }
            (Some(i), None) | (None, Some(i)) => Ok(i),
            (None, None) => Err(PpdtError::key_corrupt("transform has no pieces")),
        }
    }

    /// Compiled encode of one value — bit-identical to
    /// [`PiecewiseTransform::encode`].
    pub fn encode(&self, x: f64) -> Result<f64, PpdtError> {
        let i = self.piece_for_input(x)?;
        let y = self.encode_piece(i, x).map_err(|e| e.with_piece(i))?;
        if y.is_finite() {
            Ok(y)
        } else {
            Err(PpdtError::KeyCorrupt {
                attr: None,
                piece: Some(i),
                detail: format!("value {x} encodes to non-finite {y}"),
            })
        }
    }

    /// Compiled decode of one value — bit-identical to
    /// [`PiecewiseTransform::decode`].
    pub fn decode(&self, y: f64) -> Result<f64, PpdtError> {
        let i = self.locate_output(y)?;
        let x = self.decode_piece(i, y).map_err(|e| e.with_piece(i))?;
        Ok(x.clamp(self.input_lo[i], self.input_hi[i]))
    }

    /// Compiled decode snapped to the recorded active domain —
    /// bit-identical to [`PiecewiseTransform::decode_snapped`].
    pub fn decode_snapped(&self, y: f64) -> Result<f64, PpdtError> {
        let raw = self.decode(y)?;
        nearest(&self.orig_domain, raw)
            .ok_or_else(|| PpdtError::key_corrupt("empty recorded original domain"))
    }

    /// The attribute's global direction.
    pub fn increasing(&self) -> bool {
        self.increasing
    }
}

/// A [`TransformKey`] lowered into flat per-attribute
/// [`CompiledTransform`]s. Construction audits the key, so holding a
/// `CompiledKey` certifies the key passed its structural audit — hot
/// paths can encode without re-validating.
#[derive(Clone, Debug)]
pub struct CompiledKey {
    attrs: Vec<CompiledTransform>,
}

impl CompiledKey {
    /// Audits `key` ([`crate::audit::audit_key`]) and lowers it.
    /// Returns the audit's first error when the key is corrupt.
    pub fn compile(key: &TransformKey) -> Result<CompiledKey, PpdtError> {
        if let Some(e) = crate::audit::audit_key(key).first_error() {
            return Err(e);
        }
        Ok(Self::compile_trusted(key))
    }

    /// Lowers a key **without** auditing it. Only for callers that
    /// just audited the same bytes themselves (e.g. a key store whose
    /// load path always audits); everyone else wants
    /// [`CompiledKey::compile`].
    pub fn compile_trusted(key: &TransformKey) -> CompiledKey {
        CompiledKey { attrs: key.transforms.iter().map(CompiledTransform::lower).collect() }
    }

    /// Number of attributes the key covers.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// The compiled transform of attribute `a`, or
    /// [`PpdtError::SchemaMismatch`] — same contract (and message) as
    /// [`TransformKey::try_transform`].
    pub fn try_transform(&self, a: AttrId) -> Result<&CompiledTransform, PpdtError> {
        self.attrs.get(a.index()).ok_or_else(|| PpdtError::SchemaMismatch {
            detail: format!(
                "attribute {a} out of range for a key with {} transform(s)",
                self.attrs.len()
            ),
        })
    }

    /// Compiled twin of [`TransformKey::encode_value`].
    pub fn encode_value(&self, a: AttrId, x: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.encode(x).map_err(|e| e.with_attr(a.index()))
    }

    /// Compiled twin of [`TransformKey::decode_value`] (snapped).
    pub fn decode_value(&self, a: AttrId, y: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.decode_snapped(y).map_err(|e| e.with_attr(a.index()))
    }

    /// Compiled twin of [`TransformKey::decode_value_raw`].
    pub fn decode_value_raw(&self, a: AttrId, y: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.decode(y).map_err(|e| e.with_attr(a.index()))
    }

    /// Encodes a whole column into `dst` (cleared first). One
    /// reservation up front, then no per-value allocation or dispatch.
    pub fn encode_column(
        &self,
        a: AttrId,
        src: &[f64],
        dst: &mut Vec<f64>,
    ) -> Result<(), PpdtError> {
        let tr = self.try_transform(a)?;
        dst.clear();
        dst.reserve(src.len());
        for &x in src {
            dst.push(tr.encode(x).map_err(|e| e.with_attr(a.index()))?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::BreakpointStrategy;
    use crate::encoder::{EncodeConfig, Encoder};
    use crate::family::FnFamily;
    use ppdt_data::gen::{random_dataset, RandomDatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_key(
        seed: u64,
        anti: f64,
        family: FnFamily,
    ) -> (crate::TransformKey, ppdt_data::Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg =
            RandomDatasetConfig { num_rows: 120, num_attrs: 3, num_classes: 3, value_range: 18 };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 1 },
            family,
            anti_monotone_prob: anti,
            ..Default::default()
        };
        let (key, _) = Encoder::new(config).encode(&mut rng, &d).unwrap().into_parts();
        (key, d)
    }

    #[test]
    fn compiled_encode_decode_bit_identical_on_domain() {
        for (seed, anti, family) in
            [(1, 0.0, FnFamily::Mixed), (2, 1.0, FnFamily::Mixed), (3, 0.5, FnFamily::Composed)]
        {
            let (key, d) = sample_key(seed, anti, family);
            let compiled = CompiledKey::compile(&key).unwrap();
            for a in d.schema().attrs() {
                for &x in &d.active_domain(a) {
                    let y_i = key.encode_value(a, x).unwrap();
                    let y_c = compiled.encode_value(a, x).unwrap();
                    assert_eq!(y_i.to_bits(), y_c.to_bits(), "encode attr {a} value {x}");
                    let x_i = key.decode_value(a, y_i).unwrap();
                    let x_c = compiled.decode_value(a, y_c).unwrap();
                    assert_eq!(x_i.to_bits(), x_c.to_bits(), "decode attr {a} value {x}");
                }
            }
        }
    }

    #[test]
    fn compiled_errors_match_interpreted() {
        let (key, _) = sample_key(7, 0.0, FnFamily::Mixed);
        let compiled = CompiledKey::compile(&key).unwrap();
        // Out-of-range attribute: same SchemaMismatch.
        assert_eq!(
            key.encode_value(AttrId(99), 1.0).unwrap_err(),
            compiled.encode_value(AttrId(99), 1.0).unwrap_err(),
        );
        // Out-of-domain value: same DomainViolation with attr context.
        assert_eq!(
            key.encode_value(AttrId(0), 1e12).unwrap_err(),
            compiled.encode_value(AttrId(0), 1e12).unwrap_err(),
        );
    }

    #[test]
    fn compile_rejects_corrupt_keys() {
        let (mut key, _) = sample_key(9, 0.0, FnFamily::Mixed);
        key.transforms[0].pieces.clear();
        assert!(CompiledKey::compile(&key).is_err());
    }

    #[test]
    fn encode_column_matches_per_value() {
        let (key, d) = sample_key(11, 1.0, FnFamily::Mixed);
        let compiled = CompiledKey::compile(&key).unwrap();
        let mut out = Vec::new();
        for a in d.schema().attrs() {
            compiled.encode_column(a, d.column(a), &mut out).unwrap();
            for (&x, &y) in d.column(a).iter().zip(&out) {
                assert_eq!(key.encode_value(a, x).unwrap().to_bits(), y.to_bits());
            }
        }
    }
}
