//! Compiled encode/decode plans: a flat, cache-friendly lowering of a
//! validated [`TransformKey`].
//!
//! The interpreted path ([`PiecewiseTransform`]) walks a `Vec<Piece>`
//! of enum variants and, for composed functions, a `Box` tree — fine
//! for one-shot CLI runs, wasteful inside a daemon encoding millions
//! of cells against the same key. [`CompiledKey::compile`] lowers each
//! attribute into struct-of-arrays form:
//!
//! * one sorted breakpoint array (`input_hi`) per attribute, so piece
//!   lookup is a branch-predictable `partition_point` over a flat
//!   `&[f64]`,
//! * per-piece function parameters unpacked out of the
//!   [`MonoFunc`] enum into a flat opcode
//!   program pool (compositions are flattened inner-first, so
//!   evaluation is a sequential scan instead of pointer-chasing),
//! * permutation tables for monochromatic pieces packed into shared
//!   lookup pools (`perm_orig` / `perm_out`) indexed by per-piece
//!   ranges.
//!
//! The compiled methods are **bit-identical** to the interpreted path
//! (every floating-point operation happens in the same order — see the
//! `compiled_matches_interpreted` proptest) but allocation-free and
//! dispatch-free per value. Compilation audits the key first: a
//! [`CompiledKey`] is always a *trusted* artifact, which is what lets
//! a server skip per-request auditing entirely.
//!
//! On top of the per-value methods sit the batched column paths
//! ([`CompiledKey::encode_column`] / [`CompiledKey::decode_column`]).
//! Encode *buckets* the column: one lookup pass assigns every value
//! its piece (through the branch-free direct-index table when the
//! density heuristic built one — see `LookupTable` — by binary search
//! otherwise), a counting sort gathers each piece's values into one
//! contiguous scratch slice, each opcode of the piece's program runs
//! once over that whole slice, and the results scatter back into row
//! order. Piece dispatch is paid once per *piece* instead of once per
//! *cell*, and the opcode inner loops are plain slice passes the
//! compiler unrolls and vectorizes — regardless of how values are
//! ordered in the column. Decode carves the column into maximal
//! same-piece runs instead (output-interval membership pins the
//! piece), which is cheaper than bucketing for its snap-dominated
//! cost profile. Every one of these paths returns bit-identical
//! results — and bit-identical *errors*, at the same row — as the
//! per-value methods, because no floating-point operation is
//! reordered within any single value's computation.

use ppdt_data::AttrId;
use ppdt_error::PpdtError;

use crate::encoder::TransformKey;
use crate::func::MonoFunc;
use crate::piecewise::{nearest, PieceKind, PiecewiseTransform};

/// One primitive of a flattened monotone-function program. Mirrors the
/// non-composed [`MonoFunc`] variants with the
/// exact same formulas; [`MonoFunc::Composed`](crate::func::MonoFunc)
/// lowers to a sequence of these.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `a·x + b`.
    Linear { a: f64, b: f64 },
    /// `a·sgn(x−c)·|x−c|^p + b`.
    Power { a: f64, c: f64, p: f64, b: f64 },
    /// `a·ln(x − c) + b`.
    Log { a: f64, c: f64, b: f64 },
    /// `a·√(ln(x − c)) + b`.
    SqrtLog { a: f64, c: f64, b: f64 },
    /// `a·e^{k(x−c)} + b`.
    Exp { a: f64, k: f64, c: f64, b: f64 },
}

impl Op {
    /// Same expression, same operation order as
    /// [`MonoFunc::eval`](crate::func::MonoFunc::eval).
    #[inline]
    fn eval(self, x: f64) -> f64 {
        match self {
            Op::Linear { a, b } => a * x + b,
            Op::Power { a, c, p, b } => {
                let d = x - c;
                a * d.signum() * d.abs().powf(p) + b
            }
            Op::Log { a, c, b } => a * (x - c).ln() + b,
            Op::SqrtLog { a, c, b } => a * (x - c).ln().sqrt() + b,
            Op::Exp { a, k, c, b } => a * (k * (x - c)).exp() + b,
        }
    }

    /// Same expression, same operation order as
    /// [`MonoFunc::inverse`](crate::func::MonoFunc::inverse).
    #[inline]
    fn inverse(self, y: f64) -> f64 {
        match self {
            Op::Linear { a, b } => (y - b) / a,
            Op::Power { a, c, p, b } => {
                let u = (y - b) / a;
                c + u.signum() * u.abs().powf(1.0 / p)
            }
            Op::Log { a, c, b } => c + ((y - b) / a).exp(),
            Op::SqrtLog { a, c, b } => {
                let s = (y - b) / a;
                c + (s * s).exp()
            }
            Op::Exp { a, k, c, b } => c + ((y - b) / a).ln() / k,
        }
    }
}

/// Flattens a function tree into a sequential program, inner-first, so
/// `eval` = apply ops left-to-right and `inverse` = apply inverses
/// right-to-left. Bit-identical to the recursive evaluation because
/// `Composed::eval(x)` *is* `outer.eval(inner.eval(x))` — each
/// primitive sees exactly the same scalar input either way.
fn flatten(f: &MonoFunc, out: &mut Vec<Op>) {
    match f {
        MonoFunc::Linear { a, b } => out.push(Op::Linear { a: *a, b: *b }),
        MonoFunc::Power { a, c, p, b } => out.push(Op::Power { a: *a, c: *c, p: *p, b: *b }),
        MonoFunc::Log { a, c, b } => out.push(Op::Log { a: *a, c: *c, b: *b }),
        MonoFunc::SqrtLog { a, c, b } => out.push(Op::SqrtLog { a: *a, c: *c, b: *b }),
        MonoFunc::Exp { a, k, c, b } => out.push(Op::Exp { a: *a, k: *k, c: *c, b: *b }),
        MonoFunc::Composed { outer, inner } => {
            flatten(inner, out);
            flatten(outer, out);
        }
    }
}

/// Per-piece program descriptor: either an affine-renormalized op
/// range, or a range into the permutation pools.
#[derive(Clone, Copy, Debug)]
enum PieceProgram {
    /// `y = s·(ops applied to x) + t`; `ops` is `(start, len)` into
    /// [`CompiledTransform::ops`].
    Monotone { s: f64, t: f64, ops: (u32, u32) },
    /// `(start, len)` into `perm_orig` / `perm_out` (sorted by
    /// original value, mirroring the interpreted map). `grid` is the
    /// `(first, 1/step)` of an exact arithmetic progression when the
    /// piece's originals form one — integer-coded attributes almost
    /// always do — letting lookup guess the index in O(1). The guess
    /// is verified bit-wise and falls back to binary search on any
    /// mismatch, so the accelerator is unobservable in results.
    Permutation { perm: (u32, u32), grid: Option<(f64, f64)> },
}

/// Detects an exact arithmetic progression in a sorted permutation
/// domain: returns `(first, 1/step)` only when every element is
/// *bit-identical* to `first + j·step`, so an index recomputed from a
/// member value can be trusted after one bitwise compare.
fn perm_grid(orig: &[f64]) -> Option<(f64, f64)> {
    if orig.len() < 2 {
        return None;
    }
    let first = orig[0];
    let step = orig[1] - first;
    if !(step.is_finite() && step > 0.0) {
        return None;
    }
    let exact =
        orig.iter().enumerate().all(|(j, &v)| (first + j as f64 * step).to_bits() == v.to_bits());
    exact.then(|| (first, 1.0 / step))
}

/// Direct-index acceleration for `partition_point` over `input_hi`:
/// maps a probe value to a bucket of the transform's input span and
/// scans forward from a precomputed per-bucket floor. Built at lower
/// time only when the breakpoints are dense enough that the scan is
/// provably short (see [`LookupTable::build`]); lookups through it are
/// index-identical to binary search for **every** `f64`, including
/// NaN and infinities, so callers never observe which path ran.
#[derive(Clone, Debug)]
struct LookupTable {
    /// Left edge of the bucketed span (`input_lo[0]`).
    lo: f64,
    /// `buckets / span` — one multiply turns a value into a bucket.
    inv_width: f64,
    /// `first[b]` = number of pieces whose `input_hi` lands in a
    /// bucket strictly below `b`. Because bucketing is monotone, this
    /// never overshoots the true partition point of any probe landing
    /// in bucket `b`, so a forward scan from it is always correct.
    first: Vec<u32>,
}

impl LookupTable {
    /// Density heuristic: the longest forward scan a table is allowed
    /// to cost (max breakpoints sharing one bucket). With 4 buckets
    /// per piece the expected occupancy is 0.25, so only pathological
    /// clustering rejects the table.
    const MAX_BUCKET_OCCUPANCY: u32 = 8;

    /// Builds a bucket table over sorted `breaks` spanning `[lo,
    /// breaks.last()]`. `per_entry` buckets are allocated per break
    /// (rounded up to a power of two, capped at `max_buckets`); the
    /// build refuses when any bucket would exceed
    /// [`Self::MAX_BUCKET_OCCUPANCY`], keeping every forward scan
    /// provably short.
    fn build(lo: f64, breaks: &[f64], per_entry: usize, max_buckets: usize) -> Option<LookupTable> {
        let n = breaks.len();
        if n < 2 {
            // Zero or one entry: binary search is already branch-free.
            return None;
        }
        let span = breaks[n - 1] - lo;
        if !(span.is_finite() && span > 0.0) || breaks.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let buckets = (per_entry * n).next_power_of_two().min(max_buckets);
        let inv_width = buckets as f64 / span;
        if !(inv_width.is_finite() && inv_width > 0.0) {
            return None;
        }
        let bucket_of = |v: f64| (((v - lo) * inv_width) as usize).min(buckets - 1);
        // counts[b + 1] = occupancy of bucket b, then prefix-summed so
        // counts[b] = breakpoints strictly below bucket b.
        let mut counts = vec![0u32; buckets + 1];
        for &v in breaks {
            counts[bucket_of(v) + 1] += 1;
        }
        if counts.iter().any(|&c| c > Self::MAX_BUCKET_OCCUPANCY) {
            return None;
        }
        for b in 1..=buckets {
            counts[b] += counts[b - 1];
        }
        Some(LookupTable { lo, inv_width, first: counts })
    }

    /// Bucket of `v`. The `as usize` cast saturates (NaN and negative
    /// products land in bucket 0, overflow clamps high), which is
    /// exactly what keeps out-of-span probes correct.
    #[inline]
    fn bucket_of(&self, v: f64) -> usize {
        (((v - self.lo) * self.inv_width) as usize).min(self.first.len() - 2)
    }
}

/// One attribute's transform in compiled (struct-of-arrays) form.
#[derive(Clone, Debug)]
pub struct CompiledTransform {
    increasing: bool,
    /// Per-piece input range bounds; `input_hi` doubles as the sorted
    /// breakpoint array for piece lookup.
    input_lo: Vec<f64>,
    input_hi: Vec<f64>,
    /// Per-piece output interval bounds (ascending when `increasing`,
    /// descending otherwise — same layout as the interpreted key).
    output_lo: Vec<f64>,
    output_hi: Vec<f64>,
    prog: Vec<PieceProgram>,
    /// Shared flattened function-program pool.
    ops: Vec<Op>,
    /// Shared permutation pools: original values (sorted within each
    /// piece's range) and their transformed images.
    perm_orig: Vec<f64>,
    perm_out: Vec<f64>,
    /// The attribute's recorded active domain, for threshold snapping.
    orig_domain: Vec<f64>,
    /// Direct-index piece lookup, when the density heuristic admits
    /// one; `None` falls back to binary search.
    table: Option<LookupTable>,
    /// Direct-index lookup over the whole `perm_orig` pool, which is
    /// globally sorted because pieces lower in domain order and each
    /// map is sorted within its range. Used by the batched encode to
    /// turn the per-value binary search inside permutation pieces into
    /// a bucket probe plus a short scan; `None` (sparse pool or the
    /// density heuristic refused) falls back to binary search.
    perm_table: Option<LookupTable>,
}

impl CompiledTransform {
    fn lower(tr: &PiecewiseTransform) -> CompiledTransform {
        let n = tr.pieces.len();
        let mut out = CompiledTransform {
            increasing: tr.increasing,
            input_lo: Vec::with_capacity(n),
            input_hi: Vec::with_capacity(n),
            output_lo: Vec::with_capacity(n),
            output_hi: Vec::with_capacity(n),
            prog: Vec::with_capacity(n),
            ops: Vec::new(),
            perm_orig: Vec::new(),
            perm_out: Vec::new(),
            orig_domain: tr.orig_domain.clone(),
            table: None,
            perm_table: None,
        };
        for p in &tr.pieces {
            out.input_lo.push(p.input_lo);
            out.input_hi.push(p.input_hi);
            out.output_lo.push(p.output_lo);
            out.output_hi.push(p.output_hi);
            match &p.kind {
                PieceKind::Monotone { f, s, t } => {
                    let start = out.ops.len() as u32;
                    flatten(f, &mut out.ops);
                    let len = out.ops.len() as u32 - start;
                    out.prog.push(PieceProgram::Monotone { s: *s, t: *t, ops: (start, len) });
                }
                PieceKind::Permutation { map } => {
                    let start = out.perm_orig.len() as u32;
                    for &(orig, image) in map {
                        out.perm_orig.push(orig);
                        out.perm_out.push(image);
                    }
                    let grid = perm_grid(&out.perm_orig[start as usize..]);
                    out.prog
                        .push(PieceProgram::Permutation { perm: (start, map.len() as u32), grid });
                }
            }
        }
        let lo = out.input_lo.first().copied().unwrap_or(f64::NAN);
        out.table = LookupTable::build(lo, &out.input_hi, 4, 4096);
        // The pool is sorted by construction; the `total_cmp` check is
        // a cheap compile-time guard so a violated invariant degrades
        // to binary search instead of wrong lookups. Permutation maps
        // are integer-dense in practice, so 8 buckets per entry keeps
        // occupancy (and thus scan length) low even on value grids.
        if out.perm_orig.windows(2).all(|w| w[0].total_cmp(&w[1]).is_lt()) {
            let lo = out.perm_orig.first().copied().unwrap_or(f64::NAN);
            out.perm_table = LookupTable::build(lo, &out.perm_orig, 8, 1 << 17);
        }
        out
    }

    /// `partition_point(|&hi| hi < x)` over the breakpoint array — via
    /// the direct-index table when one was built, by binary search
    /// otherwise. Both paths return the same index for every `f64`.
    #[inline]
    fn piece_index(&self, x: f64) -> usize {
        match &self.table {
            Some(t) => {
                let mut i = t.first[t.bucket_of(x)] as usize;
                // `first` undershoots by at most the bucket occupancy
                // the density heuristic admitted, so this stays short.
                while i < self.input_hi.len() && self.input_hi[i] < x {
                    i += 1;
                }
                i
            }
            None => self.input_hi.partition_point(|&hi| hi < x),
        }
    }

    /// Exact-match position of `x` within one piece's slice
    /// `perm_orig[start..start + len]` — the batched twin of
    /// `binary_search_by(total_cmp)` over that slice, and
    /// index-identical to it for every `f64`. Through `perm_table` the
    /// probe becomes one bucket index into the *global* pool plus a
    /// short forward scan (bounded by the build's occupancy cap);
    /// because the pool is strictly ascending under `total_cmp`, the
    /// slice's partition point is the global one clamped into the
    /// slice, and a strictly-sorted slice matches at its partition
    /// point or not at all.
    #[inline]
    fn perm_position(&self, start: usize, len: usize, x: f64) -> Option<usize> {
        match &self.perm_table {
            Some(t) => {
                let mut j = t.first[t.bucket_of(x)] as usize;
                while j < self.perm_orig.len() && self.perm_orig[j].total_cmp(&x).is_lt() {
                    j += 1;
                }
                let p = j.saturating_sub(start).min(len);
                (p < len && self.perm_orig[start + p].total_cmp(&x).is_eq()).then_some(p)
            }
            None => self.perm_orig[start..start + len].binary_search_by(|o| o.total_cmp(&x)).ok(),
        }
    }

    /// Piece lookup over the flat breakpoint array — the compiled twin
    /// of [`PiecewiseTransform::piece_for_input`]. Stays on binary
    /// search: the direct-index table's `first` array is cache-cold
    /// for a one-off probe, so it only pays when a whole column's
    /// lookups share it (the batched paths).
    #[inline]
    fn piece_for_input(&self, x: f64) -> Result<usize, PpdtError> {
        let i = self.input_hi.partition_point(|&hi| hi < x);
        if i < self.input_hi.len() && self.input_lo[i] <= x {
            Ok(i)
        } else {
            Err(PpdtError::DomainViolation { attr: None, piece: None, value: x })
        }
    }

    /// The compiled twin of `Piece::encode`.
    #[inline]
    fn encode_piece(&self, i: usize, x: f64) -> Result<f64, PpdtError> {
        match self.prog[i] {
            PieceProgram::Monotone { s, t, ops: (start, len) } => {
                let mut v = x;
                for op in &self.ops[start as usize..(start + len) as usize] {
                    v = op.eval(v);
                }
                Ok(s * v + t)
            }
            PieceProgram::Permutation { perm: (start, len), .. } => {
                let orig = &self.perm_orig[start as usize..(start + len) as usize];
                orig.binary_search_by(|v| v.total_cmp(&x))
                    .map(|j| self.perm_out[start as usize + j])
                    .map_err(|_| PpdtError::DomainViolation { attr: None, piece: None, value: x })
            }
        }
    }

    /// The compiled twin of `Piece::decode`.
    #[inline]
    fn decode_piece(&self, i: usize, y: f64) -> Result<f64, PpdtError> {
        match self.prog[i] {
            PieceProgram::Monotone { s, t, ops: (start, len) } => {
                let mut v = (y - t) / s;
                for op in self.ops[start as usize..(start + len) as usize].iter().rev() {
                    v = op.inverse(v);
                }
                Ok(v)
            }
            PieceProgram::Permutation { perm: (start, len), .. } => {
                // Nearest recorded output, earliest index on exact
                // ties — same scan as the interpreted path.
                let outs = &self.perm_out[start as usize..(start + len) as usize];
                let mut best: Option<(usize, f64)> = None;
                for (j, &out) in outs.iter().enumerate() {
                    let d = (out - y).abs();
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
                match best {
                    Some((j, _)) => Ok(self.perm_orig[start as usize + j]),
                    None => Err(PpdtError::key_corrupt("empty permutation table")),
                }
            }
        }
    }

    /// The compiled twin of [`PiecewiseTransform::locate_output`]:
    /// returns the owning (or, for gap values, nearest) piece index.
    fn locate_output(&self, y: f64) -> Result<usize, PpdtError> {
        let n = self.prog.len();
        if n == 0 {
            return Err(PpdtError::key_corrupt("transform has no pieces"));
        }
        let idx_at = |rank: usize| if self.increasing { rank } else { n - 1 - rank };
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let i = idx_at(mid);
            if y < self.output_lo[i] {
                hi = mid;
            } else if y > self.output_hi[i] {
                lo = mid + 1;
            } else {
                return Ok(i);
            }
        }
        let below = lo.checked_sub(1).map(idx_at);
        let above = (lo < n).then(|| idx_at(lo));
        match (below, above) {
            (Some(b), Some(a)) => {
                let db = (y - self.output_hi[b]).abs().min((y - self.output_lo[b]).abs());
                let da = (y - self.output_lo[a]).abs().min((y - self.output_hi[a]).abs());
                Ok(if db <= da { b } else { a })
            }
            (Some(i), None) | (None, Some(i)) => Ok(i),
            (None, None) => Err(PpdtError::key_corrupt("transform has no pieces")),
        }
    }

    /// Compiled encode of one value — bit-identical to
    /// [`PiecewiseTransform::encode`].
    pub fn encode(&self, x: f64) -> Result<f64, PpdtError> {
        let i = self.piece_for_input(x)?;
        let y = self.encode_piece(i, x).map_err(|e| e.with_piece(i))?;
        if y.is_finite() {
            Ok(y)
        } else {
            Err(PpdtError::KeyCorrupt {
                attr: None,
                piece: Some(i),
                detail: format!("value {x} encodes to non-finite {y}"),
            })
        }
    }

    /// Compiled decode of one value — bit-identical to
    /// [`PiecewiseTransform::decode`].
    pub fn decode(&self, y: f64) -> Result<f64, PpdtError> {
        let i = self.locate_output(y)?;
        let x = self.decode_piece(i, y).map_err(|e| e.with_piece(i))?;
        Ok(x.clamp(self.input_lo[i], self.input_hi[i]))
    }

    /// Compiled decode snapped to the recorded active domain —
    /// bit-identical to [`PiecewiseTransform::decode_snapped`].
    pub fn decode_snapped(&self, y: f64) -> Result<f64, PpdtError> {
        let raw = self.decode(y)?;
        self.snap(raw)
    }

    /// Snaps a raw decode to the recorded active domain — the tail of
    /// [`PiecewiseTransform::decode_snapped`].
    #[inline]
    fn snap(&self, raw: f64) -> Result<f64, PpdtError> {
        nearest(&self.orig_domain, raw)
            .ok_or_else(|| PpdtError::key_corrupt("empty recorded original domain"))
    }

    /// The attribute's global direction.
    pub fn increasing(&self) -> bool {
        self.increasing
    }

    /// Batched encode of a contiguous slice: identical outputs (and
    /// identical errors, at the same first failing row) as pushing
    /// `self.encode(x)` per value, but executed piece-bucketed — one
    /// lookup pass, a counting sort grouping same-piece values into
    /// contiguous scratch, one pass per opcode over each group, and a
    /// row-order scatter back. Encoded values are appended to `dst`;
    /// on error `dst` holds exactly the rows that preceded the
    /// failure.
    pub(crate) fn encode_slice(&self, src: &[f64], dst: &mut Vec<f64>) -> Result<(), PpdtError> {
        let mut lookups = 0u64;
        let res = self.encode_bucketed(src, dst, &mut lookups);
        ppdt_obs::add(ppdt_obs::Counter::BatchedValues, dst.len() as u64);
        let lookup_counter = if self.table.is_some() {
            ppdt_obs::Counter::PieceLookupDirect
        } else {
            ppdt_obs::Counter::PieceLookupBsearch
        };
        ppdt_obs::add(lookup_counter, lookups);
        res
    }

    fn encode_bucketed(
        &self,
        src: &[f64],
        dst: &mut Vec<f64>,
        lookups: &mut u64,
    ) -> Result<(), PpdtError> {
        let np = self.prog.len();
        // Pass 1 — piece lookup per row (histogramming as it goes),
        // stopping at the first value no piece owns (NaN lands here
        // too: every range comparison is false). Rows past that point
        // can never reach `dst` — the per-value loop would have
        // stopped — so they are not encoded.
        let mut piece_of = vec![0u32; src.len()];
        let mut starts = vec![0u32; np + 1];
        let mut bad_lookup = None;
        let mut rows = src.len();
        for (r, (&x, slot)) in src.iter().zip(piece_of.iter_mut()).enumerate() {
            let i = self.piece_index(x);
            if i < np && self.input_lo[i] <= x {
                *slot = i as u32;
                starts[i + 1] += 1;
            } else {
                bad_lookup = Some(x);
                rows = r;
                break;
            }
        }
        piece_of.truncate(rows);
        *lookups += rows as u64 + u64::from(bad_lookup.is_some());

        // Pass 2 — stable counting sort: gather each piece's values
        // into one contiguous scratch range (`starts[i]..starts[i+1]`),
        // remembering every value's source row for the scatter back.
        for b in 1..=np {
            starts[b] += starts[b - 1];
        }
        let mut gathered = vec![0f64; rows];
        let mut row_of = vec![0u32; rows];
        let mut cursor: Vec<u32> = starts[..np].to_vec();
        for (r, &p) in piece_of.iter().enumerate() {
            let c = cursor[p as usize] as usize;
            gathered[c] = src[r];
            row_of[c] = r as u32;
            cursor[p as usize] = c as u32 + 1;
        }

        // Pass 3 — run each piece's program over its gathered group,
        // opcode-outer, value-inner: each value still sees the exact
        // per-value operation sequence (no data flows between values),
        // so results stay bit-identical while dispatch amortizes and
        // the inner loops vectorize. A permutation miss is *recorded*,
        // not returned — an earlier row may still fail the finiteness
        // scan, and the per-value contract is first-failing-row-wins.
        let mut perm_miss: Option<(u32, PpdtError)> = None;
        for i in 0..np {
            let (g0, g1) = (starts[i] as usize, starts[i + 1] as usize);
            if g0 == g1 {
                continue;
            }
            let vals = &mut gathered[g0..g1];
            match self.prog[i] {
                PieceProgram::Monotone { s, t, ops: (start, len) } => {
                    for op in &self.ops[start as usize..(start + len) as usize] {
                        match *op {
                            // Specialized so the pure-FMA pass
                            // vectorizes; the formula is exactly
                            // `Op::Linear`'s eval. The transcendental
                            // ops stay scalar libm calls either way.
                            Op::Linear { a, b } => {
                                for v in vals.iter_mut() {
                                    *v = a * *v + b;
                                }
                            }
                            op => {
                                for v in vals.iter_mut() {
                                    *v = op.eval(*v);
                                }
                            }
                        }
                    }
                    for v in vals.iter_mut() {
                        *v = s * *v + t;
                    }
                }
                PieceProgram::Permutation { perm: (start, len), grid } => {
                    let orig = &self.perm_orig[start as usize..(start + len) as usize];
                    let outs = &self.perm_out[start as usize..(start + len) as usize];
                    for (g, v) in vals.iter_mut().enumerate() {
                        // Grid guess first: O(1), branch-predictable,
                        // verified bit-wise — any mismatch (including
                        // inexact arithmetic on hostile floats) falls
                        // back to the binary search, so results are
                        // indistinguishable from the per-value path.
                        if let Some((first, inv_step)) = grid {
                            let j = ((*v - first) * inv_step).round() as usize;
                            if j < orig.len() && orig[j].to_bits() == v.to_bits() {
                                *v = outs[j];
                                continue;
                            }
                        }
                        match self.perm_position(start as usize, len as usize, *v) {
                            Some(p) => *v = outs[p],
                            None => {
                                let r = row_of[g0 + g];
                                if perm_miss.as_ref().is_none_or(|&(br, _)| r < br) {
                                    let e = PpdtError::DomainViolation {
                                        attr: None,
                                        piece: None,
                                        value: *v,
                                    };
                                    perm_miss = Some((r, e.with_piece(i)));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Pass 4 — scatter back into row order, then the in-order
        // finiteness scan over exactly the rows the per-value loop
        // would have reached before its first error.
        let base = dst.len();
        dst.resize(base + rows, 0.0);
        let out = &mut dst[base..];
        for (g, &r) in row_of.iter().enumerate() {
            out[r as usize] = gathered[g];
        }
        let limit = perm_miss.as_ref().map_or(rows, |&(r, _)| r as usize);
        if let Some(r) = dst[base..base + limit].iter().position(|y| !y.is_finite()) {
            let (x, y) = (src[r], dst[base + r]);
            let i = piece_of[r] as usize;
            dst.truncate(base + r);
            return Err(PpdtError::KeyCorrupt {
                attr: None,
                piece: Some(i),
                detail: format!("value {x} encodes to non-finite {y}"),
            });
        }
        if let Some((r, e)) = perm_miss {
            dst.truncate(base + r as usize);
            return Err(e);
        }
        if let Some(x) = bad_lookup {
            return Err(PpdtError::DomainViolation { attr: None, piece: None, value: x });
        }
        Ok(())
    }

    /// Batched snapped decode of a contiguous slice: identical outputs
    /// and errors as pushing `self.decode_snapped(y)` per value. Runs
    /// are carved by output-interval membership (audited keys have
    /// disjoint intervals, so membership pins the same piece
    /// `locate_output` would return); gap values — outside every
    /// interval — snap to a nearest piece that says nothing about
    /// their neighbours, so they decode singly.
    pub(crate) fn decode_slice(&self, src: &[f64], dst: &mut Vec<f64>) -> Result<(), PpdtError> {
        let res = self.decode_runs(src, dst);
        ppdt_obs::add(ppdt_obs::Counter::BatchedValues, dst.len() as u64);
        res
    }

    fn decode_runs(&self, src: &[f64], dst: &mut Vec<f64>) -> Result<(), PpdtError> {
        let mut k = 0;
        while k < src.len() {
            let y0 = src[k];
            let i = self.locate_output(y0)?;
            if !(self.output_lo[i] <= y0 && y0 <= self.output_hi[i]) {
                // Gap or NaN probe: exactly the per-value path.
                let x = self.decode_piece(i, y0).map_err(|e| e.with_piece(i))?;
                dst.push(self.snap(x.clamp(self.input_lo[i], self.input_hi[i]))?);
                k += 1;
                continue;
            }
            let (olo, ohi) = (self.output_lo[i], self.output_hi[i]);
            let mut j = k + 1;
            while j < src.len() && olo <= src[j] && src[j] <= ohi {
                j += 1;
            }
            let run = &src[k..j];
            match self.prog[i] {
                PieceProgram::Monotone { s, t, ops: (start, len) } => {
                    let base = dst.len();
                    dst.extend_from_slice(run);
                    let out = &mut dst[base..];
                    for v in out.iter_mut() {
                        *v = (*v - t) / s;
                    }
                    for op in self.ops[start as usize..(start + len) as usize].iter().rev() {
                        for v in out.iter_mut() {
                            *v = op.inverse(*v);
                        }
                    }
                    let (ilo, ihi) = (self.input_lo[i], self.input_hi[i]);
                    for v in out.iter_mut() {
                        *v = v.clamp(ilo, ihi);
                    }
                    for m in base..dst.len() {
                        match nearest(&self.orig_domain, dst[m]) {
                            Some(snapped) => dst[m] = snapped,
                            None => {
                                dst.truncate(m);
                                return Err(PpdtError::key_corrupt(
                                    "empty recorded original domain",
                                ));
                            }
                        }
                    }
                }
                PieceProgram::Permutation { .. } => {
                    for &y in run {
                        let x = self.decode_piece(i, y).map_err(|e| e.with_piece(i))?;
                        dst.push(self.snap(x.clamp(self.input_lo[i], self.input_hi[i]))?);
                    }
                }
            }
            k = j;
        }
        Ok(())
    }
}

/// A [`TransformKey`] lowered into flat per-attribute
/// [`CompiledTransform`]s. Construction audits the key, so holding a
/// `CompiledKey` certifies the key passed its structural audit — hot
/// paths can encode without re-validating.
#[derive(Clone, Debug)]
pub struct CompiledKey {
    attrs: Vec<CompiledTransform>,
}

impl CompiledKey {
    /// Audits `key` ([`crate::audit::audit_key`]) and lowers it.
    /// Returns the audit's first error when the key is corrupt.
    pub fn compile(key: &TransformKey) -> Result<CompiledKey, PpdtError> {
        if let Some(e) = crate::audit::audit_key(key).first_error() {
            return Err(e);
        }
        Ok(Self::compile_trusted(key))
    }

    /// Lowers a key **without** auditing it. Only for callers that
    /// just audited the same bytes themselves (e.g. a key store whose
    /// load path always audits); everyone else wants
    /// [`CompiledKey::compile`].
    pub fn compile_trusted(key: &TransformKey) -> CompiledKey {
        CompiledKey { attrs: key.transforms.iter().map(CompiledTransform::lower).collect() }
    }

    /// Number of attributes the key covers.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// The compiled transform of attribute `a`, or
    /// [`PpdtError::SchemaMismatch`] — same contract (and message) as
    /// [`TransformKey::try_transform`].
    pub fn try_transform(&self, a: AttrId) -> Result<&CompiledTransform, PpdtError> {
        self.attrs.get(a.index()).ok_or_else(|| PpdtError::SchemaMismatch {
            detail: format!(
                "attribute {a} out of range for a key with {} transform(s)",
                self.attrs.len()
            ),
        })
    }

    /// Compiled twin of [`TransformKey::encode_value`].
    pub fn encode_value(&self, a: AttrId, x: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.encode(x).map_err(|e| e.with_attr(a.index()))
    }

    /// Compiled twin of [`TransformKey::decode_value`] (snapped).
    pub fn decode_value(&self, a: AttrId, y: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.decode_snapped(y).map_err(|e| e.with_attr(a.index()))
    }

    /// Compiled twin of [`TransformKey::decode_value_raw`].
    pub fn decode_value_raw(&self, a: AttrId, y: f64) -> Result<f64, PpdtError> {
        self.try_transform(a)?.decode(y).map_err(|e| e.with_attr(a.index()))
    }

    /// Encodes a whole column into `dst` (cleared first). One
    /// reservation up front, then the batched run engine: piece lookup
    /// and opcode dispatch are amortized over same-piece runs, with
    /// results — and errors, at the same row — bit-identical to
    /// calling [`CompiledKey::encode_value`] per value.
    pub fn encode_column(
        &self,
        a: AttrId,
        src: &[f64],
        dst: &mut Vec<f64>,
    ) -> Result<(), PpdtError> {
        let tr = self.try_transform(a)?;
        dst.clear();
        dst.reserve(src.len());
        tr.encode_slice(src, dst).map_err(|e| e.with_attr(a.index()))
    }

    /// Decodes a whole column (snapped to the recorded active domain)
    /// into `dst` (cleared first) — the batched twin of calling
    /// [`CompiledKey::decode_value`] per value, bit-identical
    /// including error positions.
    pub fn decode_column(
        &self,
        a: AttrId,
        src: &[f64],
        dst: &mut Vec<f64>,
    ) -> Result<(), PpdtError> {
        let tr = self.try_transform(a)?;
        dst.clear();
        dst.reserve(src.len());
        tr.decode_slice(src, dst).map_err(|e| e.with_attr(a.index()))
    }

    /// Compiled twin of [`TransformKey::decode_dataset`]: inverts a
    /// whole encoded dataset through the batched column engine. Same
    /// schema-mismatch contract, same per-attribute error context,
    /// bit-identical cells.
    pub fn decode_dataset(
        &self,
        d_prime: &ppdt_data::Dataset,
    ) -> Result<ppdt_data::Dataset, PpdtError> {
        if self.attrs.len() != d_prime.num_attrs() {
            return Err(PpdtError::SchemaMismatch {
                detail: format!(
                    "key has {} transform(s) but the dataset has {} attribute(s)",
                    self.attrs.len(),
                    d_prime.num_attrs()
                ),
            });
        }
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(self.attrs.len());
        for a in d_prime.schema().attrs() {
            let mut col = Vec::new();
            self.decode_column(a, d_prime.column(a), &mut col)?;
            columns.push(col);
        }
        Ok(d_prime.with_columns(columns))
    }

    /// Drops every attribute's direct-index lookup table, forcing the
    /// binary-search piece-lookup path. Exists so equivalence tests
    /// can pin direct-vs-bsearch bit-identity from outside the crate;
    /// not part of the supported API.
    #[doc(hidden)]
    pub fn without_lookup_tables(mut self) -> CompiledKey {
        for tr in &mut self.attrs {
            tr.table = None;
            tr.perm_table = None;
        }
        self
    }

    /// Whether attribute `a` compiled with a direct-index table over
    /// its permutation pool. Test-only observability.
    #[doc(hidden)]
    pub fn has_perm_table(&self, a: AttrId) -> bool {
        self.attrs.get(a.index()).is_some_and(|tr| tr.perm_table.is_some())
    }

    /// Whether attribute `a` compiled with a direct-index lookup
    /// table. Test-only observability for the density heuristic.
    #[doc(hidden)]
    pub fn has_lookup_table(&self, a: AttrId) -> bool {
        self.attrs.get(a.index()).is_some_and(|tr| tr.table.is_some())
    }
}

/// A fused decode∘encode plan for online key rotation: re-encodes
/// data already encoded under a *source* key so it reads as if it had
/// been encoded under a *target* key, one column at a time.
///
/// The fusion is at the column level: each attribute is decoded
/// through the source plan's batched engine into a single reused
/// scratch buffer and immediately re-encoded through the target
/// plan's, so the only plaintext ever materialized is one column's
/// worth inside this plan — no decoded `Dataset` is ever built, which
/// is what lets a custodian daemon rotate keys without the cleartext
/// relation crossing its boundary.
///
/// Because both halves *are* the batched column paths
/// ([`CompiledKey::decode_column`] / [`CompiledKey::encode_column`]),
/// the output is **bit-identical** to the unfused decode-then-encode
/// sequence — same bits, and the same error at the same row — which
/// the `rekey` proptest in `tests/compiled_equivalence.rs` pins.
#[derive(Debug)]
pub struct RekeyPlan<'k> {
    src: &'k CompiledKey,
    dst: &'k CompiledKey,
    /// Reused per-column plaintext scratch; cleared by every decode.
    scratch: Vec<f64>,
}

impl<'k> RekeyPlan<'k> {
    /// Builds a rotation plan from key `src` to key `dst`. The keys
    /// must cover the same number of attributes
    /// ([`PpdtError::SchemaMismatch`] otherwise).
    pub fn new(src: &'k CompiledKey, dst: &'k CompiledKey) -> Result<RekeyPlan<'k>, PpdtError> {
        if src.num_attrs() != dst.num_attrs() {
            return Err(PpdtError::SchemaMismatch {
                detail: format!(
                    "cannot rekey: source key has {} transform(s) but target has {}",
                    src.num_attrs(),
                    dst.num_attrs()
                ),
            });
        }
        Ok(RekeyPlan { src, dst, scratch: Vec::new() })
    }

    /// Number of attributes both keys cover.
    pub fn num_attrs(&self) -> usize {
        self.src.num_attrs()
    }

    /// Rotates one column: snapped decode under the source key into
    /// the internal scratch, then encode under the target key into
    /// `dst_col` (cleared first). Bit-identical — including the error
    /// and the row it surfaces at — to calling
    /// [`CompiledKey::decode_column`] then
    /// [`CompiledKey::encode_column`] with a caller-held buffer.
    pub fn rekey_column(
        &mut self,
        a: AttrId,
        src_col: &[f64],
        dst_col: &mut Vec<f64>,
    ) -> Result<(), PpdtError> {
        let (src, dst) = (self.src, self.dst);
        src.decode_column(a, src_col, &mut self.scratch)?;
        dst.encode_column(a, &self.scratch, dst_col)
    }

    /// Rotates a whole encoded dataset: every column through
    /// [`RekeyPlan::rekey_column`], schema and labels untouched. Same
    /// arity contract as [`CompiledKey::decode_dataset`].
    pub fn rekey_dataset(
        &mut self,
        d_prime: &ppdt_data::Dataset,
    ) -> Result<ppdt_data::Dataset, PpdtError> {
        if self.num_attrs() != d_prime.num_attrs() {
            return Err(PpdtError::SchemaMismatch {
                detail: format!(
                    "rekey plan covers {} attribute(s) but the dataset has {}",
                    self.num_attrs(),
                    d_prime.num_attrs()
                ),
            });
        }
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(self.num_attrs());
        for a in d_prime.schema().attrs() {
            let mut col = Vec::new();
            self.rekey_column(a, d_prime.column(a), &mut col)?;
            columns.push(col);
        }
        Ok(d_prime.with_columns(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::BreakpointStrategy;
    use crate::encoder::{EncodeConfig, Encoder};
    use crate::family::FnFamily;
    use ppdt_data::gen::{random_dataset, RandomDatasetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_key(
        seed: u64,
        anti: f64,
        family: FnFamily,
    ) -> (crate::TransformKey, ppdt_data::Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg =
            RandomDatasetConfig { num_rows: 120, num_attrs: 3, num_classes: 3, value_range: 18 };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 1 },
            family,
            anti_monotone_prob: anti,
            ..Default::default()
        };
        let (key, _) = Encoder::new(config).encode(&mut rng, &d).unwrap().into_parts();
        (key, d)
    }

    #[test]
    fn compiled_encode_decode_bit_identical_on_domain() {
        for (seed, anti, family) in
            [(1, 0.0, FnFamily::Mixed), (2, 1.0, FnFamily::Mixed), (3, 0.5, FnFamily::Composed)]
        {
            let (key, d) = sample_key(seed, anti, family);
            let compiled = CompiledKey::compile(&key).unwrap();
            for a in d.schema().attrs() {
                for &x in &d.active_domain(a) {
                    let y_i = key.encode_value(a, x).unwrap();
                    let y_c = compiled.encode_value(a, x).unwrap();
                    assert_eq!(y_i.to_bits(), y_c.to_bits(), "encode attr {a} value {x}");
                    let x_i = key.decode_value(a, y_i).unwrap();
                    let x_c = compiled.decode_value(a, y_c).unwrap();
                    assert_eq!(x_i.to_bits(), x_c.to_bits(), "decode attr {a} value {x}");
                }
            }
        }
    }

    #[test]
    fn compiled_errors_match_interpreted() {
        let (key, _) = sample_key(7, 0.0, FnFamily::Mixed);
        let compiled = CompiledKey::compile(&key).unwrap();
        // Out-of-range attribute: same SchemaMismatch.
        assert_eq!(
            key.encode_value(AttrId(99), 1.0).unwrap_err(),
            compiled.encode_value(AttrId(99), 1.0).unwrap_err(),
        );
        // Out-of-domain value: same DomainViolation with attr context.
        assert_eq!(
            key.encode_value(AttrId(0), 1e12).unwrap_err(),
            compiled.encode_value(AttrId(0), 1e12).unwrap_err(),
        );
    }

    #[test]
    fn compile_rejects_corrupt_keys() {
        let (mut key, _) = sample_key(9, 0.0, FnFamily::Mixed);
        key.transforms[0].pieces.clear();
        assert!(CompiledKey::compile(&key).is_err());
    }

    #[test]
    fn encode_column_matches_per_value() {
        let (key, d) = sample_key(11, 1.0, FnFamily::Mixed);
        let compiled = CompiledKey::compile(&key).unwrap();
        let mut out = Vec::new();
        for a in d.schema().attrs() {
            compiled.encode_column(a, d.column(a), &mut out).unwrap();
            for (&x, &y) in d.column(a).iter().zip(&out) {
                assert_eq!(key.encode_value(a, x).unwrap().to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn decode_column_matches_per_value() {
        let (key, d) = sample_key(13, 0.5, FnFamily::Composed);
        let compiled = CompiledKey::compile(&key).unwrap();
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        for a in d.schema().attrs() {
            compiled.encode_column(a, d.column(a), &mut enc).unwrap();
            // Mix in gap probes between real codes so the single-value
            // fallback path runs too.
            let mut probes = enc.clone();
            probes.push(f64::NAN);
            probes.push(1e9);
            probes.push(-1e9);
            compiled.decode_column(a, &probes, &mut dec).unwrap();
            for (&y, &x) in probes.iter().zip(&dec) {
                assert_eq!(key.decode_value(a, y).unwrap().to_bits(), x.to_bits(), "attr {a}");
            }
        }
    }

    #[test]
    fn decode_dataset_matches_interpreted() {
        let mut rng = StdRng::seed_from_u64(17);
        let cfg =
            RandomDatasetConfig { num_rows: 120, num_attrs: 3, num_classes: 3, value_range: 18 };
        let d = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 1 },
            family: FnFamily::Mixed,
            anti_monotone_prob: 0.5,
            ..Default::default()
        };
        let (key, d2) = Encoder::new(config).encode(&mut rng, &d).unwrap().into_parts();
        let compiled = CompiledKey::compile(&key).unwrap();
        assert_eq!(key.decode_dataset(&d2).unwrap(), compiled.decode_dataset(&d2).unwrap());
        // Same schema-mismatch contract on an arity mismatch.
        let narrow_cfg = RandomDatasetConfig { num_attrs: 2, ..cfg };
        let narrow = random_dataset(&mut rng, &narrow_cfg);
        assert_eq!(
            key.decode_dataset(&narrow).unwrap_err(),
            compiled.decode_dataset(&narrow).unwrap_err(),
        );
    }

    #[test]
    fn lookup_table_and_bsearch_agree() {
        let (key, d) = sample_key(19, 0.5, FnFamily::Mixed);
        let tabled = CompiledKey::compile(&key).unwrap();
        let plain = tabled.clone().without_lookup_tables();
        assert!(
            d.schema().attrs().any(|a| tabled.has_lookup_table(a)),
            "sample keys should be dense enough to build at least one table"
        );
        let (mut a_out, mut b_out) = (Vec::new(), Vec::new());
        for a in d.schema().attrs() {
            // Domain values, shifted off-domain probes, and hostile
            // floats all resolve to the same piece either way.
            let mut probes = d.column(a).to_vec();
            probes.extend(probes.clone().iter().map(|x| x + 0.5));
            probes.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1e300, 1e300, 0.0]);
            for &x in &probes {
                let ya = tabled.encode_value(a, x);
                let yb = plain.encode_value(a, x);
                match (ya, yb) {
                    (Ok(ya), Ok(yb)) => assert_eq!(ya.to_bits(), yb.to_bits(), "attr {a} x {x}"),
                    // Debug strings, because PartialEq on a
                    // DomainViolation carrying NaN is always false.
                    (ya, yb) => assert_eq!(format!("{ya:?}"), format!("{yb:?}"), "attr {a} x {x}"),
                }
            }
            let ra = tabled.encode_column(a, &probes, &mut a_out);
            let rb = plain.encode_column(a, &probes, &mut b_out);
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "attr {a}");
            assert_eq!(
                a_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "attr {a}"
            );
        }
    }

    #[test]
    fn perm_pool_table_matches_binary_search() {
        // Hand-built pool: gappy spacing (no grid), a -0.0/0.0
        // adjacency (IEEE `<` says they're equal, total_cmp orders
        // them), and enough spread that the density heuristic accepts.
        let pool = vec![-3.5, -0.0, 0.0, 1.0, 2.5, 4.0, 7.25, 9.0, 12.0, 100.0];
        let tr = CompiledTransform {
            increasing: true,
            input_lo: Vec::new(),
            input_hi: Vec::new(),
            output_lo: Vec::new(),
            output_hi: Vec::new(),
            prog: Vec::new(),
            ops: Vec::new(),
            perm_orig: pool.clone(),
            perm_out: vec![0.0; pool.len()],
            orig_domain: Vec::new(),
            table: None,
            perm_table: LookupTable::build(pool[0], &pool, 8, 1 << 17),
        };
        assert!(tr.perm_table.is_some(), "spread-out pool should build a table");
        let mut probes = pool.clone();
        probes.extend([
            -0.0,
            0.0,
            0.5,
            3.0,
            -1.0,
            -100.0,
            50.0,
            1e3,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1e300,
            1e300,
        ]);
        // Every sub-slice a piece could own, including empty ones.
        for start in 0..pool.len() {
            for len in 0..=(pool.len() - start) {
                for &x in &probes {
                    assert_eq!(
                        tr.perm_position(start, len, x),
                        pool[start..start + len].binary_search_by(|o| o.total_cmp(&x)).ok(),
                        "start {start} len {len} probe {x}",
                    );
                }
            }
        }
    }

    #[test]
    fn rekey_matches_unfused_and_direct_target_encode() {
        // Two independent keys over the same dataset: rotating D'_A
        // through the fused plan must equal (a) the unfused
        // decode-then-encode sequence bit-for-bit and (b) a direct
        // encode of the original data under key B, because snapped
        // decode is exact on genuine codes.
        let (key_a, d) = sample_key(31, 0.5, FnFamily::Mixed);
        let mut rng = StdRng::seed_from_u64(32);
        let config = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 1 },
            family: FnFamily::Mixed,
            anti_monotone_prob: 0.5,
            ..Default::default()
        };
        let (key_b, d_b) = Encoder::new(config).encode(&mut rng, &d).unwrap().into_parts();
        let (plan_a, plan_b) =
            (CompiledKey::compile(&key_a).unwrap(), CompiledKey::compile(&key_b).unwrap());
        let mut rekey = RekeyPlan::new(&plan_a, &plan_b).unwrap();
        for a in d.schema().attrs() {
            let mut src_col = Vec::new();
            plan_a.encode_column(a, d.column(a), &mut src_col).unwrap();
            let mut fused = Vec::new();
            rekey.rekey_column(a, &src_col, &mut fused).unwrap();
            let (mut plain, mut unfused) = (Vec::new(), Vec::new());
            plan_a.decode_column(a, &src_col, &mut plain).unwrap();
            plan_b.encode_column(a, &plain, &mut unfused).unwrap();
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                unfused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "attr {a}: fused and unfused rekey diverged"
            );
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d_b.column(a).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "attr {a}: rekeyed column must equal the direct key-B encode"
            );
        }
        // Whole-dataset rotation reproduces the key-B encode exactly.
        let d_a = d.with_columns(
            d.schema()
                .attrs()
                .map(|a| {
                    let mut col = Vec::new();
                    plan_a.encode_column(a, d.column(a), &mut col).unwrap();
                    col
                })
                .collect(),
        );
        assert_eq!(rekey.rekey_dataset(&d_a).unwrap(), d_b);
    }

    #[test]
    fn rekey_arity_mismatch_is_schema_error() {
        let (key_a, _) = sample_key(33, 0.0, FnFamily::Mixed);
        let plan_a = CompiledKey::compile(&key_a).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        let cfg =
            RandomDatasetConfig { num_rows: 60, num_attrs: 2, num_classes: 2, value_range: 12 };
        let narrow = random_dataset(&mut rng, &cfg);
        let config = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 4, min_piece_len: 1 },
            family: FnFamily::Mixed,
            ..Default::default()
        };
        let (key_b, _) = Encoder::new(config).encode(&mut rng, &narrow).unwrap().into_parts();
        let plan_b = CompiledKey::compile(&key_b).unwrap();
        assert!(matches!(RekeyPlan::new(&plan_a, &plan_b), Err(PpdtError::SchemaMismatch { .. })));
        // Dataset arity is checked too.
        let mut same = RekeyPlan::new(&plan_a, &plan_a).unwrap();
        assert!(matches!(same.rekey_dataset(&narrow), Err(PpdtError::SchemaMismatch { .. })));
    }

    #[test]
    fn batched_errors_match_per_value_mid_column() {
        let (key, d) = sample_key(23, 0.5, FnFamily::Mixed);
        let compiled = CompiledKey::compile(&key).unwrap();
        let a = AttrId(0);
        // A poisoned value mid-column errors identically to the
        // per-value loop, and rows before it survive in `dst`.
        let mut col = d.column(a).to_vec();
        let poison_at = col.len() / 2;
        col[poison_at] = 1e12;
        let per_value_err = key.encode_value(a, 1e12).unwrap_err();
        let mut out = Vec::new();
        let batched_err = compiled.encode_column(a, &col, &mut out).unwrap_err();
        assert_eq!(batched_err, per_value_err);
        assert_eq!(out.len(), poison_at, "rows before the failure are kept");
        for (&x, &y) in col[..poison_at].iter().zip(&out) {
            assert_eq!(key.encode_value(a, x).unwrap().to_bits(), y.to_bits());
        }
    }
}
