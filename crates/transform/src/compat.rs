//! Deprecated free-function shims over [`Encoder`].
//!
//! The historical encode entry points sprawled into five
//! near-duplicate dataset functions plus two attribute-level ones; the
//! [`Encoder`] builder is now the one front door. These
//! wrappers keep old callers compiling (with a deprecation warning)
//! and are the only module allowed to call them — a grep gate in
//! `scripts/check.sh` (`deprecated_gate.py`) fails the build on any
//! use outside this file.

#![allow(deprecated)]

use rand::Rng;

use ppdt_data::{AttrId, Dataset};
use ppdt_error::PpdtError;
use ppdt_tree::TreeParams;

use crate::encoder::{EncodeConfig, Encoded, Encoder, RetryPolicy, TransformKey};
use crate::piecewise::PiecewiseTransform;

/// Encodes every attribute of `d` serially with the default
/// [`RetryPolicy`].
#[deprecated(note = "use `Encoder::new(*config).encode(rng, d)` instead")]
pub fn encode_dataset<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    config: &EncodeConfig,
) -> Result<(TransformKey, Dataset), PpdtError> {
    Encoder::new(*config).encode(rng, d).map(Encoded::into_parts)
}

/// Encodes every attribute of `d` serially with an explicit
/// [`RetryPolicy`].
#[deprecated(note = "use `Encoder::new(*config).retry(policy).encode(rng, d)` instead")]
pub fn encode_dataset_with<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    config: &EncodeConfig,
    policy: RetryPolicy,
) -> Result<(TransformKey, Dataset), PpdtError> {
    Encoder::new(*config).retry(policy).encode(rng, d).map(Encoded::into_parts)
}

/// Encodes attributes on an auto-sized crossbeam pool; bit-identical
/// to the serial path.
#[deprecated(note = "use `Encoder::new(*config).threads(0).encode(rng, d)` instead")]
pub fn encode_dataset_parallel<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    config: &EncodeConfig,
) -> Result<(TransformKey, Dataset), PpdtError> {
    Encoder::new(*config).threads(0).encode(rng, d).map(Encoded::into_parts)
}

/// Parallel encode with an explicit [`RetryPolicy`].
#[deprecated(note = "use `Encoder::new(*config).threads(0).retry(policy).encode(rng, d)` instead")]
pub fn encode_dataset_parallel_with<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    config: &EncodeConfig,
    policy: RetryPolicy,
) -> Result<(TransformKey, Dataset), PpdtError> {
    Encoder::new(*config).threads(0).retry(policy).encode(rng, d).map(Encoded::into_parts)
}

/// Custodian-side verified encoding (see
/// [`Encoder::verify`](crate::Encoder::verify)); returns the attempt
/// count as the third element.
#[deprecated(
    note = "use `Encoder::new(*config).retry(policy).verify_with(params).encode(rng, d)` instead"
)]
pub fn encode_dataset_verified<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    encode_config: &EncodeConfig,
    params: TreeParams,
    policy: RetryPolicy,
) -> Result<(TransformKey, Dataset, usize), PpdtError> {
    let e = Encoder::new(*encode_config).retry(policy).verify_with(params).encode(rng, d)?;
    Ok((e.key, e.dataset, e.attempts))
}

/// Builds the piecewise transform of one attribute with the default
/// [`RetryPolicy`].
#[deprecated(note = "use `Encoder::new(*config).encode_attribute(rng, d, a)` instead")]
pub fn encode_attribute<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    config: &EncodeConfig,
) -> Result<PiecewiseTransform, PpdtError> {
    Encoder::new(*config).encode_attribute(rng, d, a)
}

/// Builds the piecewise transform of one attribute with an explicit
/// [`RetryPolicy`].
#[deprecated(
    note = "use `Encoder::new(*config).retry(policy).encode_attribute(rng, d, a)` instead"
)]
pub fn encode_attribute_with<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    a: AttrId,
    config: &EncodeConfig,
    policy: RetryPolicy,
) -> Result<PiecewiseTransform, PpdtError> {
    Encoder::new(*config).retry(policy).encode_attribute(rng, d, a)
}
