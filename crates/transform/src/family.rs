//! Random samplers over the monotone function family (Section 5.3:
//! "a randomization step is used to select the transformation").

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::func::MonoFunc;

/// Which sub-family of `F_mono` to draw per-piece functions from.
///
/// The paper's Section 6.2.2 compares `polynomial`, `log` and
/// `sqrt(log)`; [`FnFamily::Mixed`] draws a different sub-family per
/// piece, which is the recommended default (one more thing the hacker
/// does not know).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FnFamily {
    /// Linear functions only.
    Linear,
    /// Signed-power ("higher-order polynomial") functions.
    Polynomial,
    /// Logarithmic functions.
    Log,
    /// `sqrt(log)` functions.
    SqrtLog,
    /// Exponential functions.
    Exp,
    /// Compositions of two random primitives (`F_mono` is closed under
    /// composition — Section 5.3).
    Composed,
    /// A different randomly chosen sub-family per piece (including
    /// compositions).
    Mixed,
}

impl FnFamily {
    /// The primitive (non-composed, non-`Mixed`) families.
    pub const CONCRETE: [FnFamily; 5] =
        [FnFamily::Linear, FnFamily::Polynomial, FnFamily::Log, FnFamily::SqrtLog, FnFamily::Exp];

    /// Samples a function of this family that is valid and strictly
    /// monotone on `[lo, hi]`, with the requested direction.
    ///
    /// The absolute scale of the sampled function is irrelevant — the
    /// piecewise encoder affinely renormalizes each piece's output into
    /// its target interval — so the sampler only randomizes the
    /// *shape* (centers, exponents, rates).
    pub fn sample<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        lo: f64,
        hi: f64,
        increasing: bool,
    ) -> MonoFunc {
        assert!(lo <= hi, "invalid domain [{lo}, {hi}]");
        let width = (hi - lo).max(1.0);
        let sign = if increasing { 1.0 } else { -1.0 };
        let f = match self {
            FnFamily::Mixed => {
                // One in four pieces gets a composition; the rest a
                // random primitive.
                let pick = if rng.gen_bool(0.25) {
                    FnFamily::Composed
                } else {
                    FnFamily::CONCRETE[rng.gen_range(0..FnFamily::CONCRETE.len())]
                };
                return pick.sample(rng, lo, hi, increasing);
            }
            FnFamily::Composed => {
                // inner direction random; outer direction chosen so the
                // composition has the requested direction.
                let inner_inc = rng.gen_bool(0.5);
                let inner = FnFamily::CONCRETE[rng.gen_range(0..FnFamily::CONCRETE.len())]
                    .sample(rng, lo, hi, inner_inc);
                let (ia, ib) = (inner.eval(lo), inner.eval(hi));
                let (img_lo, img_hi) = (ia.min(ib), ia.max(ib));
                let outer_inc = increasing == inner_inc;
                let outer = FnFamily::CONCRETE[rng.gen_range(0..FnFamily::CONCRETE.len())]
                    .sample(rng, img_lo, img_hi, outer_inc);
                return MonoFunc::compose(outer, inner);
            }
            FnFamily::Linear => MonoFunc::Linear {
                a: sign * rng.gen_range(0.2..3.0),
                b: rng.gen_range(-width..width),
            },
            FnFamily::Polynomial => MonoFunc::Power {
                a: sign * rng.gen_range(0.2..2.0),
                c: rng.gen_range(lo - width..hi + width),
                p: *[2.0, 3.0, rng.gen_range(1.2..4.0)]
                    .get(rng.gen_range(0..3))
                    .expect("index in range"),
                b: 0.0,
            },
            FnFamily::Log => MonoFunc::Log {
                a: sign * rng.gen_range(0.5..4.0),
                c: lo - rng.gen_range(0.05..1.0) * width - 1e-6,
                b: 0.0,
            },
            FnFamily::SqrtLog => MonoFunc::SqrtLog {
                a: sign * rng.gen_range(0.5..4.0),
                c: lo - 1.0 - rng.gen_range(0.05..1.0) * width,
                b: 0.0,
            },
            FnFamily::Exp => {
                let k = rng.gen_range(0.5..3.0) / width;
                MonoFunc::Exp { a: sign, k, c: lo, b: 0.0 }
            }
        };
        debug_assert!(f.valid_on(lo, hi), "sampled invalid function {f:?} on [{lo}, {hi}]");
        debug_assert_eq!(f.is_increasing(), increasing);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_valid_and_directed() {
        let mut rng = StdRng::seed_from_u64(99);
        for fam in FnFamily::CONCRETE {
            for &increasing in &[true, false] {
                for _ in 0..50 {
                    let (lo, hi) = (3.0, 777.0);
                    let f = fam.sample(&mut rng, lo, hi, increasing);
                    assert!(f.valid_on(lo, hi), "{fam:?} {f:?}");
                    assert_eq!(f.is_increasing(), increasing, "{fam:?} {f:?}");
                    // Spot-check strict monotonicity over the domain.
                    let (ya, yb, yc) = (f.eval(lo), f.eval(390.0), f.eval(hi));
                    if increasing {
                        assert!(ya < yb && yb < yc, "{fam:?} {f:?}");
                    } else {
                        assert!(ya > yb && yb > yc, "{fam:?} {f:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn composed_samples_are_valid_and_directed() {
        let mut rng = StdRng::seed_from_u64(77);
        for &increasing in &[true, false] {
            for _ in 0..100 {
                let (lo, hi) = (2.0, 450.0);
                let f = FnFamily::Composed.sample(&mut rng, lo, hi, increasing);
                assert!(f.valid_on(lo, hi), "{f:?}");
                assert_eq!(f.is_increasing(), increasing, "{f:?}");
                let (ya, yb, yc) = (f.eval(lo), f.eval(225.0), f.eval(hi));
                if increasing {
                    assert!(ya < yb && yb < yc, "{f:?}");
                } else {
                    assert!(ya > yb && yb > yc, "{f:?}");
                }
                // Inverse round-trips through the composition. The
                // analytic inverse of a composition can be
                // ill-conditioned (a power inner stretches the image
                // over many orders of magnitude; a log-like outer
                // compresses it back), so the tolerance is absolute
                // relative to the domain width — far below the unit
                // grid gap that decode-snapping resolves exactly.
                for x in [lo, 100.0, hi] {
                    let back = f.inverse(f.eval(x));
                    assert!((back - x).abs() < 1e-3 * (hi - lo), "{f:?} at {x}");
                }
            }
        }
    }

    #[test]
    fn mixed_draws_multiple_variants() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let f = FnFamily::Mixed.sample(&mut rng, 0.0, 100.0, true);
            let tag = match f {
                MonoFunc::Linear { .. } => 0u8,
                MonoFunc::Power { .. } => 1,
                MonoFunc::Log { .. } => 2,
                MonoFunc::SqrtLog { .. } => 3,
                MonoFunc::Exp { .. } => 4,
                MonoFunc::Composed { .. } => 5,
            };
            seen.insert(tag);
        }
        assert!(seen.len() >= 3, "Mixed should hit several sub-families");
    }

    #[test]
    fn degenerate_single_point_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        for fam in FnFamily::CONCRETE {
            let f = fam.sample(&mut rng, 10.0, 10.0, true);
            assert!(f.eval(10.0).is_finite(), "{fam:?}");
        }
    }

    #[test]
    fn negative_domains_supported() {
        let mut rng = StdRng::seed_from_u64(6);
        for fam in FnFamily::CONCRETE {
            let f = fam.sample(&mut rng, -500.0, -20.0, false);
            assert!(f.valid_on(-500.0, -20.0), "{fam:?} {f:?}");
            assert!(f.eval(-500.0) > f.eval(-20.0));
        }
    }
}
