//! The random-perturbation baseline (Agrawal–Srikant style additive
//! noise) the paper contrasts against in Sections 1–2.
//!
//! Perturbation trades outcome fidelity for privacy: the mined tree
//! changes, and — for discrete domains — a fraction of values survives
//! unchanged and is revealed outright (the paper cites ~30% unchanged
//! in \[8\]'s settings). The experiment harness uses this module to
//! reproduce that contrast: `ppdt`'s transformations change *every*
//! value and change *no* outcome.

use rand::Rng;
use serde::{Deserialize, Serialize};

use ppdt_data::Dataset;

/// Noise model for the perturbation baseline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PerturbKind {
    /// Uniform noise in `[-level·range, +level·range]`.
    Uniform,
    /// Gaussian noise with standard deviation `level·range`.
    Gaussian,
}

/// Result of perturbing a dataset.
#[derive(Clone, Debug)]
pub struct Perturbation {
    /// The perturbed dataset.
    pub dataset: Dataset,
    /// Per attribute: fraction of tuples whose value is unchanged
    /// after snapping back to the attribute's integer grid (input
    /// privacy leak of the baseline).
    pub unchanged_fraction: Vec<f64>,
}

/// Perturbs every attribute of `d` with additive noise of relative
/// magnitude `level` (fraction of the attribute's dynamic range).
///
/// Values are snapped back to the attribute's grid granularity so the
/// perturbed data has the same discrete look as the original — this is
/// what makes "value unchanged" a meaningful disclosure (and is how
/// discrete-domain perturbation is deployed in practice).
///
/// # Panics
/// Panics if `level` is negative or `granularity` non-positive.
pub fn perturb_dataset<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    kind: PerturbKind,
    level: f64,
    granularity: f64,
) -> Perturbation {
    assert!(level >= 0.0, "noise level must be non-negative");
    assert!(granularity > 0.0, "granularity must be positive");

    let mut columns = Vec::with_capacity(d.num_attrs());
    let mut unchanged_fraction = Vec::with_capacity(d.num_attrs());
    for a in d.schema().attrs() {
        let col = d.column(a);
        let (lo, hi) = d.min_max(a).unwrap_or((0.0, 0.0));
        let range = (hi - lo).max(granularity);
        let sd = level * range;
        let mut unchanged = 0usize;
        let new_col: Vec<f64> = col
            .iter()
            .map(|&x| {
                let noise = match kind {
                    PerturbKind::Uniform => rng.gen_range(-1.0..1.0) * sd,
                    PerturbKind::Gaussian => {
                        // Box–Muller; rand_distr is not a dependency of
                        // this crate, and two uniforms suffice here.
                        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let u2: f64 = rng.gen::<f64>();
                        sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    }
                };
                let y = ((x + noise) / granularity).round() * granularity;
                if y == x {
                    unchanged += 1;
                }
                y
            })
            .collect();
        unchanged_fraction.push(if col.is_empty() {
            0.0
        } else {
            unchanged as f64 / col.len() as f64
        });
        columns.push(new_col);
    }

    Perturbation { dataset: d.with_columns(columns), unchanged_fraction }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::{census_like, figure1};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_changes_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = figure1();
        let p = perturb_dataset(&mut rng, &d, PerturbKind::Uniform, 0.0, 1.0);
        assert_eq!(p.dataset, d);
        assert!(p.unchanged_fraction.iter().all(|&f| f == 1.0));
    }

    #[test]
    fn noise_leaves_some_discrete_values_unchanged() {
        // The paper's complaint about perturbation on discrete domains:
        // small relative noise + grid snapping leaves a significant
        // share of values identical.
        let mut rng = StdRng::seed_from_u64(2);
        let d = census_like(&mut rng, 3_000);
        let p = perturb_dataset(&mut rng, &d, PerturbKind::Uniform, 0.005, 1.0);
        // age has range ~73, so ±0.37 of noise rounds back to the same
        // integer most of the time.
        assert!(
            p.unchanged_fraction[0] > 0.3,
            "age unchanged fraction {}",
            p.unchanged_fraction[0]
        );
    }

    #[test]
    fn larger_noise_changes_more() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = census_like(&mut rng, 2_000);
        let small = perturb_dataset(&mut rng, &d, PerturbKind::Gaussian, 0.01, 1.0);
        let large = perturb_dataset(&mut rng, &d, PerturbKind::Gaussian, 0.25, 1.0);
        for a in 0..d.num_attrs() {
            assert!(
                large.unchanged_fraction[a] <= small.unchanged_fraction[a] + 0.02,
                "attr {a}: {} vs {}",
                large.unchanged_fraction[a],
                small.unchanged_fraction[a]
            );
        }
    }

    #[test]
    fn perturbation_changes_the_mining_outcome() {
        // The contrast experiment in miniature: enough noise changes
        // the mined tree, while ppdt's transformations never do.
        use ppdt_tree::{trees_equal_eps, TreeBuilder};
        let mut rng = StdRng::seed_from_u64(4);
        let d = census_like(&mut rng, 2_000);
        let p = perturb_dataset(&mut rng, &d, PerturbKind::Gaussian, 0.25, 1.0);
        let builder = TreeBuilder::default();
        let t = builder.fit(&d);
        let t2 = builder.fit(&p.dataset);
        assert!(!trees_equal_eps(&t, &t2, 1e-9), "heavy noise should change the tree");
    }

    #[test]
    fn grid_snapping_respects_granularity() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = figure1();
        let p = perturb_dataset(&mut rng, &d, PerturbKind::Uniform, 0.1, 0.5);
        for a in d.schema().attrs() {
            for &v in p.dataset.column(a) {
                let scaled = v / 0.5;
                assert!((scaled - scaled.round()).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn bad_granularity_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = figure1();
        let _ = perturb_dataset(&mut rng, &d, PerturbKind::Uniform, 0.1, 0.0);
    }
}
