//! Cross-validation: the parallel `Encoder` path (`.threads(0)`) must
//! be bit-identical to the serial one — same `D'`, same key, same
//! decoded tree — for every seed, because both paths draw each
//! attribute's randomness from a per-attribute stream seeded by the
//! same master RNG.

use ppdt_data::gen::{census_like, covertype_like, figure1, CovertypeConfig};
use ppdt_data::Dataset;
use ppdt_transform::{BreakpointStrategy, EncodeConfig, Encoder};
use ppdt_tree::{ThresholdPolicy, TreeBuilder, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bit_identical(d: &Dataset, config: &EncodeConfig, seed: u64) {
    let (key_s, d_s) = Encoder::new(*config)
        .encode(&mut StdRng::seed_from_u64(seed), d)
        .expect("serial encode")
        .into_parts();
    let (key_p, d_p) = Encoder::new(*config)
        .threads(0)
        .encode(&mut StdRng::seed_from_u64(seed), d)
        .expect("parallel encode")
        .into_parts();

    for a in d.schema().attrs() {
        assert_eq!(d_s.column(a), d_p.column(a), "seed {seed}, attr {a}: D' differs");
    }
    assert_eq!(
        serde_json::to_string(&key_s).unwrap(),
        serde_json::to_string(&key_p).unwrap(),
        "seed {seed}: keys differ"
    );

    // Same D' implies the same mined tree; decoding through either key
    // must then give identical plaintext trees.
    let builder = TreeBuilder::new(TreeParams { min_samples_leaf: 3, ..Default::default() });
    let t_prime = builder.fit(&d_s);
    let s_serial = key_s.decode_tree(&t_prime, ThresholdPolicy::DataValue, d).expect("decode");
    let s_parallel = key_p.decode_tree(&t_prime, ThresholdPolicy::DataValue, d).expect("decode");
    assert!(ppdt_tree::trees_equal(&s_serial, &s_parallel), "seed {seed}: decoded trees differ");
}

#[test]
fn parallel_matches_serial_across_seeds_figure1() {
    let d = figure1();
    for seed in [0, 1, 7, 42, 0xDEAD_BEEF] {
        assert_bit_identical(&d, &EncodeConfig::default(), seed);
    }
}

#[test]
fn parallel_matches_serial_covertype_all_strategies() {
    let d = covertype_like(&mut StdRng::seed_from_u64(3), &CovertypeConfig::at_scale(0.002));
    for seed in [5, 19, 777] {
        for strategy in [
            BreakpointStrategy::None,
            BreakpointStrategy::ChooseBP { w: 10 },
            BreakpointStrategy::ChooseMaxMP { w: 10, min_piece_len: 5 },
        ] {
            let config = EncodeConfig { strategy, ..Default::default() };
            assert_bit_identical(&d, &config, seed);
        }
    }
}

#[test]
fn parallel_matches_serial_census() {
    let d = census_like(&mut StdRng::seed_from_u64(4), 1_000);
    for seed in [2, 123] {
        assert_bit_identical(&d, &EncodeConfig::default(), seed);
    }
}
