//! Property test: the compiled plan ([`CompiledKey`]) is
//! **bit-identical** to the interpreted [`TransformKey`] path — for
//! encode, snapped decode, and raw decode — over random keys covering
//! every breakpoint strategy, anti-monotone directions, and
//! permutation pieces. The compiled layer exists purely for speed; any
//! observable difference, down to the last mantissa bit, is a bug.
//!
//! The batched column paths (`encode_column` / `decode_column`) and
//! the direct-index piece-lookup table are held to the same bar: same
//! bits, and the same error at the same row when a column fails
//! mid-way, whether lookup ran through the table or binary search.

use ppdt_data::gen::census_like;
use ppdt_data::AttrId;
use ppdt_transform::{
    BreakpointStrategy, CompiledKey, EncodeConfig, Encoder, PieceKind, RekeyPlan,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts every observable of the compiled plan matches the
/// interpreted key on `probe` values for attribute `a`.
fn assert_equivalent(
    key: &ppdt_transform::TransformKey,
    plan: &CompiledKey,
    a: AttrId,
    probes: &[f64],
) {
    for &x in probes {
        let interp = key.encode_value(a, x);
        let compiled = plan.encode_value(a, x);
        match (interp, compiled) {
            (Ok(yi), Ok(yc)) => {
                assert_eq!(
                    yi.to_bits(),
                    yc.to_bits(),
                    "attr {}: encode({x}) diverged: {yi} vs {yc}",
                    a.index()
                );
                // Decode the encoded value back through both paths.
                let di = key.decode_value(a, yi).expect("interpreted decode");
                let dc = plan.decode_value(a, yc).expect("compiled decode");
                assert_eq!(
                    di.to_bits(),
                    dc.to_bits(),
                    "attr {}: decode({yi}) diverged: {di} vs {dc}",
                    a.index()
                );
                let ri = key.decode_value_raw(a, yi).expect("interpreted raw decode");
                let rc = plan.decode_value_raw(a, yc).expect("compiled raw decode");
                assert_eq!(
                    ri.to_bits(),
                    rc.to_bits(),
                    "attr {}: raw decode({yi}) diverged: {ri} vs {rc}",
                    a.index()
                );
            }
            (Err(ei), Err(ec)) => {
                // Both reject: the rejections must be the *same* error.
                // Debug strings, because PartialEq on an error carrying
                // NaN is always false.
                assert_eq!(
                    format!("{ei:?}"),
                    format!("{ec:?}"),
                    "attr {}: paths reject {x} differently",
                    a.index()
                );
            }
            (i, c) => panic!(
                "attr {}: paths disagree on whether {x} encodes: interpreted {i:?}, compiled {c:?}",
                a.index()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn prop_compiled_plan_is_bit_identical_to_interpreted(
        seed in 0u64..u64::from(u32::MAX),
        rows in 40usize..140,
        anti in 0.0f64..1.0,
        force_anti in any::<bool>(),
        strategy_pick in 0usize..3,
    ) {
        let anti = if force_anti { 1.0 } else { anti };
        let strategy = match strategy_pick {
            0 => BreakpointStrategy::None,
            1 => BreakpointStrategy::ChooseBP { w: 6 },
            _ => BreakpointStrategy::ChooseMaxMP { w: 8, min_piece_len: 3 },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let d = census_like(&mut rng, rows);
        let cfg = EncodeConfig { strategy, anti_monotone_prob: anti, ..Default::default() };
        let (key, d_prime) =
            Encoder::new(cfg).encode(&mut rng, &d).expect("encode clean data").into_parts();
        let plan = CompiledKey::compile(&key).expect("audited key must compile");
        prop_assert!(plan.num_attrs() == key.transforms.len());
        // Same plan with every direct-index lookup table dropped: the
        // binary-search fallback must be indistinguishable.
        let plain = plan.clone().without_lookup_tables();

        for (i, t) in key.transforms.iter().enumerate() {
            let a = AttrId(i);
            // Probe every recorded domain value plus off-grid points:
            // midpoints between neighbors and values outside the
            // domain hull (which both paths must reject identically).
            let mut probes = t.orig_domain.clone();
            for w in t.orig_domain.windows(2) {
                probes.push((w[0] + w[1]) / 2.0);
            }
            if let (Some(&lo), Some(&hi)) = (t.orig_domain.first(), t.orig_domain.last()) {
                probes.push(lo - 1.0);
                probes.push(hi + 1.0);
            }
            probes.push(rng.gen_range(-1e6..1e6));
            probes.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
            assert_equivalent(&key, &plan, a, &probes);
            // The bsearch-only plan passes the exact same battery.
            assert_equivalent(&key, &plain, a, &probes);

            // Column encode agrees with the interpreted per-value loop.
            let src = d.column(a);
            let mut dst = Vec::new();
            plan.encode_column(a, src, &mut dst).expect("column encode");
            prop_assert!(dst.len() == src.len());
            for (j, (&x, &y)) in src.iter().zip(&dst).enumerate() {
                let yi = key.encode_value(a, x).expect("interpreted encode");
                prop_assert!(
                    yi.to_bits() == y.to_bits(),
                    "attr {i} row {j}: column encode diverged: {yi} vs {y}"
                );
            }
            let mut dst_plain = Vec::new();
            plain.encode_column(a, src, &mut dst_plain).expect("column encode (bsearch)");
            prop_assert!(
                dst.iter().zip(&dst_plain).all(|(x, y)| x.to_bits() == y.to_bits()),
                "attr {i}: table and bsearch column encodes diverged"
            );

            // Batched snapped decode agrees with the interpreted
            // per-value loop, gap probes included.
            let mut codes = dst.clone();
            codes.push(1e9);
            codes.push(-1e9);
            let mut dec = Vec::new();
            plan.decode_column(a, &codes, &mut dec).expect("column decode");
            prop_assert!(dec.len() == codes.len());
            for (j, (&y, &x)) in codes.iter().zip(&dec).enumerate() {
                let xi = key.decode_value(a, y).expect("interpreted decode");
                prop_assert!(
                    xi.to_bits() == x.to_bits(),
                    "attr {i} row {j}: column decode diverged: {xi} vs {x}"
                );
            }

            // Errors surface at the same row as the per-value loop:
            // poison a value mid-column and compare error + prefix.
            if !src.is_empty() {
                let mut poisoned = src.to_vec();
                let at = poisoned.len() / 2;
                poisoned[at] = f64::MAX; // outside every recorded hull
                let want = key.encode_value(a, f64::MAX).unwrap_err();
                for p in [&plan, &plain] {
                    let mut out = Vec::new();
                    let got = p.encode_column(a, &poisoned, &mut out).unwrap_err();
                    prop_assert!(got == want, "attr {i}: mid-column error diverged: {got:?}");
                    prop_assert!(out.len() == at, "attr {i}: error surfaced at the wrong row");
                }
            }
        }

        // Whole-dataset check: the compiled columns reproduce D'.
        for (i, t) in key.transforms.iter().enumerate() {
            let a = AttrId(i);
            let mut dst = Vec::new();
            plan.encode_column(a, d.column(a), &mut dst).expect("column encode");
            prop_assert!(
                dst.iter().zip(d_prime.column(a)).all(|(x, y)| x.to_bits() == y.to_bits()),
                "attr {i}: compiled columns must reproduce the encoder's D'"
            );
            let _ = t;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    /// The fused rotation plan ([`RekeyPlan`]) is bit-identical to the
    /// unfused decode-then-encode sequence — same bits on success, the
    /// same error on failure — and, when both keys were mined on the
    /// same relation, the rotated columns equal a direct encode under
    /// the target key (snapped decode is exact on genuine codes).
    #[test]
    fn prop_fused_rekey_is_bit_identical_to_unfused(
        seed in 0u64..u64::from(u32::MAX),
        rows in 40usize..120,
        anti_a in 0.0f64..1.0,
        anti_b in 0.0f64..1.0,
        foreign_target in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = census_like(&mut rng, rows);
        let cfg_a = EncodeConfig {
            strategy: BreakpointStrategy::ChooseBP { w: 6 },
            anti_monotone_prob: anti_a,
            ..Default::default()
        };
        let cfg_b = EncodeConfig {
            strategy: BreakpointStrategy::ChooseMaxMP { w: 8, min_piece_len: 3 },
            anti_monotone_prob: anti_b,
            ..Default::default()
        };
        let (key_a, d_a) =
            Encoder::new(cfg_a).encode(&mut rng, &d).expect("encode A").into_parts();
        // A "foreign" target key is mined on a different relation with
        // the same arity, so decoded source values may fall outside its
        // domain — exercising the error path, which must also match.
        let target_data =
            if foreign_target { census_like(&mut rng, rows) } else { d.clone() };
        let (key_b, d_b) =
            Encoder::new(cfg_b).encode(&mut rng, &target_data).expect("encode B").into_parts();
        let plan_a = CompiledKey::compile(&key_a).expect("compile A");
        let plan_b = CompiledKey::compile(&key_b).expect("compile B");
        let mut rekey = RekeyPlan::new(&plan_a, &plan_b).expect("same arity");

        for a in d.schema().attrs() {
            let src_col = d_a.column(a);
            let mut fused = Vec::new();
            let fused_res = rekey.rekey_column(a, src_col, &mut fused);
            let (mut plain, mut unfused) = (Vec::new(), Vec::new());
            let unfused_res = plan_a
                .decode_column(a, src_col, &mut plain)
                .and_then(|()| plan_b.encode_column(a, &plain, &mut unfused));
            // Same outcome (Debug strings: errors can carry NaN)...
            prop_assert!(
                format!("{fused_res:?}") == format!("{unfused_res:?}"),
                "attr {a}: fused {fused_res:?} vs unfused {unfused_res:?}"
            );
            // ...and the same bits up to the same row.
            prop_assert!(
                fused.iter().zip(&unfused).all(|(x, y)| x.to_bits() == y.to_bits())
                    && fused.len() == unfused.len(),
                "attr {a}: fused and unfused outputs diverged"
            );
            if !foreign_target {
                prop_assert!(fused_res.is_ok(), "attr {a}: same-relation rekey must succeed");
                prop_assert!(
                    fused.iter().zip(d_b.column(a)).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "attr {a}: rekeyed column must equal the direct key-B encode"
                );
            }
        }
        if !foreign_target {
            prop_assert!(rekey.rekey_dataset(&d_a).expect("rekey dataset") == d_b);
        }
    }
}

/// Deterministic companion pinning the hard cases — permutation
/// pieces and fully anti-monotone keys — so the property above cannot
/// silently lose coverage if the generators drift.
#[test]
fn compiled_matches_interpreted_on_permutation_and_anti_monotone_key() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let d = census_like(&mut rng, 200);
    let cfg = EncodeConfig {
        strategy: BreakpointStrategy::ChooseMaxMP { w: 10, min_piece_len: 3 },
        anti_monotone_prob: 1.0,
        ..Default::default()
    };
    let (key, _) = Encoder::new(cfg).encode(&mut rng, &d).expect("encode").into_parts();
    assert!(key.transforms.iter().all(|t| !t.increasing));
    assert!(
        key.transforms
            .iter()
            .flat_map(|t| &t.pieces)
            .any(|p| matches!(p.kind, PieceKind::Permutation { .. })),
        "fixture must contain permutation pieces"
    );
    let plan = CompiledKey::compile(&key).expect("compiles");
    for (i, t) in key.transforms.iter().enumerate() {
        assert_equivalent(&key, &plan, AttrId(i), &t.orig_domain);
    }
}

/// Guards the proptest's direct-vs-bsearch coverage: if the density
/// heuristic ever stopped building tables for ordinary multi-piece
/// keys, the "table and bsearch agree" assertions above would pass
/// vacuously. Pin that at least one attribute actually compiles with
/// a direct-index table on a representative key.
#[test]
fn dense_keys_build_direct_index_tables() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let d = census_like(&mut rng, 200);
    let cfg = EncodeConfig {
        strategy: BreakpointStrategy::ChooseMaxMP { w: 8, min_piece_len: 3 },
        ..Default::default()
    };
    let (key, _) = Encoder::new(cfg).encode(&mut rng, &d).expect("encode").into_parts();
    let plan = CompiledKey::compile(&key).expect("compiles");
    assert!(
        (0..key.transforms.len()).any(|i| plan.has_lookup_table(AttrId(i))),
        "no attribute built a direct-index table; the heuristic regressed"
    );
}
