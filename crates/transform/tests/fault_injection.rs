//! Fault-injection harness: mutate serialized keys, datasets and mined
//! trees and assert that every mutation surfaces as a *typed* error —
//! never a panic, never silent acceptance of a detectably-corrupt
//! artifact.
//!
//! Every mutation is a pure function of `(input, kind, seed)`, so a
//! failing case reproduces from its printed seed. The base seed can be
//! overridden with the `PPDT_FAULT_SEED` environment variable to run
//! the sweep over a different corruption population.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ppdt_data::corrupt::{corrupt_csv, flip_ascii_digit, truncate_at, ALL_CSV_CORRUPTIONS};
use ppdt_data::csv::{parse_csv, to_csv};
use ppdt_data::gen::census_like;
use ppdt_data::{AttrId, Dataset};
use ppdt_transform::{
    audit_key_against, EncodeConfig, Encoder, ErrorCategory, PpdtError, TransformKey,
};
use ppdt_tree::{DecisionTree, ThresholdPolicy, TreeBuilder, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Base seed for the corruption sweeps; override with `PPDT_FAULT_SEED`.
fn fault_seed() -> u64 {
    std::env::var("PPDT_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF417)
}

fn study() -> (Dataset, TransformKey, Dataset) {
    let mut rng = StdRng::seed_from_u64(fault_seed());
    let d = census_like(&mut rng, 300);
    let (key, d_prime) = Encoder::new(EncodeConfig::default())
        .encode(&mut rng, &d)
        .expect("encode clean data")
        .into_parts();
    (d, key, d_prime)
}

// ---------------------------------------------------------------- keys

#[test]
fn corrupted_key_json_never_panics_and_is_detected() {
    let (d, key, d_prime) = study();
    let good = serde_json::to_string_pretty(&key).expect("serialize key");
    let base = fault_seed();

    let mut detected = 0usize;
    let sweeps = 120u64;
    for i in 0..sweeps {
        let seed = base ^ i;
        let bad = flip_ascii_digit(&good, seed);
        assert_ne!(bad, good, "seed {seed}: corruptor must change the key");
        match serde_json::from_str::<TransformKey>(&bad) {
            // A digit flip can break JSON semantics (e.g. a repeated
            // digit in a map key) — a parse error is a detection.
            Err(_) => detected += 1,
            Ok(tampered) => {
                // The loaded key is hostile: every downstream use must
                // return a typed error or a (possibly wrong but
                // well-formed) value — never panic.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let report = audit_key_against(&tampered, &d);
                    let audit_failed = !report.passed();
                    let decode_failed = tampered.decode_dataset(&d_prime).is_err();
                    audit_failed || decode_failed
                }));
                match outcome {
                    Ok(caught) => {
                        if caught {
                            detected += 1;
                        }
                    }
                    Err(_) => panic!("seed {seed}: tampered key caused a panic"),
                }
            }
        }
    }
    // Flips that hit piece geometry or permutation tables must be
    // caught; a sizeable residue lands in harmless places (a
    // low-significance mantissa digit still encodes/decodes within
    // audit tolerance), so the floor is a third of the sweep rather
    // than all of it.
    assert!(detected * 3 > sweeps as usize, "only {detected}/{sweeps} corruptions detected");
}

#[test]
fn truncated_key_file_is_a_corrupt_key_error() {
    let (_, key, _) = study();
    let good = serde_json::to_string_pretty(&key).expect("serialize key");
    let dir = std::env::temp_dir();
    for (i, frac) in [0.2, 0.5, 0.9].into_iter().enumerate() {
        let path = dir.join(format!("ppdt_fault_key_{i}.json"));
        std::fs::write(&path, truncate_at(&good, frac)).expect("write truncated key");
        let err = TransformKey::load_json(&path).expect_err("truncated key must not load");
        assert_eq!(err.category(), ErrorCategory::CorruptKey, "frac {frac}: {err}");
        assert_eq!(err.category().exit_code(), 4);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn missing_key_file_is_an_io_error() {
    let err = TransformKey::load_json("/nonexistent/ppdt/key.json")
        .expect_err("missing file must not load");
    assert_eq!(err.category(), ErrorCategory::Io);
}

// ------------------------------------------------------------- datasets

#[test]
fn csv_corruption_sweep_yields_typed_errors() {
    let (d, key, _) = study();
    let good = to_csv(&d);
    let base = fault_seed();

    for kind in ALL_CSV_CORRUPTIONS {
        for i in 0..8u64 {
            let seed = base ^ (i << 32);
            let bad = corrupt_csv(&good, kind, seed);
            assert_ne!(bad, good, "{} seed {seed}: corruptor must change the CSV", kind.name());
            match parse_csv(&bad) {
                Err(e) => {
                    assert!(
                        !kind.parses_clean(),
                        "{} seed {seed}: audit-only corruption rejected by the parser: {e}",
                        kind.name()
                    );
                    let typed: PpdtError = e.into();
                    assert_eq!(
                        typed.category(),
                        ErrorCategory::CorruptData,
                        "{} seed {seed}: {typed}",
                        kind.name()
                    );
                    assert_eq!(typed.category().exit_code(), 6);
                }
                Ok(parsed) => {
                    assert!(
                        kind.parses_clean(),
                        "{} seed {seed}: parser-detectable corruption parsed clean",
                        kind.name()
                    );
                    // Structurally valid but semantically hostile data:
                    // auditing the original key against it must report,
                    // not panic.
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| audit_key_against(&key, &parsed)));
                    let report = outcome
                        .unwrap_or_else(|_| panic!("{} seed {seed}: audit panicked", kind.name()));
                    if parsed.num_attrs() != d.num_attrs() {
                        assert!(
                            !report.passed(),
                            "{} seed {seed}: arity change must fail the audit",
                            kind.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn truncated_csv_never_panics() {
    let (d, _, _) = study();
    let good = to_csv(&d);
    for frac in [0.0, 0.1, 0.33, 0.5, 0.77, 0.95] {
        let bad = truncate_at(&good, frac);
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_csv(&bad).map(|_| ())));
        assert!(outcome.is_ok(), "frac {frac}: parser panicked on truncated CSV");
    }
}

// ---------------------------------------------------------------- trees

#[test]
fn tampered_tree_json_never_panics_when_decoded() {
    let (d, key, d_prime) = study();
    let mined =
        TreeBuilder::new(TreeParams { min_samples_leaf: 5, ..Default::default() }).fit(&d_prime);
    let good = serde_json::to_string(&mined).expect("serialize tree");
    let base = fault_seed();

    for i in 0..100u64 {
        let seed = base ^ (i << 16);
        let bad = flip_ascii_digit(&good, seed);
        let Ok(tampered) = serde_json::from_str::<DecisionTree>(&bad) else {
            continue; // parse-level detection
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = tampered.validate(Some(d.num_attrs()));
            let _ = key.decode_tree(&tampered, ThresholdPolicy::DataValue, &d);
        }));
        assert!(outcome.is_ok(), "seed {seed}: tampered tree caused a panic");
    }
}

#[test]
fn tree_splitting_on_unknown_attribute_is_incompatible() {
    let (d, key, d_prime) = study();
    let mined = TreeBuilder::default().fit(&d_prime);
    // Retarget every split to an attribute the key has never seen.
    let tampered = mined.map_split_attrs(|_| AttrId(99));
    let err = key
        .decode_tree(&tampered, ThresholdPolicy::DataValue, &d)
        .expect_err("unknown attribute must not decode");
    assert_eq!(err.category(), ErrorCategory::IncompatibleTree, "{err}");
    assert_eq!(err.category().exit_code(), 5);
}

#[test]
fn tree_with_nonfinite_threshold_is_incompatible() {
    let (d, key, d_prime) = study();
    let mined = TreeBuilder::default().fit(&d_prime);
    let tampered = mined.map_thresholds(|_, _| f64::NAN);
    let err = key
        .decode_tree(&tampered, ThresholdPolicy::DataValue, &d)
        .expect_err("NaN threshold must not decode");
    assert_eq!(err.category(), ErrorCategory::IncompatibleTree, "{err}");
}
