//! Property test: a [`TransformKey`] survives
//! serialize → deserialize → serialize **bit-identically** — the JSON
//! text is byte-equal and the reloaded key compares equal, across
//! breakpoint strategies, permutation pieces, and anti-monotone
//! directions. The custodian's key file is the only way back from
//! `D'` to `D`, so its serialization must be a fixed point.

use ppdt_data::gen::census_like;
use ppdt_transform::{BreakpointStrategy, EncodeConfig, Encoder, PieceKind, TransformKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts both fixed-point properties for one key: byte-stable JSON
/// (pretty and compact) and value-equality after reload.
fn assert_roundtrip(key: &TransformKey) {
    let pretty1 = serde_json::to_string_pretty(key).expect("serialize");
    let back: TransformKey = serde_json::from_str(&pretty1).expect("deserialize");
    let pretty2 = serde_json::to_string_pretty(&back).expect("re-serialize");
    assert_eq!(pretty1, pretty2, "pretty JSON must be a fixed point");
    assert_eq!(key, &back, "reloaded key must compare equal");

    let compact1 = serde_json::to_string(key).expect("serialize");
    let compact2 = serde_json::to_string(&back).expect("re-serialize");
    assert_eq!(compact1, compact2, "compact JSON must be a fixed point");
}

proptest! {
    #[test]
    fn prop_key_serialization_is_a_fixed_point(
        seed in 0u64..u64::from(u32::MAX),
        rows in 40usize..140,
        anti in 0.0f64..1.0,
        force_anti in any::<bool>(),
        strategy_pick in 0usize..3,
    ) {
        // `force_anti` guarantees fully anti-monotone keys appear in
        // every run rather than relying on the float draw.
        let anti = if force_anti { 1.0 } else { anti };
        let strategy = match strategy_pick {
            0 => BreakpointStrategy::None,
            1 => BreakpointStrategy::ChooseBP { w: 6 },
            _ => BreakpointStrategy::ChooseMaxMP { w: 8, min_piece_len: 3 },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let d = census_like(&mut rng, rows);
        let cfg = EncodeConfig { strategy, anti_monotone_prob: anti, ..Default::default() };
        let (key, _) = Encoder::new(cfg).encode(&mut rng, &d).expect("encode clean data").into_parts();
        assert_roundtrip(&key);

        // The round-tripped key is not just equal — it encodes
        // identically (spot-check every recorded domain value of the
        // first attribute).
        let back: TransformKey = serde_json::from_str(
            &serde_json::to_string(&key).expect("serialize"),
        ).expect("deserialize");
        let attr = ppdt_data::AttrId(0);
        for &x in &key.transforms[0].orig_domain {
            let y1 = key.encode_value(attr, x).expect("encode");
            let y2 = back.encode_value(attr, x).expect("encode via reloaded key");
            prop_assert!(y1.to_bits() == y2.to_bits(), "encode({x}) diverged: {y1} vs {y2}");
        }
    }
}

/// Deterministic companion: pin a configuration that provably
/// contains the hard cases — permutation pieces (ChooseMaxMP on
/// monochromatic runs) and anti-monotone directions — and check the
/// round-trip on it, so the property above cannot silently lose
/// coverage if the generators drift.
#[test]
fn key_with_permutation_pieces_and_anti_monotone_directions_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let d = census_like(&mut rng, 200);
    let cfg = EncodeConfig {
        strategy: BreakpointStrategy::ChooseMaxMP { w: 10, min_piece_len: 3 },
        anti_monotone_prob: 1.0,
        ..Default::default()
    };
    let (key, _) = Encoder::new(cfg).encode(&mut rng, &d).expect("encode").into_parts();

    assert!(
        key.transforms.iter().all(|t| !t.increasing),
        "anti_monotone_prob = 1.0 must make every attribute anti-monotone"
    );
    let has_permutation = key
        .transforms
        .iter()
        .flat_map(|t| &t.pieces)
        .any(|p| matches!(p.kind, PieceKind::Permutation { .. }));
    assert!(has_permutation, "ChooseMaxMP on census-like data must yield permutation pieces");

    assert_roundtrip(&key);
}
