//! # ppdt-svm
//!
//! A small linear SVM substrate for the paper's Section 7 probe.
//!
//! The paper's future work asks how the no-outcome-change guarantee
//! generalizes "from decision trees to SVM and other kernel methods —
//! the difference is that the dividing planes can have arbitrary
//! orientations". This crate provides the experimental apparatus for
//! that question: a Pegasos-style linear SVM (one-vs-rest for
//! multiclass) plus feature standardization, used by the
//! `svm_outcome` experiment to demonstrate that the *tree-preserving*
//! piecewise monotone transformations do **not** preserve an SVM's
//! outcome — the decision planes mix attributes, so per-attribute
//! monotone maps change the geometry.
//!
//! The implementation is deliberately compact but real: deterministic
//! given the caller's RNG, standardized features, averaged iterates,
//! tested on separable and generated data.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod scale;
pub mod svm;

pub use scale::Standardizer;
pub use svm::{train_binary, train_multiclass, LinearSvm, MulticlassSvm, SvmParams};
