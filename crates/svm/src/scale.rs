//! Feature standardization (zero mean, unit variance) — required for
//! SGD training on attributes whose raw scales differ by orders of
//! magnitude (covertype mixes ranges of 67 and 7,174).

use serde::{Deserialize, Serialize};

use ppdt_data::{AttrId, Dataset};

/// Per-attribute standardization parameters fitted on a dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    /// Per-attribute means.
    pub means: Vec<f64>,
    /// Per-attribute standard deviations (1.0 substituted for constant
    /// attributes so scaling never divides by zero).
    pub sds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations on `d`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(d: &Dataset) -> Self {
        assert!(d.num_rows() > 0, "cannot standardize an empty dataset");
        let n = d.num_rows() as f64;
        let mut means = Vec::with_capacity(d.num_attrs());
        let mut sds = Vec::with_capacity(d.num_attrs());
        for a in d.schema().attrs() {
            let col = d.column(a);
            let mean = col.iter().sum::<f64>() / n;
            let var = col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let sd = var.sqrt();
            means.push(mean);
            sds.push(if sd > 0.0 { sd } else { 1.0 });
        }
        Standardizer { means, sds }
    }

    /// Standardizes one tuple in place.
    pub fn apply(&self, values: &mut [f64]) {
        for (i, v) in values.iter_mut().enumerate() {
            *v = (*v - self.means[i]) / self.sds[i];
        }
    }

    /// Returns the standardized copy of a dataset's feature matrix as
    /// row-major vectors (labels unchanged, fetched from `d`).
    pub fn transform_rows(&self, d: &Dataset) -> Vec<Vec<f64>> {
        (0..d.num_rows())
            .map(|row| {
                let mut values: Vec<f64> =
                    (0..d.num_attrs()).map(|a| d.value(row, AttrId(a))).collect();
                self.apply(&mut values);
                values
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::{ClassId, DatasetBuilder, Schema};

    fn d() -> Dataset {
        let mut b = DatasetBuilder::new(Schema::generated(2, 2));
        b.push_row(&[1.0, 100.0], ClassId(0));
        b.push_row(&[3.0, 100.0], ClassId(1));
        b.push_row(&[5.0, 100.0], ClassId(0));
        b.build()
    }

    #[test]
    fn fit_and_apply() {
        let s = Standardizer::fit(&d());
        assert_eq!(s.means, vec![3.0, 100.0]);
        assert!((s.sds[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.sds[1], 1.0, "constant attribute gets sd 1");
        let mut v = vec![3.0, 100.0];
        s.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn transform_rows_shape() {
        let s = Standardizer::fit(&d());
        let rows = s.transform_rows(&d());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 2);
        // Standardized column has mean ~0.
        let mean: f64 = rows.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
    }
}
