//! Pegasos-style linear SVM (Shalev-Shwartz et al., 2007 — a
//! contemporary of the reproduced paper) with averaged iterates, plus
//! one-vs-rest multiclass.

use rand::Rng;
use serde::{Deserialize, Serialize};

use ppdt_data::{ClassId, Dataset};

use crate::scale::Standardizer;

/// Training hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Number of SGD epochs over the data.
    pub epochs: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams { lambda: 1e-4, epochs: 12 }
    }
}

/// A trained binary linear classifier `sign(w·x + b)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Weight vector over standardized features.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// The feature standardizer fitted on the training data.
    pub scaler: Standardizer,
}

impl LinearSvm {
    /// The (signed) decision value for a raw tuple.
    pub fn decision(&self, values: &[f64]) -> f64 {
        let mut x = values.to_vec();
        self.scaler.apply(&mut x);
        self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }

    /// Predicts the positive class (true) or negative (false).
    pub fn predict(&self, values: &[f64]) -> bool {
        self.decision(values) >= 0.0
    }
}

/// Trains a binary SVM: class `positive` vs. the rest.
///
/// # Panics
/// Panics on an empty dataset or non-positive hyperparameters.
pub fn train_binary<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    positive: ClassId,
    params: &SvmParams,
) -> LinearSvm {
    assert!(d.num_rows() > 0, "cannot train on an empty dataset");
    assert!(params.lambda > 0.0 && params.epochs > 0, "invalid hyperparameters");

    let scaler = Standardizer::fit(d);
    let rows = scaler.transform_rows(d);
    let labels: Vec<f64> =
        d.labels().iter().map(|&c| if c == positive { 1.0 } else { -1.0 }).collect();

    let m = d.num_attrs();
    let n = rows.len();
    let mut w = vec![0.0f64; m];
    let mut b = 0.0f64;
    // Averaged iterates stabilize the stochastic updates.
    let mut w_avg = vec![0.0f64; m];
    let mut b_avg = 0.0f64;
    let mut averaged = 0usize;

    let mut t = 0usize;
    for _ in 0..params.epochs {
        for _ in 0..n {
            t += 1;
            let i = rng.gen_range(0..n);
            let eta = 1.0 / (params.lambda * t as f64);
            let margin =
                labels[i] * (w.iter().zip(&rows[i]).map(|(wj, xj)| wj * xj).sum::<f64>() + b);
            // w <- (1 - eta*lambda) w [+ eta*y*x if margin violated]
            let shrink = 1.0 - eta * params.lambda;
            for wj in w.iter_mut() {
                *wj *= shrink;
            }
            if margin < 1.0 {
                for (wj, xj) in w.iter_mut().zip(&rows[i]) {
                    *wj += eta * labels[i] * xj;
                }
                b += eta * labels[i];
            }
            // Average the second half of the run.
            if 2 * t >= params.epochs * n {
                for (aj, wj) in w_avg.iter_mut().zip(&w) {
                    *aj += wj;
                }
                b_avg += b;
                averaged += 1;
            }
        }
    }
    let k = averaged.max(1) as f64;
    for aj in w_avg.iter_mut() {
        *aj /= k;
    }
    LinearSvm { weights: w_avg, bias: b_avg / k, scaler }
}

/// A one-vs-rest multiclass linear SVM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MulticlassSvm {
    /// One binary machine per class.
    pub machines: Vec<LinearSvm>,
}

impl MulticlassSvm {
    /// Predicts the class with the highest decision value.
    pub fn predict(&self, values: &[f64]) -> ClassId {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for (i, m) in self.machines.iter().enumerate() {
            let v = m.decision(values);
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        ClassId(best as u16)
    }

    /// Fraction of `d`'s tuples classified correctly.
    pub fn accuracy(&self, d: &Dataset) -> f64 {
        if d.num_rows() == 0 {
            return 1.0;
        }
        let mut values = vec![0.0; d.num_attrs()];
        let mut hits = 0usize;
        for row in 0..d.num_rows() {
            for a in d.schema().attrs() {
                values[a.index()] = d.value(row, a);
            }
            if self.predict(&values) == d.label(row) {
                hits += 1;
            }
        }
        hits as f64 / d.num_rows() as f64
    }
}

/// Trains a one-vs-rest multiclass SVM.
pub fn train_multiclass<R: Rng + ?Sized>(
    rng: &mut R,
    d: &Dataset,
    params: &SvmParams,
) -> MulticlassSvm {
    let machines = d.schema().classes().map(|c| train_binary(rng, d, c, params)).collect();
    MulticlassSvm { machines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::{census_like, wdbc_like};
    use ppdt_data::{AttrId, DatasetBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable_2d(n: usize) -> Dataset {
        // Class 1 iff x + y > n.
        let mut b = DatasetBuilder::new(Schema::generated(2, 2));
        for i in 0..n {
            for j in [0usize, n / 2, n - 1] {
                let c = u16::from(i + j > n);
                b.push_row(&[i as f64, j as f64], ClassId(c));
            }
        }
        b.build()
    }

    #[test]
    fn learns_linearly_separable_data() {
        let d = separable_2d(60);
        let mut rng = StdRng::seed_from_u64(1);
        let m = train_multiclass(&mut rng, &d, &SvmParams::default());
        assert!(m.accuracy(&d) > 0.97, "accuracy {}", m.accuracy(&d));
    }

    #[test]
    fn binary_decision_is_affine_in_inputs() {
        let d = separable_2d(40);
        let mut rng = StdRng::seed_from_u64(2);
        let svm = train_binary(&mut rng, &d, ClassId(1), &SvmParams::default());
        // decision(a) + decision(b) == decision(a+b) + decision(0)
        let f = |x: &[f64]| svm.decision(x);
        let lhs = f(&[3.0, 7.0]) + f(&[10.0, 1.0]);
        let rhs = f(&[13.0, 8.0]) + f(&[0.0, 0.0]);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = separable_2d(30);
        let m1 = train_multiclass(&mut StdRng::seed_from_u64(3), &d, &SvmParams::default());
        let m2 = train_multiclass(&mut StdRng::seed_from_u64(3), &d, &SvmParams::default());
        assert_eq!(m1, m2);
    }

    #[test]
    fn beats_majority_on_generated_benchmarks() {
        let mut rng = StdRng::seed_from_u64(4);
        for d in [census_like(&mut rng, 2_000), wdbc_like(&mut rng, 569)] {
            let majority =
                d.class_counts().into_iter().max().unwrap_or(0) as f64 / d.num_rows() as f64;
            let m = train_multiclass(&mut rng, &d, &SvmParams::default());
            let acc = m.accuracy(&d);
            assert!(acc > majority + 0.05, "acc {acc:.3} vs majority {majority:.3}");
        }
    }

    #[test]
    fn per_attribute_positive_linear_scaling_changes_little_but_nonlinear_changes_much() {
        // Motivation for the paper's future work: even simple monotone
        // per-attribute maps perturb the SVM geometry. Standardization
        // absorbs *affine* maps exactly, but a nonlinear monotone map
        // (cubing one attribute) moves predictions.
        let d = separable_2d(60);
        let mut rng = StdRng::seed_from_u64(5);
        let m = train_multiclass(&mut rng, &d, &SvmParams::default());

        // Affine per-attribute map: predictions unchanged (scaler
        // compensates) when the model is retrained with the same RNG.
        let affine: Vec<Vec<f64>> = (0..d.num_attrs())
            .map(|a| d.column(AttrId(a)).iter().map(|v| 3.0 * v + 17.0).collect())
            .collect();
        let d_affine = d.with_columns(affine);
        let m_affine =
            train_multiclass(&mut StdRng::seed_from_u64(5), &d_affine, &SvmParams::default());
        let mut agree = 0;
        for row in 0..d.num_rows() {
            let x = [d.value(row, AttrId(0)), d.value(row, AttrId(1))];
            let x2 = [d_affine.value(row, AttrId(0)), d_affine.value(row, AttrId(1))];
            if m.predict(&x) == m_affine.predict(&x2) {
                agree += 1;
            }
        }
        assert_eq!(agree, d.num_rows(), "affine maps are absorbed");

        // Nonlinear monotone map on attribute 0: geometry changes.
        let cubed: Vec<f64> = d.column(AttrId(0)).iter().map(|v| v.powi(3)).collect();
        let d_cubed = d.with_column(AttrId(0), cubed);
        let m_cubed =
            train_multiclass(&mut StdRng::seed_from_u64(5), &d_cubed, &SvmParams::default());
        let mut agree = 0;
        for row in 0..d.num_rows() {
            let x = [d.value(row, AttrId(0)), d.value(row, AttrId(1))];
            let x2 = [d_cubed.value(row, AttrId(0)), d_cubed.value(row, AttrId(1))];
            if m.predict(&x) == m_cubed.predict(&x2) {
                agree += 1;
            }
        }
        assert!(agree < d.num_rows(), "a nonlinear monotone map must change some predictions");
    }
}
