//! The `ppdt` custodian CLI; all logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = ppdt_cli::run(&args) {
        eprintln!("error ({}): {e}", e.category_name());
        std::process::exit(e.exit_code());
    }
}
