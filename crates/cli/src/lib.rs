//! # ppdt-cli
//!
//! The data-custodian command-line tool (binary name `ppdt`):
//!
//! ```text
//! ppdt stats  <data.csv>                      attribute statistics + release verdicts
//! ppdt encode <data.csv> --out D.csv --key K.json [--seed N]
//!             [--strategy maxmp|bp|none] [--w N] [--verify] [--parallel]
//! ppdt decode-dataset <Dprime.csv> --key K.json --out orig.csv
//! ppdt mine   <data.csv> --out tree.json [--criterion gini|entropy]
//!             [--min-leaf N]                  (stand-in for the miner)
//! ppdt decode-tree <tree.json> --key K.json --data orig.csv
//!             --out decoded.json [--render]
//! ppdt report <tree.json> --data <data.csv>   rules, importance, rendering
//! ppdt audit  <data.csv> [--trials N] [--seed N]
//! ```
//!
//! The command surface mirrors the custodian workflow of the paper's
//! introduction: encode, ship, receive the mined tree, decode with the
//! key, and audit what a hacker could recover. All subcommand logic
//! lives in this library so it is unit-testable; `main.rs` only
//! forwards `std::env::args`.
//!
//! Every subcommand also accepts `--metrics`, which enables the
//! [`ppdt_obs`] instrumentation layer and prints phase timings,
//! pipeline counters, and peak RSS to stderr on exit (the metric
//! catalogue is documented in `BENCHMARKS.md`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppdt_attack::HackerProfile;
use ppdt_data::{csv, AttrId, AttrStats, Dataset};
use ppdt_risk::{domain_risk_trial, run_trials, DomainScenario};
use ppdt_transform::{encode_dataset, BreakpointStrategy, EncodeConfig, TransformKey};
use ppdt_tree::{DecisionTree, SplitCriterion, ThresholdPolicy, TreeBuilder, TreeParams};

/// CLI failure; rendered to stderr by `main`.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<csv::CsvError> for CliError {
    fn from(e: csv::CsvError) -> Self {
        CliError(format!("csv: {e}"))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("io: {e}"))
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: ppdt <subcommand> [args]
  stats <data.csv>
  encode <data.csv> --out <Dprime.csv> --key <key.json> [--seed N]
         [--strategy maxmp|bp|none] [--w N] [--verify] [--parallel]
  decode-dataset <Dprime.csv> --key <key.json> --out <orig.csv>
  mine <data.csv> --out <tree.json> [--criterion gini|entropy] [--min-leaf N]
  decode-tree <tree.json> --key <key.json> --data <orig.csv> --out <decoded.json> [--render]
  report <tree.json> --data <data.csv>
  audit <data.csv> [--trials N] [--seed N]
any subcommand also accepts --metrics (phase timings + counters on stderr)
";

/// Tiny flag parser: positional arguments plus `--flag [value]` pairs.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked").clone()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flag(name).ok_or_else(|| CliError(format!("missing required --{name} <value>")))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

/// Entry point: dispatches a full argument vector (without `argv[0]`).
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError(USAGE.into()));
    };
    let a = Args::parse(rest);
    if a.has("metrics") {
        ppdt_obs::set_enabled(true);
    }
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&a),
        "encode" => cmd_encode(&a),
        "decode-dataset" => cmd_decode_dataset(&a),
        "mine" => cmd_mine(&a),
        "decode-tree" => cmd_decode_tree(&a),
        "report" => cmd_report(&a),
        "audit" => cmd_audit(&a),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError(format!("unknown subcommand {other:?}\n{USAGE}"))),
    };
    if a.has("metrics") {
        print_metrics();
    }
    result
}

/// Renders the [`ppdt_obs`] snapshot to stderr (the `--metrics` flag).
fn print_metrics() {
    let snap = ppdt_obs::snapshot();
    eprintln!("-- metrics --");
    for p in &snap.phases {
        eprintln!("  phase {:>8}: {:>10.6}s over {} call(s)", p.name, p.seconds, p.calls);
    }
    for c in snap.counters.iter().filter(|c| c.value > 0) {
        eprintln!("  count {:>18}: {}", c.name, c.value);
    }
    if let Some(rss) = snap.peak_rss_bytes {
        eprintln!("  peak rss: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
}

fn load_data(a: &Args) -> Result<Dataset, CliError> {
    let path =
        a.positional.first().ok_or_else(|| CliError(format!("missing input file\n{USAGE}")))?;
    Ok(csv::read_csv(path)?)
}

fn cmd_stats(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let granularity: f64 = a.parsed("granularity", 1.0)?;
    println!(
        "{:>16} | {:>9} {:>9} {:>9} {:>8} {:>9} {:>7}",
        "attribute", "min", "max", "#distinct", "#discont", "#mono-pc", "%mono"
    );
    for s in AttrStats::compute_all(&d, granularity, 5) {
        println!(
            "{:>16} | {:>9} {:>9} {:>9} {:>8} {:>9} {:>6.1}%",
            d.schema().attr_name(s.attr),
            s.min,
            s.max,
            s.num_distinct,
            s.num_discontinuities,
            s.num_mono_pieces,
            100.0 * s.pct_mono_values,
        );
    }
    Ok(())
}

fn encode_config(a: &Args) -> Result<EncodeConfig, CliError> {
    let w: usize = a.parsed("w", 20)?;
    let strategy = match a.flag("strategy").unwrap_or("maxmp") {
        "maxmp" => BreakpointStrategy::ChooseMaxMP { w, min_piece_len: 5 },
        "bp" => BreakpointStrategy::ChooseBP { w },
        "none" => BreakpointStrategy::None,
        other => return Err(CliError(format!("--strategy: unknown {other:?}"))),
    };
    Ok(EncodeConfig { strategy, ..Default::default() })
}

fn cmd_encode(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let out = a.required("out")?;
    let key_path = a.required("key")?;
    let seed: u64 = a.parsed("seed", 7)?;
    let config = encode_config(a)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (key, d_prime) = if a.has("verify") {
        let (key, d_prime, attempts) = ppdt_transform::verify::encode_dataset_verified(
            &mut rng,
            &d,
            &config,
            TreeParams::default(),
            8,
        );
        eprintln!("verified encode in {attempts} attempt(s)");
        (key, d_prime)
    } else if a.has("parallel") {
        ppdt_transform::encode_dataset_parallel(&mut rng, &d, &config)
    } else {
        encode_dataset(&mut rng, &d, &config)
    };

    csv::write_csv(&d_prime, out)?;
    key.save_json(key_path)?;
    eprintln!(
        "encoded {} tuples x {} attributes -> {out}; key -> {key_path}",
        d.num_rows(),
        d.num_attrs()
    );
    Ok(())
}

fn cmd_decode_dataset(a: &Args) -> Result<(), CliError> {
    let d_prime = load_data(a)?;
    let key = TransformKey::load_json(a.required("key")?)?;
    let out = a.required("out")?;
    let d = key.decode_dataset(&d_prime);
    csv::write_csv(&d, out)?;
    eprintln!("decoded {} tuples -> {out}", d.num_rows());
    Ok(())
}

fn cmd_mine(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let out = a.required("out")?;
    let criterion = match a.flag("criterion").unwrap_or("gini") {
        "gini" => SplitCriterion::Gini,
        "entropy" => SplitCriterion::Entropy,
        other => return Err(CliError(format!("--criterion: unknown {other:?}"))),
    };
    let min_leaf: u32 = a.parsed("min-leaf", 1)?;
    let params = TreeParams { criterion, min_samples_leaf: min_leaf, ..Default::default() };
    let tree = TreeBuilder::new(params).fit(&d);
    std::fs::write(out, serde_json::to_string_pretty(&tree).expect("tree serializes"))?;
    eprintln!("mined tree: {} leaves, depth {} -> {out}", tree.num_leaves(), tree.depth());
    Ok(())
}

fn cmd_decode_tree(a: &Args) -> Result<(), CliError> {
    let tree_path =
        a.positional.first().ok_or_else(|| CliError(format!("missing tree file\n{USAGE}")))?;
    let tree: DecisionTree = serde_json::from_str(&std::fs::read_to_string(tree_path)?)
        .map_err(|e| CliError(format!("tree json: {e}")))?;
    let key = TransformKey::load_json(a.required("key")?)?;
    let d = csv::read_csv(a.required("data")?)?;
    let out = a.required("out")?;
    let decoded = key.decode_tree(&tree, ThresholdPolicy::DataValue, &d);
    std::fs::write(out, serde_json::to_string_pretty(&decoded).expect("tree serializes"))?;
    if a.has("render") {
        println!("{}", decoded.render(Some(d.schema())));
    }
    eprintln!("decoded tree -> {out}");
    Ok(())
}

fn cmd_report(a: &Args) -> Result<(), CliError> {
    let tree_path =
        a.positional.first().ok_or_else(|| CliError(format!("missing tree file\n{USAGE}")))?;
    let tree: DecisionTree = serde_json::from_str(&std::fs::read_to_string(tree_path)?)
        .map_err(|e| CliError(format!("tree json: {e}")))?;
    let d = csv::read_csv(a.required("data")?)?;
    println!("tree: {} leaves, depth {}", tree.num_leaves(), tree.depth());
    println!("\n{}", tree.render(Some(d.schema())));
    println!("rules:\n{}", ppdt_tree::render_rules(&tree, Some(d.schema())));
    println!("feature importance:");
    for (attr, score) in ppdt_tree::importance_ranking(&tree, d.num_attrs()) {
        if score > 0.0 {
            println!("  {:>16}: {:.1}%", d.schema().attr_name(attr), 100.0 * score);
        }
    }
    println!("\ntraining accuracy on the supplied data: {:.1}%", 100.0 * tree.accuracy(&d));
    Ok(())
}

fn cmd_audit(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let trials: usize = a.parsed("trials", 25)?;
    let seed: u64 = a.parsed("seed", 7)?;
    let config = encode_config(a)?;
    println!("{:>16} | {:>10} {:>10} {:>10}", "attribute", "ignorant", "expert", "insider");
    for attr in d.schema().attrs() {
        let risk = |profile: HackerProfile, salt: u64| {
            let scenario = DomainScenario::polyline(profile);
            run_trials(trials, seed ^ salt ^ (attr.index() as u64) << 8, |rng| {
                domain_risk_trial(rng, &d, attr, &config, &scenario)
            })
            .median
        };
        println!(
            "{:>16} | {:>9.1}% {:>9.1}% {:>9.1}%",
            d.schema().attr_name(attr),
            100.0 * risk(HackerProfile::Ignorant, 1),
            100.0 * risk(HackerProfile::Expert, 2),
            100.0 * risk(HackerProfile::Insider, 3),
        );
    }
    let _ = AttrId(0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::figure1;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ppdt_cli_{name}_{}", std::process::id()))
    }

    #[test]
    fn args_parser_flags_and_positionals() {
        let a = Args::parse(&s(&["in.csv", "--out", "x.csv", "--verify", "--w", "12"]));
        assert_eq!(a.positional, vec!["in.csv"]);
        assert_eq!(a.flag("out"), Some("x.csv"));
        assert!(a.has("verify"));
        assert_eq!(a.parsed::<usize>("w", 0).unwrap(), 12);
        assert_eq!(a.parsed::<usize>("missing", 9).unwrap(), 9);
        assert!(a.required("nope").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&s(&["help"])).is_ok());
    }

    #[test]
    fn full_workflow_through_files() {
        // stats -> encode -> mine(D') -> decode-tree == mine(D)
        let d = figure1();
        let data_csv = tmp("data.csv");
        let dprime_csv = tmp("dprime.csv");
        let key_json = tmp("key.json");
        let tprime_json = tmp("tprime.json");
        let decoded_json = tmp("decoded.json");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();

        run(&s(&["stats", data_csv.to_str().unwrap()])).unwrap();
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            dprime_csv.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--seed",
            "9",
            "--verify",
        ]))
        .unwrap();
        run(&s(&["mine", dprime_csv.to_str().unwrap(), "--out", tprime_json.to_str().unwrap()]))
            .unwrap();
        run(&s(&[
            "decode-tree",
            tprime_json.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--data",
            data_csv.to_str().unwrap(),
            "--out",
            decoded_json.to_str().unwrap(),
        ]))
        .unwrap();

        run(&s(&["report", decoded_json.to_str().unwrap(), "--data", data_csv.to_str().unwrap()]))
            .unwrap();

        // The decoded tree equals direct mining.
        let decoded: DecisionTree =
            serde_json::from_str(&std::fs::read_to_string(&decoded_json).unwrap()).unwrap();
        let direct = TreeBuilder::default().fit(&d);
        assert!(ppdt_tree::trees_equal(&decoded, &direct));

        // decode-dataset restores the table (the class-name interning
        // order may relabel classes, so compare via CSV text).
        let restored_csv = tmp("restored.csv");
        run(&s(&[
            "decode-dataset",
            dprime_csv.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--out",
            restored_csv.to_str().unwrap(),
        ]))
        .unwrap();
        let restored = ppdt_data::csv::read_csv(&restored_csv).unwrap();
        assert_eq!(restored.num_rows(), d.num_rows());
        for a in d.schema().attrs() {
            assert_eq!(restored.column(a), d.column(a), "attr {a}");
        }

        for p in [&data_csv, &dprime_csv, &key_json, &tprime_json, &decoded_json, &restored_csv] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn parallel_encode_with_metrics_matches_serial() {
        let d = figure1();
        let data_csv = tmp("par.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let serial_out = tmp("par_serial.csv");
        let parallel_out = tmp("par_parallel.csv");
        let serial_key = tmp("par_serial_key.json");
        let parallel_key = tmp("par_parallel_key.json");
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            serial_out.to_str().unwrap(),
            "--key",
            serial_key.to_str().unwrap(),
            "--seed",
            "11",
        ]))
        .unwrap();
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            parallel_out.to_str().unwrap(),
            "--key",
            parallel_key.to_str().unwrap(),
            "--seed",
            "11",
            "--parallel",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&serial_out).unwrap(),
            std::fs::read_to_string(&parallel_out).unwrap()
        );
        assert_eq!(
            std::fs::read_to_string(&serial_key).unwrap(),
            std::fs::read_to_string(&parallel_key).unwrap()
        );
        for p in [&data_csv, &serial_out, &parallel_out, &serial_key, &parallel_key] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn encode_requires_out_and_key() {
        let d = figure1();
        let data_csv = tmp("noargs.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let err = run(&s(&["encode", data_csv.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("--out"));
        let _ = std::fs::remove_file(&data_csv);
    }

    #[test]
    fn bad_strategy_rejected() {
        let d = figure1();
        let data_csv = tmp("badstrat.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let err = run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            "/tmp/x.csv",
            "--key",
            "/tmp/k.json",
            "--strategy",
            "bogus",
        ]))
        .unwrap_err();
        assert!(err.0.contains("strategy"));
        let _ = std::fs::remove_file(&data_csv);
    }
}
