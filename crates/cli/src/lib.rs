//! # ppdt-cli
//!
//! The data-custodian command-line tool (binary name `ppdt`):
//!
//! ```text
//! ppdt stats  <data.csv>                      attribute statistics + release verdicts
//! ppdt encode <data.csv> --out D.csv --key K.json [--seed N]
//!             [--strategy maxmp|bp|none] [--w N] [--verify] [--parallel]
//! ppdt decode-dataset <Dprime.csv> --key K.json --out orig.csv
//! ppdt mine   <data.csv> --out tree.json [--criterion gini|entropy]
//!             [--min-leaf N]                  (stand-in for the miner)
//! ppdt decode-tree <tree.json> --key K.json --data orig.csv
//!             --out decoded.json [--render]
//! ppdt report <tree.json> --data <data.csv>   rules, importance, rendering
//! ppdt audit  <data.csv> [--key K.json] [--json report.json]
//!             [--trials N] [--seed N]
//! ppdt serve  --keystore-dir <dir> [--addr 127.0.0.1:7070]
//!             [--workers N] [--queue N] [--deadline-ms N]
//!             [--max-body-mb N] [--plan-cache N] [--tree-cache N]
//!             [--debug-endpoints]
//! ```
//!
//! The command surface mirrors the custodian workflow of the paper's
//! introduction: encode, ship, receive the mined tree, decode with the
//! key, and audit what a hacker could recover. All subcommand logic
//! lives in this library so it is unit-testable; `main.rs` only
//! forwards `std::env::args`.
//!
//! Every subcommand also accepts `--metrics`, which enables the
//! [`ppdt_obs`] instrumentation layer and prints phase timings,
//! pipeline counters, and peak RSS to stderr on exit (the metric
//! catalogue is documented in `BENCHMARKS.md`).
//!
//! ## Exit codes
//!
//! Failures carry a typed [`PpdtError`]; `main` maps its
//! [`ErrorCategory`](ppdt_error::ErrorCategory) to a stable exit code
//! via [`ErrorCategory::exit_code`](ppdt_error::ErrorCategory::exit_code),
//! and `ppdt serve` maps the same categories to HTTP statuses via
//! [`ErrorCategory::http_status`](ppdt_error::ErrorCategory::http_status)
//! (see the README error-code table):
//!
//! | exit | HTTP | meaning |
//! |-----:|-----:|---------|
//! | 1 | 500 | internal error (a bug) |
//! | 2 | 400 | usage / invalid configuration |
//! | 3 | 500 | I/O failure |
//! | 4 | 409 | corrupt key (audit failure, key/data mismatch) |
//! | 5 | 424 | incompatible mined tree |
//! | 6 | 422 | corrupt dataset |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppdt_attack::HackerProfile;
use ppdt_data::{csv, AttrId, AttrStats, Dataset};
use ppdt_error::PpdtError;
use ppdt_risk::{domain_risk_trial, try_run_trials, DomainScenario};
use ppdt_transform::{
    BreakpointStrategy, CompiledKey, EncodeConfig, Encoder, RetryPolicy, Severity, TransformKey,
};
use ppdt_tree::{DecisionTree, SplitCriterion, ThresholdPolicy, TreeBuilder, TreeParams};

/// CLI failure: a typed [`PpdtError`] whose category determines the
/// process exit code. Rendered to stderr by `main`.
#[derive(Debug)]
pub struct CliError(pub PpdtError);

impl CliError {
    /// A usage error (exit code 2).
    fn usage(detail: impl Into<String>) -> Self {
        CliError(PpdtError::InvalidConfig { param: "usage".into(), detail: detail.into() })
    }

    /// The documented process exit code for this failure.
    pub fn exit_code(&self) -> i32 {
        self.0.category().exit_code()
    }

    /// The stable category name (`usage`, `io`, `corrupt_key`, ...).
    pub fn category_name(&self) -> &'static str {
        self.0.category().name()
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<PpdtError> for CliError {
    fn from(e: PpdtError) -> Self {
        CliError(e)
    }
}

impl From<csv::CsvError> for CliError {
    fn from(e: csv::CsvError) -> Self {
        CliError(e.into())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.into())
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: ppdt <subcommand> [args]
  stats <data.csv>
  encode <data.csv> --out <Dprime.csv> --key <key.json> [--seed N]
         [--strategy maxmp|bp|none] [--w N] [--verify] [--parallel]
         [--attempts N] [--on-exhaust fail|fallback]
  decode-dataset <Dprime.csv> --key <key.json> --out <orig.csv>
  mine <data.csv> --out <tree.json> [--criterion gini|entropy] [--min-leaf N]
       [--mining-threads N]
  decode-tree <tree.json> --key <key.json> --data <orig.csv> --out <decoded.json> [--render]
  report <tree.json> --data <data.csv>
  audit <data.csv> [--key <key.json>] [--json <report.json>] [--trials N] [--seed N]
  serve --keystore-dir <dir> [--addr 127.0.0.1:7070] [--workers N] [--queue N]
        [--deadline-ms N] [--max-body-mb N] [--plan-cache N] [--tree-cache N]
        [--keep-alive N] [--idle-timeout SECS] [--max-connections N]
        [--debug-endpoints] [--peer HOST:PORT]... [--sync-interval-ms N]
        [--tenant-max-keys N] [--tenant-max-inflight N]
any subcommand accepts --metrics (phase timings + counters on stderr)
and --lenient (skip malformed CSV rows instead of failing)
exit codes: 1 internal, 2 usage, 3 io, 4 corrupt key, 5 incompatible tree, 6 corrupt data
";

/// Tiny flag parser: positional arguments plus `--flag [value]` pairs.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(args: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked").clone()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// Every occurrence of a repeatable flag, in order. A bare
    /// occurrence (no value) is an error — the caller gets `Err`
    /// rather than silently losing it, since `flag()` only ever sees
    /// the first occurrence.
    fn flag_all(&self, name: &str) -> Result<Vec<&str>, CliError> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| {
                v.as_deref().ok_or_else(|| CliError::usage(format!("--{name} needs a value")))
            })
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flag(name).ok_or_else(|| CliError::usage(format!("missing required --{name} <value>")))
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError::usage(format!("--{name}: cannot parse {v:?}")))
            }
        }
    }
}

/// Entry point: dispatches a full argument vector (without `argv[0]`).
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    let a = Args::parse(rest);
    if a.has("metrics") {
        ppdt_obs::set_enabled(true);
    }
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&a),
        "encode" => cmd_encode(&a),
        "decode-dataset" => cmd_decode_dataset(&a),
        "mine" => cmd_mine(&a),
        "decode-tree" => cmd_decode_tree(&a),
        "report" => cmd_report(&a),
        "audit" => cmd_audit(&a),
        "serve" => cmd_serve(&a),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown subcommand {other:?}\n{USAGE}"))),
    };
    if a.has("metrics") {
        print_metrics();
    }
    result
}

/// Renders the [`ppdt_obs`] snapshot to stderr (the `--metrics` flag).
fn print_metrics() {
    let snap = ppdt_obs::snapshot();
    eprintln!("-- metrics --");
    for p in &snap.phases {
        eprintln!("  phase {:>8}: {:>10.6}s over {} call(s)", p.name, p.seconds, p.calls);
    }
    for c in snap.counters.iter().filter(|c| c.value > 0) {
        eprintln!("  count {:>18}: {}", c.name, c.value);
    }
    if let Some(rss) = snap.peak_rss_bytes {
        eprintln!("  peak rss: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
}

fn load_data(a: &Args) -> Result<Dataset, CliError> {
    let path = a
        .positional
        .first()
        .ok_or_else(|| CliError::usage(format!("missing input file\n{USAGE}")))?;
    let opts = csv::CsvOptions { lenient: a.has("lenient") };
    let (d, skips) = csv::read_csv_opts(path, opts)?;
    if !skips.is_clean() {
        eprintln!("warning: skipped {} malformed row(s) of {path}", skips.total_skipped);
        for row in skips.skipped.iter().take(5) {
            eprintln!("  line {}: {}", row.line, row.reason);
        }
    }
    Ok(d)
}

fn cmd_stats(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let granularity: f64 = a.parsed("granularity", 1.0)?;
    println!(
        "{:>16} | {:>9} {:>9} {:>9} {:>8} {:>9} {:>7}",
        "attribute", "min", "max", "#distinct", "#discont", "#mono-pc", "%mono"
    );
    for s in AttrStats::compute_all(&d, granularity, 5) {
        println!(
            "{:>16} | {:>9} {:>9} {:>9} {:>8} {:>9} {:>6.1}%",
            d.schema().attr_name(s.attr),
            s.min,
            s.max,
            s.num_distinct,
            s.num_discontinuities,
            s.num_mono_pieces,
            100.0 * s.pct_mono_values,
        );
    }
    Ok(())
}

fn encode_config(a: &Args) -> Result<EncodeConfig, CliError> {
    let w: usize = a.parsed("w", 20)?;
    let strategy = match a.flag("strategy").unwrap_or("maxmp") {
        "maxmp" => BreakpointStrategy::ChooseMaxMP { w, min_piece_len: 5 },
        "bp" => BreakpointStrategy::ChooseBP { w },
        "none" => BreakpointStrategy::None,
        other => return Err(CliError::usage(format!("--strategy: unknown {other:?}"))),
    };
    Ok(EncodeConfig { strategy, ..Default::default() })
}

fn retry_policy(a: &Args, default_attempts: usize) -> Result<RetryPolicy, CliError> {
    let attempts: usize = a.parsed("attempts", default_attempts)?;
    match a.flag("on-exhaust").unwrap_or("fail") {
        "fail" => Ok(RetryPolicy::failing(attempts)),
        "fallback" => Ok(RetryPolicy::with_fallback(attempts)),
        other => {
            Err(CliError::usage(format!("--on-exhaust: expected fail|fallback, got {other:?}")))
        }
    }
}

fn cmd_encode(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let out = a.required("out")?;
    let key_path = a.required("key")?;
    let seed: u64 = a.parsed("seed", 7)?;
    let config = encode_config(a)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (key, d_prime) = if a.has("verify") {
        let encoded = Encoder::new(config)
            .retry(retry_policy(a, 8)?)
            .verify_with(TreeParams::default())
            .encode(&mut rng, &d)?;
        eprintln!("verified encode in {} attempt(s)", encoded.attempts);
        (encoded.key, encoded.dataset)
    } else {
        // `.threads(1)` is the serial default; `--parallel` resolves
        // the pool via PPDT_THREADS / available parallelism.
        let threads = if a.has("parallel") { 0 } else { 1 };
        Encoder::new(config)
            .retry(retry_policy(a, 16)?)
            .threads(threads)
            .encode(&mut rng, &d)?
            .into_parts()
    };

    csv::write_csv(&d_prime, out)?;
    key.save_json(key_path)?;
    eprintln!(
        "encoded {} tuples x {} attributes -> {out}; key -> {key_path}",
        d.num_rows(),
        d.num_attrs()
    );
    Ok(())
}

fn cmd_decode_dataset(a: &Args) -> Result<(), CliError> {
    let d_prime = load_data(a)?;
    let key = TransformKey::load_json(a.required("key")?)?;
    let out = a.required("out")?;
    // The compiled plan's batched decode_column path — bit-identical
    // to the interpreted decode (pinned by the compiled_equivalence
    // proptest) but without per-value piece dispatch.
    let d = CompiledKey::compile(&key)?.decode_dataset(&d_prime)?;
    csv::write_csv(&d, out)?;
    eprintln!("decoded {} tuples -> {out}", d.num_rows());
    Ok(())
}

fn cmd_mine(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    let out = a.required("out")?;
    let criterion = match a.flag("criterion").unwrap_or("gini") {
        "gini" => SplitCriterion::Gini,
        "entropy" => SplitCriterion::Entropy,
        other => return Err(CliError::usage(format!("--criterion: unknown {other:?}"))),
    };
    let min_leaf: u32 = a.parsed("min-leaf", 1)?;
    // Worker threads for split search; the emitted tree is identical
    // at any count. Default: PPDT_THREADS, else hardware parallelism.
    let mining_threads = match a.flag("mining-threads") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                return Err(CliError::usage(format!(
                    "--mining-threads: expected a positive integer, got {v:?}"
                )))
            }
        },
    };
    let params = TreeParams { criterion, min_samples_leaf: min_leaf, ..Default::default() };
    let tree = TreeBuilder::new(params).with_threads(mining_threads).fit(&d);
    let json = serde_json::to_string_pretty(&tree)
        .map_err(|e| PpdtError::internal(format!("tree serialization: {e}")))?;
    std::fs::write(out, json)?;
    eprintln!("mined tree: {} leaves, depth {} -> {out}", tree.num_leaves(), tree.depth());
    Ok(())
}

fn load_tree(path: &str) -> Result<DecisionTree, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| PpdtError::io(path, e))?;
    let tree: DecisionTree = serde_json::from_str(&text).map_err(|e| {
        PpdtError::TreeIncompatible { detail: format!("cannot parse tree json {path}: {e}") }
    })?;
    Ok(tree)
}

fn cmd_decode_tree(a: &Args) -> Result<(), CliError> {
    let tree_path = a
        .positional
        .first()
        .ok_or_else(|| CliError::usage(format!("missing tree file\n{USAGE}")))?;
    let tree = load_tree(tree_path)?;
    let key = TransformKey::load_json(a.required("key")?)?;
    let d = csv::read_csv(a.required("data")?)?;
    let out = a.required("out")?;
    tree.validate(Some(d.num_attrs()))?;
    let decoded = key.decode_tree(&tree, ThresholdPolicy::DataValue, &d)?;
    let json = serde_json::to_string_pretty(&decoded)
        .map_err(|e| PpdtError::internal(format!("tree serialization: {e}")))?;
    std::fs::write(out, json)?;
    if a.has("render") {
        println!("{}", decoded.render(Some(d.schema())));
    }
    eprintln!("decoded tree -> {out}");
    Ok(())
}

fn cmd_report(a: &Args) -> Result<(), CliError> {
    let tree_path = a
        .positional
        .first()
        .ok_or_else(|| CliError::usage(format!("missing tree file\n{USAGE}")))?;
    let tree = load_tree(tree_path)?;
    let d = csv::read_csv(a.required("data")?)?;
    println!("tree: {} leaves, depth {}", tree.num_leaves(), tree.depth());
    println!("\n{}", tree.render(Some(d.schema())));
    println!("rules:\n{}", ppdt_tree::render_rules(&tree, Some(d.schema())));
    println!("feature importance:");
    for (attr, score) in ppdt_tree::importance_ranking(&tree, d.num_attrs()) {
        if score > 0.0 {
            println!("  {:>16}: {:.1}%", d.schema().attr_name(attr), 100.0 * score);
        }
    }
    println!("\ntraining accuracy on the supplied data: {:.1}%", 100.0 * tree.accuracy(&d));
    Ok(())
}

fn cmd_audit(a: &Args) -> Result<(), CliError> {
    let d = load_data(a)?;
    if let Some(key_path) = a.flag("key") {
        return audit_key_mode(a, &d, key_path);
    }
    let trials: usize = a.parsed("trials", 25)?;
    let seed: u64 = a.parsed("seed", 7)?;
    let config = encode_config(a)?;
    println!("{:>16} | {:>10} {:>10} {:>10}", "attribute", "ignorant", "expert", "insider");
    for attr in d.schema().attrs() {
        let risk = |profile: HackerProfile, salt: u64| -> Result<f64, CliError> {
            let scenario = DomainScenario::polyline(profile);
            let stats = try_run_trials(trials, seed ^ salt ^ (attr.index() as u64) << 8, |rng| {
                domain_risk_trial(rng, &d, attr, &config, &scenario)
            })?;
            Ok(stats.median)
        };
        println!(
            "{:>16} | {:>9.1}% {:>9.1}% {:>9.1}%",
            d.schema().attr_name(attr),
            100.0 * risk(HackerProfile::Ignorant, 1)?,
            100.0 * risk(HackerProfile::Expert, 2)?,
            100.0 * risk(HackerProfile::Insider, 3)?,
        );
    }
    let _ = AttrId(0);
    Ok(())
}

/// `ppdt audit <data.csv> --key K.json [--json report.json]`: the
/// structural key/dataset audit. Prints a human summary, optionally
/// writes the machine-readable [`ppdt_transform::AuditReport`], and
/// fails (exit code 4) when the audit finds errors.
fn audit_key_mode(a: &Args, d: &Dataset, key_path: &str) -> Result<(), CliError> {
    let key = TransformKey::load_json(key_path)?;
    let report = ppdt_transform::audit_key_against(&key, d);
    if let Some(json_path) = a.flag("json") {
        std::fs::write(json_path, report.to_json_pretty())
            .map_err(|e| PpdtError::io(json_path, e))?;
        eprintln!("audit report -> {json_path}");
    }
    println!(
        "audit of {key_path}: {} attribute(s), {} row(s): {} error(s), {} warning(s){}",
        report.attrs_checked,
        report.rows_checked.unwrap_or(0),
        report.errors,
        report.warnings,
        if report.truncated { " (findings truncated)" } else { "" },
    );
    for f in &report.findings {
        let sev = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        print!("  [{sev}] {}: {}", f.code, f.message);
        if let Some(attr) = f.attr {
            print!(" [attribute {attr}");
            if let Some(piece) = f.piece {
                print!(", piece {piece}");
            }
            if let Some(row) = f.row {
                print!(", row {row}");
            }
            print!("]");
        }
        println!();
    }
    if report.passed() {
        println!("audit passed");
        Ok(())
    } else {
        Err(CliError(
            report.first_error().unwrap_or_else(|| PpdtError::key_corrupt("audit failed")),
        ))
    }
}

/// `ppdt serve`: run the custodian daemon until SIGINT/SIGTERM, then
/// drain gracefully. Prints one parseable line to stdout once bound:
/// `ppdt-serve listening on <addr> ...` — scripts read the address
/// from it (`--addr 127.0.0.1:0` binds an OS-assigned port).
fn cmd_serve(a: &Args) -> Result<(), CliError> {
    let keystore_dir = a.required("keystore-dir")?;
    let addr = a.flag("addr").unwrap_or("127.0.0.1:7070").to_string();
    let workers: usize = a.parsed("workers", 0)?;
    let queue: usize = a.parsed("queue", 64)?;
    let deadline_ms: u64 = a.parsed("deadline-ms", 10_000)?;
    let max_body_mb: usize = a.parsed("max-body-mb", 16)?;
    let cache_defaults = ppdt_serve::ServerConfig::default();
    // 0 disables a cache (every request reloads + recompiles).
    let plan_cache: usize = a.parsed("plan-cache", cache_defaults.plan_cache_capacity)?;
    let tree_cache: usize = a.parsed("tree-cache", cache_defaults.tree_cache_capacity)?;
    // 0 disables keep-alive (every connection answers one request).
    let keep_alive: u64 = a.parsed("keep-alive", cache_defaults.keep_alive_requests)?;
    let idle_timeout_s: u64 =
        a.parsed("idle-timeout", cache_defaults.idle_timeout.as_secs().max(1))?;
    // Load generators want this adjustable: the accept-side cap is
    // what a high-concurrency open-loop sweep hits first.
    let max_connections: usize = a.parsed("max-connections", cache_defaults.max_connections)?;
    // Cluster flags: each --peer is another daemon to replicate with.
    let peers: Vec<std::net::SocketAddr> = a
        .flag_all("peer")?
        .into_iter()
        .map(|p| {
            p.parse()
                .map_err(|_| CliError::usage(format!("--peer: cannot parse {p:?} as HOST:PORT")))
        })
        .collect::<Result<_, _>>()?;
    let sync_interval_ms: u64 =
        a.parsed("sync-interval-ms", cache_defaults.sync_interval.as_millis() as u64)?;
    if sync_interval_ms == 0 {
        return Err(CliError::usage("--sync-interval-ms must be at least 1"));
    }
    if a.has("sync-interval-ms") && peers.is_empty() {
        return Err(CliError::usage("--sync-interval-ms needs at least one --peer"));
    }
    // Tenant quotas: 0 (the default) disables enforcement.
    let tenant_max_keys: usize = a.parsed("tenant-max-keys", cache_defaults.tenant_max_keys)?;
    let tenant_max_inflight: usize =
        a.parsed("tenant-max-inflight", cache_defaults.tenant_max_inflight)?;
    if queue == 0 {
        return Err(CliError::usage("--queue must be at least 1"));
    }
    if deadline_ms == 0 {
        return Err(CliError::usage("--deadline-ms must be at least 1"));
    }
    if max_body_mb == 0 {
        return Err(CliError::usage("--max-body-mb must be at least 1"));
    }
    if idle_timeout_s == 0 {
        return Err(CliError::usage("--idle-timeout must be at least 1 second"));
    }
    if max_connections == 0 {
        return Err(CliError::usage("--max-connections must be at least 1"));
    }
    let cfg = ppdt_serve::ServerConfig {
        addr,
        workers,
        queue_capacity: queue,
        request_deadline: std::time::Duration::from_millis(deadline_ms),
        max_body_bytes: max_body_mb * 1024 * 1024,
        debug_endpoints: a.has("debug-endpoints"),
        plan_cache_capacity: plan_cache,
        tree_cache_capacity: tree_cache,
        keep_alive_requests: keep_alive,
        idle_timeout: std::time::Duration::from_secs(idle_timeout_s),
        max_connections,
        peers: peers.clone(),
        sync_interval: std::time::Duration::from_millis(sync_interval_ms),
        tenant_max_keys,
        tenant_max_inflight,
        ..Default::default()
    };
    let store = ppdt_serve::KeyStore::open(keystore_dir)?;
    ppdt_serve::signal::install();
    let server = ppdt_serve::Server::bind(cfg, store)?;
    println!(
        "ppdt-serve listening on {} (workers={}, queue={}, keystore={}, peers={})",
        server.addr(),
        server.workers(),
        queue,
        keystore_dir,
        peers.len()
    );
    // Scripts wait for the line above before sending requests.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run()?;
    eprintln!("ppdt-serve drained and stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdt_data::gen::figure1;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ppdt_cli_{name}_{}", std::process::id()))
    }

    #[test]
    fn args_parser_flags_and_positionals() {
        let a = Args::parse(&s(&["in.csv", "--out", "x.csv", "--verify", "--w", "12"]));
        assert_eq!(a.positional, vec!["in.csv"]);
        assert_eq!(a.flag("out"), Some("x.csv"));
        assert!(a.has("verify"));
        assert_eq!(a.parsed::<usize>("w", 0).unwrap(), 12);
        assert_eq!(a.parsed::<usize>("missing", 9).unwrap(), 9);
        assert!(a.required("nope").is_err());
        // Repeatable flags: flag() sees the first, flag_all() all of
        // them, and a bare occurrence is an error not a silent drop.
        let a = Args::parse(&s(&["--peer", "a:1", "--peer", "b:2"]));
        assert_eq!(a.flag("peer"), Some("a:1"));
        assert_eq!(a.flag_all("peer").unwrap(), vec!["a:1", "b:2"]);
        assert_eq!(a.flag_all("absent").unwrap(), Vec::<&str>::new());
        let bare = Args::parse(&s(&["--peer", "a:1", "--peer", "--verify"]));
        assert!(bare.flag_all("peer").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&s(&["help"])).is_ok());
    }

    #[test]
    fn full_workflow_through_files() {
        // stats -> encode -> mine(D') -> decode-tree == mine(D)
        let d = figure1();
        let data_csv = tmp("data.csv");
        let dprime_csv = tmp("dprime.csv");
        let key_json = tmp("key.json");
        let tprime_json = tmp("tprime.json");
        let decoded_json = tmp("decoded.json");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();

        run(&s(&["stats", data_csv.to_str().unwrap()])).unwrap();
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            dprime_csv.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--seed",
            "9",
            "--verify",
        ]))
        .unwrap();
        run(&s(&["mine", dprime_csv.to_str().unwrap(), "--out", tprime_json.to_str().unwrap()]))
            .unwrap();
        run(&s(&[
            "decode-tree",
            tprime_json.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--data",
            data_csv.to_str().unwrap(),
            "--out",
            decoded_json.to_str().unwrap(),
        ]))
        .unwrap();

        run(&s(&["report", decoded_json.to_str().unwrap(), "--data", data_csv.to_str().unwrap()]))
            .unwrap();

        // The decoded tree equals direct mining.
        let decoded: DecisionTree =
            serde_json::from_str(&std::fs::read_to_string(&decoded_json).unwrap()).unwrap();
        let direct = TreeBuilder::default().fit(&d);
        assert!(ppdt_tree::trees_equal(&decoded, &direct));

        // decode-dataset restores the table (the class-name interning
        // order may relabel classes, so compare via CSV text).
        let restored_csv = tmp("restored.csv");
        run(&s(&[
            "decode-dataset",
            dprime_csv.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--out",
            restored_csv.to_str().unwrap(),
        ]))
        .unwrap();
        let restored = ppdt_data::csv::read_csv(&restored_csv).unwrap();
        assert_eq!(restored.num_rows(), d.num_rows());
        for a in d.schema().attrs() {
            assert_eq!(restored.column(a), d.column(a), "attr {a}");
        }

        for p in [&data_csv, &dprime_csv, &key_json, &tprime_json, &decoded_json, &restored_csv] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn parallel_encode_with_metrics_matches_serial() {
        let d = figure1();
        let data_csv = tmp("par.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let serial_out = tmp("par_serial.csv");
        let parallel_out = tmp("par_parallel.csv");
        let serial_key = tmp("par_serial_key.json");
        let parallel_key = tmp("par_parallel_key.json");
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            serial_out.to_str().unwrap(),
            "--key",
            serial_key.to_str().unwrap(),
            "--seed",
            "11",
        ]))
        .unwrap();
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            parallel_out.to_str().unwrap(),
            "--key",
            parallel_key.to_str().unwrap(),
            "--seed",
            "11",
            "--parallel",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&serial_out).unwrap(),
            std::fs::read_to_string(&parallel_out).unwrap()
        );
        assert_eq!(
            std::fs::read_to_string(&serial_key).unwrap(),
            std::fs::read_to_string(&parallel_key).unwrap()
        );
        for p in [&data_csv, &serial_out, &parallel_out, &serial_key, &parallel_key] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn encode_requires_out_and_key() {
        let d = figure1();
        let data_csv = tmp("noargs.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let err = run(&s(&["encode", data_csv.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("--out"));
        assert_eq!(err.exit_code(), 2, "missing flags are usage errors");
        let _ = std::fs::remove_file(&data_csv);
    }

    #[test]
    fn bad_strategy_rejected() {
        let d = figure1();
        let data_csv = tmp("badstrat.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let err = run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            "/tmp/x.csv",
            "--key",
            "/tmp/k.json",
            "--strategy",
            "bogus",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("strategy"));
        assert_eq!(err.exit_code(), 2);
        let _ = std::fs::remove_file(&data_csv);
    }

    #[test]
    fn missing_input_file_is_io_error() {
        let err = run(&s(&["stats", "/nonexistent/ppdt_cli.csv"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
    }

    #[test]
    fn lenient_flag_skips_bad_rows() {
        let path = tmp("lenient.csv");
        std::fs::write(
            &path,
            "a,class
1,x
bogus,y
2,y
",
        )
        .unwrap();
        // Strict parse fails with a corrupt-data exit code...
        let err = run(&s(&["stats", path.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        // ...lenient parse skips the bad row and proceeds.
        run(&s(&["stats", path.to_str().unwrap(), "--lenient"])).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn audit_detects_corrupted_key_with_structured_report() {
        let d = figure1();
        let data_csv = tmp("audit_data.csv");
        let dprime_csv = tmp("audit_dprime.csv");
        let key_json = tmp("audit_key.json");
        let report_json = tmp("audit_report.json");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            dprime_csv.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--seed",
            "3",
        ]))
        .unwrap();

        // A sound key passes the audit.
        run(&s(&["audit", data_csv.to_str().unwrap(), "--key", key_json.to_str().unwrap()]))
            .unwrap();

        // A bit-rotted key fails with exit code 4 and a JSON report.
        // Flipping digits until the audit trips keeps the test robust
        // to which digit the seed lands on (some flips are harmless,
        // e.g. inside an unused domain tail).
        let good = std::fs::read_to_string(&key_json).unwrap();
        let mut failed = None;
        for seed in 0..40u64 {
            let bad = ppdt_data::corrupt::flip_ascii_digit(&good, seed);
            std::fs::write(&key_json, &bad).unwrap();
            let r = run(&s(&[
                "audit",
                data_csv.to_str().unwrap(),
                "--key",
                key_json.to_str().unwrap(),
                "--json",
                report_json.to_str().unwrap(),
            ]));
            if let Err(e) = r {
                failed = Some(e);
                break;
            }
        }
        let err = failed.expect("some digit flip should corrupt the key");
        assert_eq!(err.exit_code(), 4, "{err}");
        let report = std::fs::read_to_string(&report_json).unwrap();
        assert!(report.contains("\"findings\""), "structured report written: {report}");

        // A truncated key is caught at load time (corrupt key too).
        std::fs::write(&key_json, ppdt_data::corrupt::truncate_at(&good, 0.5)).unwrap();
        let err =
            run(&s(&["audit", data_csv.to_str().unwrap(), "--key", key_json.to_str().unwrap()]))
                .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");

        for p in [&data_csv, &dprime_csv, &key_json, &report_json] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn tampered_tree_is_an_incompatible_tree_error() {
        let d = figure1();
        let data_csv = tmp("tamper_data.csv");
        let dprime_csv = tmp("tamper_dprime.csv");
        let key_json = tmp("tamper_key.json");
        let tree_json = tmp("tamper_tree.json");
        let out_json = tmp("tamper_out.json");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            dprime_csv.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["mine", dprime_csv.to_str().unwrap(), "--out", tree_json.to_str().unwrap()]))
            .unwrap();

        // Point the tree at an attribute the dataset does not have.
        let tree_text = std::fs::read_to_string(&tree_json).unwrap();
        let mut tree: DecisionTree = serde_json::from_str(&tree_text).unwrap();
        if let ppdt_tree::Node::Split { attr, .. } = &mut tree.root {
            *attr = AttrId(99);
        }
        std::fs::write(&tree_json, serde_json::to_string_pretty(&tree).unwrap()).unwrap();
        let err = run(&s(&[
            "decode-tree",
            tree_json.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--data",
            data_csv.to_str().unwrap(),
            "--out",
            out_json.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");

        // Unparseable tree JSON is also an incompatible-tree failure.
        std::fs::write(&tree_json, "{not json").unwrap();
        let err = run(&s(&[
            "decode-tree",
            tree_json.to_str().unwrap(),
            "--key",
            key_json.to_str().unwrap(),
            "--data",
            data_csv.to_str().unwrap(),
            "--out",
            out_json.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");

        for p in [&data_csv, &dprime_csv, &key_json, &tree_json, &out_json] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_flags_are_validated() {
        // Missing keystore dir is a usage error before anything binds.
        let err = run(&s(&["serve"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("keystore-dir"), "{err}");
        // Degenerate pool/queue/body settings are rejected up front.
        for bad in [
            ["--queue", "0"],
            ["--deadline-ms", "0"],
            ["--max-body-mb", "0"],
            ["--workers", "x"],
            ["--idle-timeout", "0"],
            ["--max-connections", "0"],
            ["--keep-alive", "x"],
            ["--peer", "not-an-address"],
            ["--sync-interval-ms", "0"],
            // --sync-interval-ms without any --peer is meaningless.
            ["--sync-interval-ms", "500"],
        ] {
            let mut args = s(&["serve", "--keystore-dir", "/tmp/ppdt-serve-flags"]);
            args.extend(s(&bad));
            let err = run(&args).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
        }
        // An unbindable address surfaces as an I/O failure, not a panic.
        let err = run(&s(&[
            "serve",
            "--keystore-dir",
            "/tmp/ppdt-serve-flags",
            "--addr",
            "256.256.256.256:1",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let _ = std::fs::remove_dir_all("/tmp/ppdt-serve-flags");
    }

    #[test]
    fn retry_flags_are_validated() {
        let d = figure1();
        let data_csv = tmp("retry.csv");
        ppdt_data::csv::write_csv(&d, &data_csv).unwrap();
        let err = run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            "/tmp/ppdt_retry_out.csv",
            "--key",
            "/tmp/ppdt_retry_key.json",
            "--on-exhaust",
            "explode",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        // Zero attempts is rejected by RetryPolicy::validate.
        let err = run(&s(&[
            "encode",
            data_csv.to_str().unwrap(),
            "--out",
            "/tmp/ppdt_retry_out.csv",
            "--key",
            "/tmp/ppdt_retry_key.json",
            "--attempts",
            "0",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let _ = std::fs::remove_file(&data_csv);
    }
}
