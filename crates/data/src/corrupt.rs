//! Deterministic corruptors for fault-injection testing.
//!
//! The hardening work needs *reproducible* hostile inputs: every test
//! corruption is a pure function of `(input, corruption kind, seed)`,
//! so a failing case replays exactly from its seed. Two families:
//!
//! * [`corrupt_csv`] — structured CSV mutations (NaN/Inf/empty cells,
//!   ragged rows, duplicate or dropped header columns, out-of-domain
//!   values) exercising [`crate::csv`] and downstream schema/audit
//!   checks;
//! * [`truncate_at`] / [`flip_ascii_digit`] — generic text mutations
//!   for serialized artifacts such as transform-key JSON (truncation
//!   models a torn write, a digit flip models silent bit rot that
//!   keeps the file parseable).
//!
//! Nothing here touches the filesystem or global RNG state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One structured way to damage a CSV table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsvCorruption {
    /// Replace a random attribute cell with `NaN`.
    NanCell,
    /// Replace a random attribute cell with `inf`.
    InfCell,
    /// Replace a random attribute cell with an empty field.
    EmptyCell,
    /// Drop the last field of a random data row (wrong arity).
    RaggedRow,
    /// Rename the second header column to the first one's name.
    DuplicateHeaderColumn,
    /// Remove the first attribute column from the header and all rows.
    DropColumn,
    /// Replace a random attribute cell with a value far outside any
    /// plausible active domain (parses fine; caught by key audit).
    OutOfDomainValue,
}

impl CsvCorruption {
    /// Stable lowercase name (used in test labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            CsvCorruption::NanCell => "nan_cell",
            CsvCorruption::InfCell => "inf_cell",
            CsvCorruption::EmptyCell => "empty_cell",
            CsvCorruption::RaggedRow => "ragged_row",
            CsvCorruption::DuplicateHeaderColumn => "duplicate_header_column",
            CsvCorruption::DropColumn => "drop_column",
            CsvCorruption::OutOfDomainValue => "out_of_domain_value",
        }
    }

    /// Whether the damaged text still parses as CSV (the corruption is
    /// only detectable against a transform key / schema, not by the
    /// parser itself).
    pub fn parses_clean(self) -> bool {
        matches!(self, CsvCorruption::DropColumn | CsvCorruption::OutOfDomainValue)
    }
}

/// Every [`CsvCorruption`] variant, for exhaustive fault sweeps.
pub const ALL_CSV_CORRUPTIONS: [CsvCorruption; 7] = [
    CsvCorruption::NanCell,
    CsvCorruption::InfCell,
    CsvCorruption::EmptyCell,
    CsvCorruption::RaggedRow,
    CsvCorruption::DuplicateHeaderColumn,
    CsvCorruption::DropColumn,
    CsvCorruption::OutOfDomainValue,
];

/// Applies `corruption` to CSV `text`, deterministically from `seed`.
///
/// The input must have a header line and at least one data row with at
/// least two columns (header + rows as produced by
/// [`crate::csv::to_csv`]); anything smaller is returned unchanged.
pub fn corrupt_csv(text: &str, corruption: CsvCorruption, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ (corruption as u64).wrapping_mul(0x9e37_79b9));
    let mut lines: Vec<Vec<String>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(|f| f.trim().to_string()).collect())
        .collect();
    if lines.len() < 2 || lines[0].len() < 2 {
        return text.to_string();
    }
    let num_cols = lines[0].len();
    let num_attrs = num_cols - 1;
    let data_rows = lines.len() - 1;
    let pick_row = |rng: &mut StdRng| 1 + rng.gen_range(0..data_rows);
    // Column picks need at least one attribute column; with none, the
    // cell-level corruptions degrade to touching the label column.
    let pick_col = |rng: &mut StdRng| rng.gen_range(0..num_attrs.max(1));

    match corruption {
        CsvCorruption::NanCell => {
            let (r, c) = (pick_row(&mut rng), pick_col(&mut rng));
            lines[r][c] = "NaN".to_string();
        }
        CsvCorruption::InfCell => {
            let (r, c) = (pick_row(&mut rng), pick_col(&mut rng));
            lines[r][c] = "inf".to_string();
        }
        CsvCorruption::EmptyCell => {
            let (r, c) = (pick_row(&mut rng), pick_col(&mut rng));
            lines[r][c] = String::new();
        }
        CsvCorruption::RaggedRow => {
            let r = pick_row(&mut rng);
            lines[r].pop();
        }
        CsvCorruption::DuplicateHeaderColumn => {
            let first = lines[0][0].clone();
            lines[0][1] = first;
        }
        CsvCorruption::DropColumn => {
            for row in &mut lines {
                row.remove(0);
            }
        }
        CsvCorruption::OutOfDomainValue => {
            let (r, c) = (pick_row(&mut rng), pick_col(&mut rng));
            lines[r][c] = "999999999".to_string();
        }
    }

    let mut out = String::with_capacity(text.len() + 8);
    for row in &lines {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Truncates `text` to `frac` (clamped to `[0, 1]`) of its byte length,
/// snapping down to a UTF-8 boundary. Models a torn write of a
/// serialized artifact.
pub fn truncate_at(text: &str, frac: f64) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let mut cut = (text.len() as f64 * frac) as usize;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Replaces one ASCII digit of `text` with a *different* digit, chosen
/// deterministically from `seed`. The result is still syntactically
/// valid JSON when the input was — the damage is semantic (a changed
/// number), modeling silent bit rot. Returns the input unchanged when
/// it contains no digits.
pub fn flip_ascii_digit(text: &str, seed: u64) -> String {
    let digit_positions: Vec<usize> =
        text.bytes().enumerate().filter(|(_, b)| b.is_ascii_digit()).map(|(i, _)| i).collect();
    if digit_positions.is_empty() {
        return text.to_string();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = digit_positions[rng.gen_range(0..digit_positions.len())];
    let old = text.as_bytes()[pos] - b'0';
    let new = (old + 1 + rng.gen_range(0..9) % 9) % 10;
    let mut bytes = text.as_bytes().to_vec();
    bytes[pos] = b'0' + new;
    String::from_utf8(bytes).expect("digit swap preserves UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{parse_csv, CsvError};

    const SAMPLE: &str = "\
age,salary,class
17,30000,High
20,35000,High
32,50000,Low
68,55000,Low
";

    #[test]
    fn deterministic_from_seed() {
        for c in ALL_CSV_CORRUPTIONS {
            let a = corrupt_csv(SAMPLE, c, 42);
            let b = corrupt_csv(SAMPLE, c, 42);
            assert_eq!(a, b, "{}", c.name());
            assert_ne!(a, SAMPLE, "{} must change the text", c.name());
        }
        assert_eq!(flip_ascii_digit(SAMPLE, 7), flip_ascii_digit(SAMPLE, 7));
    }

    #[test]
    fn parser_detectable_corruptions_fail_parse() {
        for c in ALL_CSV_CORRUPTIONS {
            let damaged = corrupt_csv(SAMPLE, c, 1);
            let parsed = parse_csv(&damaged);
            if c.parses_clean() {
                assert!(parsed.is_ok(), "{} should still parse: {parsed:?}", c.name());
            } else {
                assert!(parsed.is_err(), "{} should fail parse", c.name());
            }
        }
    }

    #[test]
    fn specific_corruptions_yield_expected_errors() {
        let nan = corrupt_csv(SAMPLE, CsvCorruption::NanCell, 3);
        assert!(matches!(parse_csv(&nan), Err(CsvError::BadNumber { .. })));
        let ragged = corrupt_csv(SAMPLE, CsvCorruption::RaggedRow, 3);
        assert!(matches!(parse_csv(&ragged), Err(CsvError::BadArity { .. })));
        let dup = corrupt_csv(SAMPLE, CsvCorruption::DuplicateHeaderColumn, 3);
        assert!(matches!(parse_csv(&dup), Err(CsvError::DuplicateHeader { column: 1, .. })));
        let dropped = corrupt_csv(SAMPLE, CsvCorruption::DropColumn, 3);
        assert_eq!(parse_csv(&dropped).unwrap().num_attrs(), 1);
    }

    #[test]
    fn truncation_respects_utf8_and_bounds() {
        assert_eq!(truncate_at("hello", 0.0), "");
        assert_eq!(truncate_at("hello", 1.0), "hello");
        assert_eq!(truncate_at("hello", 0.5), "he");
        // Multi-byte boundary: never panics, always a prefix.
        let s = "aé€b";
        for i in 0..=10 {
            let t = truncate_at(s, i as f64 / 10.0);
            assert!(s.starts_with(&t));
        }
    }

    #[test]
    fn digit_flip_changes_exactly_one_byte() {
        let text = r#"{"x": 123, "y": 4.5}"#;
        let flipped = flip_ascii_digit(text, 99);
        assert_eq!(text.len(), flipped.len());
        let diffs: Vec<usize> = text
            .bytes()
            .zip(flipped.bytes())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1);
        assert!(text.as_bytes()[diffs[0]].is_ascii_digit());
        assert!(flipped.as_bytes()[diffs[0]].is_ascii_digit());
        assert!(flip_ascii_digit("no digits here", 1) == "no digits here");
    }
}
