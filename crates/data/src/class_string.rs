//! Class strings (Definition 6) and label runs (Definition 7).

use crate::dataset::{Dataset, SortedColumn};
use crate::schema::{AttrId, ClassId};

/// The class string `σ_{A,D}`: the sequence of class labels of the
/// A-projected tuples ordered by attribute value (equal values in the
/// canonical label order; see [`Dataset::sorted_column`]).
///
/// Lemma 1 of the paper: a monotone transformation of `A` preserves the
/// class string exactly; an anti-monotone transformation reverses it.
///
/// ```
/// use ppdt_data::{gen, AttrId, ClassString};
///
/// // The paper's Figure 1 data: sorted on age the labels read HHHLHL.
/// let d = gen::figure1();
/// let sigma = ClassString::of(&d, AttrId(0));
/// assert_eq!(sigma.render(), "AAABAB"); // A = High, B = Low
/// assert_eq!(sigma.runs().len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassString {
    labels: Vec<ClassId>,
}

impl ClassString {
    /// Builds `σ_{A,D}` for attribute `a` of dataset `d`.
    pub fn of(d: &Dataset, a: AttrId) -> Self {
        let sc = d.sorted_column(a);
        Self::from_sorted(d, &sc)
    }

    /// Builds the class string from an already computed sorted view.
    pub fn from_sorted(d: &Dataset, sc: &SortedColumn) -> Self {
        let labels = sc.order.iter().map(|&i| d.label(i as usize)).collect();
        ClassString { labels }
    }

    /// The label sequence.
    #[inline]
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Length of the string (= number of tuples).
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for an empty relation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The reversed string `σ^R` (the image of `σ` under an
    /// anti-monotone transformation, Lemma 1).
    pub fn reversed(&self) -> Self {
        let mut labels = self.labels.clone();
        labels.reverse();
        ClassString { labels }
    }

    /// Decomposes the string into its label runs (Definition 7):
    /// maximal substrings of a single class label.
    pub fn runs(&self) -> Vec<LabelRun> {
        let mut runs: Vec<LabelRun> = Vec::new();
        for (pos, &c) in self.labels.iter().enumerate() {
            match runs.last_mut() {
                Some(r) if r.label == c => r.end = pos + 1,
                _ => runs.push(LabelRun { start: pos, end: pos + 1, label: c }),
            }
        }
        runs
    }

    /// Renders the string using one character per label (A, B, C, ...),
    /// matching the paper's `HHHLHL` notation for two-class data.
    pub fn render(&self) -> String {
        self.labels.iter().map(|c| char::from(b'A' + (c.0 % 26) as u8)).collect()
    }
}

/// A label run: a maximal single-label substring of a class string
/// (Definition 7), identified by its position range in the sorted
/// tuple sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelRun {
    /// Start position (inclusive) in the sorted tuple sequence.
    pub start: usize,
    /// End position (exclusive).
    pub end: usize,
    /// The single class label of the run.
    pub label: ClassId,
}

impl LabelRun {
    /// Number of tuples in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Runs are never empty, but the method mirrors the std convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::schema::Schema;

    /// The Figure 1 dataset of the paper: age attribute, classes H=0, L=1.
    fn figure1_age() -> Dataset {
        let schema = Schema::new(["age"], ["High", "Low"]);
        let mut b = DatasetBuilder::new(schema);
        // (age, class) rows of Figure 1(a): 23H, 17H, 43L, 68L, 32H, 20H
        // sorted by age: 17H 20H 23H 32H 43L 68L -> wait, paper says
        // sigma_age = HHHLHL, so rows are: 17H 20H 23H 32L 43H 68L.
        for (v, c) in [(23.0, 0u16), (17.0, 0), (43.0, 0), (68.0, 1), (32.0, 1), (20.0, 0)] {
            b.push_row(&[v], ClassId(c));
        }
        b.build()
    }

    #[test]
    fn figure1_class_string_is_hhhlhl() {
        let d = figure1_age();
        let s = ClassString::of(&d, AttrId(0));
        // H=class0 -> 'A', L=class1 -> 'B'
        assert_eq!(s.render(), "AAABAB");
    }

    #[test]
    fn figure1_runs() {
        let d = figure1_age();
        let s = ClassString::of(&d, AttrId(0));
        let runs = s.runs();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].len(), 3);
        assert_eq!(runs[0].label, ClassId(0));
        assert_eq!(runs[1].len(), 1);
        assert_eq!(runs[1].label, ClassId(1));
        assert_eq!(runs[2].len(), 1);
        assert_eq!(runs[3].len(), 1);
    }

    #[test]
    fn reversed_string() {
        let d = figure1_age();
        let s = ClassString::of(&d, AttrId(0));
        assert_eq!(s.reversed().render(), "BABAAA");
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    fn empty_string_has_no_runs() {
        let d = Dataset::from_columns(Schema::generated(1, 2), vec![vec![]], vec![]);
        let s = ClassString::of(&d, AttrId(0));
        assert!(s.is_empty());
        assert!(s.runs().is_empty());
    }

    #[test]
    fn runs_cover_string_exactly() {
        let d = figure1_age();
        let s = ClassString::of(&d, AttrId(0));
        let runs = s.runs();
        assert_eq!(runs[0].start, 0);
        assert_eq!(runs.last().unwrap().end, s.len());
        for w in runs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_ne!(w[0].label, w[1].label, "adjacent runs differ in label");
        }
    }

    #[test]
    fn monotone_transform_preserves_class_string() {
        // Lemma 1, by direct construction: age' = 0.9*age + 10.
        let d = figure1_age();
        let col: Vec<f64> = d.column(AttrId(0)).iter().map(|v| 0.9 * v + 10.0).collect();
        let d2 = d.with_column(AttrId(0), col);
        assert_eq!(ClassString::of(&d, AttrId(0)), ClassString::of(&d2, AttrId(0)));
    }

    #[test]
    fn anti_monotone_transform_reverses_class_string() {
        let d = figure1_age();
        let col: Vec<f64> = d.column(AttrId(0)).iter().map(|v| -v).collect();
        let d2 = d.with_column(AttrId(0), col);
        assert_eq!(ClassString::of(&d, AttrId(0)).reversed(), ClassString::of(&d2, AttrId(0)));
    }
}
