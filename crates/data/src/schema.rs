//! Schema types: attribute and class identifiers plus name metadata.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a numeric attribute `A_i` in the training relation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The underlying column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A categorical class label (the attribute `C` of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The underlying class index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Names for the attributes and classes of a [`crate::Dataset`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attr_names: Vec<String>,
    class_names: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute and class names.
    ///
    /// # Panics
    /// Panics if there are no attributes or fewer than two classes
    /// (a classification problem needs at least two labels).
    pub fn new<S: Into<String>>(
        attr_names: impl IntoIterator<Item = S>,
        class_names: impl IntoIterator<Item = S>,
    ) -> Self {
        let attr_names: Vec<String> = attr_names.into_iter().map(Into::into).collect();
        let class_names: Vec<String> = class_names.into_iter().map(Into::into).collect();
        assert!(!attr_names.is_empty(), "schema needs at least one attribute");
        assert!(class_names.len() >= 2, "schema needs at least two classes");
        Schema { attr_names, class_names }
    }

    /// Creates a schema with generated names: `attr0..attrM`, `class0..classK`.
    pub fn generated(num_attrs: usize, num_classes: usize) -> Self {
        Schema::new(
            (0..num_attrs).map(|i| format!("attr{i}")),
            (0..num_classes).map(|i| format!("class{i}")),
        )
    }

    /// Number of numeric attributes.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Name of attribute `a`.
    #[inline]
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attr_names[a.0]
    }

    /// Name of class `c`.
    #[inline]
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.index()]
    }

    /// Iterator over all attribute ids.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.num_attrs()).map(AttrId)
    }

    /// Iterator over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.num_classes()).map(|i| ClassId(i as u16))
    }

    /// Looks up an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attr_names.iter().position(|n| n == name).map(AttrId)
    }

    /// Looks up a class id by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.iter().position(|n| n == name).map(|i| ClassId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schema_names() {
        let s = Schema::generated(3, 2);
        assert_eq!(s.num_attrs(), 3);
        assert_eq!(s.num_classes(), 2);
        assert_eq!(s.attr_name(AttrId(2)), "attr2");
        assert_eq!(s.class_name(ClassId(1)), "class1");
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(["age", "salary"], ["High", "Low"]);
        assert_eq!(s.attr_by_name("salary"), Some(AttrId(1)));
        assert_eq!(s.attr_by_name("bogus"), None);
        assert_eq!(s.class_by_name("Low"), Some(ClassId(1)));
        assert_eq!(s.class_by_name("Mid"), None);
    }

    #[test]
    fn iterators_cover_all_ids() {
        let s = Schema::generated(4, 3);
        assert_eq!(s.attrs().count(), 4);
        assert_eq!(s.classes().count(), 3);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn single_class_rejected() {
        let _ = Schema::new(["a"], ["only"]);
    }

    #[test]
    #[should_panic(expected = "one attribute")]
    fn zero_attrs_rejected() {
        let _ = Schema::new(Vec::<String>::new(), vec!["a".to_string(), "b".to_string()]);
    }
}
