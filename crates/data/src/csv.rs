//! Minimal CSV import/export for training tables.
//!
//! The custodian scenario needs real file I/O: read a table, encode
//! it, write `D'` for the miner. The format is deliberately plain —
//! comma-separated, one header row, every column numeric except the
//! **last**, which is the class label (any string; labels are interned
//! in first-appearance order). No quoting or escaping: attribute data
//! in this domain is numeric and labels are identifiers. Fields are
//! trimmed of surrounding whitespace.

use std::fmt::Write as _;
use std::path::Path;

use crate::dataset::{Dataset, DatasetBuilder};
#[cfg(test)]
use crate::schema::AttrId;
use crate::schema::{ClassId, Schema};

/// Errors from CSV parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// The header had fewer than two columns (need ≥1 attribute + label).
    TooFewColumns,
    /// A data row had the wrong number of fields.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// An attribute field failed to parse as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Column index.
        column: usize,
        /// The offending field.
        field: String,
    },
    /// Fewer than two distinct class labels appeared.
    TooFewClasses,
    /// Underlying I/O error (message form).
    Io(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::TooFewColumns => write!(f, "need at least one attribute and a label column"),
            CsvError::BadArity { line, got, expected } => {
                write!(f, "line {line}: {got} fields, expected {expected}")
            }
            CsvError::BadNumber { line, column, field } => {
                write!(f, "line {line}, column {column}: not a finite number: {field:?}")
            }
            CsvError::TooFewClasses => write!(f, "fewer than two distinct class labels"),
            CsvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a dataset from CSV text. See the module docs for the format.
pub fn parse_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names.len() < 2 {
        return Err(CsvError::TooFewColumns);
    }
    let num_attrs = names.len() - 1;

    // First pass: collect rows and intern labels in appearance order.
    let mut class_names: Vec<String> = Vec::new();
    let mut rows: Vec<(Vec<f64>, ClassId)> = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != names.len() {
            return Err(CsvError::BadArity {
                line: line_no,
                got: fields.len(),
                expected: names.len(),
            });
        }
        let mut values = Vec::with_capacity(num_attrs);
        for (col, field) in fields[..num_attrs].iter().enumerate() {
            let v: f64 = field.parse().map_err(|_| CsvError::BadNumber {
                line: line_no,
                column: col,
                field: (*field).to_string(),
            })?;
            if !v.is_finite() {
                return Err(CsvError::BadNumber {
                    line: line_no,
                    column: col,
                    field: (*field).to_string(),
                });
            }
            values.push(v);
        }
        let label_text = fields[num_attrs];
        let class = match class_names.iter().position(|n| n == label_text) {
            Some(i) => ClassId(i as u16),
            None => {
                class_names.push(label_text.to_string());
                ClassId((class_names.len() - 1) as u16)
            }
        };
        rows.push((values, class));
    }
    if class_names.len() < 2 {
        return Err(CsvError::TooFewClasses);
    }

    let schema = Schema::new(names[..num_attrs].iter().map(|s| s.to_string()), class_names);
    let mut b = DatasetBuilder::new(schema);
    for (values, class) in rows {
        b.push_row(&values, class);
    }
    Ok(b.build())
}

/// Reads a dataset from a CSV file.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    let text = std::fs::read_to_string(path).map_err(|e| CsvError::Io(e.to_string()))?;
    parse_csv(&text)
}

/// Serializes a dataset to CSV text (inverse of [`parse_csv`]).
pub fn to_csv(d: &Dataset) -> String {
    let schema = d.schema();
    let mut out = String::new();
    for a in schema.attrs() {
        let _ = write!(out, "{},", schema.attr_name(a));
    }
    out.push_str("class\n");
    for row in 0..d.num_rows() {
        for a in schema.attrs() {
            let _ = write!(out, "{},", format_value(d.value(row, a)));
        }
        let _ = writeln!(out, "{}", schema.class_name(d.label(row)));
    }
    out
}

/// Writes a dataset to a CSV file.
pub fn write_csv(d: &Dataset, path: impl AsRef<Path>) -> Result<(), CsvError> {
    std::fs::write(path, to_csv(d)).map_err(|e| CsvError::Io(e.to_string()))
}

/// Formats a value without losing precision (round-trippable through
/// `f64::parse`).
fn format_value(v: f64) -> String {
    // `{}` on f64 prints the shortest representation that round-trips.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::figure1;

    const SAMPLE: &str = "\
age,salary,class
17, 30000, High
20,35000,High
23,40000,High
32,50000,Low
43,45000,High
68,55000,Low
";

    #[test]
    fn parse_sample() {
        let d = parse_csv(SAMPLE).unwrap();
        assert_eq!(d.num_rows(), 6);
        assert_eq!(d.num_attrs(), 2);
        assert_eq!(d.schema().attr_name(AttrId(1)), "salary");
        assert_eq!(d.schema().class_name(ClassId(0)), "High");
        assert_eq!(d.value(3, AttrId(0)), 32.0);
        assert_eq!(d.label(3), ClassId(1));
    }

    #[test]
    fn roundtrip_figure1() {
        let d = figure1();
        let text = to_csv(&d);
        let d2 = parse_csv(&text).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn roundtrip_preserves_fractional_values() {
        let d = figure1();
        // Transform to non-integers and round-trip.
        let col: Vec<f64> = d.column(AttrId(0)).iter().map(|v| v * 0.9 + 10.1).collect();
        let d = d.with_column(AttrId(0), col);
        let d2 = parse_csv(&to_csv(&d)).unwrap();
        assert_eq!(d.column(AttrId(0)), d2.column(AttrId(0)));
    }

    #[test]
    fn blank_lines_skipped() {
        let text = format!("\n{SAMPLE}\n\n");
        assert_eq!(parse_csv(&text).unwrap().num_rows(), 6);
    }

    #[test]
    fn error_bad_arity() {
        let text = "a,b,class\n1,2,x\n3,x\n1,2,y\n";
        match parse_csv(text) {
            Err(CsvError::BadArity { line: 3, got: 2, expected: 3 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_bad_number() {
        let text = "a,class\noops,x\n2,y\n";
        match parse_csv(text) {
            Err(CsvError::BadNumber { line: 2, column: 0, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_nonfinite_rejected() {
        let text = "a,class\ninf,x\n2,y\n";
        assert!(matches!(parse_csv(text), Err(CsvError::BadNumber { .. })));
    }

    #[test]
    fn error_single_class() {
        let text = "a,class\n1,x\n2,x\n";
        assert_eq!(parse_csv(text), Err(CsvError::TooFewClasses));
    }

    #[test]
    fn error_empty_and_header_only() {
        assert_eq!(parse_csv(""), Err(CsvError::MissingHeader));
        assert_eq!(parse_csv("a,class\n"), Err(CsvError::TooFewClasses));
        assert_eq!(parse_csv("justone\n1\n"), Err(CsvError::TooFewColumns));
    }

    #[test]
    fn file_roundtrip() {
        let d = figure1();
        let path = std::env::temp_dir().join("ppdt_csv_test.csv");
        write_csv(&d, &path).unwrap();
        let d2 = read_csv(&path).unwrap();
        assert_eq!(d, d2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_missing_file_is_io_error() {
        assert!(matches!(read_csv("/nonexistent/ppdt.csv"), Err(CsvError::Io(_))));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::{random_dataset, RandomDatasetConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// CSV round-trip preserves every value and every label *name*
        /// (class ids may be re-interned in appearance order).
        #[test]
        fn prop_csv_roundtrip(seed in 0u64..5_000, rows in 1usize..120, attrs in 1usize..5, classes in 2usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = RandomDatasetConfig {
                num_rows: rows,
                num_attrs: attrs,
                num_classes: classes,
                value_range: 30,
            };
            let d = random_dataset(&mut rng, &cfg);
            // Guarantee at least two distinct labels occur (parse_csv
            // rejects single-class data by design).
            let distinct: std::collections::BTreeSet<u16> = d.labels().iter().map(|c| c.0).collect();
            prop_assume!(distinct.len() >= 2);

            let text = to_csv(&d);
            let d2 = parse_csv(&text).expect("roundtrip parse");
            prop_assert_eq!(d2.num_rows(), d.num_rows());
            prop_assert_eq!(d2.num_attrs(), d.num_attrs());
            for a in d.schema().attrs() {
                prop_assert_eq!(d2.column(a), d.column(a));
            }
            for row in 0..d.num_rows() {
                prop_assert_eq!(
                    d2.schema().class_name(d2.label(row)),
                    d.schema().class_name(d.label(row))
                );
            }
        }
    }
}
