//! Minimal CSV import/export for training tables.
//!
//! The custodian scenario needs real file I/O: read a table, encode
//! it, write `D'` for the miner. The format is deliberately plain —
//! comma-separated, one header row, every column numeric except the
//! **last**, which is the class label (any string; labels are interned
//! in first-appearance order). No quoting or escaping: attribute data
//! in this domain is numeric and labels are identifiers. Fields are
//! trimmed of surrounding whitespace.
//!
//! ## Hostile files
//!
//! Files arrive from outside the trust boundary, so parsing never
//! panics: every malformation is a typed [`CsvError`] carrying the
//! 1-based source line and column (convertible to
//! [`ppdt_error::PpdtError`]). Two modes:
//!
//! * **strict** (default, [`parse_csv`] / [`read_csv`]) — the first
//!   bad cell or ragged row aborts the parse with its position;
//! * **lenient** ([`CsvOptions { lenient: true }`](CsvOptions)) — bad
//!   *rows* are skipped and tallied in a [`SkipReport`]; structural
//!   problems (missing/duplicate header, too few columns or classes)
//!   still fail.
//!
//! [`read_csv`] streams through a [`std::io::BufRead`] line by line,
//! so multi-gigabyte tables parse without materializing the file text
//! (see the million-row smoke test).

use std::fmt::Write as _;
use std::io::BufRead;
use std::path::Path;

use crate::dataset::{Dataset, DatasetBuilder};
#[cfg(test)]
use crate::schema::AttrId;
use crate::schema::{ClassId, Schema};
use ppdt_error::PpdtError;

/// Errors from CSV parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// The header had fewer than two columns (need ≥1 attribute + label).
    TooFewColumns,
    /// Two header columns carry the same name — the attribute/key
    /// correspondence would be ambiguous.
    DuplicateHeader {
        /// 0-based index of the second occurrence.
        column: usize,
        /// The repeated name.
        name: String,
    },
    /// A data row had the wrong number of fields.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// An attribute field failed to parse as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Column index.
        column: usize,
        /// The offending field.
        field: String,
    },
    /// Fewer than two distinct class labels appeared.
    TooFewClasses,
    /// Underlying I/O error (message form).
    Io(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::TooFewColumns => write!(f, "need at least one attribute and a label column"),
            CsvError::DuplicateHeader { column, name } => {
                write!(f, "column {column}: duplicate header name {name:?}")
            }
            CsvError::BadArity { line, got, expected } => {
                write!(f, "line {line}: {got} fields, expected {expected}")
            }
            CsvError::BadNumber { line, column, field } => {
                write!(f, "line {line}, column {column}: not a finite number: {field:?}")
            }
            CsvError::TooFewClasses => write!(f, "fewer than two distinct class labels"),
            CsvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<CsvError> for PpdtError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::MissingHeader => {
                PpdtError::DataCorrupt { row: None, column: None, detail: e.to_string() }
            }
            CsvError::TooFewColumns | CsvError::TooFewClasses => {
                PpdtError::DataCorrupt { row: None, column: None, detail: e.to_string() }
            }
            CsvError::DuplicateHeader { column, .. } => {
                PpdtError::DataCorrupt { row: Some(1), column: Some(column), detail: e.to_string() }
            }
            CsvError::BadArity { line, .. } => {
                PpdtError::DataCorrupt { row: Some(line), column: None, detail: e.to_string() }
            }
            CsvError::BadNumber { line, column, ref field } => PpdtError::DataCorrupt {
                row: Some(line),
                column: Some(column),
                detail: format!("not a finite number: {field:?}"),
            },
            CsvError::Io(detail) => PpdtError::Io { path: None, detail },
        }
    }
}

/// Parse-mode options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CsvOptions {
    /// When true, rows with a bad cell or wrong arity are skipped and
    /// tallied instead of aborting the parse.
    pub lenient: bool,
}

/// Cap on per-row details retained in a [`SkipReport`] (the total
/// count stays exact).
pub const MAX_SKIP_DETAILS: usize = 100;

/// One skipped row in lenient mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkippedRow {
    /// 1-based source line number.
    pub line: usize,
    /// 0-based column, when the problem was cell-level.
    pub column: Option<usize>,
    /// Why it was skipped.
    pub reason: String,
}

/// Tally of rows skipped by a lenient parse.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkipReport {
    /// Exact number of skipped rows.
    pub total_skipped: usize,
    /// Details of the first [`MAX_SKIP_DETAILS`] skipped rows.
    pub skipped: Vec<SkippedRow>,
}

impl SkipReport {
    /// True when no row was skipped.
    pub fn is_clean(&self) -> bool {
        self.total_skipped == 0
    }
}

/// Incremental CSV accumulator shared by the in-memory and streaming
/// entry points.
struct CsvAccum {
    attr_names: Vec<String>,
    num_cols: usize,
    lenient: bool,
    class_names: Vec<String>,
    rows: Vec<(Vec<f64>, ClassId)>,
    report: SkipReport,
}

impl CsvAccum {
    fn new(header: &str, opts: CsvOptions) -> Result<Self, CsvError> {
        let names: Vec<&str> = header.split(',').map(str::trim).collect();
        if names.len() < 2 {
            return Err(CsvError::TooFewColumns);
        }
        for (i, n) in names.iter().enumerate() {
            if let Some(_j) = names[..i].iter().position(|m| m == n) {
                return Err(CsvError::DuplicateHeader { column: i, name: (*n).to_string() });
            }
        }
        Ok(CsvAccum {
            attr_names: names[..names.len() - 1].iter().map(|s| (*s).to_string()).collect(),
            num_cols: names.len(),
            lenient: opts.lenient,
            class_names: Vec::new(),
            rows: Vec::new(),
            report: SkipReport::default(),
        })
    }

    fn skip(&mut self, line: usize, column: Option<usize>, reason: String) {
        self.report.total_skipped += 1;
        if self.report.skipped.len() < MAX_SKIP_DETAILS {
            self.report.skipped.push(SkippedRow { line, column, reason });
        }
    }

    fn push_line(&mut self, line_no: usize, line: &str) -> Result<(), CsvError> {
        let num_attrs = self.num_cols - 1;
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != self.num_cols {
            let e =
                CsvError::BadArity { line: line_no, got: fields.len(), expected: self.num_cols };
            if self.lenient {
                self.skip(line_no, None, e.to_string());
                return Ok(());
            }
            return Err(e);
        }
        let mut values = Vec::with_capacity(num_attrs);
        for (col, field) in fields[..num_attrs].iter().enumerate() {
            let parsed: Option<f64> = field.parse().ok().filter(|v: &f64| v.is_finite());
            match parsed {
                Some(v) => values.push(v),
                None => {
                    let e = CsvError::BadNumber {
                        line: line_no,
                        column: col,
                        field: (*field).to_string(),
                    };
                    if self.lenient {
                        self.skip(line_no, Some(col), e.to_string());
                        return Ok(());
                    }
                    return Err(e);
                }
            }
        }
        let label_text = fields[num_attrs];
        let class = match self.class_names.iter().position(|n| n == label_text) {
            Some(i) => ClassId(i as u16),
            None => {
                self.class_names.push(label_text.to_string());
                ClassId((self.class_names.len() - 1) as u16)
            }
        };
        self.rows.push((values, class));
        Ok(())
    }

    fn finish(self) -> Result<(Dataset, SkipReport), CsvError> {
        if self.class_names.len() < 2 {
            return Err(CsvError::TooFewClasses);
        }
        let schema = Schema::new(self.attr_names, self.class_names);
        let mut b = DatasetBuilder::new(schema);
        for (values, class) in self.rows {
            b.push_row(&values, class);
        }
        Ok((b.build(), self.report))
    }
}

/// Parses a dataset from CSV text with explicit [`CsvOptions`],
/// returning the dataset and the lenient-mode [`SkipReport`] (always
/// clean in strict mode).
pub fn parse_csv_opts(text: &str, opts: CsvOptions) -> Result<(Dataset, SkipReport), CsvError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let mut acc = CsvAccum::new(header, opts)?;
    for (idx, line) in lines {
        acc.push_line(idx + 1, line)?;
    }
    acc.finish()
}

/// Parses a dataset from CSV text (strict mode). See the module docs
/// for the format.
pub fn parse_csv(text: &str) -> Result<Dataset, CsvError> {
    parse_csv_opts(text, CsvOptions::default()).map(|(d, _)| d)
}

/// Reads a dataset from any buffered reader, streaming line by line
/// (the file text is never materialized in memory as a whole).
pub fn read_csv_from(
    reader: impl BufRead,
    opts: CsvOptions,
) -> Result<(Dataset, SkipReport), CsvError> {
    let mut acc: Option<CsvAccum> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| CsvError::Io(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        match &mut acc {
            None => acc = Some(CsvAccum::new(&line, opts)?),
            Some(acc) => acc.push_line(idx + 1, &line)?,
        }
    }
    acc.ok_or(CsvError::MissingHeader)?.finish()
}

/// Reads a dataset from a CSV file (strict mode, streaming).
pub fn read_csv(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    read_csv_opts(path, CsvOptions::default()).map(|(d, _)| d)
}

/// Reads a dataset from a CSV file with explicit [`CsvOptions`],
/// streaming through a buffered reader.
pub fn read_csv_opts(
    path: impl AsRef<Path>,
    opts: CsvOptions,
) -> Result<(Dataset, SkipReport), CsvError> {
    let file = std::fs::File::open(path).map_err(|e| CsvError::Io(e.to_string()))?;
    read_csv_from(std::io::BufReader::new(file), opts)
}

/// Serializes a dataset to CSV text (inverse of [`parse_csv`]).
pub fn to_csv(d: &Dataset) -> String {
    let schema = d.schema();
    let mut out = String::new();
    for a in schema.attrs() {
        let _ = write!(out, "{},", schema.attr_name(a));
    }
    out.push_str("class\n");
    for row in 0..d.num_rows() {
        for a in schema.attrs() {
            let _ = write!(out, "{},", format_value(d.value(row, a)));
        }
        let _ = writeln!(out, "{}", schema.class_name(d.label(row)));
    }
    out
}

/// Writes a dataset to a CSV file.
pub fn write_csv(d: &Dataset, path: impl AsRef<Path>) -> Result<(), CsvError> {
    std::fs::write(path, to_csv(d)).map_err(|e| CsvError::Io(e.to_string()))
}

/// Formats a value without losing precision (round-trippable through
/// `f64::parse`).
fn format_value(v: f64) -> String {
    // `{}` on f64 prints the shortest representation that round-trips.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::figure1;

    const SAMPLE: &str = "\
age,salary,class
17, 30000, High
20,35000,High
23,40000,High
32,50000,Low
43,45000,High
68,55000,Low
";

    #[test]
    fn parse_sample() {
        let d = parse_csv(SAMPLE).unwrap();
        assert_eq!(d.num_rows(), 6);
        assert_eq!(d.num_attrs(), 2);
        assert_eq!(d.schema().attr_name(AttrId(1)), "salary");
        assert_eq!(d.schema().class_name(ClassId(0)), "High");
        assert_eq!(d.value(3, AttrId(0)), 32.0);
        assert_eq!(d.label(3), ClassId(1));
    }

    #[test]
    fn roundtrip_figure1() {
        let d = figure1();
        let text = to_csv(&d);
        let d2 = parse_csv(&text).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn roundtrip_preserves_fractional_values() {
        let d = figure1();
        // Transform to non-integers and round-trip.
        let col: Vec<f64> = d.column(AttrId(0)).iter().map(|v| v * 0.9 + 10.1).collect();
        let d = d.with_column(AttrId(0), col);
        let d2 = parse_csv(&to_csv(&d)).unwrap();
        assert_eq!(d.column(AttrId(0)), d2.column(AttrId(0)));
    }

    #[test]
    fn blank_lines_skipped() {
        let text = format!("\n{SAMPLE}\n\n");
        assert_eq!(parse_csv(&text).unwrap().num_rows(), 6);
    }

    #[test]
    fn error_bad_arity() {
        let text = "a,b,class\n1,2,x\n3,x\n1,2,y\n";
        match parse_csv(text) {
            Err(CsvError::BadArity { line: 3, got: 2, expected: 3 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_bad_number() {
        let text = "a,class\noops,x\n2,y\n";
        match parse_csv(text) {
            Err(CsvError::BadNumber { line: 2, column: 0, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_nonfinite_rejected() {
        for cell in ["inf", "-inf", "NaN", "nan", ""] {
            let text = format!("a,class\n{cell},x\n2,y\n");
            assert!(
                matches!(parse_csv(&text), Err(CsvError::BadNumber { line: 2, column: 0, .. })),
                "cell {cell:?}"
            );
        }
    }

    #[test]
    fn error_single_class() {
        let text = "a,class\n1,x\n2,x\n";
        assert_eq!(parse_csv(text), Err(CsvError::TooFewClasses));
    }

    #[test]
    fn error_empty_and_header_only() {
        assert_eq!(parse_csv(""), Err(CsvError::MissingHeader));
        assert_eq!(parse_csv("a,class\n"), Err(CsvError::TooFewClasses));
        assert_eq!(parse_csv("justone\n1\n"), Err(CsvError::TooFewColumns));
    }

    #[test]
    fn error_duplicate_header() {
        let text = "age,age,class\n1,2,x\n3,4,y\n";
        match parse_csv(text) {
            Err(CsvError::DuplicateHeader { column: 1, name }) => assert_eq!(name, "age"),
            other => panic!("{other:?}"),
        }
        // Lenient mode does not excuse structural problems.
        assert!(parse_csv_opts(text, CsvOptions { lenient: true }).is_err());
    }

    #[test]
    fn lenient_skips_and_reports_positions() {
        let text = "a,b,class\n\
                    1,2,x\n\
                    oops,2,x\n\
                    3,nan,y\n\
                    4\n\
                    5,6,y\n";
        let (d, report) = parse_csv_opts(text, CsvOptions { lenient: true }).unwrap();
        assert_eq!(d.num_rows(), 2);
        assert_eq!(report.total_skipped, 3);
        assert_eq!(report.skipped.len(), 3);
        assert_eq!((report.skipped[0].line, report.skipped[0].column), (3, Some(0)));
        assert_eq!((report.skipped[1].line, report.skipped[1].column), (4, Some(1)));
        assert_eq!((report.skipped[2].line, report.skipped[2].column), (5, None));
        // Strict mode fails on the first bad row instead.
        assert!(matches!(parse_csv(text), Err(CsvError::BadNumber { line: 3, .. })));
    }

    #[test]
    fn lenient_detail_cap_keeps_exact_count() {
        let mut text = String::from("a,class\n1,x\n2,y\n");
        for _ in 0..(MAX_SKIP_DETAILS + 25) {
            text.push_str("bogus,z\n");
        }
        let (_, report) = parse_csv_opts(&text, CsvOptions { lenient: true }).unwrap();
        assert_eq!(report.total_skipped, MAX_SKIP_DETAILS + 25);
        assert_eq!(report.skipped.len(), MAX_SKIP_DETAILS);
        assert!(!report.is_clean());
    }

    #[test]
    fn file_roundtrip() {
        let d = figure1();
        let path = std::env::temp_dir().join("ppdt_csv_test.csv");
        write_csv(&d, &path).unwrap();
        let d2 = read_csv(&path).unwrap();
        assert_eq!(d, d2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_missing_file_is_io_error() {
        assert!(matches!(read_csv("/nonexistent/ppdt.csv"), Err(CsvError::Io(_))));
    }

    #[test]
    fn csv_errors_convert_to_typed_data_errors() {
        let e: PpdtError = CsvError::BadNumber { line: 7, column: 2, field: "x".into() }.into();
        match e {
            PpdtError::DataCorrupt { row: Some(7), column: Some(2), .. } => {}
            other => panic!("{other:?}"),
        }
        let e: PpdtError = CsvError::Io("gone".into()).into();
        assert!(matches!(e, PpdtError::Io { .. }));
        assert_eq!(PpdtError::from(CsvError::TooFewClasses).category().exit_code(), 6);
    }

    #[test]
    fn streaming_million_row_smoke() {
        // >1M rows through the buffered line-by-line path. Build the
        // text once (two attrs, alternating labels) and parse from a
        // cursor — same code path as a file, no temp file needed.
        let n: usize = 1_000_001;
        let mut text = String::with_capacity(n * 12 + 16);
        text.push_str("a,b,class\n");
        for i in 0..n {
            let _ = writeln!(text, "{},{},{}", i % 997, i % 89, if i % 2 == 0 { "x" } else { "y" });
        }
        let (d, report) =
            read_csv_from(std::io::Cursor::new(text.as_bytes()), CsvOptions::default()).unwrap();
        assert_eq!(d.num_rows(), n);
        assert_eq!(d.num_attrs(), 2);
        assert!(report.is_clean());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::{random_dataset, RandomDatasetConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// CSV round-trip preserves every value and every label *name*
        /// (class ids may be re-interned in appearance order).
        #[test]
        fn prop_csv_roundtrip(seed in 0u64..5_000, rows in 1usize..120, attrs in 1usize..5, classes in 2usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = RandomDatasetConfig {
                num_rows: rows,
                num_attrs: attrs,
                num_classes: classes,
                value_range: 30,
            };
            let d = random_dataset(&mut rng, &cfg);
            // Guarantee at least two distinct labels occur (parse_csv
            // rejects single-class data by design).
            let distinct: std::collections::BTreeSet<u16> = d.labels().iter().map(|c| c.0).collect();
            prop_assume!(distinct.len() >= 2);

            let text = to_csv(&d);
            let d2 = parse_csv(&text).expect("roundtrip parse");
            prop_assert_eq!(d2.num_rows(), d.num_rows());
            prop_assert_eq!(d2.num_attrs(), d.num_attrs());
            for a in d.schema().attrs() {
                prop_assert_eq!(d2.column(a), d.column(a));
            }
            for row in 0..d.num_rows() {
                prop_assert_eq!(
                    d2.schema().class_name(d2.label(row)),
                    d.schema().class_name(d.label(row))
                );
            }
        }
    }
}
