//! The columnar training relation `D`.

use serde::{Deserialize, Serialize};

use crate::schema::{AttrId, ClassId, Schema};

/// An immutable training relation instance `D` with `m` numeric
/// attributes and a categorical class label (Section 3.1 of the paper).
///
/// Storage is columnar: one `Vec<f64>` per attribute plus one label
/// vector, which keeps the per-attribute hot paths (sorting, class
/// strings, split search) cache friendly.
///
/// ```
/// use ppdt_data::{AttrId, ClassId, DatasetBuilder, Schema};
///
/// let schema = Schema::new(["age"], ["High", "Low"]);
/// let mut b = DatasetBuilder::new(schema);
/// b.push_row(&[17.0], ClassId(0));
/// b.push_row(&[32.0], ClassId(1));
/// b.push_row(&[17.0], ClassId(0));
/// let d = b.build();
///
/// assert_eq!(d.num_rows(), 3);
/// assert_eq!(d.active_domain(AttrId(0)), vec![17.0, 32.0]);
/// assert_eq!(d.class_counts(), vec![2, 1]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Vec<f64>>,
    labels: Vec<ClassId>,
}

impl Dataset {
    /// Assembles a dataset from columnar parts.
    ///
    /// # Panics
    /// Panics if column counts/lengths disagree with the schema, if any
    /// value is NaN, or if any label is out of range.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<f64>>, labels: Vec<ClassId>) -> Self {
        assert_eq!(columns.len(), schema.num_attrs(), "column count must match schema");
        for (i, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), labels.len(), "column {i} length must match label count");
            assert!(col.iter().all(|v| !v.is_nan()), "column {i} contains NaN values");
        }
        assert!(
            labels.iter().all(|c| c.index() < schema.num_classes()),
            "label out of range for schema"
        );
        Dataset { schema, columns, labels }
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of numeric attributes.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Number of classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.schema.num_classes()
    }

    /// The raw column of attribute `a`.
    #[inline]
    pub fn column(&self, a: AttrId) -> &[f64] {
        &self.columns[a.index()]
    }

    /// The label vector.
    #[inline]
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Value of attribute `a` in tuple `row`.
    #[inline]
    pub fn value(&self, row: usize, a: AttrId) -> f64 {
        self.columns[a.index()][row]
    }

    /// Label of tuple `row`.
    #[inline]
    pub fn label(&self, row: usize) -> ClassId {
        self.labels[row]
    }

    /// Per-class tuple counts over the whole relation.
    pub fn class_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_classes()];
        for c in &self.labels {
            counts[c.index()] += 1;
        }
        counts
    }

    /// The active domain `δ(A)` of attribute `a`: the sorted distinct
    /// values appearing in the data (Section 3.1).
    pub fn active_domain(&self, a: AttrId) -> Vec<f64> {
        let mut vals = self.columns[a.index()].clone();
        crate::value::sort_f64(&mut vals);
        crate::value::distinct_sorted(&vals)
    }

    /// Minimum and maximum value of attribute `a`, or `None` for an
    /// empty relation.
    pub fn min_max(&self, a: AttrId) -> Option<(f64, f64)> {
        let col = self.column(a);
        let first = *col.first()?;
        let (mut lo, mut hi) = (first, first);
        for &v in col {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Builds the sorted per-attribute view used by class strings,
    /// monochromatic analysis and split search: tuple indices ordered
    /// by `(value, label)` plus distinct-value groups with per-class
    /// histograms.
    ///
    /// Equal values are tie-broken by label — the "canonical order" of
    /// Definition 6 — so the class string of an attribute is uniquely
    /// defined and comparable across the original and transformed data.
    pub fn sorted_column(&self, a: AttrId) -> SortedColumn {
        let col = self.column(a);
        let mut order: Vec<u32> = (0..col.len() as u32).collect();
        order.sort_unstable_by(|&i, &j| {
            col[i as usize]
                .total_cmp(&col[j as usize])
                .then_with(|| self.labels[i as usize].cmp(&self.labels[j as usize]))
        });

        let mut groups: Vec<DistinctGroup> = Vec::new();
        let k = self.num_classes();
        for (pos, &row) in order.iter().enumerate() {
            let v = col[row as usize];
            let c = self.labels[row as usize];
            let start_new = groups.last().is_none_or(|g| g.value != v);
            if start_new {
                let mut hist = vec![0u32; k];
                hist[c.index()] = 1;
                groups.push(DistinctGroup { value: v, start: pos, end: pos + 1, hist });
            } else {
                let g = groups.last_mut().expect("group exists");
                g.end = pos + 1;
                g.hist[c.index()] += 1;
            }
        }
        SortedColumn { order, groups }
    }

    /// Replaces the column of attribute `a` with `new_col`, keeping the
    /// labels and every other column. Used by the encoder to build `D'`.
    ///
    /// # Panics
    /// Panics if `new_col` has the wrong length or contains NaN.
    pub fn with_column(&self, a: AttrId, new_col: Vec<f64>) -> Dataset {
        assert_eq!(new_col.len(), self.num_rows(), "replacement column length");
        assert!(new_col.iter().all(|v| !v.is_nan()), "replacement column NaN");
        let mut columns = self.columns.clone();
        columns[a.index()] = new_col;
        Dataset { schema: self.schema.clone(), columns, labels: self.labels.clone() }
    }

    /// Builds a new dataset with all columns replaced at once (labels
    /// and schema preserved). Used by the encoder to build `D'` in one
    /// allocation sweep.
    pub fn with_columns(&self, columns: Vec<Vec<f64>>) -> Dataset {
        Dataset::from_columns(self.schema.clone(), columns, self.labels.clone())
    }

    /// Projects the relation onto `(A, C)` — the A-projected tuples of
    /// Section 3.1 — as `(value, label)` pairs in row order.
    pub fn projected(&self, a: AttrId) -> Vec<(f64, ClassId)> {
        self.column(a).iter().zip(&self.labels).map(|(&v, &c)| (v, c)).collect()
    }
}

/// A per-attribute sorted view: tuple order plus distinct-value groups.
#[derive(Clone, Debug, PartialEq)]
pub struct SortedColumn {
    /// Tuple indices ordered by `(value, label)`.
    pub order: Vec<u32>,
    /// Maximal groups of equal values, in ascending value order.
    pub groups: Vec<DistinctGroup>,
}

impl SortedColumn {
    /// Number of distinct values.
    #[inline]
    pub fn num_distinct(&self) -> usize {
        self.groups.len()
    }
}

/// One distinct attribute value with its per-class tuple histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct DistinctGroup {
    /// The attribute value.
    pub value: f64,
    /// Start position (inclusive) in the sorted order.
    pub start: usize,
    /// End position (exclusive) in the sorted order.
    pub end: usize,
    /// Tuple count per class.
    pub hist: Vec<u32>,
}

impl DistinctGroup {
    /// Total number of tuples carrying this value.
    #[inline]
    pub fn count(&self) -> u32 {
        (self.end - self.start) as u32
    }

    /// If every tuple with this value agrees on the label — the value is
    /// *monochromatic* (Definition 9) — returns that label.
    pub fn monochromatic_label(&self) -> Option<ClassId> {
        let mut found = None;
        for (c, &n) in self.hist.iter().enumerate() {
            if n > 0 {
                if found.is_some() {
                    return None;
                }
                found = Some(ClassId(c as u16));
            }
        }
        found
    }
}

/// Row-oriented convenience builder for [`Dataset`].
#[derive(Clone, Debug)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Vec<f64>>,
    labels: Vec<ClassId>,
}

impl DatasetBuilder {
    /// Starts an empty dataset with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.num_attrs()];
        DatasetBuilder { schema, columns, labels: Vec::new() }
    }

    /// Appends one tuple.
    ///
    /// # Panics
    /// Panics on arity mismatch, NaN values, or out-of-range label.
    pub fn push_row(&mut self, values: &[f64], label: ClassId) -> &mut Self {
        assert_eq!(values.len(), self.schema.num_attrs(), "tuple arity");
        assert!(label.index() < self.schema.num_classes(), "label range");
        for (col, &v) in self.columns.iter_mut().zip(values) {
            assert!(!v.is_nan(), "NaN attribute value");
            col.push(v);
        }
        self.labels.push(label);
        self
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Finishes the dataset.
    pub fn build(self) -> Dataset {
        Dataset::from_columns(self.schema, self.columns, self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // values:    3 1 2 2 5
        // labels:    0 1 0 1 0
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(&[3.0], ClassId(0))
            .push_row(&[1.0], ClassId(1))
            .push_row(&[2.0], ClassId(0))
            .push_row(&[2.0], ClassId(1))
            .push_row(&[5.0], ClassId(0));
        b.build()
    }

    #[test]
    fn sorted_column_orders_and_groups() {
        let d = toy();
        let sc = d.sorted_column(AttrId(0));
        let sorted_vals: Vec<f64> =
            sc.order.iter().map(|&i| d.value(i as usize, AttrId(0))).collect();
        assert_eq!(sorted_vals, vec![1.0, 2.0, 2.0, 3.0, 5.0]);
        assert_eq!(sc.num_distinct(), 4);
        let g2 = &sc.groups[1];
        assert_eq!(g2.value, 2.0);
        assert_eq!(g2.count(), 2);
        assert_eq!(g2.hist, vec![1, 1]);
        assert_eq!(g2.monochromatic_label(), None);
        assert_eq!(sc.groups[0].monochromatic_label(), Some(ClassId(1)));
    }

    #[test]
    fn ties_are_broken_by_label() {
        let schema = Schema::generated(1, 2);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(&[2.0], ClassId(1)).push_row(&[2.0], ClassId(0)).push_row(&[2.0], ClassId(1));
        let d = b.build();
        let sc = d.sorted_column(AttrId(0));
        let labels: Vec<ClassId> = sc.order.iter().map(|&i| d.label(i as usize)).collect();
        assert_eq!(labels, vec![ClassId(0), ClassId(1), ClassId(1)]);
    }

    #[test]
    fn active_domain_and_min_max() {
        let d = toy();
        assert_eq!(d.active_domain(AttrId(0)), vec![1.0, 2.0, 3.0, 5.0]);
        assert_eq!(d.min_max(AttrId(0)), Some((1.0, 5.0)));
    }

    #[test]
    fn class_counts() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![3, 2]);
    }

    #[test]
    fn with_column_replaces_one_attribute() {
        let d = toy();
        let d2 = d.with_column(AttrId(0), vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(d2.column(AttrId(0)), &[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(d2.labels(), d.labels());
    }

    #[test]
    fn projected_pairs() {
        let d = toy();
        let p = d.projected(AttrId(0));
        assert_eq!(p[0], (3.0, ClassId(0)));
        assert_eq!(p.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_row_arity_checked() {
        let mut b = DatasetBuilder::new(Schema::generated(2, 2));
        b.push_row(&[1.0], ClassId(0));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn labels_validated() {
        let schema = Schema::generated(1, 2);
        Dataset::from_columns(schema, vec![vec![1.0]], vec![ClassId(9)]);
    }

    #[test]
    fn empty_dataset_is_legal() {
        let d = Dataset::from_columns(Schema::generated(1, 2), vec![vec![]], vec![]);
        assert_eq!(d.num_rows(), 0);
        assert!(d.min_max(AttrId(0)).is_none());
        assert!(d.active_domain(AttrId(0)).is_empty());
    }
}
