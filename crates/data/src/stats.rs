//! Per-attribute statistics — the rows of the paper's Figure 8 and the
//! first columns of Figure 11.

use crate::dataset::Dataset;
use crate::mono::{dynamic_range_width, num_discontinuities, MonoAnalysis};
use crate::schema::AttrId;

/// The statistics the paper reports per attribute (Figures 8 and 11).
#[derive(Clone, Debug, PartialEq)]
pub struct AttrStats {
    /// The attribute.
    pub attr: AttrId,
    /// Least value occurring in the data.
    pub min: f64,
    /// Greatest value occurring in the data.
    pub max: f64,
    /// Dynamic-range width in grid units (`max - min + 1` for integer
    /// domains) — Figure 8, column 2.
    pub range_width: usize,
    /// Number of distinct values — Figure 8, column 3.
    pub num_distinct: usize,
    /// Number of monochromatic pieces — Figure 8, column 4.
    pub num_mono_pieces: usize,
    /// Average monochromatic-piece length in distinct values —
    /// Figure 8, column 5.
    pub avg_mono_piece_len: f64,
    /// Fraction of distinct values inside monochromatic pieces —
    /// Figure 8, column 6.
    pub pct_mono_values: f64,
    /// Number of discontinuities in the dynamic range — Figure 11,
    /// column 2.
    pub num_discontinuities: usize,
}

impl AttrStats {
    /// Computes the statistics of attribute `a`.
    ///
    /// `granularity` is the value-grid step (1.0 for integer domains);
    /// `min_piece_len` is ChooseMaxMP's minimum piece width (the paper
    /// suggests 5 in practice).
    pub fn compute(d: &Dataset, a: AttrId, granularity: f64, min_piece_len: usize) -> Self {
        let sc = d.sorted_column(a);
        let ma = MonoAnalysis::analyze(&sc, min_piece_len);
        let (min, max) = d.min_max(a).unwrap_or((f64::NAN, f64::NAN));
        let (min, max) = if d.num_rows() == 0 { (0.0, 0.0) } else { (min, max) };
        AttrStats {
            attr: a,
            min,
            max,
            range_width: dynamic_range_width(&sc, granularity),
            num_distinct: sc.num_distinct(),
            num_mono_pieces: ma.num_pieces(),
            avg_mono_piece_len: ma.avg_piece_len(),
            pct_mono_values: ma.pct_piece_values(),
            num_discontinuities: num_discontinuities(&sc, granularity),
        }
    }

    /// Computes statistics for every attribute of the dataset.
    pub fn compute_all(d: &Dataset, granularity: f64, min_piece_len: usize) -> Vec<AttrStats> {
        d.schema().attrs().map(|a| AttrStats::compute(d, a, granularity, min_piece_len)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::schema::{ClassId, Schema};

    #[test]
    fn stats_of_paper_example() {
        let schema = Schema::new(["a"], ["H", "L"]);
        let mut b = DatasetBuilder::new(schema);
        let rows = [
            (1.0, 0u16),
            (2.0, 0),
            (15.0, 0),
            (15.0, 0),
            (27.0, 1),
            (28.0, 1),
            (29.0, 1),
            (29.0, 0),
            (42.0, 0),
            (43.0, 0),
            (44.0, 0),
        ];
        for (v, c) in rows {
            b.push_row(&[v], ClassId(c));
        }
        let d = b.build();
        let s = AttrStats::compute(&d, AttrId(0), 1.0, 1);
        assert_eq!(s.range_width, 44);
        assert_eq!(s.num_distinct, 9);
        assert_eq!(s.num_discontinuities, 35);
        assert_eq!(s.num_mono_pieces, 3);
        assert!((s.pct_mono_values - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn compute_all_covers_all_attrs() {
        let schema = Schema::generated(3, 2);
        let mut b = DatasetBuilder::new(schema);
        b.push_row(&[1.0, 5.0, 9.0], ClassId(0));
        b.push_row(&[2.0, 5.0, 7.0], ClassId(1));
        let d = b.build();
        let all = AttrStats::compute_all(&d, 1.0, 1);
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].num_distinct, 1);
    }
}
