//! Totally ordered attribute values.
//!
//! Attribute values in the original data are integer-valued (as in the
//! forest covertype benchmark the paper evaluates on), but transformed
//! values are arbitrary reals (log, sqrt-log, permutation targets...).
//! We therefore represent every attribute value as an `f64` and wrap it
//! in [`Value`] to get a total order (`f64::total_cmp`) usable as a
//! `BTreeMap`/sort key. NaN values are rejected at construction.

use std::cmp::Ordering;
use std::fmt;

use ppdt_error::PpdtError;
use serde::{Deserialize, Serialize};

/// A finite, totally ordered attribute value.
///
/// Invariant: the wrapped `f64` is never NaN (construction panics on
/// NaN; infinities are allowed because transformed domains may be
/// unbounded in principle, although the shipped function families only
/// produce finite values).
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Value(f64);

impl Value {
    /// Wraps a raw `f64`.
    ///
    /// # Panics
    /// Panics if `v` is NaN — a NaN attribute value has no place in a
    /// linearly ordered active domain (Section 3.1 of the paper).
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "attribute values must not be NaN");
        Value(v)
    }

    /// Returns the wrapped `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for Value {
    #[inline]
    fn from(v: f64) -> Self {
        Value::new(v)
    }
}

impl From<Value> for f64 {
    #[inline]
    fn from(v: Value) -> f64 {
        v.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Compares two raw `f64` attribute values with the same total order
/// used by [`Value`].
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Sorts a slice of raw `f64` attribute values in ascending order.
#[inline]
pub fn sort_f64(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Fills `out` with the indices `0..items.len()` sorted so that
/// `key(items[out[0]]) <= key(items[out[1]]) <= ...` under the same
/// total order as [`Value`] (`f64::total_cmp`).
///
/// This is the one order-building primitive shared by the tree
/// builders' per-attribute scans and the attack fitter, replacing the
/// hand-rolled `sort_by(total_cmp)` sites that each re-derived it. The
/// sort is **stable** (equal keys keep their input order — enforced by
/// an index tie-break rather than an allocating stable sort), because
/// `fit_crack` sums duplicate-key values in input order and float
/// addition is not associative.
///
/// `out` is a reusable buffer: it is cleared and refilled, so callers
/// in hot loops amortize the allocation across calls.
///
/// # Errors
/// Returns [`PpdtError::InvalidConfig`] if `items.len()` exceeds
/// `u32::MAX` — the `u32` row indices used throughout the mining layer
/// would silently truncate beyond that.
pub fn sorted_order_by_value<T, K>(items: &[T], key: K, out: &mut Vec<u32>) -> Result<(), PpdtError>
where
    K: Fn(&T) -> f64,
{
    if items.len() > u32::MAX as usize {
        return Err(PpdtError::InvalidConfig {
            param: "items.len()".into(),
            detail: format!(
                "{} rows exceed the u32 index space ({} max) used for sorted orders",
                items.len(),
                u32::MAX
            ),
        });
    }
    out.clear();
    out.extend(0..items.len() as u32);
    out.sort_unstable_by(|&i, &j| {
        key(&items[i as usize]).total_cmp(&key(&items[j as usize])).then(i.cmp(&j))
    });
    Ok(())
}

/// Deduplicates a **sorted** slice of raw `f64` values into a vector of
/// distinct values.
pub fn distinct_sorted(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for &x in xs {
        if out.last().is_none_or(|&l: &f64| l != x) {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_handles_negative_zero_and_infinity() {
        let mut vs = [
            Value::new(1.0),
            Value::new(f64::NEG_INFINITY),
            Value::new(-0.0),
            Value::new(0.0),
            Value::new(f64::INFINITY),
            Value::new(-3.5),
        ];
        vs.sort();
        let raw: Vec<f64> = vs.iter().map(|v| v.get()).collect();
        assert_eq!(raw[0], f64::NEG_INFINITY);
        assert_eq!(raw[1], -3.5);
        assert!(raw[2] == 0.0 && raw[2].is_sign_negative());
        assert!(raw[3] == 0.0 && raw[3].is_sign_positive());
        assert_eq!(raw[4], 1.0);
        assert_eq!(raw[5], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Value::new(f64::NAN);
    }

    #[test]
    fn distinct_sorted_collapses_duplicates() {
        let xs = [1.0, 1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(distinct_sorted(&xs), vec![1.0, 2.0, 5.0]);
    }

    #[test]
    fn distinct_sorted_empty() {
        assert!(distinct_sorted(&[]).is_empty());
    }

    #[test]
    fn sorted_order_is_ascending_and_stable() {
        let items = [(3.0, 'a'), (1.0, 'b'), (3.0, 'c'), (-0.0, 'd'), (0.0, 'e')];
        let mut out = Vec::new();
        sorted_order_by_value(&items, |p| p.0, &mut out).expect("fits u32");
        // -0.0 sorts before +0.0 under total_cmp; duplicate 3.0 keys
        // keep input order (index 0 before index 2).
        assert_eq!(out, vec![3, 4, 1, 0, 2]);

        // The buffer is reusable: refilling replaces, not appends.
        sorted_order_by_value(&items[..2], |p| p.0, &mut out).expect("fits u32");
        assert_eq!(out, vec![1, 0]);

        out.clear();
        sorted_order_by_value::<f64, _>(&[], |&x| x, &mut out).expect("fits u32");
        assert!(out.is_empty());
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::new(42.5);
        assert_eq!(f64::from(v), 42.5);
        assert_eq!(Value::from(42.5), v);
        assert_eq!(format!("{v}"), "42.5");
    }
}
