//! Totally ordered attribute values.
//!
//! Attribute values in the original data are integer-valued (as in the
//! forest covertype benchmark the paper evaluates on), but transformed
//! values are arbitrary reals (log, sqrt-log, permutation targets...).
//! We therefore represent every attribute value as an `f64` and wrap it
//! in [`Value`] to get a total order (`f64::total_cmp`) usable as a
//! `BTreeMap`/sort key. NaN values are rejected at construction.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A finite, totally ordered attribute value.
///
/// Invariant: the wrapped `f64` is never NaN (construction panics on
/// NaN; infinities are allowed because transformed domains may be
/// unbounded in principle, although the shipped function families only
/// produce finite values).
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Value(f64);

impl Value {
    /// Wraps a raw `f64`.
    ///
    /// # Panics
    /// Panics if `v` is NaN — a NaN attribute value has no place in a
    /// linearly ordered active domain (Section 3.1 of the paper).
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "attribute values must not be NaN");
        Value(v)
    }

    /// Returns the wrapped `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for Value {
    #[inline]
    fn from(v: f64) -> Self {
        Value::new(v)
    }
}

impl From<Value> for f64 {
    #[inline]
    fn from(v: Value) -> f64 {
        v.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Compares two raw `f64` attribute values with the same total order
/// used by [`Value`].
#[inline]
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Sorts a slice of raw `f64` attribute values in ascending order.
#[inline]
pub fn sort_f64(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Deduplicates a **sorted** slice of raw `f64` values into a vector of
/// distinct values.
pub fn distinct_sorted(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for &x in xs {
        if out.last().is_none_or(|&l: &f64| l != x) {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_handles_negative_zero_and_infinity() {
        let mut vs = [
            Value::new(1.0),
            Value::new(f64::NEG_INFINITY),
            Value::new(-0.0),
            Value::new(0.0),
            Value::new(f64::INFINITY),
            Value::new(-3.5),
        ];
        vs.sort();
        let raw: Vec<f64> = vs.iter().map(|v| v.get()).collect();
        assert_eq!(raw[0], f64::NEG_INFINITY);
        assert_eq!(raw[1], -3.5);
        assert!(raw[2] == 0.0 && raw[2].is_sign_negative());
        assert!(raw[3] == 0.0 && raw[3].is_sign_positive());
        assert_eq!(raw[4], 1.0);
        assert_eq!(raw[5], f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Value::new(f64::NAN);
    }

    #[test]
    fn distinct_sorted_collapses_duplicates() {
        let xs = [1.0, 1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(distinct_sorted(&xs), vec![1.0, 2.0, 5.0]);
    }

    #[test]
    fn distinct_sorted_empty() {
        assert!(distinct_sorted(&[]).is_empty());
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::new(42.5);
        assert_eq!(f64::from(v), 42.5);
        assert_eq!(Value::from(42.5), v);
        assert_eq!(format!("{v}"), "42.5");
    }
}
