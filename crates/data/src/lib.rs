//! # ppdt-data
//!
//! Dataset substrate for the `ppdt` workspace, the reproduction of
//! *"Preservation Of Patterns and Input-Output Privacy"* (Bu,
//! Lakshmanan, Ng, Ramesh — ICDE 2007).
//!
//! This crate owns everything the paper's Section 3 defines about the
//! training data itself:
//!
//! * [`Dataset`] — an immutable columnar relation instance `D` with
//!   numeric attributes and a categorical class label,
//! * [`ClassString`] and [`LabelRun`] — the per-attribute class string
//!   `σ_A` (Definition 6) and its label runs (Definition 7),
//! * [`mono`] — monochromatic values and maximal monochromatic pieces
//!   (Definition 9) plus discontinuity analysis (Section 5.4),
//! * [`stats`] — the per-attribute statistics reported in the paper's
//!   Figure 8 and Figure 11,
//! * [`gen`] — synthetic data generators, including a covertype-like
//!   generator calibrated to the paper's Figure 8 statistics (the UCI
//!   data itself is not shipped; see `DESIGN.md` §3).
//!
//! All randomized generators take an explicit [`rand::Rng`] so every
//! experiment in the workspace is reproducible from a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod class_string;
pub mod corrupt;
pub mod csv;
pub mod dataset;
pub mod gen;
pub mod mono;
pub mod schema;
pub mod stats;
pub mod value;

pub use class_string::{ClassString, LabelRun};
pub use corrupt::{corrupt_csv, flip_ascii_digit, truncate_at, CsvCorruption, ALL_CSV_CORRUPTIONS};
pub use csv::{
    parse_csv, parse_csv_opts, read_csv, read_csv_from, read_csv_opts, to_csv, write_csv, CsvError,
    CsvOptions, SkipReport, SkippedRow,
};
pub use dataset::{Dataset, DatasetBuilder, DistinctGroup, SortedColumn};
pub use mono::{MonoAnalysis, MonoPiece};
pub use schema::{AttrId, ClassId, Schema};
pub use stats::AttrStats;
pub use value::{cmp_f64, distinct_sorted, sort_f64, sorted_order_by_value, Value};
